module hotc

go 1.22
