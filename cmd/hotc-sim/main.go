// Command hotc-sim runs a single serverless scenario — a request
// pattern against a function under a runtime-management policy on a
// hardware profile — and prints per-round latencies and a summary.
//
// Examples:
//
//	hotc-sim -policy hotc -pattern serial -count 20
//	hotc-sim -policy cold -pattern burst -rounds 18
//	hotc-sim -policy keepalive -keepalive 2m -pattern campus -minutes 120
//	hotc-sim -profile edge-pi -app v3 -pattern serial -count 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"hotc"
	"hotc/internal/obs"
	"hotc/internal/scenario"
)

func main() {
	var (
		policyFlag  = flag.String("policy", "hotc", "policy: hotc|cold|keepalive|warmup|histogram")
		profileFlag = flag.String("profile", "server", "profile: server|edge-pi")
		patternFlag = flag.String("pattern", "serial", "pattern: serial|parallel|linear-inc|linear-dec|exp|burst|campus")
		appFlag     = flag.String("app", "qr", "application: qr|random|v3|tfapi|cassandra")
		langFlag    = flag.String("lang", "python", "language for qr/random apps: go|python|node|java")
		network     = flag.String("network", "bridge", "container network mode")
		count       = flag.Int("count", 20, "requests (serial)")
		rounds      = flag.Int("rounds", 10, "rounds (parallel/linear/exp/burst)")
		threads     = flag.Int("threads", 10, "client threads (parallel)")
		minutes     = flag.Int("minutes", 60, "trace minutes (campus)")
		interval    = flag.Duration("interval", 30*time.Second, "round interval")
		keepalive   = flag.Duration("keepalive", 15*time.Minute, "keep-alive window")
		seed        = flag.Int64("seed", 42, "jitter seed (0 = noiseless)")
		traceFile   = flag.String("trace", "", "replay this CSV schedule instead of a generated pattern")
		specFile    = flag.String("spec", "", "run a declarative JSON scenario spec and exit")
		verbose     = flag.Bool("v", false, "print every request")
		spanLog     = flag.String("span-log", "", "write per-request spans to this JSONL file")
		metricsDump = flag.String("metrics-dump", "", "write the metrics registry to this JSONL file")
		report      = flag.Bool("report", false, "print the per-phase latency breakdown from recorded spans")
	)
	flag.Parse()

	if *specFile != "" {
		runSpec(*specFile)
		return
	}

	sim, err := hotc.NewSimulation(hotc.Config{
		Profile:         hotc.Profile(*profileFlag),
		Policy:          hotc.Policy(*policyFlag),
		Seed:            *seed,
		KeepAliveWindow: *keepalive,
		LocalImages:     true,
		RecordSpans:     *spanLog != "" || *report,
	})
	if err != nil {
		fatal(err)
	}
	defer sim.Close()

	app, image, err := pickApp(*appFlag, *langFlag)
	if err != nil {
		fatal(err)
	}
	// For parallel patterns every thread gets its own configuration
	// (per the paper's Fig. 12b); otherwise one function serves all.
	nClasses := 1
	if *patternFlag == "parallel" {
		nClasses = *threads
	}
	names := make([]string, nClasses)
	for i := range names {
		names[i] = fmt.Sprintf("fn-%d", i)
		rt := hotc.Runtime{Image: image, Network: *network}
		if nClasses > 1 {
			rt.Env = []string{fmt.Sprintf("THREAD=%d", i)}
		}
		if err := sim.Deploy(hotc.FunctionSpec{Name: names[i], Runtime: rt, App: app}); err != nil {
			fatal(err)
		}
	}

	var w hotc.Workload
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		w, err = hotc.ReadWorkloadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		*patternFlag = "trace:" + *traceFile
	default:
		w = buildPattern(*patternFlag, *interval, *count, *rounds, *threads, *minutes, *seed, nClasses)
	}
	results, err := sim.Replay(w, func(c int) string { return names[c%len(names)] })
	if err != nil {
		fatal(err)
	}

	if *verbose {
		for i, r := range results {
			status := "warm"
			if !r.Reused {
				status = "COLD"
			}
			if r.Err != nil {
				status = "ERR " + r.Err.Error()
			}
			fmt.Printf("%4d  round=%-3d %-10s latency=%8.2fms init=%7.2fms (%s)\n",
				i, r.Round, r.Function,
				float64(r.Latency)/float64(time.Millisecond),
				float64(r.Initiation)/float64(time.Millisecond), status)
		}
	} else {
		printRounds(results)
	}

	st := hotc.Summarize(results)
	fmt.Printf("\npolicy=%s profile=%s pattern=%s\n", sim.PolicyName(), *profileFlag, *patternFlag)
	fmt.Printf("requests=%d cold=%d reused=%d mean=%.2fms p99=%.2fms max=%.2fms\n",
		st.Requests, st.ColdStarts, st.Reused, st.MeanMS, st.P99MS, st.MaxMS)
	fmt.Printf("live containers at end: %d; host cpu=%.1f%% mem=%.0fMB\n",
		sim.LiveContainers(), sim.HostCPUPct(), sim.HostMemMB())

	if *report {
		fmt.Printf("\nlatency breakdown (spans):\n%s", obs.Summarize(sim.Spans()).Render())
	}
	if *spanLog != "" {
		writeFile(*spanLog, func(f *os.File) error { return obs.WriteSpans(f, sim.Spans()) })
		fmt.Printf("spans: %d written to %s\n", len(sim.Spans()), *spanLog)
	}
	if *metricsDump != "" {
		writeFile(*metricsDump, func(f *os.File) error { return sim.Metrics().WriteJSONL(f) })
		fmt.Printf("metrics dumped to %s\n", *metricsDump)
	}
}

// writeFile creates path and runs the writer against it, dying on any
// error.
func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func runSpec(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenario %q (policy %s)\n", out.Name, out.Policy)
	fmt.Printf("requests=%d errors=%d cold=%d reused=%d mean=%.2fms p99=%.2fms max=%.2fms live=%d\n",
		out.Stats.Requests, out.Stats.Errors, out.Stats.ColdStarts, out.Stats.Reused,
		out.Stats.MeanMS, out.Stats.P99MS, out.Stats.MaxMS, out.LiveContainers)
	if len(out.ServedByNode) > 0 {
		fmt.Printf("served per node: %v\n", out.ServedByNode)
	}
	if out.Faults.Total() > 0 {
		fmt.Printf("injected faults: create-fails=%d exec-crashes=%d corruptions=%d slow-starts=%d\n",
			out.Faults.CreateFails, out.Faults.ExecCrashes, out.Faults.Corruptions, out.Faults.SlowStarts)
	}
	if len(out.Resilience) > 0 {
		keys := make([]string, 0, len(out.Resilience))
		for k := range out.Resilience {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Print("resilience:")
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, out.Resilience[k])
		}
		fmt.Println()
	}
	names := make([]string, 0, len(out.PerFunction))
	for name := range out.PerFunction {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fo := out.PerFunction[name]
		fmt.Printf("  %-20s requests=%-5d cold=%-4d mean=%.2fms\n",
			name, fo.Requests, fo.ColdStarts, fo.MeanMS)
	}
}

func buildPattern(kind string, interval time.Duration, count, rounds, threads, minutes int, seed int64, nClasses int) hotc.Workload {
	switch kind {
	case "serial":
		return hotc.SerialWorkload(interval, count)
	case "parallel":
		return hotc.ParallelWorkload(threads, rounds, interval)
	case "linear-inc":
		return hotc.LinearWorkload(2, 2, rounds, interval)
	case "linear-dec":
		return hotc.LinearWorkload(2*rounds, -2, rounds, interval)
	case "exp":
		return hotc.ExponentialWorkload(rounds, interval, false)
	case "exp-dec":
		return hotc.ExponentialWorkload(rounds, interval, true)
	case "burst":
		return hotc.BurstWorkload(8, 10, []int{4, 8, 12, 16}, rounds, interval)
	case "campus":
		return hotc.CampusWorkload(seed, 20, minutes, nClasses)
	default:
		fatal(fmt.Errorf("unknown pattern %q", kind))
		return nil
	}
}

func pickApp(name, lang string) (hotc.App, string, error) {
	switch name {
	case "qr":
		app, err := hotc.AppQR(lang)
		return app, app.Image, err
	case "random":
		app, err := hotc.AppRandomNumber(lang)
		return app, app.Image, err
	case "v3":
		app := hotc.AppV3()
		return app, app.Image, nil
	case "tfapi":
		app := hotc.AppTFAPI()
		return app, app.Image, nil
	case "cassandra":
		app := hotc.AppCassandra()
		return app, app.Image, nil
	default:
		return hotc.App{}, "", fmt.Errorf("unknown app %q", name)
	}
}

func printRounds(results []hotc.RequestResult) {
	byRound := map[int][]hotc.RequestResult{}
	maxRound := 0
	for _, r := range results {
		byRound[r.Round] = append(byRound[r.Round], r)
		if r.Round > maxRound {
			maxRound = r.Round
		}
	}
	fmt.Printf("%-6s %-9s %-12s %-6s\n", "round", "requests", "mean (ms)", "cold")
	for round := 0; round <= maxRound; round++ {
		rs := byRound[round]
		if len(rs) == 0 {
			continue
		}
		sum, cold := 0.0, 0
		for _, r := range rs {
			sum += float64(r.Latency) / float64(time.Millisecond)
			if !r.Reused {
				cold++
			}
		}
		fmt.Printf("%-6d %-9d %-12.2f %-6d\n", round+1, len(rs), sum/float64(len(rs)), cold)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hotc-sim:", err)
	os.Exit(1)
}
