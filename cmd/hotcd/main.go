// Command hotcd runs the HotC live gateway daemon: a real HTTP
// serverless gateway with warm-instance reuse, idle-TTL reaping and a
// management API, serving built-in demonstration functions.
//
// Usage:
//
//	hotcd -addr 127.0.0.1:8080 -idle-ttl 5m -max-idle 4
//
// Then:
//
//	curl -XPOST localhost:8080/system/functions \
//	     -d '{"name":"up","handler":"upper","coldStartMs":400}'
//	curl -XPOST localhost:8080/function/up -d 'hello'
//	curl localhost:8080/system/stats
//
// The X-Hotc-Reused response header reports whether the request reused
// a warm instance.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hotc/internal/faas/live"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		idleTTL   = flag.Duration("idle-ttl", 5*time.Minute, "stop instances idle longer than this (0 = never)")
		maxIdle   = flag.Int("max-idle", 8, "max warm instances per function (0 = unlimited)")
		reap      = flag.Duration("reap-interval", time.Second, "reaper scan interval")
		preload   = flag.Bool("preload", true, "deploy the builtin demo functions at startup")
		brkThresh = flag.Int("breaker-threshold", 5, "consecutive backend failures that open a function's circuit breaker (0 = disabled)")
		brkOpen   = flag.Duration("breaker-open", 30*time.Second, "how long an open breaker fast-fails before probing again")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	d := live.NewDaemon(live.PoolConfig{
		IdleTTL:            *idleTTL,
		MaxIdlePerFunction: *maxIdle,
		ReapInterval:       *reap,
		BreakerThreshold:   *brkThresh,
		BreakerOpenFor:     *brkOpen,
		EnablePprof:        *pprofOn,
	})
	if *preload {
		for _, h := range live.Builtins() {
			if err := d.Deploy(live.DeploySpec{Name: h, Handler: h, ColdStartMs: 400}); err != nil {
				fmt.Fprintln(os.Stderr, "hotcd:", err)
				os.Exit(1)
			}
		}
	}
	base, err := d.StartOn(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotcd:", err)
		os.Exit(1)
	}
	defer d.Stop()
	fmt.Printf("hotcd listening on %s\n", base)
	if *preload {
		fmt.Printf("preloaded functions: %v (cold start 400ms each)\n", live.Builtins())
	}
	fmt.Println("management: GET/POST /system/functions, GET /system/stats; invoke: POST /function/<name>")
	fmt.Println("metrics: GET /metrics (Prometheus text exposition)")
	if *pprofOn {
		fmt.Println("profiling: GET /debug/pprof/")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nhotcd: shutting down")
}
