// Command hotcd runs the HotC live gateway daemon: a real HTTP
// serverless gateway with adaptive live-container control, warm-pool
// reuse, keep-alive expiry and a management API, serving built-in
// demonstration functions.
//
// Usage:
//
//	hotcd -addr 127.0.0.1:8080 -predictor es+markov -control-interval 2s \
//	      -keepalive 5m -max-warm 8
//
// Then:
//
//	curl -XPOST localhost:8080/system/functions \
//	     -d '{"name":"up","handler":"upper","coldStartMs":400}'
//	curl -XPOST localhost:8080/function/up -d 'hello'
//	curl localhost:8080/system/stats
//	curl localhost:8080/system/predictions
//
// The X-Hotc-Reused response header reports whether the request reused
// a warm instance.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hotc/internal/faas/live"
	"hotc/internal/sharing"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		keepalive = flag.Duration("keepalive", 5*time.Minute, "stop instances idle longer than this (0 = never)")
		maxWarm   = flag.Int("max-warm", 8, "max warm instances per function, evicting oldest first (0 = unlimited)")
		reap      = flag.Duration("reap-interval", time.Second, "janitor scan interval for keep-alive expiry")
		ctlEvery  = flag.Duration("control-interval", 2*time.Second, "adaptive controller period: demand is sampled and the warm pool resized every interval")
		predName  = flag.String("predictor", "es+markov", "demand predictor driving prewarm/retire: es|markov|es+markov|off")
		headroom  = flag.Float64("headroom", 0, "fraction added to every forecast before provisioning (0.1 = +10%)")
		preload   = flag.Bool("preload", true, "deploy the builtin demo functions at startup")
		brkThresh = flag.Int("breaker-threshold", 5, "consecutive backend failures that open a function's circuit breaker (0 = disabled)")
		brkOpen   = flag.Duration("breaker-open", 30*time.Second, "how long an open breaker fast-fails before probing again")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		maxBody   = flag.Int64("max-body-size", 32<<20, "max request body bytes before HTTP 413 (0 = unlimited)")
		maxInFl   = flag.Int("max-inflight", 128, "max concurrently executing requests per function; excess queues for admission (0 = admission control off)")
		queueLen  = flag.Int("queue-depth", 256, "max queued requests per tenant per function before 429 + Retry-After")
		deadline  = flag.Duration("default-deadline", 0, "deadline applied to requests without an X-Hotc-Deadline-Ms header: queued requests past it are shed with 429, in-flight backend work is canceled (0 = none)")
		memBudget = flag.Int64("memory-budget", 0, "estimated warm-instance memory budget in bytes across all functions; the janitor reclaims from the biggest holders first (0 = unlimited)")
		noTrace   = flag.Bool("no-trace", false, "disable live request tracing (/system/trace and traceparent propagation)")
		trCap     = flag.Int("trace-capacity", 2048, "span ring capacity behind /system/trace")
		trSample  = flag.Float64("trace-sample", 0.01, "probabilistic keep rate for unremarkable successful spans; errors, sheds, cold starts and slow requests are always kept (negative = always-keep classes only)")
		trSlowMs  = flag.Int("trace-slow-ms", 500, "always keep spans at or above this end-to-end latency, in milliseconds (negative = off)")
		sloLatMs  = flag.Int("slo-latency-ms", 250, "latency SLO: 2xx requests slower than this are bad events against a p99 objective (0 = objective off)")
		sloColdPc = flag.Float64("slo-coldstart-pct", 5, "cold-start SLO: percent of served requests allowed to pay a cold start (0 = objective off)")
		prefork   = flag.Bool("prefork", false, "maintain a pool of generic pre-forked watchdogs: cold starts specialize a running generic instance and pay only image pull (layer-cache-scaled) + app init")
		preforkN  = flag.Int("prefork-size", 4, "target number of idle generic pre-forked watchdogs")
		preforkMs = flag.Int("prefork-boot", 120, "milliseconds one generic watchdog boot pays, always off the request path")
		layerCch  = flag.Bool("layer-cache", true, "cache image layers on the host so functions sharing base layers skip most of the pull phase")
		layerCap  = flag.Float64("layer-cache-cap", 0, "layer cache capacity in MB with LRU eviction (0 = unbounded)")
		bootSplit = flag.String("boot-split", "", "pull:runtime:app percentage split of coldStartMs for functions without explicit phases, e.g. 55:30:15 (empty = default)")
		share     = flag.Bool("share", false, "inter-function sharing: cold starts may rent an idle instance from another function, paying only volume wipe + app init (+ image-layer delta) instead of a full boot")
		sharePol  = flag.String("share-policy", "same-image", "which function pairs may share: same-image|any")
		shareWp   = flag.Int("share-wipe-ms", 5, "milliseconds one lease pays to wipe the lender's volume before re-specialization")
		shareGr   = flag.Duration("share-idle-grace", 250*time.Millisecond, "minimum idle age before an instance may be lent to another function")
	)
	flag.Parse()

	newPred, err := live.PredictorFactory(*predName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotcd:", err)
		os.Exit(2)
	}
	if _, err := sharing.ParseMode(*sharePol); err != nil {
		fmt.Fprintln(os.Stderr, "hotcd:", err)
		os.Exit(2)
	}
	pullFrac, rtFrac, appFrac, err := parseBootSplit(*bootSplit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotcd:", err)
		os.Exit(2)
	}

	d := live.NewDaemon(live.PoolConfig{
		IdleTTL:            *keepalive,
		MaxIdlePerFunction: *maxWarm,
		ReapInterval:       *reap,
		ControlInterval:    *ctlEvery,
		NewPredictor:       newPred,
		Headroom:           *headroom,
		BreakerThreshold:   *brkThresh,
		BreakerOpenFor:     *brkOpen,
		EnablePprof:        *pprofOn,
		MaxBodyBytes:       *maxBody,
		MaxInFlight:        *maxInFl,
		QueueDepth:         *queueLen,
		DefaultDeadline:    *deadline,
		MemoryBudget:       *memBudget,
		DisableTracing:     *noTrace,
		TraceCapacity:      *trCap,
		TraceSampleRate:    *trSample,
		TraceSlowThreshold: time.Duration(*trSlowMs) * time.Millisecond,
		SLOLatency:         time.Duration(*sloLatMs) * time.Millisecond,
		SLOColdStartPct:    *sloColdPc,
		Prefork:            *prefork,
		PreforkSize:        *preforkN,
		PreforkBoot:        time.Duration(*preforkMs) * time.Millisecond,
		DisableLayerCache:  !*layerCch,
		LayerCacheCapMB:    *layerCap,
		BootPullFrac:       pullFrac,
		BootRuntimeFrac:    rtFrac,
		BootAppFrac:        appFrac,
		Share:              *share,
		SharePolicy:        *sharePol,
		ShareWipe:          time.Duration(*shareWp) * time.Millisecond,
		ShareIdleGrace:     *shareGr,
	})
	if *preload {
		for _, h := range live.Builtins() {
			if err := d.Deploy(live.DeploySpec{Name: h, Handler: h, ColdStartMs: 400}); err != nil {
				fmt.Fprintln(os.Stderr, "hotcd:", err)
				os.Exit(1)
			}
		}
	}
	base, err := d.StartOn(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotcd:", err)
		os.Exit(1)
	}
	defer d.Stop()
	fmt.Printf("hotcd listening on %s\n", base)
	if *preload {
		fmt.Printf("preloaded functions: %v (cold start 400ms each)\n", live.Builtins())
	}
	if newPred != nil {
		fmt.Printf("adaptive control: predictor=%s interval=%v keepalive=%v max-warm=%d\n",
			*predName, *ctlEvery, *keepalive, *maxWarm)
	} else {
		fmt.Printf("adaptive control: off (keepalive=%v max-warm=%d still enforced)\n", *keepalive, *maxWarm)
	}
	if *maxBody > 0 {
		fmt.Printf("request bodies: capped at %d bytes (413 past that)\n", *maxBody)
	}
	if *maxInFl > 0 {
		fmt.Printf("admission: max-inflight=%d queue-depth=%d default-deadline=%v (tenant via X-Hotc-Tenant, deadline via X-Hotc-Deadline-Ms)\n",
			*maxInFl, *queueLen, *deadline)
	} else {
		fmt.Println("admission: off (-max-inflight 0)")
	}
	if *memBudget > 0 {
		fmt.Printf("warm memory budget: %d bytes (janitor reclaims biggest holders past it, generic watchdogs first)\n", *memBudget)
	}
	if *prefork {
		fmt.Printf("cold path: prefork pool size=%d generic-boot=%dms; cold starts pay pull+app-init only (X-Hotc-Boot: generic|cold)\n",
			*preforkN, *preforkMs)
	}
	if *share {
		fmt.Printf("sharing: on policy=%s wipe=%dms idle-grace=%v; cold starts may rent idle instances across functions (X-Hotc-Boot: rented, opt out per deploy with \"shareable\": false)\n",
			*sharePol, *shareWp, *shareGr)
	}
	if *layerCch {
		capNote := "unbounded"
		if *layerCap > 0 {
			capNote = fmt.Sprintf("%.0f MB, LRU", *layerCap)
		}
		fmt.Printf("layer cache: on (%s); deploys with \"image\" skip the pull share of cached layers\n", capNote)
	} else {
		fmt.Println("layer cache: off (-layer-cache=false)")
	}
	if *noTrace {
		fmt.Println("tracing: off (-no-trace)")
	} else {
		fmt.Printf("tracing: ring=%d sample=%.4g slow=%dms (GET /system/trace, traceparent accepted, X-Hotc-Trace-Id echoed)\n",
			*trCap, *trSample, *trSlowMs)
	}
	if *sloLatMs > 0 || *sloColdPc > 0 {
		fmt.Printf("slo: latency p99<%dms coldstart<%.4g%% (GET /system/slo, hotc_slo_* burn rates)\n",
			*sloLatMs, *sloColdPc)
	}
	fmt.Println("management: GET/POST /system/functions, GET /system/stats, GET /system/predictions; invoke: POST /function/<name>")
	fmt.Println("metrics: GET /metrics (Prometheus text exposition with trace exemplars)")
	if *pprofOn {
		fmt.Println("profiling: GET /debug/pprof/")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nhotcd: shutting down")
}

// parseBootSplit parses a "pull:runtime:app" percentage triple, e.g.
// "55:30:15". Empty means use the built-in default split; the parts
// need not sum to 100 (the gateway normalizes) but must be positive
// overall and non-negative individually.
func parseBootSplit(s string) (pull, rt, app float64, err error) {
	if s == "" {
		return 0, 0, 0, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -boot-split %q (want pull:runtime:app, e.g. 55:30:15)", s)
	}
	vals := make([]float64, 3)
	sum := 0.0
	for i, p := range parts {
		v, perr := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if perr != nil || v < 0 {
			return 0, 0, 0, fmt.Errorf("bad -boot-split part %q (want a non-negative number)", p)
		}
		vals[i] = v
		sum += v
	}
	if sum <= 0 {
		return 0, 0, 0, fmt.Errorf("bad -boot-split %q (parts sum to zero)", s)
	}
	return vals[0], vals[1], vals[2], nil
}
