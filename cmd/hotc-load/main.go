// Command hotc-load is an open-loop load generator for the HotC live
// gateway: it fires requests at a fixed arrival rate regardless of how
// fast responses come back (the arrival process does not slow down
// when the server does, which is what makes saturation visible), and
// reports goodput, rejection mix and latency percentiles as JSON.
//
// Against a running daemon:
//
//	hotc-load -target http://127.0.0.1:8080 -function sleep -rate 400 -duration 10s
//
// Self-hosted (boots an in-process daemon on a loopback socket — the
// data path is still real TCP):
//
//	hotc-load -rate 800 -duration 5s -max-inflight 8 -queue-depth 16
//
// Tenants split the arrival stream by share, e.g. an abusive tenant
// and a steady one:
//
//	hotc-load -tenants burst:3,steady:1 -deadline-ms 250 ...
//
// Exit status is non-zero when an -assert-* bound is violated, so CI
// can use a short run as a smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotc/internal/faas/live"
	"hotc/internal/predictor"
)

type tenantShare struct {
	name  string
	share int
}

// result is the JSON report. Fractions are of sent requests; goodput
// counts 2xx only.
type result struct {
	Target       string           `json:"target"`
	Function     string           `json:"function"`
	RateRPS      float64          `json:"rate_rps"`
	DurationS    float64          `json:"duration_s"`
	Sent         int64            `json:"sent"`
	ClientDrops  int64            `json:"client_drops"`
	Status       map[string]int64 `json:"status"`
	GoodputRPS   float64          `json:"goodput_rps"`
	OKFraction   float64          `json:"ok_fraction"`
	RejectedFrac float64          `json:"rejected_fraction"`
	FivexxFrac   float64          `json:"fivexx_fraction"`
	RetryAfter   int64            `json:"retry_after_present"`
	// ColdStarts/WarmHits classify served (2xx) responses by the
	// X-Hotc-Reused header the gateway stamps on every proxied reply;
	// ColdFraction is ColdStarts over the classified total. Benches
	// read the cold rate here instead of scraping /system/stats
	// mid-run.
	ColdStarts   int64   `json:"cold_starts"`
	WarmHits     int64   `json:"warm_hits"`
	ColdFraction float64 `json:"cold_fraction"`
	// BootModes splits served (2xx) responses by how their instance was
	// acquired, from the X-Hotc-Boot header: "warm" (reused), "rented"
	// (leased from another function), "generic" (prefork handoff),
	// "cold" (full boot). ModeFractions are of the classified total and
	// LatencyByModeMS carries per-mode percentiles — the sharing bench's
	// primary read-out.
	BootModes       map[string]int64              `json:"boot_modes,omitempty"`
	ModeFractions   map[string]float64            `json:"mode_fractions,omitempty"`
	LatencyByModeMS map[string]map[string]float64 `json:"latency_ms_by_mode,omitempty"`
	LatencyMS       map[string]float64            `json:"latency_ms"`
	// LatencyColdMS/LatencyWarmMS split the 2xx percentiles by cold vs
	// warm — the cold-path bench's primary read-out.
	LatencyColdMS map[string]float64 `json:"latency_ms_cold,omitempty"`
	LatencyWarmMS map[string]float64 `json:"latency_ms_warm,omitempty"`
	Tenants       map[string]*tstats `json:"tenants,omitempty"`
	// SlowestTraces and FailedTraces carry the X-Hotc-Trace-Id echoed
	// by a tracing gateway for the slowest successes and the first
	// failures: paste one into
	// `curl $target/system/trace | grep <id>` (or `hotc-trace spans`)
	// to see that exact request's span.
	SlowestTraces []traceRef `json:"slowest_traces,omitempty"`
	FailedTraces  []traceRef `json:"failed_traces,omitempty"`
	WarmAtEnd     int        `json:"warm_instances_at_end,omitempty"`
}

type tstats struct {
	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	Rejected int64 `json:"rejected"`
	// LatencyMS holds this tenant's own 2xx latency percentiles —
	// aggregate percentiles hide exactly the per-tenant unfairness a
	// tenant split exists to measure.
	LatencyMS map[string]float64 `json:"latency_ms,omitempty"`
}

// traceRef points a report reader at one request's span.
type traceRef struct {
	TraceID   string  `json:"trace_id"`
	Status    int     `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
	Tenant    string  `json:"tenant,omitempty"`
}

func main() {
	var (
		target     = flag.String("target", "", "base URL of a running hotcd; empty self-hosts a daemon on a loopback socket")
		function   = flag.String("function", "sleep", "function to invoke (with -functions > 1: the name prefix)")
		numFns     = flag.Int("functions", 1, "number of function copies to deploy and round-robin over (<name>-0..<name>-N-1); > 1 spreads arrivals so cold starts recur")
		handler    = flag.String("deploy-handler", "sleep", "builtin handler to deploy as -function before the run (empty = skip deploy)")
		coldMs     = flag.Int("cold-start-ms", 25, "deploy-time simulated cold start")
		imageRef   = flag.String("image", "", "deploy-time container image reference from the standard catalog (e.g. python:3.8); functions sharing base layers skip most of the pull phase")
		rate       = flag.Float64("rate", 200, "open-loop arrival rate, requests/second")
		duration   = flag.Duration("duration", 5*time.Second, "how long to generate load")
		body       = flag.String("body", "20", "request body (for the sleep builtin: service time in ms)")
		tenantsArg = flag.String("tenants", "", "name:share pairs splitting arrivals, e.g. burst:3,steady:1")
		deadlineMs = flag.Int("deadline-ms", 0, "X-Hotc-Deadline-Ms header on every request (0 = none)")
		outFile    = flag.String("out", "", "write the JSON report here instead of stdout")
		maxOut     = flag.Int("max-outstanding", 4096, "client-side cap on concurrent requests; arrivals past it are dropped and counted")
		// Self-hosted daemon knobs (ignored with -target).
		maxInFl   = flag.Int("max-inflight", 8, "self-hosted: per-function in-flight cap (0 = admission off)")
		queueLen  = flag.Int("queue-depth", 16, "self-hosted: per-tenant queue depth")
		defDeadl  = flag.Duration("default-deadline", 0, "self-hosted: default request deadline")
		memBudget = flag.Int64("memory-budget", 0, "self-hosted: warm-memory budget in bytes")
		keepalive = flag.Duration("keepalive", 0, "self-hosted: stop instances idle longer than this (0 = keep forever); a short keep-alive forces recurring cold starts for cold-path benches")
		reapEvery = flag.Duration("reap-interval", 0, "self-hosted: janitor scan interval (default 1s when -keepalive is set)")
		prefork   = flag.Bool("prefork", false, "self-hosted: arm the generic pre-forked watchdog pool")
		preforkN  = flag.Int("prefork-size", 4, "self-hosted: generic pool target size")
		preforkMs = flag.Int("prefork-boot-ms", 0, "self-hosted: generic watchdog boot delay in ms (off the request path)")
		layerCch  = flag.Bool("layer-cache", true, "self-hosted: cache image layers on the host (false models a node whose pulls always go to the registry)")
		layerCap  = flag.Float64("layer-cache-cap", 0, "self-hosted: layer cache capacity in MB with LRU eviction (0 = unbounded)")
		share     = flag.Bool("share", false, "self-hosted: arm inter-function sharing (cold starts may rent idle instances across functions)")
		sharePol  = flag.String("share-policy", "same-image", "self-hosted: sharing compatibility mode, same-image|any")
		shareWp   = flag.Int("share-wipe-ms", 5, "self-hosted: volume-wipe milliseconds paid per lease")
		shareGr   = flag.Duration("share-idle-grace", 0, "self-hosted: minimum idle age before lending (0 = daemon default; negative = none)")
		predName  = flag.String("predictor", "", "self-hosted: demand predictor for the adaptive controller, es|markov|es+markov|off (empty = controller off)")
		headroom  = flag.Float64("headroom", 0, "self-hosted: forecast headroom fraction")
		ctlEvery  = flag.Duration("control-interval", 0, "self-hosted: controller period (0 = daemon default when -predictor is set)")
		fnWeights = flag.String("fn-weights", "", "comma-separated integer weights skewing arrivals across the -functions copies, e.g. 8,1,1,1 (empty = uniform round-robin)")
		// CI assertions.
		assertMinOK    = flag.Float64("assert-min-ok", -1, "exit 1 if ok_fraction falls below this (-1 = off)")
		assertMax5xx   = flag.Float64("assert-max-5xx", -1, "exit 1 if fivexx_fraction exceeds this (-1 = off)")
		assertMaxCold  = flag.Float64("assert-max-cold", -1, "exit 1 if cold_fraction (from X-Hotc-Reused) exceeds this (-1 = off)")
		assertMaxGen   = flag.Float64("assert-max-generic", -1, "exit 1 if the generic-handoff mode fraction exceeds this (-1 = off)")
		assertMaxRent  = flag.Float64("assert-max-rented", -1, "exit 1 if the rented-boot mode fraction exceeds this (-1 = off)")
		assertMaxFCold = flag.Float64("assert-max-fullcold", -1, "exit 1 if the full-cold mode fraction exceeds this (-1 = off)")
	)
	flag.Parse()

	tenants, err := parseTenants(*tenantsArg)
	if err != nil {
		fatal(err)
	}

	base := *target
	var daemon *live.Daemon
	if base == "" {
		var newPred func() predictor.Predictor
		if *predName != "" {
			newPred, err = live.PredictorFactory(*predName)
			if err != nil {
				fatal(err)
			}
		}
		daemon = live.NewDaemon(live.PoolConfig{
			MaxInFlight:       *maxInFl,
			QueueDepth:        *queueLen,
			DefaultDeadline:   *defDeadl,
			MemoryBudget:      *memBudget,
			IdleTTL:           *keepalive,
			ReapInterval:      *reapEvery,
			Prefork:           *prefork,
			PreforkSize:       *preforkN,
			PreforkBoot:       time.Duration(*preforkMs) * time.Millisecond,
			DisableLayerCache: !*layerCch,
			LayerCacheCapMB:   *layerCap,
			Share:             *share,
			SharePolicy:       *sharePol,
			ShareWipe:         time.Duration(*shareWp) * time.Millisecond,
			ShareIdleGrace:    *shareGr,
			NewPredictor:      newPred,
			Headroom:          *headroom,
			ControlInterval:   *ctlEvery,
		})
		base, err = daemon.StartOn("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer daemon.Stop()
	}
	names := []string{*function}
	if *numFns > 1 {
		names = make([]string, *numFns)
		for i := range names {
			names[i] = fmt.Sprintf("%s-%d", *function, i)
		}
	}
	if *handler != "" {
		for _, n := range names {
			deploy(base, n, *handler, *coldMs, *imageRef)
		}
	}

	weights, err := parseWeights(*fnWeights, len(names))
	if err != nil {
		fatal(err)
	}

	res := run(base, names, weights, *body, tenants, *rate, *duration, *deadlineMs, *maxOut)
	if daemon != nil {
		warm := 0
		for _, n := range names {
			warm += daemon.WarmInstances(n)
		}
		res.WarmAtEnd = warm
		res.Target = "self-hosted " + base
	}

	enc, _ := json.MarshalIndent(res, "", "  ")
	enc = append(enc, '\n')
	if *outFile != "" {
		if err := os.WriteFile(*outFile, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("hotc-load: wrote %s (ok=%.3f rejected=%.3f 5xx=%.3f cold=%.3f goodput=%.1f/s)\n",
			*outFile, res.OKFraction, res.RejectedFrac, res.FivexxFrac, res.ColdFraction, res.GoodputRPS)
	} else {
		os.Stdout.Write(enc)
	}

	if *assertMinOK >= 0 && res.OKFraction < *assertMinOK {
		fatal(fmt.Errorf("ok_fraction %.3f below asserted minimum %.3f", res.OKFraction, *assertMinOK))
	}
	if *assertMax5xx >= 0 && res.FivexxFrac > *assertMax5xx {
		fatal(fmt.Errorf("fivexx_fraction %.3f above asserted maximum %.3f", res.FivexxFrac, *assertMax5xx))
	}
	if *assertMaxCold >= 0 && res.ColdFraction > *assertMaxCold {
		fatal(fmt.Errorf("cold_fraction %.3f above asserted maximum %.3f", res.ColdFraction, *assertMaxCold))
	}
	assertMode := func(mode string, max float64) {
		if max >= 0 && res.ModeFractions[mode] > max {
			fatal(fmt.Errorf("%s mode fraction %.3f above asserted maximum %.3f", mode, res.ModeFractions[mode], max))
		}
	}
	assertMode("generic", *assertMaxGen)
	assertMode("rented", *assertMaxRent)
	assertMode("cold", *assertMaxFCold)
}

// parseWeights parses -fn-weights into one positive integer per
// function; empty means uniform.
func parseWeights(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-fn-weights has %d entries for %d functions", len(parts), n)
	}
	out := make([]int, n)
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -fn-weights entry %q (want a positive integer)", p)
		}
		out[i] = w
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hotc-load:", err)
	os.Exit(1)
}

func parseTenants(s string) ([]tenantShare, error) {
	if s == "" {
		return nil, nil
	}
	var out []tenantShare
	for _, part := range strings.Split(s, ",") {
		name, shareStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		share := 1
		if ok {
			n, err := strconv.Atoi(shareStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad tenant share %q (want name:positive-int)", part)
			}
			share = n
		}
		if name == "" {
			return nil, fmt.Errorf("bad tenant spec %q", part)
		}
		out = append(out, tenantShare{name, share})
	}
	return out, nil
}

func deploy(base, name, handler string, coldMs int, image string) {
	spec := fmt.Sprintf(`{"name":%q,"handler":%q,"coldStartMs":%d`, name, handler, coldMs)
	if image != "" {
		spec += fmt.Sprintf(`,"image":%q`, image)
	}
	spec += "}"
	resp, err := http.Post(base+"/system/functions", "application/json", strings.NewReader(spec))
	if err != nil {
		fatal(fmt.Errorf("deploy %s: %w", name, err))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// An already-deployed function (409/400 from a previous run) is
	// fine; anything else would surface as request failures below.
}

// run fires the open-loop arrival schedule: request i departs at
// start + i/rate, no matter what happened to requests 0..i-1. With
// multiple functions arrivals round-robin across them; weights skew
// the cycle deterministically (weight w = w slots per cycle).
func run(base string, functions []string, weights []int, body string, tenants []tenantShare, rate float64, duration time.Duration, deadlineMs, maxOut int) *result {
	var (
		mu        sync.Mutex
		status    = map[string]int64{}
		latencies []float64
		coldLat   []float64
		warmLat   []float64
		modeN     = map[string]int64{}
		modeLat   = map[string][]float64{}
		cold      int64
		warmN     int64
		perTenant = map[string]*tstats{}
		tenantLat = map[string][]float64{}
		traced    []traceRef
		retryHdr  atomic.Int64
		drops     atomic.Int64
		sent      atomic.Int64
		wg        sync.WaitGroup
	)
	for _, t := range tenants {
		perTenant[t.name] = &tstats{}
	}
	// Weighted round-robin tenant assignment: deterministic, exact
	// shares over every full cycle.
	var cycle []string
	for _, t := range tenants {
		for i := 0; i < t.share; i++ {
			cycle = append(cycle, t.name)
		}
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: maxOut}}
	sem := make(chan struct{}, maxOut)
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	urls := make([]string, len(functions))
	for i, fn := range functions {
		urls[i] = base + "/function/" + fn
	}
	// Weighted deterministic URL cycle, mirroring the tenant cycle.
	urlCycle := urls
	if weights != nil {
		urlCycle = nil
		for i, w := range weights {
			for j := 0; j < w; j++ {
				urlCycle = append(urlCycle, urls[i])
			}
		}
	}

	for i := 0; ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if due.Sub(start) >= duration {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			drops.Add(1) // client saturated: still open-loop, the arrival is counted as lost
			continue
		}
		tenant := ""
		if len(cycle) > 0 {
			tenant = cycle[i%len(cycle)]
		}
		sent.Add(1)
		wg.Add(1)
		go func(tenant, url string) {
			defer wg.Done()
			defer func() { <-sem }()
			req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
			if tenant != "" {
				req.Header.Set("X-Hotc-Tenant", tenant)
			}
			if deadlineMs > 0 {
				req.Header.Set("X-Hotc-Deadline-Ms", strconv.Itoa(deadlineMs))
			}
			t0 := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				mu.Lock()
				status["transport_error"]++
				mu.Unlock()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			elapsed := time.Since(t0)
			if resp.Header.Get("Retry-After") != "" {
				retryHdr.Add(1)
			}
			latMs := float64(elapsed.Microseconds()) / 1000
			traceID := resp.Header.Get("X-Hotc-Trace-Id")
			reusedHdr := resp.Header.Get("X-Hotc-Reused")
			bootHdr := resp.Header.Get("X-Hotc-Boot")
			mu.Lock()
			status[strconv.Itoa(resp.StatusCode)]++
			if resp.StatusCode < 300 {
				latencies = append(latencies, latMs)
				// The gateway stamps X-Hotc-Reused on every proxied
				// reply: classify served requests cold vs warm here, so
				// benches never scrape /system/stats mid-run. The finer
				// X-Hotc-Boot header splits non-reused boots into
				// rented / generic / full-cold modes.
				switch reusedHdr {
				case "true":
					warmN++
					warmLat = append(warmLat, latMs)
					modeN["warm"]++
					modeLat["warm"] = append(modeLat["warm"], latMs)
				case "false":
					cold++
					coldLat = append(coldLat, latMs)
					mode := bootHdr
					if mode == "" {
						mode = "cold"
					}
					modeN[mode]++
					modeLat[mode] = append(modeLat[mode], latMs)
				}
				if tenant != "" {
					tenantLat[tenant] = append(tenantLat[tenant], latMs)
				}
			}
			if traceID != "" {
				traced = append(traced, traceRef{
					TraceID: traceID, Status: resp.StatusCode,
					LatencyMS: float64(int(latMs*100)) / 100, Tenant: tenant,
				})
			}
			if ts := perTenant[tenant]; ts != nil {
				ts.Sent++
				switch {
				case resp.StatusCode < 300:
					ts.OK++
				case resp.StatusCode == http.StatusTooManyRequests:
					ts.Rejected++
				}
			}
			mu.Unlock()
		}(tenant, urlCycle[i%len(urlCycle)])
	}
	wg.Wait()

	res := &result{
		Target:        base,
		Function:      strings.Join(functions, ","),
		RateRPS:       rate,
		DurationS:     duration.Seconds(),
		Sent:          sent.Load(),
		ClientDrops:   drops.Load(),
		Status:        status,
		RetryAfter:    retryHdr.Load(),
		ColdStarts:    cold,
		WarmHits:      warmN,
		LatencyMS:     percentiles(latencies),
		LatencyColdMS: percentiles(coldLat),
		LatencyWarmMS: percentiles(warmLat),
	}
	if cold+warmN > 0 {
		res.ColdFraction = float64(cold) / float64(cold+warmN)
		res.BootModes = modeN
		res.ModeFractions = map[string]float64{}
		res.LatencyByModeMS = map[string]map[string]float64{}
		for mode, n := range modeN {
			res.ModeFractions[mode] = float64(n) / float64(cold+warmN)
			res.LatencyByModeMS[mode] = percentiles(modeLat[mode])
		}
	}
	if len(perTenant) > 0 {
		for name, ts := range perTenant {
			ts.LatencyMS = percentiles(tenantLat[name])
		}
		res.Tenants = perTenant
	}
	res.SlowestTraces, res.FailedTraces = pickTraces(traced, 5)
	var ok, rejected, fivexx int64
	for code, n := range status {
		c, _ := strconv.Atoi(code)
		switch {
		case c >= 200 && c < 300:
			ok += n
		case c == http.StatusTooManyRequests:
			rejected += n
		case c >= 500:
			fivexx += n
		}
	}
	if res.Sent > 0 {
		res.OKFraction = float64(ok) / float64(res.Sent)
		res.RejectedFrac = float64(rejected) / float64(res.Sent)
		res.FivexxFrac = float64(fivexx) / float64(res.Sent)
	}
	res.GoodputRPS = float64(ok) / duration.Seconds()
	return res
}

// pickTraces selects the report's span pointers: the n slowest 2xx
// responses (worst first) and the first n non-2xx responses, among
// those the gateway stamped with a trace ID.
func pickTraces(traced []traceRef, n int) (slowest, failed []traceRef) {
	for _, t := range traced {
		if t.Status >= 200 && t.Status < 300 {
			slowest = append(slowest, t)
		} else if len(failed) < n {
			failed = append(failed, t)
		}
	}
	sort.Slice(slowest, func(a, b int) bool { return slowest[a].LatencyMS > slowest[b].LatencyMS })
	if len(slowest) > n {
		slowest = slowest[:n]
	}
	return slowest, failed
}

func percentiles(ms []float64) map[string]float64 {
	if len(ms) == 0 {
		return map[string]float64{}
	}
	sort.Float64s(ms)
	at := func(p float64) float64 {
		i := int(p * float64(len(ms)-1))
		return ms[i]
	}
	round := func(v float64) float64 { return float64(int(v*100)) / 100 }
	return map[string]float64{
		"p50": round(at(0.50)),
		"p90": round(at(0.90)),
		"p99": round(at(0.99)),
		"max": round(ms[len(ms)-1]),
	}
}
