// Command hotc-trace inspects and generates the workloads and corpora
// the experiments run on.
//
// Subcommands:
//
//	hotc-trace campus [-minutes N] [-scale S] [-seed X]
//	    print the diurnal envelope and a generated trace's per-minute
//	    counts
//	hotc-trace pattern -kind serial|parallel|linear|exp|burst [...]
//	    print a pattern's per-round request counts
//	hotc-trace corpus [-projects N] [-seed X]
//	    generate a synthetic Dockerfile corpus and print the Fig. 2
//	    popularity and category analysis
//	hotc-trace parse <Dockerfile path>
//	    parse a Dockerfile and print its analysed fields
//	hotc-trace key [docker-run-style args...]
//	    run Parameter Analysis on a command and print the canonical
//	    pool key and the relaxed key
//	hotc-trace spans <spans.jsonl | http://host/system/trace>
//	    summarize a span log (hotc-sim -span-log, or a live gateway's
//	    /system/trace endpoint) into the per-phase latency breakdown
//	    table
//	hotc-trace metrics <exposition.txt | http://host/metrics>
//	    strictly validate a Prometheus text exposition (TYPE discipline,
//	    histogram cumulativity, exemplar placement) and print a summary;
//	    exits non-zero if the exposition is malformed
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"hotc"
	"hotc/internal/config"
	"hotc/internal/image"
	"hotc/internal/obs"
	"hotc/internal/rng"
	"hotc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "campus":
		campusCmd(os.Args[2:])
	case "pattern":
		patternCmd(os.Args[2:])
	case "corpus":
		corpusCmd(os.Args[2:])
	case "parse":
		parseCmd(os.Args[2:])
	case "key":
		keyCmd(os.Args[2:])
	case "spans":
		spansCmd(os.Args[2:])
	case "metrics":
		metricsCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hotc-trace campus|pattern|corpus|parse|key|spans|metrics [flags]")
	os.Exit(2)
}

func campusCmd(args []string) {
	fs := flag.NewFlagSet("campus", flag.ExitOnError)
	minutes := fs.Int("minutes", 1440, "trace length in minutes")
	scale := fs.Float64("scale", 1, "downscale factor")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "export the schedule as CSV to this path")
	fs.Parse(args)

	reqs := trace.Campus{Seed: *seed, Scale: *scale, Minutes: *minutes}.Generate()
	if *out != "" {
		exportCSV(*out, reqs)
	}
	counts := trace.CountPerRound(reqs)
	fmt.Printf("%-8s %-10s %-10s\n", "minute", "envelope", "generated")
	for m := 0; m < *minutes; m += 10 {
		gen := 0.0
		if m < len(counts) {
			gen = counts[m]
		}
		fmt.Printf("T%-7d %-10.1f %-10.0f\n", m, trace.CampusEnvelope(m) / *scale, gen)
	}
	fmt.Printf("\ntotal requests: %d over %d minutes\n", len(reqs), *minutes)
}

func patternCmd(args []string) {
	fs := flag.NewFlagSet("pattern", flag.ExitOnError)
	kind := fs.String("kind", "serial", "serial|parallel|linear|linear-dec|exp|exp-dec|burst|poisson")
	rounds := fs.Int("rounds", 10, "rounds")
	threads := fs.Int("threads", 10, "threads (parallel)")
	interval := fs.Duration("interval", 30*time.Second, "round interval")
	rate := fs.Float64("rate", 1, "requests/sec (poisson)")
	out := fs.String("o", "", "export the schedule as CSV to this path")
	fs.Parse(args)

	var p trace.Pattern
	switch *kind {
	case "serial":
		p = trace.Serial{Interval: *interval, Count: *rounds}
	case "parallel":
		p = trace.Parallel{Threads: *threads, Interval: *interval, Rounds: *rounds}
	case "linear":
		p = trace.Linear{Start: 2, Step: 2, Rounds: *rounds, Interval: *interval}
	case "linear-dec":
		p = trace.Linear{Start: 2 * *rounds, Step: -2, Rounds: *rounds, Interval: *interval}
	case "exp":
		p = trace.Exponential{Rounds: *rounds, Interval: *interval}
	case "exp-dec":
		p = trace.Exponential{Rounds: *rounds, Interval: *interval, Decreasing: true}
	case "burst":
		p = trace.Burst{Base: 8, Factor: 10, BurstRounds: []int{4, 8, 12, 16}, Rounds: *rounds, Interval: *interval}
	case "poisson":
		p = trace.Poisson{Seed: 1, RatePerSec: *rate, Length: time.Duration(*rounds) * *interval}
	default:
		fmt.Fprintf(os.Stderr, "hotc-trace: unknown pattern %q\n", *kind)
		os.Exit(2)
	}
	reqs := p.Generate()
	if *out != "" {
		exportCSV(*out, reqs)
	}
	st := trace.Stats(reqs)
	fmt.Printf("pattern: %s, %d requests over %v (%.2f/s mean, peak %d/round, %d classes)\n\n",
		p.Name(), st.Requests, st.Span, st.MeanRatePerSec, st.PeakPerRound, st.Classes)
	fmt.Printf("%-7s %-9s\n", "round", "requests")
	for round, n := range trace.CountPerRound(reqs) {
		fmt.Printf("%-7d %-9.0f\n", round+1, n)
	}
}

func exportCSV(path string, reqs []trace.Request) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, reqs); err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d requests to %s\n", len(reqs), path)
}

func corpusCmd(args []string) {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	projects := fs.Int("projects", 3000, "projects to synthesise")
	seed := fs.Int64("seed", 2021, "random seed")
	fs.Parse(args)

	c, err := image.GenerateCorpus(rng.New(*seed), *projects)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	pop := c.Popularity(c.All())
	fmt.Printf("%-14s %-8s %-8s\n", "base image", "count", "share")
	for i, s := range pop.Shares {
		if i >= 15 {
			break
		}
		fmt.Printf("%-14s %-8d %.1f%%\n", s.Base, s.Count, 100*s.Share)
	}
	cats := c.Categories(c.All())
	fmt.Printf("\ncategories: os=%.1f%% language=%.1f%% application=%.1f%%\n",
		100*cats.OS, 100*cats.Language, 100*cats.Application)
	fmt.Printf("top-10 share: %.1f%% (all), top-5: %.1f%%\n", 100*pop.Top10Share, 100*pop.Top5Share)
}

func parseCmd(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: hotc-trace parse <Dockerfile>")
		os.Exit(2)
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	df, err := image.ParseDockerfile(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("base image:  %s (repository %s)\n", df.BaseImage, df.BaseName())
	fmt.Printf("final image: %s, stages: %d\n", df.FinalImage, df.Stages)
	fmt.Printf("instructions: %d, env: %d, labels: %d\n", len(df.Instructions), len(df.Env), len(df.Labels))
	if len(df.ExposedPorts) > 0 {
		fmt.Printf("exposed ports: %v\n", df.ExposedPorts)
	}
	if len(df.Volumes) > 0 {
		fmt.Printf("volumes: %v\n", df.Volumes)
	}
}

func spansCmd(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: hotc-trace spans <spans.jsonl | http://host/system/trace>")
		os.Exit(2)
	}
	src := args[0]
	if isURL(src) && !strings.Contains(src, "format=") {
		// /system/trace serves JSON by default; ask for the JSONL stream.
		sep := "?"
		if strings.Contains(src, "?") {
			sep = "&"
		}
		src += sep + "format=jsonl"
	}
	r, err := openSource(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	defer r.Close()
	spans, err := obs.ReadSpans(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	fmt.Print(obs.Summarize(spans).Render())
}

func metricsCmd(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: hotc-trace metrics <exposition.txt | http://host/metrics>")
		os.Exit(2)
	}
	r, err := openSource(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	defer r.Close()
	st, err := obs.ParseExposition(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace: malformed exposition:", err)
		os.Exit(1)
	}
	fmt.Printf("exposition OK: %d families, %d samples, %d exemplars\n",
		st.Families, st.Samples, st.Exemplars)
	names := append([]string(nil), st.Names...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Println("  " + n)
	}
}

func isURL(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://")
}

// openSource opens a local file, or fetches an http(s) URL and returns
// its body. Non-2xx responses are errors.
func openSource(src string) (io.ReadCloser, error) {
	if !isURL(src) {
		return os.Open(src)
	}
	resp, err := http.Get(src)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
	}
	return resp.Body, nil
}

func keyCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: hotc-trace key [docker-run flags] IMAGE [CMD...]")
		os.Exit(2)
	}
	rt, err := hotc.ParseCommand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("canonical key: %s\n", rt.Key())
	fmt.Printf("relaxed key:   %s\n", config.Runtime(rt).Relaxed())
}
