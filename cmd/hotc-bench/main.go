// Command hotc-bench regenerates every figure of the HotC paper's
// evaluation on the simulation substrate and prints the results as
// text tables, together with notes comparing the measured shapes
// against the numbers the paper reports.
//
// Usage:
//
//	hotc-bench            # run everything
//	hotc-bench -only fig08,fig10
//	hotc-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hotc/internal/bench"
	"hotc/internal/obs"
)

var experiments = map[string]func() *bench.Report{
	"fig01":       func() *bench.Report { return bench.Fig01(6) },
	"fig02":       func() *bench.Report { return bench.Fig02(3000) },
	"fig04":       bench.Fig04,
	"fig05":       bench.Fig05,
	"fig08":       bench.Fig08,
	"fig09":       func() *bench.Report { return bench.Fig09(40) },
	"fig10":       bench.Fig10,
	"fig11":       bench.Fig11,
	"fig12":       bench.Fig12,
	"fig13":       bench.Fig13,
	"fig14":       bench.Fig14,
	"fig15":       bench.Fig15,
	"ablations":   bench.Ablations,
	"chaos":       bench.Chaos,
	"shootout":    bench.PolicyShootout,
	"relatedwork": bench.RelatedWork,
	"cluster":     bench.ClusterStudy,
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	metricsDump := flag.String("metrics-dump", "", "write the accumulated metrics registry to this JSONL file")
	spanLog := flag.String("span-log", "", "write per-request spans across all experiments to this JSONL file")
	flag.Parse()

	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if *metricsDump != "" || *spanLog != "" {
		reg = obs.New()
		if *spanLog != "" {
			tracer = &obs.Tracer{}
		}
		bench.EnableObservability(reg, tracer)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "hotc-bench:", err)
			os.Exit(1)
		}
	}

	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	selected := ids
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "hotc-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	for _, id := range selected {
		rep := experiments[id]()
		fmt.Println(rep.String())
		if *csvDir != "" {
			paths, err := rep.WriteCSV(*csvDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hotc-bench:", err)
				os.Exit(1)
			}
			for _, p := range paths {
				fmt.Fprintf(os.Stderr, "wrote %s\n", p)
			}
		}
	}

	if *metricsDump != "" {
		dump(*metricsDump, func(f *os.File) error { return reg.WriteJSONL(f) })
		fmt.Fprintf(os.Stderr, "metrics dumped to %s\n", *metricsDump)
	}
	if *spanLog != "" {
		dump(*spanLog, func(f *os.File) error { return obs.WriteSpans(f, tracer.Spans()) })
		fmt.Fprintf(os.Stderr, "%d spans written to %s\n", tracer.Len(), *spanLog)
	}
}

// dump creates path and runs the writer against it, dying on error.
func dump(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-bench:", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "hotc-bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hotc-bench:", err)
		os.Exit(1)
	}
}
