// Command hotc-router runs the HotC multi-node front tier: an HTTP
// router that places function invocations across a fleet of hotcd
// nodes by consistent hashing on the function key, biased towards
// nodes advertising warm instances so requests keep landing where
// their runtimes are already alive.
//
// Usage:
//
//	hotcd -addr 127.0.0.1:8081 &
//	hotcd -addr 127.0.0.1:8082 &
//	hotc-router -addr 127.0.0.1:8080 -nodes 127.0.0.1:8081,127.0.0.1:8082
//
// Then drive it exactly like a single hotcd:
//
//	curl -XPOST localhost:8080/system/functions \
//	     -d '{"name":"up","handler":"upper","coldStartMs":400}'   # fans out to every node
//	curl -XPOST localhost:8080/function/up -d 'hello'             # routed placement
//	curl localhost:8080/system/nodes                              # membership + health + warmth
//
// Membership is dynamic: POST /system/nodes {"url":"..."} joins a
// node (replaying routed deployments to it), DELETE /system/nodes?url=
// leaves, POST /system/drain?url= drains a node losslessly before
// maintenance. The X-Hotc-Node response header names the node that
// served each request; X-Hotc-Router-Attempts counts placements tried.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hotc/internal/router"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		nodes     = flag.String("nodes", "", "comma-separated hotcd base URLs (e.g. 127.0.0.1:8081,127.0.0.1:8082)")
		policy    = flag.String("policy", "warm", "placement policy: warm (warm-affinity over a consistent-hash ring) or rr (round-robin baseline)")
		vnodes    = flag.Int("vnodes", router.DefaultVNodes, "virtual nodes per member on the hash ring")
		poll      = flag.Duration("poll-interval", 500*time.Millisecond, "stats-poll/health-probe period")
		misses    = flag.Int("probe-failures", 3, "consecutive missed probes before a node is unhealthy")
		attempts  = flag.Int("max-attempts", 3, "placement attempts per request: first choice plus spills")
		spillBody = flag.Int64("spill-max-body", 1<<20, "largest body buffered for replay on spill; larger bodies stream to the first candidate only")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "hotc-router: -nodes requires at least one hotcd URL")
		os.Exit(2)
	}

	rt, err := router.New(router.Config{
		Nodes:         urls,
		Policy:        router.Policy(*policy),
		VNodes:        *vnodes,
		PollInterval:  *poll,
		ProbeFailures: *misses,
		MaxAttempts:   *attempts,
		SpillMaxBody:  *spillBody,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-router:", err)
		os.Exit(2)
	}
	base, err := rt.StartOn(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotc-router:", err)
		os.Exit(1)
	}
	defer rt.Stop()

	fmt.Printf("hotc-router listening on %s\n", base)
	fmt.Printf("policy: %s (vnodes=%d max-attempts=%d)\n", *policy, *vnodes, *attempts)
	fmt.Printf("members: %d (poll=%v unhealthy after %d misses)\n", len(urls), *poll, *misses)
	for _, st := range rt.Nodes() {
		state := "healthy"
		if !st.Healthy {
			state = "unreachable"
		}
		fmt.Printf("  %s (%s, %d warm)\n", st.URL, state, st.WarmTotal)
	}
	fmt.Println("invoke: POST /function/<name>; deploy fan-out: POST /system/functions")
	fmt.Println("membership: GET/POST/DELETE /system/nodes; drain: POST/DELETE /system/drain?url=")
	fmt.Println("metrics: GET /metrics (hotc_router_*)")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nhotc-router: shutting down")
}
