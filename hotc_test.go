package hotc

import (
	"testing"
	"time"
)

func mustQR(t *testing.T) App {
	t.Helper()
	app, err := AppQR("python")
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func newSim(t *testing.T, cfg Config) *Simulation {
	t.Helper()
	if cfg.LocalImages == false {
		cfg.LocalImages = true
	}
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestQuickstartFlow(t *testing.T) {
	sim := newSim(t, Config{Policy: PolicyHotC})
	if err := sim.Deploy(FunctionSpec{
		Name:    "qr",
		Runtime: Runtime{Image: "python:3.8"},
		App:     mustQR(t),
	}); err != nil {
		t.Fatal(err)
	}
	results, err := sim.Replay(SerialWorkload(30*time.Second, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(results)
	if st.Requests != 10 || st.ColdStarts != 1 || st.Reused != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanMS <= 0 || st.P99MS < st.MeanMS || st.MaxMS < st.P99MS {
		t.Fatalf("latency stats inconsistent: %+v", st)
	}
}

func TestAllPoliciesConstructible(t *testing.T) {
	for _, p := range []Policy{PolicyHotC, PolicyCold, PolicyKeepAlive, PolicyWarmup, PolicyHistogram} {
		sim := newSim(t, Config{Policy: p})
		if err := sim.Deploy(FunctionSpec{Name: "qr", Runtime: Runtime{Image: "python:3.8"}, App: mustQR(t)}); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		results, err := sim.Replay(SerialWorkload(time.Minute, 3), nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if Summarize(results).Requests != 3 {
			t.Fatalf("%s: lost requests", p)
		}
		if sim.PolicyName() == "" {
			t.Fatalf("%s: empty policy name", p)
		}
	}
}

func TestBothProfiles(t *testing.T) {
	server := newSim(t, Config{Profile: ProfileServer, Policy: PolicyCold})
	pi := newSim(t, Config{Profile: ProfileEdgePi, Policy: PolicyCold})
	for _, s := range []*Simulation{server, pi} {
		if err := s.Deploy(FunctionSpec{Name: "qr", Runtime: Runtime{Image: "python:3.8"}, App: mustQR(t)}); err != nil {
			t.Fatal(err)
		}
	}
	rs, _ := server.Replay(SerialWorkload(time.Minute, 2), nil)
	rp, _ := pi.Replay(SerialWorkload(time.Minute, 2), nil)
	if rp[0].Latency <= rs[0].Latency {
		t.Fatal("the Pi should be slower than the server")
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := NewSimulation(Config{Profile: "mainframe"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := NewSimulation(Config{Policy: "magic"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestReplayWithoutDeployFails(t *testing.T) {
	sim := newSim(t, Config{Policy: PolicyCold})
	if _, err := sim.Replay(SerialWorkload(time.Second, 1), nil); err == nil {
		t.Fatal("replay with no functions should fail")
	}
}

func TestParseCommandFacade(t *testing.T) {
	rt, err := ParseCommand([]string{"--net", "host", "python:3.8", "app.py"})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Key() == "" {
		t.Fatal("empty key")
	}
	rt2, err := ParseConfigFile([]byte(`{"image":"python:3.8","network":"host","cmd":["app.py"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Key() != rt2.Key() {
		t.Fatal("command and config file forms should agree")
	}
}

func TestPredictorFacade(t *testing.T) {
	for _, p := range []Predictor{NewPredictor(), NewExponentialSmoothing(0.8), NewMarkovChain(4)} {
		for i := 0; i < 10; i++ {
			p.Observe(float64(i))
		}
		if v := p.Predict(); v < 0 {
			t.Fatalf("%s predicted %v", p.Name(), v)
		}
	}
}

func TestAppConstructors(t *testing.T) {
	if _, err := AppQR("cobol"); err == nil {
		t.Fatal("unknown language accepted")
	}
	if _, err := AppRandomNumber("go"); err != nil {
		t.Fatal(err)
	}
	for _, app := range []App{AppV3(), AppTFAPI(), AppCassandra()} {
		if app.Name == "" {
			t.Fatal("unnamed app")
		}
	}
}

func TestAdvanceTimeAndMonitoring(t *testing.T) {
	sim := newSim(t, Config{Policy: PolicyKeepAlive, KeepAliveWindow: time.Minute})
	if err := sim.Deploy(FunctionSpec{Name: "qr", Runtime: Runtime{Image: "python:3.8"}, App: mustQR(t)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Replay(SerialWorkload(time.Second, 1), nil); err != nil {
		t.Fatal(err)
	}
	if sim.LiveContainers() != 1 {
		t.Fatalf("live = %d", sim.LiveContainers())
	}
	before := sim.Now()
	sim.AdvanceTime(2 * time.Minute) // keep-alive lapses
	if sim.Now() <= before {
		t.Fatal("time did not advance")
	}
	if sim.LiveContainers() != 0 {
		t.Fatal("keep-alive expiry did not run during AdvanceTime")
	}
	if sim.HostCPUPct() <= 0 || sim.HostMemMB() <= 0 {
		t.Fatal("host monitoring broken")
	}
}

func TestCampusWorkloadFacade(t *testing.T) {
	w := CampusWorkload(1, 20, 60, 2)
	if len(w) == 0 {
		t.Fatal("empty campus workload")
	}
}

func TestBurstAndLinearWorkloads(t *testing.T) {
	if n := len(BurstWorkload(8, 10, []int{2}, 4, time.Second)); n != 8*3+80 {
		t.Fatalf("burst workload size = %d", n)
	}
	if n := len(LinearWorkload(2, 2, 3, time.Second)); n != 2+4+6 {
		t.Fatalf("linear workload size = %d", n)
	}
	if n := len(ParallelWorkload(3, 2, time.Second)); n != 6 {
		t.Fatalf("parallel workload size = %d", n)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st.Requests != 0 || st.MeanMS != 0 {
		t.Fatalf("empty summary = %+v", st)
	}
}
