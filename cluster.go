package hotc

import (
	"fmt"
	"time"

	"hotc/internal/cluster"
	"hotc/internal/core"
	"hotc/internal/costmodel"
	"hotc/internal/trace"
)

// Routing selects the multi-host placement policy.
type Routing string

// The available routing policies for ClusterSimulation.
const (
	// RoutingRoundRobin cycles through nodes.
	RoutingRoundRobin Routing = "round-robin"
	// RoutingLeastLoaded picks the node with the fewest in-flight
	// requests.
	RoutingLeastLoaded Routing = "least-loaded"
	// RoutingReuseAffinity prefers nodes holding warm runtimes for the
	// request's configuration (via the replicated pool directory),
	// balancing by load otherwise — the paper's §VII direction.
	RoutingReuseAffinity Routing = "reuse-affinity"
)

// ClusterConfig configures a multi-host simulation.
type ClusterConfig struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Profile is the per-node hardware profile (default ProfileServer).
	Profile Profile
	// Routing is the placement policy (default RoutingReuseAffinity).
	Routing Routing
	// Seed drives latency jitter (0 = noiseless).
	Seed int64
	// ControlInterval is each node's HotC control-loop period.
	ControlInterval time.Duration
	// LocalImages pre-pulls the catalog on every node.
	LocalImages bool
}

// ClusterSimulation is a multi-host HotC deployment: every node runs a
// full single-host stack, and a router places requests across them.
type ClusterSimulation struct {
	c *cluster.Cluster
}

// NewClusterSimulation wires a cluster from the config.
func NewClusterSimulation(cfg ClusterConfig) (*ClusterSimulation, error) {
	var prof costmodel.Profile
	switch cfg.Profile {
	case "", ProfileServer:
		prof = costmodel.Server()
	case ProfileEdgePi:
		prof = costmodel.EdgePi()
	default:
		return nil, fmt.Errorf("hotc: unknown profile %q", cfg.Profile)
	}
	var routing cluster.Routing
	switch cfg.Routing {
	case "", RoutingReuseAffinity:
		routing = cluster.ReuseAffinity
	case RoutingRoundRobin:
		routing = cluster.RoundRobin
	case RoutingLeastLoaded:
		routing = cluster.LeastLoaded
	default:
		return nil, fmt.Errorf("hotc: unknown routing %q", cfg.Routing)
	}
	c := cluster.New(cluster.Options{
		Nodes:   cfg.Nodes,
		Profile: prof,
		Routing: routing,
		Seed:    cfg.Seed,
		PrePull: cfg.LocalImages,
		Core:    core.Options{Interval: cfg.ControlInterval},
	})
	return &ClusterSimulation{c: c}, nil
}

// Deploy registers the function on every node.
func (cs *ClusterSimulation) Deploy(fn FunctionSpec) error {
	return cs.c.Deploy(fn.Name, fn.Runtime, fn.App)
}

// ClusterRequestResult is the outcome of one routed request.
type ClusterRequestResult struct {
	// Function that served the request and the Node it ran on.
	Function string
	Node     string
	// Latency is the end-to-end latency.
	Latency time.Duration
	// Reused reports warm-runtime reuse.
	Reused bool
	// Round is the trace round.
	Round int
	// Err is non-nil on failure.
	Err error
}

// Replay routes the workload across the cluster. classFn maps request
// classes to function names (nil = first deployed function).
func (cs *ClusterSimulation) Replay(w Workload, classFn func(class int) string) ([]ClusterRequestResult, error) {
	if classFn == nil {
		name := ""
		for _, n := range cs.c.Nodes() {
			fns := n.Gateway.Functions()
			if len(fns) > 0 {
				name = fns[0]
			}
			break
		}
		if name == "" {
			return nil, fmt.Errorf("hotc: no functions deployed")
		}
		classFn = func(int) string { return name }
	}
	raw, err := cs.c.Run([]trace.Request(w), classFn)
	if err != nil {
		return nil, err
	}
	out := make([]ClusterRequestResult, len(raw))
	for i, r := range raw {
		out[i] = ClusterRequestResult{
			Function: r.Function,
			Node:     r.Node,
			Latency:  r.Timestamps.Total(),
			Reused:   r.Reused,
			Round:    r.Request.Round,
			Err:      r.Err,
		}
	}
	return out, nil
}

// FailNode takes node i out of rotation; RecoverNode brings it back.
func (cs *ClusterSimulation) FailNode(i int) bool { return cs.c.FailNode(i) }

// RecoverNode returns a failed node to rotation.
func (cs *ClusterSimulation) RecoverNode(i int) bool { return cs.c.RecoverNode(i) }

// NodeNames returns the node identifiers.
func (cs *ClusterSimulation) NodeNames() []string {
	names := make([]string, 0, len(cs.c.Nodes()))
	for _, n := range cs.c.Nodes() {
		names = append(names, n.Name)
	}
	return names
}

// ServedByNode reports requests completed per node.
func (cs *ClusterSimulation) ServedByNode() map[string]int {
	out := make(map[string]int)
	for _, n := range cs.c.Nodes() {
		out[n.Name] = n.Served()
	}
	return out
}

// LoadImbalance reports (max-min)/mean of per-node served counts.
func (cs *ClusterSimulation) LoadImbalance() float64 { return cs.c.LoadImbalance() }

// Close stops every node's background machinery.
func (cs *ClusterSimulation) Close() { cs.c.Close() }

// SummarizeCluster aggregates routed results.
func SummarizeCluster(results []ClusterRequestResult) Stats {
	plain := make([]RequestResult, len(results))
	for i, r := range results {
		plain[i] = RequestResult{
			Function: r.Function,
			Latency:  r.Latency,
			Reused:   r.Reused,
			Round:    r.Round,
			Err:      r.Err,
		}
	}
	return Summarize(plain)
}
