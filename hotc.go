// Package hotc is the public API of the HotC reproduction: a
// container-based runtime management framework that mitigates
// serverless cold start by reusing live container runtimes, with
// adaptive pool control combining exponential smoothing and a Markov
// chain (Suo et al., "Tackling Cold Start of Serverless Applications
// by Efficient and Adaptive Container Runtime Reusing", IEEE CLUSTER
// 2021).
//
// The package exposes three layers:
//
//   - Parameter analysis: ParseCommand / ParseConfigFile turn a docker
//     run-style command or a JSON file into a canonical runtime Key
//     (§IV.B of the paper).
//   - Prediction: NewPredictor returns the combined ES+Markov demand
//     forecaster of §IV.C; NewExponentialSmoothing and NewMarkovChain
//     expose its parts for ablation.
//   - Simulation: NewSimulation wires the full serverless substrate —
//     container engine, image registry, OpenFaaS-style gateway, HotC
//     middleware or a baseline policy — over a deterministic virtual
//     clock, so workloads replay reproducibly on server or edge
//     hardware profiles.
package hotc

import (
	"fmt"
	"io"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/core"
	"hotc/internal/costmodel"
	"hotc/internal/faas"
	"hotc/internal/faults"
	"hotc/internal/host"
	"hotc/internal/image"
	"hotc/internal/metrics"
	"hotc/internal/obs"
	"hotc/internal/policy"
	"hotc/internal/pool"
	"hotc/internal/predictor"
	"hotc/internal/rng"
	"hotc/internal/simclock"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// Runtime is a container runtime configuration: the unit of identity
// for reuse decisions.
type Runtime = config.Runtime

// Key is the canonical formatted runtime configuration used to index
// the live container pool.
type Key = config.Key

// ParseCommand parses a docker-run-style argument vector into a
// Runtime (the paper's Parameter Analysis step).
func ParseCommand(args []string) (Runtime, error) { return config.ParseCommand(args) }

// ParseConfigFile parses a JSON runtime configuration file.
func ParseConfigFile(data []byte) (Runtime, error) { return config.ParseFile(data) }

// Predictor forecasts next-interval container demand from per-interval
// observations.
type Predictor = predictor.Predictor

// NewPredictor returns HotC's combined ES+Markov predictor with the
// paper's parameters (α = 0.8, initial value = mean of the first five
// observations, Markov correction over error region states).
func NewPredictor() Predictor { return predictor.Default() }

// NewExponentialSmoothing returns the Eq. 1 predictor alone.
func NewExponentialSmoothing(alpha float64) Predictor { return predictor.NewES(alpha) }

// NewMarkovChain returns the Eq. 2 region-state predictor alone, with
// n region states.
func NewMarkovChain(n int) Predictor { return predictor.NewMarkov(n) }

// Profile selects the simulated hardware.
type Profile string

// The hardware profiles from the paper's testbed (§V.A).
const (
	// ProfileServer is the Dell PowerEdge T430 (20 cores, 64 GB).
	ProfileServer Profile = "server"
	// ProfileEdgePi is the Raspberry Pi 3 (4 cores, 1 GB).
	ProfileEdgePi Profile = "edge-pi"
)

// Policy selects the runtime management strategy.
type Policy string

// The available strategies: HotC plus the industry baselines of §III.B.
const (
	// PolicyHotC is the paper's contribution: pooled reuse with
	// adaptive ES+Markov control.
	PolicyHotC Policy = "hotc"
	// PolicyCold is the default serverless behaviour: a fresh
	// container per request.
	PolicyCold Policy = "cold"
	// PolicyKeepAlive retains containers for a fixed window after use
	// (AWS-style).
	PolicyKeepAlive Policy = "keepalive"
	// PolicyWarmup adds periodic warm-up pings (Azure Logic-style).
	PolicyWarmup Policy = "warmup"
	// PolicyHistogram adapts the keep-alive window per runtime type
	// from observed inter-arrival times.
	PolicyHistogram Policy = "histogram"
)

// Config configures a Simulation.
type Config struct {
	// Profile is the hardware profile (default ProfileServer).
	Profile Profile
	// Policy is the runtime management strategy (default PolicyHotC).
	Policy Policy
	// Seed drives latency jitter; 0 means a noiseless simulation.
	Seed int64
	// KeepAliveWindow tunes PolicyKeepAlive/PolicyWarmup (default 15m).
	KeepAliveWindow time.Duration
	// ControlInterval is HotC's control-loop period (default 10s).
	ControlInterval time.Duration
	// MaxLiveContainers caps the pool (default 500, the paper's value).
	MaxLiveContainers int
	// MemoryThresholdPct is the eviction threshold (default 80).
	MemoryThresholdPct float64
	// EnableRelaxedMatching turns on §VII fuzzy-key reuse.
	EnableRelaxedMatching bool
	// EnableSharing turns on Pagurus-style inter-function sharing: on a
	// pool miss, an idle container of another runtime key is wiped and
	// re-keyed as a zygote for the requested spec instead of paying a
	// full cold start.
	EnableSharing bool
	// ShareIdleGrace keeps containers off the lending market until they
	// have sat idle this long, so renters only take genuine surplus and
	// never steal a busy function's working set (zero = no grace).
	ShareIdleGrace time.Duration
	// LocalImages pre-pulls the catalog into the layer cache, matching
	// the paper's locally-stored images (default true behaviour is
	// opt-in via this flag).
	LocalImages bool
	// Faults, when non-nil, attaches a deterministic fault injector to
	// the engine: failed creates, exec crashes, silent container
	// corruption and slow starts, at per-runtime-key rates with burst
	// windows. See FaultsConfig.
	Faults *FaultsConfig
	// Resilience, when non-nil, arms the gateway's full resilience
	// machinery (exponential-backoff retries, exec fallback, per-key
	// circuit breaking). Nil keeps the seed behaviour: one linear
	// retry, no breaker. Use DefaultResilience for sane chaos defaults.
	Resilience *ResilienceConfig
	// RecordSpans attaches a span tracer to the gateway: every request
	// is recorded as a structured span over the §III.A timestamps,
	// retrievable via Simulation.Spans. Off by default (spans cost
	// memory proportional to the workload).
	RecordSpans bool
}

// FaultsConfig specifies injected faults; it is JSON-serialisable and
// embeddable in scenario files.
type FaultsConfig = faults.Config

// FaultRule sets fault rates for the runtime keys it matches.
type FaultRule = faults.Rule

// FaultBurst is a virtual-time window multiplying a rule's rates.
type FaultBurst = faults.Burst

// FaultStats counts injected faults per kind.
type FaultStats = faults.Stats

// ResilienceConfig tunes how the gateway absorbs faults.
type ResilienceConfig struct {
	// MaxAcquireRetries bounds retries of a failed runtime acquisition.
	MaxAcquireRetries int
	// RetryBackoff is the delay before the first retry and the base of
	// the exponential schedule.
	RetryBackoff time.Duration
	// BackoffFactor grows the delay per attempt.
	BackoffFactor float64
	// BackoffMax caps the retry delay.
	BackoffMax time.Duration
	// BackoffJitter spreads delays by the given fraction (seeded from
	// Config.Seed) to avoid retry lockstep.
	BackoffJitter float64
	// ExecRetries bounds transparent fallbacks after a failed
	// execution: the suspect container is quarantined and a fresh one
	// acquired.
	ExecRetries int
	// BreakerThreshold trips a per-runtime-key circuit breaker after
	// this many consecutive acquire failures; while open, requests
	// degrade to dedicated cold starts instead of erroring. 0 disables.
	BreakerThreshold int
	// BreakerOpenFor is the open window before a half-open probe.
	BreakerOpenFor time.Duration
}

// DefaultResilience is the recommended chaos-ready tuning: four
// acquire retries from 50ms doubling to 2s with 20% jitter, two exec
// fallbacks, and a breaker tripping after five consecutive failures
// with a 30s open window.
func DefaultResilience() ResilienceConfig {
	return ResilienceConfig{
		MaxAcquireRetries: 4,
		RetryBackoff:      50 * time.Millisecond,
		BackoffFactor:     2,
		BackoffMax:        2 * time.Second,
		BackoffJitter:     0.2,
		ExecRetries:       2,
		BreakerThreshold:  5,
		BreakerOpenFor:    30 * time.Second,
	}
}

// FunctionSpec describes a function to deploy.
type FunctionSpec struct {
	// Name is the gateway-visible function name.
	Name string
	// Runtime is the container configuration it executes in.
	Runtime Runtime
	// App is the workload model; use one of the App constructors.
	App App
	// MaxConcurrency caps simultaneous executions; excess requests
	// queue FIFO at the gateway (0 = unlimited).
	MaxConcurrency int
}

// App models a serverless application's cost profile.
type App = workload.App

// The paper's evaluation applications.
var (
	// AppV3 is the Python inception-v3 image recognition app (Fig. 8).
	AppV3 = workload.V3App
	// AppTFAPI is the Go TensorFlow-API image recognition app (Fig. 8).
	AppTFAPI = workload.TFAPIApp
	// AppCassandra is the heavy JVM database of Fig. 15(b).
	AppCassandra = workload.Cassandra
)

// AppQR returns the Fig. 9 URL-to-QR web function in the given
// language ("go", "python", "node", "java").
func AppQR(language string) (App, error) {
	l, err := parseLanguage(language)
	if err != nil {
		return App{}, err
	}
	return workload.QRApp(l), nil
}

// AppRandomNumber returns the trivial random-number backend of Fig. 1.
func AppRandomNumber(language string) (App, error) {
	l, err := parseLanguage(language)
	if err != nil {
		return App{}, err
	}
	return workload.RandomNumber(l), nil
}

func parseLanguage(s string) (workload.Language, error) {
	for _, l := range workload.Languages() {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("hotc: unknown language %q (want go/python/node/java)", s)
}

// RequestResult is the outcome of one replayed request.
type RequestResult struct {
	// Function that served the request.
	Function string
	// Latency is the end-to-end client-observed latency.
	Latency time.Duration
	// Initiation is the cold-start component (watchdog-in to
	// function-start).
	Initiation time.Duration
	// Reused reports whether a live container runtime was reused.
	Reused bool
	// Round is the trace round the request belonged to.
	Round int
	// Err is non-nil if the request failed.
	Err error
	// Faults counts the resilience events (acquire retries, exec
	// fallbacks, quarantines, breaker transitions, degraded cold
	// starts) the request went through; 0 for an untroubled request.
	Faults int
}

// Simulation is a deterministic serverless deployment: engine,
// gateway, policy and host monitor over a virtual clock.
type Simulation struct {
	cfg      Config
	sched    *simclock.Scheduler
	engine   *container.Engine
	registry *image.Registry
	gateway  *faas.Gateway
	hostM    *host.Host
	hotc     *core.HotC
	provider faas.Provider
	injector *faults.Injector
	obsReg   *obs.Registry
	tracer   *obs.Tracer
}

// NewSimulation wires a Simulation from the Config.
func NewSimulation(cfg Config) (*Simulation, error) {
	var prof costmodel.Profile
	switch cfg.Profile {
	case "", ProfileServer:
		prof = costmodel.Server()
	case ProfileEdgePi:
		prof = costmodel.EdgePi()
	default:
		return nil, fmt.Errorf("hotc: unknown profile %q", cfg.Profile)
	}
	sched := simclock.New()
	reg := image.StandardCatalog()
	cache := image.NewCache()
	var jit *rng.Source
	if cfg.Seed != 0 {
		jit = rng.New(cfg.Seed)
	}
	eng := container.NewEngine(sched, costmodel.New(prof), reg, cache, jit)
	if cfg.LocalImages {
		for _, ref := range reg.Refs() {
			if im, err := reg.Lookup(ref); err == nil {
				cache.Admit(im)
			}
		}
	}
	s := &Simulation{cfg: cfg, sched: sched, engine: eng, registry: reg, hostM: host.New(eng)}

	poolOpts := pool.Options{
		MaxLive:         cfg.MaxLiveContainers,
		MemThresholdPct: cfg.MemoryThresholdPct,
		MemUsedPct:      s.hostM.UsedMemPct,
		EnableRelaxed:   cfg.EnableRelaxedMatching,
		EnableSharing:   cfg.EnableSharing,
		ShareIdleGrace:  cfg.ShareIdleGrace,
	}
	if cfg.Faults != nil {
		inj, err := faults.New(*cfg.Faults, sched.Now)
		if err != nil {
			return nil, err
		}
		inj.Attach(eng)
		s.injector = inj
		// Corrupted containers are caught at the pool boundary: the
		// health check fails them on acquire and they are quarantined.
		poolOpts.HealthCheck = inj.HealthCheck
	}
	// The registry is always on: metrics are cheap (a few map lookups
	// per request) and every run can dump them for offline analysis.
	s.obsReg = obs.New()
	newPool := func() *pool.Pool {
		p := pool.New(eng, poolOpts)
		p.Instrument(s.obsReg)
		return p
	}
	switch cfg.Policy {
	case "", PolicyHotC:
		h := core.New(eng, core.Options{Pool: poolOpts, Interval: cfg.ControlInterval})
		h.Instrument(s.obsReg)
		h.Start()
		s.hotc = h
		s.provider = h
	case PolicyCold:
		s.provider = policy.NewNoReuse(eng)
	case PolicyKeepAlive:
		s.provider = policy.NewFixedKeepAlive(newPool(), cfg.KeepAliveWindow)
	case PolicyWarmup:
		s.provider = policy.NewPeriodicWarmup(newPool(), 5*time.Minute, cfg.KeepAliveWindow)
	case PolicyHistogram:
		s.provider = policy.NewHistogram(newPool())
	default:
		return nil, fmt.Errorf("hotc: unknown policy %q", cfg.Policy)
	}
	s.gateway = faas.NewGateway(eng, s.provider)
	s.gateway.Instrument(s.obsReg)
	if cfg.RecordSpans {
		s.tracer = obs.NewTracer()
		s.gateway.Trace(s.tracer)
	}
	if r := cfg.Resilience; r != nil {
		s.gateway.MaxAcquireRetries = r.MaxAcquireRetries
		if r.RetryBackoff > 0 {
			s.gateway.RetryBackoff = r.RetryBackoff
		}
		s.gateway.BackoffFactor = r.BackoffFactor
		s.gateway.BackoffMax = r.BackoffMax
		s.gateway.BackoffJitter = r.BackoffJitter
		if r.BackoffJitter > 0 {
			s.gateway.BackoffRng = rng.New(cfg.Seed).Split("gateway-backoff")
		}
		s.gateway.ExecRetries = r.ExecRetries
		s.gateway.BreakerThreshold = r.BreakerThreshold
		s.gateway.BreakerOpenFor = r.BreakerOpenFor
	}
	return s, nil
}

// Deploy registers a function with the gateway (and with HotC's
// adaptive controller when running PolicyHotC).
func (s *Simulation) Deploy(fn FunctionSpec) error {
	if err := s.gateway.Deploy(faas.Function{
		Name: fn.Name, Runtime: fn.Runtime, App: fn.App,
		MaxConcurrency: fn.MaxConcurrency,
	},
		faas.ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
			return container.ResolveSpec(rt, s.registry)
		})); err != nil {
		return err
	}
	spec, _ := s.gateway.Spec(fn.Name)
	if s.hotc != nil {
		return s.hotc.Register(spec, fn.App)
	}
	if w, ok := s.provider.(*policy.PeriodicWarmup); ok {
		w.StartPinger(spec, fn.App)
	}
	return nil
}

// Workload is a request schedule; build one with the pattern
// constructors below.
type Workload = []trace.Request

// The paper's request patterns (§V.D).
func SerialWorkload(interval time.Duration, count int) Workload {
	return trace.Serial{Interval: interval, Count: count}.Generate()
}

// ParallelWorkload emits rounds of simultaneous requests from threads
// client threads; thread i sends class-i requests.
func ParallelWorkload(threads, rounds int, interval time.Duration) Workload {
	return trace.Parallel{Threads: threads, Interval: interval, Rounds: rounds}.Generate()
}

// LinearWorkload ramps the per-round request count by step.
func LinearWorkload(start, step, rounds int, interval time.Duration) Workload {
	return trace.Linear{Start: start, Step: step, Rounds: rounds, Interval: interval}.Generate()
}

// ReadWorkloadCSV parses a workload from CSV with an
// "at_ms,class,round" header, so measured traces can be replayed.
func ReadWorkloadCSV(r io.Reader) (Workload, error) { return trace.ReadCSV(r) }

// WriteWorkloadCSV writes a workload as CSV.
func WriteWorkloadCSV(w io.Writer, workload Workload) error { return trace.WriteCSV(w, workload) }

// ExponentialWorkload emits 2^i requests at round i (reversed when
// decreasing).
func ExponentialWorkload(rounds int, interval time.Duration, decreasing bool) Workload {
	return trace.Exponential{Rounds: rounds, Interval: interval, Decreasing: decreasing}.Generate()
}

// BurstWorkload sends base requests per round with factor-times bursts
// at the given rounds.
func BurstWorkload(base, factor int, burstRounds []int, rounds int, interval time.Duration) Workload {
	return trace.Burst{Base: base, Factor: factor, BurstRounds: burstRounds, Rounds: rounds, Interval: interval}.Generate()
}

// CampusWorkload synthesises the Fig. 11 diurnal YouTube trace, scaled
// down by scale, for the given number of minutes.
func CampusWorkload(seed int64, scale float64, minutes, classes int) Workload {
	return trace.Campus{Seed: seed, Scale: scale, Minutes: minutes, Classes: classes}.Generate()
}

// Replay runs the workload against the deployment. classFn maps a
// request class to a deployed function name; pass nil when a single
// function serves everything (the first deployed name is used).
func (s *Simulation) Replay(w Workload, classFn func(class int) string) ([]RequestResult, error) {
	if classFn == nil {
		names := s.gateway.Functions()
		if len(names) == 0 {
			return nil, fmt.Errorf("hotc: no functions deployed")
		}
		classFn = func(int) string { return names[0] }
	}
	raw, err := faas.Run(s.gateway, w, classFn)
	if err != nil {
		return nil, err
	}
	out := make([]RequestResult, len(raw))
	for i, r := range raw {
		out[i] = RequestResult{
			Function:   r.Function,
			Latency:    r.Timestamps.Total(),
			Initiation: r.Timestamps.Initiation(),
			Reused:     r.Reused,
			Round:      r.Request.Round,
			Err:        r.Err,
			Faults:     len(r.Faults),
		}
	}
	return out, nil
}

// ChainResult is the outcome of one request through a function chain
// (the paper's Fig. 3a image-processing pipeline scenario).
type ChainResult struct {
	// Latency is the end-to-end latency across all stages.
	Latency time.Duration
	// ColdStages counts stages that did not reuse a runtime.
	ColdStages int
	// Stages is the number of completed stages.
	Stages int
	// Round is the trace round.
	Round int
	// Err is the first stage failure, if any.
	Err error
}

// ReplayChain runs the workload where every request traverses the
// named functions in order, each stage's output triggering the next.
func (s *Simulation) ReplayChain(w Workload, stages []string) ([]ChainResult, error) {
	raw, err := faas.RunChain(s.gateway, w, stages)
	if err != nil {
		return nil, err
	}
	out := make([]ChainResult, len(raw))
	for i, cr := range raw {
		out[i] = ChainResult{
			Latency:    cr.Total(),
			ColdStages: cr.ColdStages(),
			Stages:     len(cr.Stages),
			Round:      cr.Request.Round,
			Err:        cr.Err,
		}
	}
	return out, nil
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.sched.Now() }

// AdvanceTime runs the simulation forward by d with no new requests
// (background control loops keep running).
func (s *Simulation) AdvanceTime(d time.Duration) { s.sched.Sleep(d) }

// LiveContainers reports the number of live containers.
func (s *Simulation) LiveContainers() int { return s.engine.Live() }

// HostCPUPct and HostMemMB report current host resource usage.
func (s *Simulation) HostCPUPct() float64 { return s.hostM.UsedCPUPct() }

// HostMemMB reports current host memory usage in MB.
func (s *Simulation) HostMemMB() float64 { return s.hostM.UsedMemMB() }

// PolicyName reports the active policy's display name.
func (s *Simulation) PolicyName() string { return s.provider.Name() }

// FaultStats reports the injected-fault counters; zero when the
// simulation runs without a fault config.
func (s *Simulation) FaultStats() FaultStats {
	if s.injector == nil {
		return FaultStats{}
	}
	return s.injector.Stats()
}

// Metrics exposes the simulation's metrics registry: request
// latency/queue/acquire histograms, pool occupancy gauges, controller
// series. Dump it with WritePrometheus or WriteJSONL.
func (s *Simulation) Metrics() *obs.Registry { return s.obsReg }

// Spans returns the recorded request spans (empty unless
// Config.RecordSpans was set).
func (s *Simulation) Spans() []obs.Span {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Spans()
}

// ResilienceCounters snapshots the gateway's resilience accounting:
// acquire retries, exec fallbacks, quarantines, breaker trips/closes,
// degraded requests and failed requests, keyed by counter name.
func (s *Simulation) ResilienceCounters() map[string]int {
	return s.gateway.ResilienceCounters().Snapshot()
}

// Close stops background machinery (HotC's control loop, warm-up
// pingers).
func (s *Simulation) Close() {
	if s.hotc != nil {
		s.hotc.Stop()
	}
	if w, ok := s.provider.(*policy.PeriodicWarmup); ok {
		w.StopPingers()
	}
}

// Stats summarises a replay. Requests counts successful requests
// only; failed ones are tallied in Errors.
type Stats struct {
	Requests   int
	ColdStarts int
	Reused     int
	Errors     int
	MeanMS     float64
	P99MS      float64
	MaxMS      float64
}

// Summarize computes aggregate statistics over results.
func Summarize(results []RequestResult) Stats {
	var st Stats
	var lat metrics.Series
	for _, r := range results {
		if r.Err != nil {
			st.Errors++
			continue
		}
		st.Requests++
		if r.Reused {
			st.Reused++
		} else {
			st.ColdStarts++
		}
		lat.AddDuration(r.Latency)
	}
	if st.Requests == 0 {
		return st
	}
	st.MeanMS = lat.Mean()
	st.P99MS = lat.P99()
	st.MaxMS = lat.Max()
	return st
}
