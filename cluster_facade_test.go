package hotc_test

import (
	"testing"
	"time"

	"hotc"
)

func newTestCluster(t *testing.T, routing hotc.Routing) *hotc.ClusterSimulation {
	t.Helper()
	cs, err := hotc.NewClusterSimulation(hotc.ClusterConfig{
		Nodes:       3,
		Routing:     routing,
		LocalImages: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cs.Close)
	app, err := hotc.AppQR("python")
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Deploy(hotc.FunctionSpec{
		Name:    "svc",
		Runtime: hotc.Runtime{Image: "python:3.8"},
		App:     app,
	}); err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestClusterFacadeBasics(t *testing.T) {
	cs := newTestCluster(t, hotc.RoutingReuseAffinity)
	if len(cs.NodeNames()) != 3 {
		t.Fatalf("nodes = %v", cs.NodeNames())
	}
	results, err := cs.Replay(hotc.SerialWorkload(30*time.Second, 12), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := hotc.SummarizeCluster(results)
	if st.Requests != 12 {
		t.Fatalf("requests = %d", st.Requests)
	}
	// Affinity: everything after the first request reuses.
	if st.ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1 under affinity", st.ColdStarts)
	}
	for _, r := range results {
		if r.Node == "" {
			t.Fatal("result missing node attribution")
		}
	}
	total := 0
	for _, n := range cs.ServedByNode() {
		total += n
	}
	if total != 12 {
		t.Fatalf("served total = %d", total)
	}
}

func TestClusterFacadeFailover(t *testing.T) {
	cs := newTestCluster(t, hotc.RoutingLeastLoaded)
	if !cs.FailNode(0) || cs.FailNode(99) {
		t.Fatal("FailNode index handling wrong")
	}
	results, err := cs.Replay(hotc.SerialWorkload(time.Minute, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("request failed during failover: %v", r.Err)
		}
		if r.Node == "node-0" {
			t.Fatal("failed node served a request")
		}
	}
	if !cs.RecoverNode(0) {
		t.Fatal("RecoverNode rejected valid index")
	}
}

func TestClusterFacadeValidation(t *testing.T) {
	if _, err := hotc.NewClusterSimulation(hotc.ClusterConfig{Profile: "quantum"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := hotc.NewClusterSimulation(hotc.ClusterConfig{Routing: "warp"}); err == nil {
		t.Fatal("unknown routing accepted")
	}
	cs, err := hotc.NewClusterSimulation(hotc.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if _, err := cs.Replay(hotc.SerialWorkload(time.Second, 1), nil); err == nil {
		t.Fatal("replay with no functions should fail")
	}
}
