GO ?= go

.PHONY: build test verify bench bench-contention lint-metrics

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification tier: build, vet, race-enabled tests, metric-name lint.
verify:
	./scripts/verify.sh

lint-metrics:
	./scripts/lint-metrics.sh

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

# Hot-path contention suite: gateway sharding + obs fast path, results
# written to BENCH_contention.json.
bench-contention:
	./scripts/bench-contention.sh
