GO ?= go

.PHONY: build test verify bench bench-contention bench-datapath bench-saturation bench-cluster bench-coldpath bench-sharing lint-metrics

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification tier: build, vet, race-enabled tests, metric-name lint.
verify:
	./scripts/verify.sh

lint-metrics:
	./scripts/lint-metrics.sh

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

# Hot-path contention suite: gateway sharding + obs fast path, results
# written to BENCH_contention.json.
bench-contention:
	./scripts/bench-contention.sh

# Data-path throughput suite: streaming vs []byte handlers, 1 KiB to
# 4 MiB payloads, results written to BENCH_datapath.json.
bench-datapath:
	./scripts/bench-datapath.sh

# Overload suite: open-loop saturation sweep (hotc-load) with and
# without admission control, results written to BENCH_saturation.json.
bench-saturation:
	./scripts/bench-saturation.sh

# Multi-node routing suite: hotc-router over 3 hotcd nodes, warm-aware
# placement vs round-robin, results written to BENCH_cluster.json.
bench-cluster:
	./scripts/bench-cluster.sh

# Cold-path suite: full cold boots vs layer cache vs the pre-forked
# generic pool, cold/warm latency split written to BENCH_coldpath.json.
bench-coldpath:
	./scripts/bench-coldpath.sh

# Inter-function sharing suite: keep-alive only vs prefork vs
# prefork+sharing under a skewed multi-function load, per-boot-mode
# latency split written to BENCH_sharing.json.
bench-sharing:
	./scripts/bench-sharing.sh
