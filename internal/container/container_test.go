package container

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hotc/internal/config"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/network"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

type fixture struct {
	sched  *simclock.Scheduler
	engine *Engine
	reg    *image.Registry
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sched := simclock.New()
	reg := image.StandardCatalog()
	// Noiseless engine (nil jitter source) for exact assertions.
	eng := NewEngine(sched, costmodel.New(costmodel.Server()), reg, image.NewCache(), nil)
	return &fixture{sched: sched, engine: eng, reg: reg}
}

func (f *fixture) mustSpec(t *testing.T, rt config.Runtime) Spec {
	t.Helper()
	spec, err := ResolveSpec(rt, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func (f *fixture) mustCreate(t *testing.T, spec Spec) *Container {
	t.Helper()
	var ctr *Container
	f.engine.Create(spec, func(c *Container, err error) {
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		ctr = c
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if ctr == nil {
		t.Fatal("create callback never ran")
	}
	return ctr
}

func pySpec(t *testing.T, f *fixture) Spec {
	return f.mustSpec(t, config.Runtime{Image: "python:3.8", Network: "bridge"})
}

func TestResolveSpec(t *testing.T) {
	f := newFixture(t)
	spec := pySpec(t, f)
	if spec.Image.Ref() != "python:3.8" {
		t.Fatalf("image = %q", spec.Image.Ref())
	}
	if spec.Net != network.Bridge {
		t.Fatalf("net = %v", spec.Net)
	}
	if spec.Key() == "" {
		t.Fatal("empty key")
	}
}

func TestResolveSpecErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := ResolveSpec(config.Runtime{Image: "nothere:1"}, f.reg); err == nil {
		t.Fatal("missing image resolved")
	}
	if _, err := ResolveSpec(config.Runtime{}, f.reg); err == nil {
		t.Fatal("invalid runtime resolved")
	}
}

func TestCreateColdVsWarmCache(t *testing.T) {
	f := newFixture(t)
	spec := pySpec(t, f)
	coldCost := f.engine.StartCost(spec)

	c := f.mustCreate(t, spec)
	if c.State() != Available {
		t.Fatalf("state = %v", c.State())
	}
	// Second create of the same image: layers are cached, so the start
	// cost must drop by the pull+unpack amount.
	warmCost := f.engine.StartCost(spec)
	if warmCost >= coldCost {
		t.Fatalf("cached start %v not cheaper than cold %v", warmCost, coldCost)
	}
	if f.engine.Stats().PulledMB != spec.Image.SizeMB() {
		t.Fatalf("pulled %v MB, want %v", f.engine.Stats().PulledMB, spec.Image.SizeMB())
	}
}

func TestCreateTakesSimulatedTime(t *testing.T) {
	f := newFixture(t)
	spec := pySpec(t, f)
	want := f.engine.StartCost(spec)
	f.mustCreate(t, spec)
	if f.sched.Now() != want {
		t.Fatalf("clock advanced %v, want %v", f.sched.Now(), want)
	}
}

func TestExecColdThenWarm(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	app := workload.QRApp(workload.Python)

	coldCost := f.engine.ExecCost(c, app)
	var gotCold time.Duration
	f.engine.Exec(c, app, func(d time.Duration, err error) {
		if err != nil {
			t.Fatalf("exec: %v", err)
		}
		gotCold = d
	})
	if c.State() != NotAvailable {
		t.Fatal("container should be busy during exec")
	}
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if gotCold != coldCost {
		t.Fatalf("cold exec = %v, want %v", gotCold, coldCost)
	}
	if !c.WarmFor(app) {
		t.Fatal("container not warm after exec")
	}

	warmCost := f.engine.ExecCost(c, app)
	if warmCost >= coldCost {
		t.Fatalf("warm exec %v not cheaper than cold %v", warmCost, coldCost)
	}
	// The saving is exactly the init cost plus the cold-exec penalty.
	cm := f.engine.Model()
	wantWarm := cm.WatchdogShimCost() + cm.ExecCost(app.Exec)
	if warmCost != wantWarm {
		t.Fatalf("warm exec = %v, want %v", warmCost, wantWarm)
	}

	st := f.engine.Stats()
	if st.ColdStarts != 1 || st.WarmStarts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExecOnBusyFails(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	app := workload.QRApp(workload.Python)
	f.engine.Exec(c, app, func(time.Duration, error) {})
	var execErr error
	f.engine.Exec(c, app, func(_ time.Duration, err error) { execErr = err })
	if execErr == nil {
		t.Fatal("second exec on busy container should fail immediately")
	}
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecInvalidApp(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	var execErr error
	f.engine.Exec(c, workload.App{}, func(_ time.Duration, err error) { execErr = err })
	if execErr == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestWarmup(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	app := workload.QRApp(workload.Python)
	before := f.sched.Now()
	var warmErr error
	f.engine.Warmup(c, app, func(err error) { warmErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if warmErr != nil {
		t.Fatal(warmErr)
	}
	if !c.WarmFor(app) {
		t.Fatal("not warm after warmup")
	}
	wantCost := f.engine.Model().InitCost(app.InitCost())
	if got := f.sched.Now() - before; got != wantCost {
		t.Fatalf("warmup took %v, want %v", got, wantCost)
	}
	// Idempotent and free the second time.
	before = f.sched.Now()
	f.engine.Warmup(c, app, func(err error) { warmErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if f.sched.Now() != before {
		t.Fatal("second warmup should be instantaneous")
	}
}

func TestCleanVolume(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	app := workload.QRApp(workload.Python)
	f.engine.Exec(c, app, func(time.Duration, error) {})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Volume.Dirty || c.Volume.Generation != 1 {
		t.Fatalf("volume after exec = %+v", c.Volume)
	}
	var cleanErr error
	f.engine.CleanVolume(c, func(err error) { cleanErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if cleanErr != nil {
		t.Fatal(cleanErr)
	}
	if c.Volume.Dirty || c.Volume.Generation != 2 {
		t.Fatalf("volume after clean = %+v", c.Volume)
	}
	if f.engine.Stats().CleanedVols != 1 {
		t.Fatal("clean not counted")
	}
	// Cleaning a clean volume is free.
	before := f.sched.Now()
	f.engine.CleanVolume(c, func(err error) { cleanErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if f.sched.Now() != before || c.Volume.Generation != 2 {
		t.Fatal("cleaning a clean volume should be a no-op")
	}
}

func TestStopDeletesVolume(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	stopped := false
	f.engine.Stop(c, func() { stopped = true })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Fatal("stop callback never ran")
	}
	if c.State() != Stopped || !c.Volume.Deleted {
		t.Fatalf("after stop: state=%v volume=%+v", c.State(), c.Volume)
	}
	if f.engine.Live() != 0 {
		t.Fatalf("live = %d after stop", f.engine.Live())
	}
	// Exec on stopped container fails.
	var execErr error
	f.engine.Exec(c, workload.QRApp(workload.Python), func(_ time.Duration, err error) { execErr = err })
	if execErr == nil {
		t.Fatal("exec on stopped container accepted")
	}
	// CleanVolume on stopped container fails.
	var cleanErr error
	f.engine.CleanVolume(c, func(err error) { cleanErr = err })
	if cleanErr == nil {
		t.Fatal("clean on stopped container accepted")
	}
	// Double stop is a no-op.
	f.engine.Stop(c, nil)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateHookFailureInjection(t *testing.T) {
	f := newFixture(t)
	boom := errors.New("no memory")
	f.engine.CreateHook = func(Spec) error { return boom }
	var createErr error
	f.engine.Create(pySpec(t, f), func(_ *Container, err error) { createErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(createErr, boom) {
		t.Fatalf("create err = %v, want wrapped boom", createErr)
	}
	if f.engine.Live() != 0 || f.engine.Stats().Created != 0 {
		t.Fatal("failed create leaked a container")
	}
}

func TestExecHookFailureInjection(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	boom := errors.New("oom killed")
	f.engine.ExecHook = func(*Container, workload.App) error { return boom }
	var execErr error
	f.engine.Exec(c, workload.QRApp(workload.Python), func(_ time.Duration, err error) { execErr = err })
	if !errors.Is(execErr, boom) {
		t.Fatalf("exec err = %v", execErr)
	}
	if c.State() != Available {
		t.Fatal("failed exec left container busy")
	}
}

func TestContainerModeCheaperBoot(t *testing.T) {
	f := newFixture(t)
	bridge := f.mustSpec(t, config.Runtime{Image: "alpine:3.9", Network: "bridge"})
	peer := f.mustSpec(t, config.Runtime{Image: "alpine:3.9", Network: "container:proxy"})
	if f.engine.StartCost(peer) >= f.engine.StartCost(bridge) {
		t.Fatal("container-mode boot should be cheaper than bridge (Fig. 4c)")
	}
}

func TestOverlayBootDominates(t *testing.T) {
	f := newFixture(t)
	host := f.mustSpec(t, config.Runtime{Image: "alpine:3.9", Network: "host"})
	overlay := f.mustSpec(t, config.Runtime{Image: "alpine:3.9", Network: "overlay"})
	// Warm the cache so only engine+network remain.
	f.mustCreate(t, host)
	h := f.engine.StartCost(host)
	o := f.engine.StartCost(overlay)
	if float64(o) < 5*float64(h) {
		t.Fatalf("overlay boot %v should dwarf host boot %v", o, h)
	}
}

func TestIdleOverheadAccounting(t *testing.T) {
	f := newFixture(t)
	spec := pySpec(t, f)
	for i := 0; i < 10; i++ {
		f.mustCreate(t, spec)
	}
	if f.engine.Live() != 10 {
		t.Fatalf("live = %d", f.engine.Live())
	}
	// Fig. 15(a): ten live containers cost <1% CPU and ~7 MB memory.
	if cpu := f.engine.IdleOverheadCPUPct(); cpu >= 1 {
		t.Fatalf("idle CPU = %v%%, want < 1%%", cpu)
	}
	if mem := f.engine.IdleOverheadMemMB(); mem < 6.9 || mem > 7.1 {
		t.Fatalf("idle mem = %v MB, want ~7", mem)
	}
	if got := len(f.engine.LiveContainers()); got != 10 {
		t.Fatalf("LiveContainers = %d", got)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		NotExisting:  "not-existing",
		NotAvailable: "existing-not-available",
		Available:    "existing-available",
		Stopped:      "stopped",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if State(77).String() == "" {
		t.Fatal("unknown state should render")
	}
}

func TestReserveUnreserve(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	if err := f.engine.Reserve(c); err != nil {
		t.Fatal(err)
	}
	if !c.Reserved() || c.State() != NotAvailable {
		t.Fatal("reserve did not mark the container")
	}
	// A second reservation must fail.
	if err := f.engine.Reserve(c); err == nil {
		t.Fatal("double reserve accepted")
	}
	f.engine.Unreserve(c)
	if c.Reserved() || c.State() != Available {
		t.Fatal("unreserve did not restore the container")
	}
	// Unreserve of an unreserved container is a no-op.
	f.engine.Unreserve(c)
	if c.State() != Available {
		t.Fatal("spurious unreserve changed state")
	}
}

func TestExecConsumesReservation(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	if err := f.engine.Reserve(c); err != nil {
		t.Fatal(err)
	}
	var execErr error
	f.engine.Exec(c, workload.QRApp(workload.Python), func(_ time.Duration, err error) { execErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
	if c.Reserved() {
		t.Fatal("reservation not consumed by exec")
	}
}

func TestExecPhasesMatchExecCost(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	app := workload.QRApp(workload.Python)
	initD, execD := f.engine.ExecPhases(c, app)
	if initD+execD != f.engine.ExecCost(c, app) {
		t.Fatal("cold phases do not sum to ExecCost")
	}
	f.engine.Exec(c, app, func(time.Duration, error) {})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	initW, execW := f.engine.ExecPhases(c, app)
	if initW+execW != f.engine.ExecCost(c, app) {
		t.Fatal("warm phases do not sum to ExecCost")
	}
	if initW >= initD {
		t.Fatal("warm init phase should be smaller than cold")
	}
	if execW >= execD {
		t.Fatal("warm exec phase should drop the cold penalty")
	}
}

func TestContentionStretchesExec(t *testing.T) {
	sched := simclock.New()
	reg := image.StandardCatalog()
	consts := costmodel.Defaults()
	consts.ContentionKneePct = 50
	cm := costmodel.NewWith(consts, costmodel.Server())
	eng := NewEngine(sched, cm, reg, image.NewCache(), nil)
	spec, err := ResolveSpec(config.Runtime{Image: "cassandra:3.11"}, reg)
	if err != nil {
		t.Fatal(err)
	}
	app := workload.Cassandra() // 35% CPU each

	var first, second *Container
	eng.Create(spec, func(c *Container, err error) { first = c })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	eng.Create(spec, func(c *Container, err error) { second = c })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	var d1, d2 time.Duration
	eng.Exec(first, app, func(d time.Duration, err error) { d1 = d })  // 35% < knee: unstretched
	eng.Exec(second, app, func(d time.Duration, err error) { d2 = d }) // 70% > knee: stretched
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Fatalf("contended exec %v should exceed uncontended %v", d2, d1)
	}
	ratio := float64(d2) / float64(d1)
	if ratio < 1.3 || ratio > 1.5 {
		t.Fatalf("stretch ratio = %.2f, want ~70/50", ratio)
	}
}

func TestContentionDisabledByDefault(t *testing.T) {
	f := newFixture(t)
	spec := f.mustSpec(t, config.Runtime{Image: "cassandra:3.11"})
	app := workload.Cassandra()
	var c1, c2 *Container
	f.engine.Create(spec, func(c *Container, err error) { c1 = c })
	f.engine.Create(spec, func(c *Container, err error) { c2 = c })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	var d1, d2 time.Duration
	f.engine.Exec(c1, app, func(d time.Duration, err error) { d1 = d })
	f.engine.Exec(c2, app, func(d time.Duration, err error) { d2 = d })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("default model should not stretch: %v vs %v", d1, d2)
	}
}

// Property: for any sequence of exec/clean operations, the volume
// generation only increases and equals 1 + number of cleans that found
// a dirty volume.
func TestPropertyVolumeGenerations(t *testing.T) {
	f := func(ops []bool) bool {
		fix := newFixture(&testing.T{})
		c := fix.mustCreate(&testing.T{}, pySpec(&testing.T{}, fix))
		app := workload.RandomNumber(workload.Python)
		cleans := 0
		prevGen := c.Volume.Generation
		for _, isExec := range ops {
			if isExec {
				fix.engine.Exec(c, app, func(time.Duration, error) {})
			} else {
				if c.Volume.Dirty {
					cleans++
				}
				fix.engine.CleanVolume(c, func(error) {})
			}
			if err := fix.sched.Run(); err != nil {
				return false
			}
			if c.Volume.Generation < prevGen {
				return false
			}
			prevGen = c.Volume.Generation
		}
		return c.Volume.Generation == 1+cleans
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
