package container

import (
	"errors"
	"testing"
	"time"

	"hotc/internal/workload"
)

// Regression test for the Exec error path: a hook-injected exec
// failure must leave no dangling accounting. Before the invariant was
// pinned down, a crashing exec could in principle have charged
// activeCPUPct/activeMemMB without the completion callback ever
// crediting it back, inflating contention for every later request.
func TestRepeatedFailedExecsLeaveNoDanglingAccounting(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	app := workload.QRApp(workload.Python)

	boom := errors.New("boom")
	f.engine.ExecHook = func(*Container, workload.App) error { return boom }

	statsBefore := f.engine.Stats()
	for i := 0; i < 10; i++ {
		var execErr error
		f.engine.Exec(c, app, func(_ time.Duration, err error) { execErr = err })
		if err := f.sched.Run(); err != nil {
			t.Fatal(err)
		}
		if !errors.Is(execErr, boom) {
			t.Fatalf("exec %d: err = %v, want the injected failure", i, execErr)
		}
		if got := f.engine.ActiveCPUPct(); got != 0 {
			t.Fatalf("exec %d: ActiveCPUPct = %v after failed exec, want 0", i, got)
		}
		if got := f.engine.ActiveMemMB(); got != 0 {
			t.Fatalf("exec %d: ActiveMemMB = %v after failed exec, want 0", i, got)
		}
		if c.State() != Available {
			t.Fatalf("exec %d: state = %v, want Available", i, c.State())
		}
	}
	if c.Execs != 0 {
		t.Fatalf("Execs = %d after only failed execs, want 0", c.Execs)
	}
	if s := f.engine.Stats(); s != statsBefore {
		t.Fatalf("engine stats moved on failed execs: %+v -> %+v", statsBefore, s)
	}

	// The container must still be fully usable once the fault clears.
	f.engine.ExecHook = nil
	var okErr error
	ran := false
	f.engine.Exec(c, app, func(_ time.Duration, err error) { okErr, ran = err, true })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || okErr != nil {
		t.Fatalf("exec after fault cleared: ran=%v err=%v", ran, okErr)
	}
	if c.Execs != 1 {
		t.Fatalf("Execs = %d, want 1", c.Execs)
	}
	if f.engine.ActiveCPUPct() != 0 || f.engine.ActiveMemMB() != 0 {
		t.Fatal("active accounting non-zero after a completed exec")
	}
}

// A failed exec consumes the caller's reservation (the holder made its
// attempt); the container stays Available so anyone can retry.
func TestFailedExecConsumesReservation(t *testing.T) {
	f := newFixture(t)
	c := f.mustCreate(t, pySpec(t, f))
	app := workload.QRApp(workload.Python)

	if err := f.engine.Reserve(c); err != nil {
		t.Fatal(err)
	}
	f.engine.ExecHook = func(*Container, workload.App) error { return errors.New("crash") }
	var execErr error
	f.engine.Exec(c, app, func(_ time.Duration, err error) { execErr = err })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if execErr == nil {
		t.Fatal("exec should have failed")
	}

	// Reservation gone, container Available: a fresh Reserve works.
	if err := f.engine.Reserve(c); err != nil {
		t.Fatalf("re-reserve after failed exec: %v", err)
	}
	f.engine.ExecHook = nil
	ran := false
	f.engine.Exec(c, app, func(_ time.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		ran = true
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("second exec never completed")
	}
}
