// Package container implements the simulated container engine: the
// substrate the paper's Docker 1.17 testbed provides. Containers move
// through a lifecycle that mirrors the three states HotC tracks
// (§IV.B, Fig. 7): Not-Existing (-1), Existing-Not-Available (0) and
// Existing-Available (1); internally the engine also distinguishes the
// transient Starting and terminal Stopped conditions.
//
// All durations come from the cost model: image pull/unpack against a
// host-local layer cache, engine setup scaled by the network mode's
// factor, network setup per Fig. 4(c), volume setup/cleanup per the
// paper's used-container-cleanup design, and per-language runtime and
// application initialisation at first execution.
package container

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/network"
	"hotc/internal/rng"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

// State is the container lifecycle state. The exported values match
// the paper's Fig. 7 encoding.
type State int

const (
	// NotExisting (-1): no container for this runtime key.
	NotExisting State = -1
	// NotAvailable (0): exists but occupied (or still starting).
	NotAvailable State = 0
	// Available (1): exists and idle, ready for reuse.
	Available State = 1
	// Stopped (2): terminated; volumes deleted. Terminal.
	Stopped State = 2
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case NotExisting:
		return "not-existing"
	case NotAvailable:
		return "existing-not-available"
	case Available:
		return "existing-available"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("container.State(%d)", int(s))
	}
}

// Mechanism selects how fresh containers obtain an initialised
// runtime — the alternative cold-start attacks from the paper's
// related work (§VI), implemented for comparison against HotC's reuse:
type Mechanism int

const (
	// Vanilla boots a container from scratch and initialises the
	// language runtime and application on first execution (the Docker
	// default the paper measures).
	Vanilla Mechanism = iota
	// Zygote forks containers from a pre-initialised zygote process
	// with the language runtime already loaded (SOCK, Oakes et al.):
	// engine setup is leaner and runtime init is skipped, but
	// application init (model load, connections) is still paid.
	Zygote
	// Checkpoint restores a memory snapshot taken after full
	// initialisation (Replayable Execution, Wang et al.): no runtime
	// or application init, but the restore cost grows with the
	// application's resident memory.
	Checkpoint
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case Vanilla:
		return "vanilla"
	case Zygote:
		return "zygote-fork"
	case Checkpoint:
		return "checkpoint-restore"
	default:
		return fmt.Sprintf("container.Mechanism(%d)", int(m))
	}
}

// snapshotFrac is the fraction of an application's resident memory
// written into its checkpoint image.
const snapshotFrac = 0.5

// Spec is a fully resolved container specification: the normalised
// runtime configuration plus the image and network mode it denotes.
type Spec struct {
	Runtime config.Runtime
	Image   image.Image
	Net     network.Mode
}

// Key returns the runtime pool key for this spec.
func (s Spec) Key() config.Key { return s.Runtime.Key() }

// ResolveSpec looks up the runtime's image in the registry and parses
// its network mode.
func ResolveSpec(rt config.Runtime, reg *image.Registry) (Spec, error) {
	n := rt.Normalize()
	if err := n.Validate(); err != nil {
		return Spec{}, err
	}
	im, err := reg.Lookup(n.Image)
	if err != nil {
		return Spec{}, err
	}
	mode, _, err := network.Parse(n.Network)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Runtime: n, Image: im, Net: mode}, nil
}

// Volume is the per-container scratch volume HotC assigns (§IV.B):
// cleanup wipes it and mounts a fresh generation; stopping the
// container deletes it.
type Volume struct {
	// Generation counts remounts; each reuse gets a fresh generation.
	Generation int
	// Dirty reports whether the current generation has been written.
	Dirty bool
	// Deleted is set when the owning container stops.
	Deleted bool
}

// Container is one simulated container instance.
type Container struct {
	// ID is the engine-assigned identifier.
	ID string
	// Spec is the resolved specification the container was created from.
	Spec Spec
	// CreatedAt and LastUsedAt are virtual timestamps for age-based
	// eviction (§IV.B: "the oldest live container is forcibly
	// terminated").
	CreatedAt  simclock.Time
	LastUsedAt simclock.Time
	// Execs counts completed executions.
	Execs int
	// Volume is the scratch volume.
	Volume Volume

	state State
	// reserved marks a container claimed by the pool for a specific
	// request but not yet executing; it is NotAvailable to everyone
	// except the holder of the reservation.
	reserved bool
	// warm records which app names have initialised inside this
	// container; a warm app skips runtime+app init and runs at full
	// cache speed (§IV.A: hot cache, fewer TLB flushes).
	warm map[string]bool
}

// State returns the current lifecycle state.
func (c *Container) State() State { return c.state }

// Key returns the runtime pool key.
func (c *Container) Key() config.Key { return c.Spec.Key() }

// WarmFor reports whether app has already initialised in this
// container.
func (c *Container) WarmFor(app workload.App) bool { return c.warm[app.Name] }

// IdleMemMB is the resident memory of the container when idle.
func (c *Container) IdleMemMB(cm *costmodel.Model) float64 {
	return cm.C.IdleContainerMemMB
}

// Stats aggregates engine-level counters for reports and tests.
type Stats struct {
	Created     int
	Reused      int
	Stopped     int
	ColdStarts  int // executions that paid initialisation
	WarmStarts  int // executions that skipped initialisation
	PulledMB    float64
	CleanedVols int
	// Repurposed counts containers re-keyed to a different runtime
	// spec by inter-function sharing leases.
	Repurposed int
}

// Engine is the simulated container engine. It is single-threaded by
// design: all operations run on the simulation scheduler's goroutine,
// so no locking is needed (the DES owns all state).
type Engine struct {
	sched *simclock.Scheduler
	cm    *costmodel.Model
	cache *image.Cache
	reg   *image.Registry
	jit   *rng.Source

	nextID     int
	containers map[string]*Container
	stats      Stats

	// activeCPUPct and activeMemMB account the resources of currently
	// executing workloads, for the Fig. 15 host-resource monitoring.
	activeCPUPct float64
	activeMemMB  float64

	// CreateHook, if set, is consulted before each create; a non-nil
	// error fails the creation after the engine-setup delay (modelling
	// resource exhaustion or registry failures).
	CreateHook func(Spec) error
	// ExecHook, if set, is consulted before each exec.
	ExecHook func(*Container, workload.App) error
	// StartDelayHook, if set, returns extra boot latency added to each
	// create (modelling slow-start faults: registry throttling, disk
	// pressure, noisy neighbours). A zero return leaves the boot cost
	// unchanged.
	StartDelayHook func(Spec) time.Duration

	// Mechanism selects the cold-start mechanism for fresh containers
	// (default Vanilla). It must be set before any containers are
	// created.
	Mechanism Mechanism
}

// NewEngine builds an engine over the given scheduler, cost model,
// registry and layer cache. jit supplies latency jitter; pass nil for
// a noiseless engine.
func NewEngine(sched *simclock.Scheduler, cm *costmodel.Model, reg *image.Registry, cache *image.Cache, jit *rng.Source) *Engine {
	if sched == nil || cm == nil || reg == nil || cache == nil {
		panic("container: NewEngine requires scheduler, cost model, registry and cache")
	}
	return &Engine{
		sched:      sched,
		cm:         cm,
		cache:      cache,
		reg:        reg,
		jit:        jit,
		containers: make(map[string]*Container),
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Model returns the engine's cost model.
func (e *Engine) Model() *costmodel.Model { return e.cm }

// Scheduler returns the engine's scheduler.
func (e *Engine) Scheduler() *simclock.Scheduler { return e.sched }

// Live returns the number of containers that exist and are not
// stopped.
func (e *Engine) Live() int {
	n := 0
	for _, c := range e.containers {
		if c.state != Stopped {
			n++
		}
	}
	return n
}

// LiveContainers returns all live containers (order unspecified).
func (e *Engine) LiveContainers() []*Container {
	out := make([]*Container, 0, len(e.containers))
	for _, c := range e.containers {
		if c.state != Stopped {
			out = append(out, c)
		}
	}
	return out
}

// IdleOverheadMemMB is the memory cost of all live idle containers:
// the Fig. 15(a) quantity (~0.7 MB per live container).
func (e *Engine) IdleOverheadMemMB() float64 {
	n := 0.0
	for _, c := range e.containers {
		if c.state == Available {
			n += e.cm.C.IdleContainerMemMB
		}
	}
	return n
}

// ActiveCPUPct is the CPU usage of all currently executing workloads.
func (e *Engine) ActiveCPUPct() float64 { return e.activeCPUPct }

// ActiveMemMB is the memory usage of all currently executing
// workloads.
func (e *Engine) ActiveMemMB() float64 { return e.activeMemMB }

// IdleOverheadCPUPct is the CPU cost of all live idle containers.
func (e *Engine) IdleOverheadCPUPct() float64 {
	n := 0.0
	for _, c := range e.containers {
		if c.state == Available {
			n += e.cm.C.IdleContainerCPUPct
		}
	}
	return n
}

func (e *Engine) jitter(d time.Duration) time.Duration {
	if e.jit == nil {
		return d
	}
	return e.cm.Jitter(d, func() float64 { return e.jit.Norm(0, 1) })
}

// StartCost computes the full cold-boot duration for a spec given the
// current layer cache: pull missing layers, unpack them, engine setup
// scaled by the network mode, network setup, volume setup, and the
// watchdog boot.
func (e *Engine) StartCost(spec Spec) time.Duration {
	missing := e.cache.MissingMB(spec.Image)
	d := e.cm.PullCost(missing) + e.cm.UnpackCost(missing)
	engine := float64(e.cm.EngineSetupCost()) * spec.Net.EngineFactor()
	if e.Mechanism == Zygote {
		engine *= e.cm.C.ZygoteEngineFactor
	}
	d += time.Duration(engine)
	d += spec.Net.SetupCost(e.cm)
	d += e.cm.VolumeSetupCost()
	d += e.cm.WatchdogBootCost()
	return d
}

// initCost is the first-execution initialisation a fresh runtime pays
// under the engine's cold-start mechanism.
func (e *Engine) initCost(app workload.App) time.Duration {
	switch e.Mechanism {
	case Zygote:
		// The zygote holds the language runtime; only business-logic
		// init remains.
		return e.cm.InitCost(app.AppInit)
	case Checkpoint:
		// Restore the post-init snapshot instead of initialising.
		return e.cm.RestoreCost(app.MemMB * snapshotFrac)
	default:
		return e.cm.InitCost(app.InitCost())
	}
}

// Create asynchronously boots a new container for spec. done receives
// the container (in Available state) or an error after the simulated
// boot delay has elapsed.
func (e *Engine) Create(spec Spec, done func(*Container, error)) {
	if done == nil {
		panic("container: Create requires a completion callback")
	}
	cost := e.jitter(e.StartCost(spec))
	if e.StartDelayHook != nil {
		if extra := e.StartDelayHook(spec); extra > 0 {
			cost += extra
		}
	}
	e.sched.After(cost, func() {
		if e.CreateHook != nil {
			if err := e.CreateHook(spec); err != nil {
				done(nil, fmt.Errorf("container: create failed: %w", err))
				return
			}
		}
		missing := e.cache.MissingMB(spec.Image)
		e.cache.Admit(spec.Image)
		e.stats.PulledMB += missing
		e.nextID++
		c := &Container{
			ID:         fmt.Sprintf("ctr-%06d", e.nextID),
			Spec:       spec,
			CreatedAt:  e.sched.Now(),
			LastUsedAt: e.sched.Now(),
			state:      Available,
			warm:       make(map[string]bool),
			Volume:     Volume{Generation: 1},
		}
		e.containers[c.ID] = c
		e.stats.Created++
		done(c, nil)
	})
}

// Reserve claims an Available container for a pending request: it
// becomes NotAvailable immediately (no simulated time passes) so that
// no other request can take it while this one is queued. The holder
// either Execs it (which consumes the reservation) or Unreserves it.
func (e *Engine) Reserve(c *Container) error {
	if c.state != Available {
		return fmt.Errorf("container: reserve on %s in state %v", c.ID, c.state)
	}
	c.state = NotAvailable
	c.reserved = true
	return nil
}

// Unreserve returns a reserved container to the Available state.
func (e *Engine) Unreserve(c *Container) {
	if c.reserved {
		c.reserved = false
		if c.state == NotAvailable {
			c.state = Available
		}
	}
}

// Reserved reports whether the container is currently reserved.
func (c *Container) Reserved() bool { return c.reserved }

// ExecCost computes the duration of running app in c right now: a
// container not yet warm for the app pays runtime + app init and the
// cache-cold execution penalty; a warm one runs at full speed.
func (e *Engine) ExecCost(c *Container, app workload.App) time.Duration {
	shim := e.cm.WatchdogShimCost()
	if c.WarmFor(app) {
		return shim + e.cm.ExecCost(app.Exec)
	}
	return shim + e.initCost(app) + e.cm.ColdExecCost(app.Exec)
}

// ExecPhases splits ExecCost into the watchdog-visible phases used for
// the Fig. 5 timestamp breakdown: the initialisation phase (watchdog
// shim plus runtime/app init when cold) and the function execution
// phase.
func (e *Engine) ExecPhases(c *Container, app workload.App) (init, exec time.Duration) {
	init = e.cm.WatchdogShimCost()
	if c.WarmFor(app) {
		return init, e.cm.ExecCost(app.Exec)
	}
	return init + e.initCost(app), e.cm.ColdExecCost(app.Exec)
}

// Exec asynchronously runs app inside c. The container must be
// Available; it transitions to NotAvailable for the duration and back
// to Available on completion (the caller — the pool — decides whether
// to clean and re-admit it). done receives the execution duration.
func (e *Engine) Exec(c *Container, app workload.App, done func(time.Duration, error)) {
	if done == nil {
		panic("container: Exec requires a completion callback")
	}
	if err := app.Validate(); err != nil {
		done(0, err)
		return
	}
	if c.reserved {
		// The holder of the reservation is executing; consume it.
		c.reserved = false
	} else if c.state != Available {
		done(0, fmt.Errorf("container: exec on %s in state %v", c.ID, c.state))
		return
	}
	if e.ExecHook != nil {
		if err := e.ExecHook(c, app); err != nil {
			// Leave the container usable: a failed exec (e.g. an OOM
			// kill of the function process) does not take the
			// container down. The caller (pool/gateway) decides whether
			// to quarantine it. Invariant: the failure path runs before
			// any active CPU/mem accounting, so a failed exec — even
			// repeated on the same container — leaves activeCPUPct and
			// activeMemMB untouched and the container Available.
			c.state = Available
			done(0, fmt.Errorf("container: exec failed: %w", err))
			return
		}
	}
	wasWarm := c.WarmFor(app)
	cost := e.jitter(e.ExecCost(c, app))
	c.state = NotAvailable
	e.activeCPUPct += app.CPUPct
	e.activeMemMB += app.MemMB
	// Resource contention (opt-in): when aggregate demand exceeds the
	// knee, executions stretch proportionally — processor sharing in
	// its crudest useful form. The load is sampled at admission; a
	// finer model would re-scale in-flight work, but admission-time
	// stretching already produces the burst latency spikes the paper
	// reports.
	if knee := e.cm.C.ContentionKneePct; knee > 0 && e.activeCPUPct > knee {
		cost = time.Duration(float64(cost) * e.activeCPUPct / knee)
	}
	e.sched.After(cost, func() {
		e.activeCPUPct -= app.CPUPct
		e.activeMemMB -= app.MemMB
		c.state = Available
		c.warm[app.Name] = true
		c.Execs++
		c.Volume.Dirty = true
		c.LastUsedAt = e.sched.Now()
		if wasWarm {
			e.stats.WarmStarts++
			e.stats.Reused++
		} else {
			e.stats.ColdStarts++
		}
		done(cost, nil)
	})
}

// Warmup asynchronously pre-initialises app inside c (used by the
// adaptive controller to pre-warm predicted demand). It is an Exec
// variant that pays only initialisation, not a request execution.
func (e *Engine) Warmup(c *Container, app workload.App, done func(error)) {
	if done == nil {
		panic("container: Warmup requires a completion callback")
	}
	if c.state != Available {
		done(fmt.Errorf("container: warmup on %s in state %v", c.ID, c.state))
		return
	}
	if c.WarmFor(app) {
		done(nil)
		return
	}
	cost := e.jitter(e.initCost(app))
	c.state = NotAvailable
	e.sched.After(cost, func() {
		c.state = Available
		c.warm[app.Name] = true
		done(nil)
	})
}

// CleanVolume asynchronously wipes the container's volume and mounts a
// fresh generation (§IV.B "Used Container Cleanup": delete files in
// the old volume, mount a new one).
func (e *Engine) CleanVolume(c *Container, done func(error)) {
	if done == nil {
		panic("container: CleanVolume requires a completion callback")
	}
	if c.state == Stopped {
		done(fmt.Errorf("container: cleaning volume of stopped %s", c.ID))
		return
	}
	if !c.Volume.Dirty {
		done(nil)
		return
	}
	cost := e.jitter(e.cm.VolumeCleanupCost() + e.cm.VolumeSetupCost())
	prev := c.state
	c.state = NotAvailable
	e.sched.After(cost, func() {
		c.state = prev
		c.Volume.Generation++
		c.Volume.Dirty = false
		e.stats.CleanedVols++
		done(nil)
	})
}

// Repurpose asynchronously re-keys an idle container as a zygote for a
// different runtime spec — the lease mechanism behind inter-function
// sharing (Pagurus-style). The volume is wiped and remounted exactly
// like Algorithm 2's used-container cleanup, the image-layer delta
// between the container's current image and the new spec's is pulled
// (cache-scaled; zero when the images match), and the application warm
// state is dropped: the container skips engine/network/volume/watchdog
// setup entirely, but the next execution pays app initialisation
// again. On completion the container is Available under its NEW spec;
// the caller owns re-indexing it.
func (e *Engine) Repurpose(c *Container, spec Spec, done func(error)) {
	if done == nil {
		panic("container: Repurpose requires a completion callback")
	}
	if c.state != Available {
		done(fmt.Errorf("container: repurposing %s in state %v", c.ID, c.state))
		return
	}
	missing := e.cache.MissingMB(spec.Image)
	cost := e.jitter(e.cm.VolumeCleanupCost() + e.cm.VolumeSetupCost() +
		e.cm.PullCost(missing) + e.cm.UnpackCost(missing))
	c.state = NotAvailable
	e.sched.After(cost, func() {
		e.cache.Admit(spec.Image)
		e.stats.PulledMB += missing
		c.Spec = spec
		for k := range c.warm {
			delete(c.warm, k)
		}
		c.Volume.Generation++
		c.Volume.Dirty = false
		c.state = Available
		e.stats.CleanedVols++
		e.stats.Repurposed++
		done(nil)
	})
}

// Stop asynchronously terminates the container, deleting its volume
// ("to avoid resource waste and zombie files, the corresponding
// volumes are deleted once the containers stop execution").
func (e *Engine) Stop(c *Container, done func()) {
	if done == nil {
		done = func() {}
	}
	if c.state == Stopped {
		done()
		return
	}
	cost := e.jitter(e.cm.EngineTeardownCost() + c.Spec.Net.TeardownCost(e.cm))
	c.state = NotAvailable
	e.sched.After(cost, func() {
		c.state = Stopped
		c.Volume.Deleted = true
		e.stats.Stopped++
		delete(e.containers, c.ID)
		done()
	})
}
