package config

import (
	"strings"
	"testing"
)

// FuzzParseCommand checks the command parser never panics, and that
// anything it accepts normalises stably: parsing, marshalling to a
// config file and re-parsing preserves the canonical key.
func FuzzParseCommand(f *testing.F) {
	f.Add("alpine")
	f.Add("--net host python:3.8 app.py")
	f.Add("-e A=1 -e B=2 -v /h:/c -m 512m --cpu-shares 2 img cmd arg")
	f.Add("--uts=host --ipc container:x busybox")
	f.Add("-l k=v --entrypoint sh node:10")
	f.Add("--net")
	f.Add("-m lots alpine")
	f.Add("--bogus x alpine")

	f.Fuzz(func(t *testing.T, line string) {
		args := strings.Fields(line)
		rt, err := ParseCommand(args)
		if err != nil {
			return
		}
		key := rt.Key()
		if key == "" {
			t.Fatal("accepted command produced empty key")
		}
		// Round-trip through the config-file form.
		data, err := MarshalFile(rt)
		if err != nil {
			t.Fatalf("marshal of accepted runtime failed: %v", err)
		}
		back, err := ParseFile(data)
		if err != nil {
			t.Fatalf("re-parse of marshalled runtime failed: %v\n%s", err, data)
		}
		if back.Key() != key {
			t.Fatalf("round trip changed key:\n%s\n%s", key, back.Key())
		}
		// Relaxed key must coarsen the full key deterministically.
		if rt.Relaxed() != back.Relaxed() {
			t.Fatal("round trip changed relaxed key")
		}
	})
}

// FuzzParseFile checks the JSON config parser never panics and that
// accepted files normalise stably.
func FuzzParseFile(f *testing.F) {
	f.Add(`{"image":"alpine"}`)
	f.Add(`{"image":"python:3.8","network":"overlay","env":["A=1"]}`)
	f.Add(`{"image":"a","labels":{"k":"v"},"memory_mb":512}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"image":"a","bogus":1}`)

	f.Fuzz(func(t *testing.T, text string) {
		rt, err := ParseFile([]byte(text))
		if err != nil {
			return
		}
		if rt.Key() != rt.Normalize().Key() {
			t.Fatal("accepted file not normalisation-stable")
		}
		if err := rt.Validate(); err != nil {
			t.Fatalf("accepted file fails validation: %v", err)
		}
	})
}
