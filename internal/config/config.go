// Package config implements HotC's Parameter Analysis stage (§IV.B):
// it parses a user command or configuration file into a normalised
// container runtime description and derives the canonical key that the
// runtime pool uses to decide whether two containers are the same type
// of runtime environment.
//
// Paper: "The parameter includes container images, network
// configuration, UTS settings, IPC settings, execution options, etc.
// HotC treats containers with identical parameter configurations as
// the same type of runtime environment."
package config

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Runtime describes a container runtime configuration: everything that
// determines whether an existing container can serve a request.
type Runtime struct {
	// Image is the container image reference, e.g. "python:3.8-alpine".
	Image string `json:"image"`

	// Network is the network mode name: "none", "bridge", "host",
	// "container:<name>", "overlay", "routing". The network package
	// interprets it; config only normalises it.
	Network string `json:"network,omitempty"`

	// UTS is the UTS namespace mode ("" for private, "host" to share).
	UTS string `json:"uts,omitempty"`

	// IPC is the IPC namespace mode ("", "host", or
	// "container:<name>").
	IPC string `json:"ipc,omitempty"`

	// Env holds KEY=VALUE environment variables. Order does not
	// matter; Normalize sorts them.
	Env []string `json:"env,omitempty"`

	// Volumes holds host:container mount specs. HotC additionally
	// assigns every container its own scratch volume (§IV.B), which is
	// not part of the identity key.
	Volumes []string `json:"volumes,omitempty"`

	// MemoryMB is the memory limit (0 = unlimited).
	MemoryMB int `json:"memory_mb,omitempty"`

	// CPUShares is the relative CPU weight (0 = default).
	CPUShares int `json:"cpu_shares,omitempty"`

	// Entrypoint and Cmd are the execution options.
	Entrypoint []string `json:"entrypoint,omitempty"`
	Cmd        []string `json:"cmd,omitempty"`

	// Labels are free-form key=value metadata.
	Labels map[string]string `json:"labels,omitempty"`
}

// Key is the canonical formatted parameter configuration used as the
// pool's map key (§IV.B: "The key is the formatted parameter
// configurations for each container").
type Key string

// RelaxedKey is the reduced key proposed in the paper's future work
// (§VII: "adopting a subset of the available parameters as the key").
// It covers only the parameters that cannot be changed on a live
// container (image and namespace configuration); everything else can
// be applied at exec time.
type RelaxedKey string

// Normalize returns a canonicalised copy: trimmed fields, defaulted
// network mode, sorted environment and volumes, and non-nil slices
// replaced by nil when empty so that equivalent configurations compare
// equal.
func (r Runtime) Normalize() Runtime {
	n := r
	n.Image = strings.TrimSpace(r.Image)
	n.Network = strings.ToLower(strings.TrimSpace(r.Network))
	if n.Network == "" || n.Network == "nat" {
		// The engine default; "nat" is the paper's name for bridge
		// networking (§V.B).
		n.Network = "bridge"
	}
	n.UTS = strings.ToLower(strings.TrimSpace(r.UTS))
	n.IPC = strings.ToLower(strings.TrimSpace(r.IPC))
	n.Env = normalizeList(r.Env)
	sort.Strings(n.Env)
	n.Volumes = normalizeList(r.Volumes)
	sort.Strings(n.Volumes)
	n.Entrypoint = normalizeList(r.Entrypoint)
	n.Cmd = normalizeList(r.Cmd)
	if len(r.Labels) == 0 {
		n.Labels = nil
	} else {
		n.Labels = make(map[string]string, len(r.Labels))
		for k, v := range r.Labels {
			n.Labels[strings.TrimSpace(k)] = v
		}
	}
	return n
}

func normalizeList(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := make([]string, 0, len(in))
	for _, s := range in {
		s = strings.TrimSpace(s)
		if s != "" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Validate reports whether the runtime is well-formed.
func (r Runtime) Validate() error {
	n := r.Normalize()
	if n.Image == "" {
		return fmt.Errorf("config: image is required")
	}
	if !validImageRef(n.Image) {
		return fmt.Errorf("config: invalid image reference %q", n.Image)
	}
	switch {
	case n.Network == "none", n.Network == "bridge", n.Network == "host",
		n.Network == "overlay", n.Network == "routing",
		strings.HasPrefix(n.Network, "container:"):
	default:
		return fmt.Errorf("config: unknown network mode %q", n.Network)
	}
	if n.UTS != "" && n.UTS != "host" {
		return fmt.Errorf("config: unknown UTS mode %q", n.UTS)
	}
	if n.IPC != "" && n.IPC != "host" && !strings.HasPrefix(n.IPC, "container:") {
		return fmt.Errorf("config: unknown IPC mode %q", n.IPC)
	}
	if n.MemoryMB < 0 {
		return fmt.Errorf("config: negative memory limit %d", n.MemoryMB)
	}
	if n.CPUShares < 0 {
		return fmt.Errorf("config: negative cpu shares %d", n.CPUShares)
	}
	for _, e := range n.Env {
		if !strings.Contains(e, "=") {
			return fmt.Errorf("config: malformed env entry %q (want KEY=VALUE)", e)
		}
	}
	for _, v := range n.Volumes {
		if !strings.Contains(v, ":") {
			return fmt.Errorf("config: malformed volume spec %q (want host:container)", v)
		}
	}
	// Every field must be valid UTF-8: the canonical key and the JSON
	// configuration-file form both require it, and rejecting here keeps
	// keys stable under serialisation round trips.
	fields := append(append(append([]string{}, n.Env...), n.Volumes...), n.Entrypoint...)
	fields = append(fields, n.Cmd...)
	for k, v := range n.Labels {
		fields = append(fields, k, v)
	}
	for _, s := range fields {
		if !utf8.ValidString(s) {
			return fmt.Errorf("config: field %q is not valid UTF-8", s)
		}
	}
	return nil
}

// validImageRef enforces the image-reference character set (the
// conservative subset Docker allows: alphanumerics plus ._:/@-).
func validImageRef(ref string) bool {
	for _, c := range ref {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '_', c == ':', c == '/', c == '@', c == '-':
		default:
			return false
		}
	}
	return true
}

// Key derives the canonical pool key. Two runtimes have the same Key
// iff their normalised forms are identical in every identity-relevant
// parameter.
func (r Runtime) Key() Key {
	n := r.Normalize()
	var b strings.Builder
	writeField := func(tag, val string) {
		b.WriteString(tag)
		b.WriteByte('=')
		b.WriteString(val)
		b.WriteByte(';')
	}
	writeField("img", n.Image)
	writeField("net", n.Network)
	writeField("uts", n.UTS)
	writeField("ipc", n.IPC)
	writeField("env", strings.Join(n.Env, ","))
	writeField("vol", strings.Join(n.Volumes, ","))
	writeField("mem", strconv.Itoa(n.MemoryMB))
	writeField("cpu", strconv.Itoa(n.CPUShares))
	writeField("ep", strings.Join(n.Entrypoint, " "))
	writeField("cmd", strings.Join(n.Cmd, " "))
	if len(n.Labels) > 0 {
		keys := make([]string, 0, len(n.Labels))
		for k := range n.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		pairs := make([]string, len(keys))
		for i, k := range keys {
			pairs[i] = k + "=" + n.Labels[k]
		}
		writeField("lbl", strings.Join(pairs, ","))
	}
	return Key(b.String())
}

// Relaxed derives the reduced key for fuzzy matching: only image and
// namespace-level configuration participate. A container found under a
// matching RelaxedKey can serve the request after applying the
// remaining parameters (env, cmd) at exec time.
func (r Runtime) Relaxed() RelaxedKey {
	n := r.Normalize()
	return RelaxedKey(fmt.Sprintf("img=%s;net=%s;uts=%s;ipc=%s;mem=%d;cpu=%d",
		n.Image, n.Network, n.UTS, n.IPC, n.MemoryMB, n.CPUShares))
}

// Delta describes what must be applied at exec time to reuse a
// container that matched only on the relaxed key.
type Delta struct {
	Env        []string
	Cmd        []string
	Entrypoint []string
	Volumes    []string
	Labels     map[string]string
}

// Empty reports whether no adjustments are needed (i.e. the full keys
// already match).
func (d Delta) Empty() bool {
	return len(d.Env) == 0 && len(d.Cmd) == 0 && len(d.Entrypoint) == 0 &&
		len(d.Volumes) == 0 && len(d.Labels) == 0
}

// DeltaFrom computes the exec-time adjustments needed to run r's
// workload in a container created from base. It assumes the relaxed
// keys match; the caller must check that first.
func (r Runtime) DeltaFrom(base Runtime) Delta {
	n := r.Normalize()
	b := base.Normalize()
	var d Delta
	if !equalStrings(n.Env, b.Env) {
		d.Env = n.Env
	}
	if !equalStrings(n.Cmd, b.Cmd) {
		d.Cmd = n.Cmd
	}
	if !equalStrings(n.Entrypoint, b.Entrypoint) {
		d.Entrypoint = n.Entrypoint
	}
	if !equalStrings(n.Volumes, b.Volumes) {
		d.Volumes = n.Volumes
	}
	if !equalLabels(n.Labels, b.Labels) {
		d.Labels = n.Labels
	}
	return d
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalLabels(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ParseCommand parses a docker-run-style argument vector into a
// Runtime. Supported flags mirror the parameters the paper lists:
//
//	--net/--network MODE, --uts MODE, --ipc MODE,
//	-e/--env KEY=VALUE (repeatable), -v/--volume HOST:CTR (repeatable),
//	-m/--memory SIZE (e.g. 512m, 2g), --cpu-shares N,
//	--entrypoint CMD, -l/--label K=V (repeatable)
//
// The first non-flag argument is the image; everything after it is the
// command.
func ParseCommand(args []string) (Runtime, error) {
	var r Runtime
	i := 0
	needValue := func(flag string) (string, error) {
		if i+1 >= len(args) {
			return "", fmt.Errorf("config: flag %s requires a value", flag)
		}
		i++
		return args[i], nil
	}
	for ; i < len(args); i++ {
		arg := args[i]
		if !strings.HasPrefix(arg, "-") {
			break
		}
		flag, inline, hasInline := strings.Cut(arg, "=")
		value := func() (string, error) {
			if hasInline {
				return inline, nil
			}
			return needValue(flag)
		}
		var v string
		var err error
		switch flag {
		case "--net", "--network":
			if v, err = value(); err == nil {
				r.Network = v
			}
		case "--uts":
			if v, err = value(); err == nil {
				r.UTS = v
			}
		case "--ipc":
			if v, err = value(); err == nil {
				r.IPC = v
			}
		case "-e", "--env":
			if v, err = value(); err == nil {
				r.Env = append(r.Env, v)
			}
		case "-v", "--volume":
			if v, err = value(); err == nil {
				r.Volumes = append(r.Volumes, v)
			}
		case "-l", "--label":
			if v, err = value(); err == nil {
				if r.Labels == nil {
					r.Labels = map[string]string{}
				}
				k, lv, _ := strings.Cut(v, "=")
				r.Labels[k] = lv
			}
		case "-m", "--memory":
			if v, err = value(); err == nil {
				var mb int
				mb, err = parseMemoryMB(v)
				r.MemoryMB = mb
			}
		case "--cpu-shares":
			if v, err = value(); err == nil {
				var n int
				n, err = strconv.Atoi(v)
				if err != nil {
					err = fmt.Errorf("config: bad --cpu-shares %q: %v", v, err)
				}
				r.CPUShares = n
			}
		case "--entrypoint":
			if v, err = value(); err == nil {
				r.Entrypoint = strings.Fields(v)
			}
		case "-d", "--detach", "--rm", "-it", "-i", "-t":
			// Accepted and ignored: these do not affect runtime identity.
		default:
			return Runtime{}, fmt.Errorf("config: unknown flag %q", flag)
		}
		if err != nil {
			return Runtime{}, err
		}
	}
	if i >= len(args) {
		return Runtime{}, fmt.Errorf("config: no image in command")
	}
	r.Image = args[i]
	if i+1 < len(args) {
		r.Cmd = append([]string(nil), args[i+1:]...)
	}
	if err := r.Validate(); err != nil {
		return Runtime{}, err
	}
	return r.Normalize(), nil
}

func parseMemoryMB(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "g"):
		mult = 1024
		s = strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		s = strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		// Kilobytes round down to whole MB below.
		n, err := strconv.Atoi(strings.TrimSuffix(s, "k"))
		if err != nil {
			return 0, fmt.Errorf("config: bad memory size %q", s)
		}
		return n / 1024, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("config: bad memory size %q", s)
	}
	return n * mult, nil
}

// ParseFile parses a JSON configuration file (the paper's "user input
// or configuration file") into a Runtime.
func ParseFile(data []byte) (Runtime, error) {
	var r Runtime
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Runtime{}, fmt.Errorf("config: parsing file: %w", err)
	}
	if err := r.Validate(); err != nil {
		return Runtime{}, err
	}
	return r.Normalize(), nil
}

// MarshalFile renders the runtime as a JSON configuration file.
func MarshalFile(r Runtime) ([]byte, error) {
	return json.MarshalIndent(r.Normalize(), "", "  ")
}
