package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeDefaultsNetwork(t *testing.T) {
	r := Runtime{Image: " python:3.8 "}
	n := r.Normalize()
	if n.Image != "python:3.8" {
		t.Fatalf("image = %q", n.Image)
	}
	if n.Network != "bridge" {
		t.Fatalf("network = %q, want bridge default", n.Network)
	}
}

func TestNormalizeSortsEnvAndVolumes(t *testing.T) {
	r := Runtime{
		Image:   "alpine",
		Env:     []string{"B=2", "A=1"},
		Volumes: []string{"/z:/z", "/a:/a"},
	}
	n := r.Normalize()
	if n.Env[0] != "A=1" || n.Volumes[0] != "/a:/a" {
		t.Fatalf("not sorted: env=%v vol=%v", n.Env, n.Volumes)
	}
}

func TestNormalizeDropsEmptyEntries(t *testing.T) {
	r := Runtime{Image: "alpine", Env: []string{" ", ""}}
	if n := r.Normalize(); n.Env != nil {
		t.Fatalf("env = %v, want nil", n.Env)
	}
}

func TestKeyEqualForEquivalentConfigs(t *testing.T) {
	a := Runtime{Image: "alpine", Env: []string{"A=1", "B=2"}, Network: "Bridge"}
	b := Runtime{Image: " alpine", Env: []string{"B=2", "A=1"}, Network: "bridge"}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent configs got different keys:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestKeyDistinguishesParameters(t *testing.T) {
	base := Runtime{Image: "alpine", Network: "bridge"}
	variants := []Runtime{
		{Image: "ubuntu", Network: "bridge"},
		{Image: "alpine", Network: "host"},
		{Image: "alpine", Network: "bridge", UTS: "host"},
		{Image: "alpine", Network: "bridge", IPC: "host"},
		{Image: "alpine", Network: "bridge", Env: []string{"A=1"}},
		{Image: "alpine", Network: "bridge", MemoryMB: 512},
		{Image: "alpine", Network: "bridge", CPUShares: 2},
		{Image: "alpine", Network: "bridge", Cmd: []string{"sh"}},
		{Image: "alpine", Network: "bridge", Volumes: []string{"/a:/b"}},
		{Image: "alpine", Network: "bridge", Labels: map[string]string{"x": "y"}},
	}
	seen := map[Key]bool{base.Key(): true}
	for i, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Fatalf("variant %d collided with a previous key: %s", i, k)
		}
		seen[k] = true
	}
}

func TestRelaxedKeyIgnoresExecOptions(t *testing.T) {
	a := Runtime{Image: "alpine", Network: "bridge", Env: []string{"A=1"}, Cmd: []string{"run-a"}}
	b := Runtime{Image: "alpine", Network: "bridge", Env: []string{"B=2"}, Cmd: []string{"run-b"}}
	if a.Key() == b.Key() {
		t.Fatal("full keys should differ")
	}
	if a.Relaxed() != b.Relaxed() {
		t.Fatal("relaxed keys should match")
	}
}

func TestRelaxedKeyKeepsNamespaceIdentity(t *testing.T) {
	a := Runtime{Image: "alpine", Network: "bridge"}
	b := Runtime{Image: "alpine", Network: "overlay"}
	if a.Relaxed() == b.Relaxed() {
		t.Fatal("different network modes must have different relaxed keys")
	}
}

func TestDeltaFrom(t *testing.T) {
	base := Runtime{Image: "alpine", Env: []string{"A=1"}, Cmd: []string{"old"}}
	req := Runtime{Image: "alpine", Env: []string{"B=2"}, Cmd: []string{"new"}}
	d := req.DeltaFrom(base)
	if d.Empty() {
		t.Fatal("delta should not be empty")
	}
	if len(d.Env) != 1 || d.Env[0] != "B=2" {
		t.Fatalf("delta env = %v", d.Env)
	}
	if len(d.Cmd) != 1 || d.Cmd[0] != "new" {
		t.Fatalf("delta cmd = %v", d.Cmd)
	}
	same := req.DeltaFrom(req)
	if !same.Empty() {
		t.Fatalf("identical configs should yield empty delta, got %+v", same)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		r    Runtime
		ok   bool
	}{
		{"minimal", Runtime{Image: "alpine"}, true},
		{"no image", Runtime{}, false},
		{"bad network", Runtime{Image: "a", Network: "warp"}, false},
		{"container net", Runtime{Image: "a", Network: "container:proxy"}, true},
		{"overlay", Runtime{Image: "a", Network: "overlay"}, true},
		{"bad uts", Runtime{Image: "a", UTS: "private-ish"}, false},
		{"host uts", Runtime{Image: "a", UTS: "host"}, true},
		{"bad ipc", Runtime{Image: "a", IPC: "shared"}, false},
		{"container ipc", Runtime{Image: "a", IPC: "container:x"}, true},
		{"negative memory", Runtime{Image: "a", MemoryMB: -1}, false},
		{"negative cpu", Runtime{Image: "a", CPUShares: -1}, false},
		{"bad env", Runtime{Image: "a", Env: []string{"NOEQUALS"}}, false},
		{"bad volume", Runtime{Image: "a", Volumes: []string{"nocolon"}}, false},
	}
	for _, tc := range cases {
		err := tc.r.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseCommand(t *testing.T) {
	r, err := ParseCommand([]string{
		"--net", "host", "--uts=host", "-e", "A=1", "-e", "B=2",
		"-v", "/data:/data", "-m", "512m", "--cpu-shares", "2",
		"-l", "team=ml", "--entrypoint", "python app.py",
		"tensorflow:1.13", "serve", "--port", "8080",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Image != "tensorflow:1.13" {
		t.Fatalf("image = %q", r.Image)
	}
	if r.Network != "host" || r.UTS != "host" {
		t.Fatalf("net/uts = %q/%q", r.Network, r.UTS)
	}
	if len(r.Env) != 2 || r.MemoryMB != 512 || r.CPUShares != 2 {
		t.Fatalf("env/mem/cpu = %v/%d/%d", r.Env, r.MemoryMB, r.CPUShares)
	}
	if len(r.Cmd) != 3 || r.Cmd[0] != "serve" {
		t.Fatalf("cmd = %v", r.Cmd)
	}
	if r.Labels["team"] != "ml" {
		t.Fatalf("labels = %v", r.Labels)
	}
	if len(r.Entrypoint) != 2 {
		t.Fatalf("entrypoint = %v", r.Entrypoint)
	}
}

func TestParseCommandMemorySuffixes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"2g", 2048}, {"512m", 512}, {"2048k", 2}, {"256", 256}} {
		r, err := ParseCommand([]string{"-m", tc.in, "alpine"})
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if r.MemoryMB != tc.want {
			t.Fatalf("%s: got %d MB, want %d", tc.in, r.MemoryMB, tc.want)
		}
	}
}

func TestParseCommandErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no image
		{"--net"},                   // missing value
		{"--bogus", "x", "alpine"},  // unknown flag
		{"-m", "lots", "alpine"},    // bad memory
		{"--cpu-shares", "x", "a"},  // bad int
		{"--net", "warp", "alpine"}, // fails validation
	}
	for i, args := range cases {
		if _, err := ParseCommand(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestParseCommandIgnoresNonIdentityFlags(t *testing.T) {
	r, err := ParseCommand([]string{"-d", "--rm", "-it", "alpine"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Image != "alpine" {
		t.Fatalf("image = %q", r.Image)
	}
}

func TestParseFileRoundTrip(t *testing.T) {
	orig := Runtime{
		Image:   "python:3.8",
		Network: "overlay",
		Env:     []string{"MODEL=v3"},
		Labels:  map[string]string{"app": "imgrec"},
	}
	data, err := MarshalFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != orig.Key() {
		t.Fatalf("round trip changed key:\n%s\n%s", orig.Key(), back.Key())
	}
}

func TestParseFileRejectsUnknownFields(t *testing.T) {
	if _, err := ParseFile([]byte(`{"image":"a","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseFileRejectsInvalid(t *testing.T) {
	if _, err := ParseFile([]byte(`{"network":"bridge"}`)); err == nil {
		t.Fatal("missing image accepted")
	}
	if _, err := ParseFile([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Property: Key is stable under normalisation (Key(Normalize(r)) ==
// Key(r)) and under env/volume permutation.
func TestPropertyKeyStability(t *testing.T) {
	f := func(img string, env []string, swap bool) bool {
		img = strings.TrimSpace(img)
		if img == "" {
			img = "alpine"
		}
		// Make env entries well-formed.
		cleaned := make([]string, 0, len(env))
		for i, e := range env {
			e = strings.ReplaceAll(strings.TrimSpace(e), "=", "-")
			if e == "" {
				continue
			}
			cleaned = append(cleaned, e+"="+string(rune('a'+i%26)))
		}
		r := Runtime{Image: img, Env: cleaned}
		k1 := r.Key()
		if r.Normalize().Key() != k1 {
			return false
		}
		if swap && len(cleaned) > 1 {
			rev := make([]string, len(cleaned))
			for i, e := range cleaned {
				rev[len(cleaned)-1-i] = e
			}
			r2 := Runtime{Image: img, Env: rev}
			if r2.Key() != k1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: relaxed keys are a coarsening of full keys — equal full
// keys imply equal relaxed keys.
func TestPropertyRelaxedCoarsensFull(t *testing.T) {
	f := func(img, net string, mem uint8, envTag uint8) bool {
		nets := []string{"none", "bridge", "host", "overlay"}
		r1 := Runtime{Image: "img" + img, Network: nets[int(mem)%len(nets)], MemoryMB: int(mem)}
		r2 := r1
		r2.Env = []string{"T=" + strings.Repeat("x", int(envTag%5))}
		if r1.Key() == r2.Key() && r1.Relaxed() != r2.Relaxed() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
