package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hotc/internal/faas/live"
)

// --- placement table tests (no network) ---

// bareRouter builds a router over fake node URLs without starting it;
// tests poke node state directly.
func bareRouter(t *testing.T, policy Policy, urls ...string) *Router {
	t.Helper()
	rt, err := New(Config{Nodes: urls, Policy: policy, PollInterval: time.Hour, TraceSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func (rt *Router) setNode(t *testing.T, url string, healthy, draining bool, warm map[string]int) {
	t.Helper()
	u, _ := normalizeURL(url)
	n, ok := rt.nodes[u]
	if !ok {
		t.Fatalf("node %s not a member", url)
	}
	n.mu.Lock()
	n.healthy, n.draining = healthy, draining
	n.warm = warm
	if n.warm == nil {
		n.warm = map[string]int{}
	}
	n.mu.Unlock()
}

func placementNames(cands []candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.n.name + "/" + c.kind
	}
	return out
}

func TestPlacementTable(t *testing.T) {
	const fn = "render"
	urls := []string{"n1:1", "n2:1", "n3:1"}
	ringOrder := func(rt *Router) []string {
		var names []string
		for _, u := range rt.ring.Ordered(fn) {
			names = append(names, nodeName(u)+"/hash")
		}
		return names
	}
	cases := []struct {
		name  string
		setup func(rt *Router)
		want  func(rt *Router) []string
	}{
		{
			name:  "no warmth falls back to ring order",
			setup: func(rt *Router) {},
			want:  ringOrder,
		},
		{
			name: "warm node wins over ring owner",
			setup: func(rt *Router) {
				rt.setNode(t, "n2:1", true, false, map[string]int{fn: 1})
			},
			want: func(rt *Router) []string {
				want := []string{"n2:1/warm"}
				for _, h := range ringOrder(rt) {
					if h != "n2:1/hash" {
						want = append(want, h)
					}
				}
				return want
			},
		},
		{
			name: "warmest node first, ties broken by url",
			setup: func(rt *Router) {
				rt.setNode(t, "n1:1", true, false, map[string]int{fn: 1})
				rt.setNode(t, "n3:1", true, false, map[string]int{fn: 4})
			},
			want: func(rt *Router) []string {
				want := []string{"n3:1/warm", "n1:1/warm"}
				for _, h := range ringOrder(rt) {
					if h == "n2:1/hash" {
						want = append(want, h)
					}
				}
				return want
			},
		},
		{
			name: "draining node never placed even when warm",
			setup: func(rt *Router) {
				rt.setNode(t, "n2:1", true, true, map[string]int{fn: 5})
			},
			want: func(rt *Router) []string {
				var want []string
				for _, h := range ringOrder(rt) {
					if h != "n2:1/hash" {
						want = append(want, h)
					}
				}
				return want
			},
		},
		{
			name: "unhealthy node never placed",
			setup: func(rt *Router) {
				rt.setNode(t, "n1:1", false, false, map[string]int{fn: 5})
			},
			want: func(rt *Router) []string {
				var want []string
				for _, h := range ringOrder(rt) {
					if h != "n1:1/hash" {
						want = append(want, h)
					}
				}
				return want
			},
		},
		{
			name: "all down yields no candidates",
			setup: func(rt *Router) {
				for _, u := range urls {
					rt.setNode(t, u, false, false, nil)
				}
			},
			want: func(rt *Router) []string { return nil },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := bareRouter(t, PolicyWarmAware, urls...)
			tc.setup(rt)
			got := placementNames(rt.placement(fn))
			want := tc.want(rt)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("placement = %v, want %v", got, want)
			}
		})
	}
}

func TestPlacementCapsAtMaxAttempts(t *testing.T) {
	rt, err := New(Config{
		Nodes: []string{"n1:1", "n2:1", "n3:1"}, MaxAttempts: 2, PollInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.placement("fn")); got != 2 {
		t.Fatalf("placement length = %d, want MaxAttempts cap of 2", got)
	}
}

func TestPlacementRoundRobinRotates(t *testing.T) {
	rt := bareRouter(t, PolicyRoundRobin, "n1:1", "n2:1", "n3:1")
	first := map[string]int{}
	for i := 0; i < 9; i++ {
		cands := rt.placement("fn")
		if len(cands) != 3 {
			t.Fatalf("rr placement length = %d", len(cands))
		}
		if cands[0].kind != "rr" {
			t.Fatalf("rr kind = %q", cands[0].kind)
		}
		first[cands[0].n.name]++
	}
	for _, u := range []string{"n1:1", "n2:1", "n3:1"} {
		if first[u] != 3 {
			t.Fatalf("round-robin uneven: %v", first)
		}
	}
}

// Ring rebalance on membership change: joining adds a node to
// placements, leaving removes it, and surviving keys keep their
// owners (the consistent-hashing property, via Ring).
func TestPlacementRebalancesOnJoinLeave(t *testing.T) {
	rt := bareRouter(t, PolicyWarmAware, "n1:1", "n2:1")
	owners := map[string]string{}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("fn-%d", i)
		owners[key] = rt.placement(key)[0].n.name
	}
	if _, err := rt.Join("n3:1"); err != nil {
		t.Fatal(err)
	}
	movedTo3 := 0
	for key, prev := range owners {
		now := rt.placement(key)[0].n.name
		if now != prev {
			if now != "n3:1" {
				t.Fatalf("key %s moved %s -> %s on join; only the new node may gain keys", key, prev, now)
			}
			movedTo3++
		}
	}
	if movedTo3 == 0 {
		t.Fatal("new node took no keys")
	}
	if !rt.Leave("n3:1") {
		t.Fatal("Leave returned false")
	}
	for key, prev := range owners {
		if now := rt.placement(key)[0].n.name; now != prev {
			t.Fatalf("key %s did not return to %s after leave (got %s)", key, prev, now)
		}
	}
}

// --- integration tests against real daemons ---

func startNode(t *testing.T, cfg live.PoolConfig) (*live.Daemon, string) {
	t.Helper()
	d := live.NewDaemon(cfg)
	base, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d, base
}

func startRouter(t *testing.T, cfg Config) (*Router, string) {
	t.Helper()
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Hour // tests drive PollOnce explicitly
	}
	cfg.TraceSeed = 1
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := rt.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt, base
}

func deployVia(t *testing.T, base, name, handler string, coldMs int) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"handler":%q,"coldStartMs":%d}`, name, handler, coldMs)
	resp, err := http.Post(base+"/system/functions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("deploy %s: %d %s", name, resp.StatusCode, b)
	}
}

func invoke(t *testing.T, base, name, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/function/"+name, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestRoutedRequestRoundTripsWithWarmAffinity(t *testing.T) {
	_, n1 := startNode(t, live.PoolConfig{})
	_, n2 := startNode(t, live.PoolConfig{})
	rt, base := startRouter(t, Config{Nodes: []string{n1, n2}})

	deployVia(t, base, "fn", "sleep", 0)

	// Cold first request lands somewhere and leaves a warm runtime.
	first := invoke(t, base, "fn", "1")
	b, _ := io.ReadAll(first.Body)
	if first.StatusCode != http.StatusOK || string(b) != "slept 1ms" {
		t.Fatalf("first routed request = %d %q", first.StatusCode, b)
	}
	servedBy := first.Header.Get(NodeHeader)
	if servedBy == "" {
		t.Fatalf("%s header missing", NodeHeader)
	}
	if first.Header.Get(live.TraceIDHeader) == "" {
		t.Fatal("routed response carries no trace ID")
	}

	// After a poll, warmth pins the next request to the same node and
	// it reuses the runtime.
	rt.PollOnce()
	second := invoke(t, base, "fn", "1")
	io.Copy(io.Discard, second.Body)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second request = %d", second.StatusCode)
	}
	if got := second.Header.Get(NodeHeader); got != servedBy {
		t.Fatalf("warm affinity broken: first on %s, second on %s", servedBy, got)
	}
	if second.Header.Get("X-Hotc-Reused") != "true" {
		t.Fatal("second request did not reuse the warm runtime")
	}
}

func TestSpillOnSaturationSignal(t *testing.T) {
	_, n1 := startNode(t, live.PoolConfig{})
	_, n2 := startNode(t, live.PoolConfig{})
	rt, base := startRouter(t, Config{Nodes: []string{n1, n2}})
	deployVia(t, base, "fn", "sleep", 0)

	// Warm a runtime on the first-choice node, then drain that node
	// behind the router's back: the router still places there, gets
	// the 503 + drain marker, and must spill to the other node.
	first := invoke(t, base, "fn", "1")
	io.Copy(io.Discard, first.Body)
	servedBy := first.Header.Get(NodeHeader)
	rt.PollOnce()
	var drained, other string
	for _, st := range rt.Nodes() {
		if st.Name == servedBy {
			drained = st.URL
		} else {
			other = st.URL
		}
	}
	req, _ := http.NewRequest(http.MethodPost, drained+"/system/drain", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("direct drain: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	spilled := invoke(t, base, "fn", "1")
	io.Copy(io.Discard, spilled.Body)
	if spilled.StatusCode != http.StatusOK {
		t.Fatalf("spilled request = %d", spilled.StatusCode)
	}
	if got := spilled.Header.Get(NodeHeader); got != nodeName(other) {
		t.Fatalf("request served by %s, want spill to %s", got, nodeName(other))
	}
	if got := spilled.Header.Get(AttemptsHeader); got != "2" {
		t.Fatalf("attempts = %s, want 2", got)
	}
	if rt.mSpills.Value() < 1 || rt.mDrains.Value() < 1 {
		t.Fatalf("spill/drain counters = %v/%v, want both >= 1", rt.mSpills.Value(), rt.mDrains.Value())
	}
}

func TestDrainViaRouterCompletesInFlight(t *testing.T) {
	_, n1 := startNode(t, live.PoolConfig{})
	_, base := startRouter(t, Config{Nodes: []string{n1}})
	deployVia(t, base, "fn", "sleep", 0)

	type outcome struct {
		status int
		body   string
	}
	inFlight := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(base+"/function/fn", "text/plain", strings.NewReader("400"))
		if err != nil {
			inFlight <- outcome{}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inFlight <- outcome{resp.StatusCode, string(b)}
	}()
	time.Sleep(80 * time.Millisecond)

	dr, err := http.NewRequest(http.MethodPost, base+"/system/drain?url="+n1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(dr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drain via router: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// The in-flight request survives the drain...
	got := <-inFlight
	if got.status != http.StatusOK || got.body != "slept 400ms" {
		t.Fatalf("in-flight during drain = %d %q, want completion", got.status, got.body)
	}
	// ...while new placements find no usable node.
	refused := invoke(t, base, "fn", "1")
	io.Copy(io.Discard, refused.Body)
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during full drain = %d, want 503", refused.StatusCode)
	}
	if refused.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Undrain restores service.
	un, _ := http.NewRequest(http.MethodDelete, base+"/system/drain?url="+n1, nil)
	if resp, err := http.DefaultClient.Do(un); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain via router: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	restored := invoke(t, base, "fn", "1")
	io.Copy(io.Discard, restored.Body)
	if restored.StatusCode != http.StatusOK {
		t.Fatalf("post-undrain request = %d", restored.StatusCode)
	}
}

func TestJoinReplaysDeploysAndLeaveReroutes(t *testing.T) {
	_, n1 := startNode(t, live.PoolConfig{})
	_, n2 := startNode(t, live.PoolConfig{})
	_, base := startRouter(t, Config{Nodes: []string{n1}})
	deployVia(t, base, "fn", "sleep", 0)

	// Join via the management API: the routed deployment replays to
	// the newcomer.
	joinBody, _ := json.Marshal(struct {
		URL string `json:"url"`
	}{n2})
	resp, err := http.Post(base+"/system/nodes", "application/json", bytes.NewReader(joinBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d", resp.StatusCode)
	}
	list, err := http.Get(n2 + "/system/functions")
	if err != nil {
		t.Fatal(err)
	}
	var fns []string
	json.NewDecoder(list.Body).Decode(&fns)
	list.Body.Close()
	if len(fns) != 1 || fns[0] != "fn" {
		t.Fatalf("joiner functions = %v, want [fn]", fns)
	}

	// Leave the original node: requests must reroute to the joiner.
	del, _ := http.NewRequest(http.MethodDelete, base+"/system/nodes?url="+n1, nil)
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("leave = %d", dresp.StatusCode)
	}
	after := invoke(t, base, "fn", "1")
	io.Copy(io.Discard, after.Body)
	if after.StatusCode != http.StatusOK {
		t.Fatalf("post-leave request = %d", after.StatusCode)
	}
	if got := after.Header.Get(NodeHeader); got != nodeName(n2) {
		t.Fatalf("post-leave request served by %s, want %s", got, nodeName(n2))
	}
}

// One trace must cross router -> node -> watchdog: the caller's trace
// ID survives to the response header and to the serving node's span
// ring (cold-start spans are always kept by the tail sampler).
func TestTracePropagatesAcrossTiers(t *testing.T) {
	_, n1 := startNode(t, live.PoolConfig{})
	_, base := startRouter(t, Config{Nodes: []string{n1}})
	deployVia(t, base, "fn", "sleep", 0)

	const traceID = "0123456789abcdef0123456789abcdef"
	req, _ := http.NewRequest(http.MethodPost, base+"/function/fn", strings.NewReader("1"))
	req.Header.Set(live.TraceparentHeader, "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced request = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(live.TraceIDHeader); got != traceID {
		t.Fatalf("response trace ID = %q, want %q", got, traceID)
	}

	spans, err := http.Get(n1 + "/system/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Spans []struct {
			TraceID string `json:"traceId"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(spans.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	spans.Body.Close()
	for _, s := range tr.Spans {
		if s.TraceID == traceID {
			return
		}
	}
	t.Fatalf("node's span ring has no span for trace %s (%d spans)", traceID, len(tr.Spans))
}

// Acceptance: killing a node mid-load loses no accepted requests —
// every request either lands on the dead node's successor via spill
// or routes around it once the probe misses accumulate.
func TestNodeKillMidLoadLosesNoRequests(t *testing.T) {
	victim, n1 := startNode(t, live.PoolConfig{})
	_, n2 := startNode(t, live.PoolConfig{})
	_, base := startRouter(t, Config{Nodes: []string{n1, n2}, ProbeFailures: 2})
	deployVia(t, base, "fn", "sleep", 0)

	const workers, perWorker = 4, 15
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	var once sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i == perWorker/2 {
					once.Do(victim.Stop) // kill mid-load, exactly once
				}
				resp, err := http.Post(base+"/function/fn", "text/plain", strings.NewReader("5"))
				if err != nil {
					errs <- err.Error()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d from %s", resp.StatusCode, resp.Header.Get(NodeHeader))
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	var failed []string
	for e := range errs {
		failed = append(failed, e)
	}
	if len(failed) > 0 {
		t.Fatalf("%d/%d requests lost across the node kill: %v",
			len(failed), workers*perWorker, failed[:min(3, len(failed))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Router-vs-node-churn under the race detector: invocations race
// joins, leaves, drains and polls. Every request must still succeed —
// churned state only ever removes a node the spill chain can route
// around.
func TestChurnUnderLoad(t *testing.T) {
	stable, s1 := startNode(t, live.PoolConfig{})
	_ = stable
	_, s2 := startNode(t, live.PoolConfig{})
	churnD, churnURL := startNode(t, live.PoolConfig{})
	_ = churnD
	rt, base := startRouter(t, Config{Nodes: []string{s1, s2}, MaxAttempts: 3})
	deployVia(t, base, "fn", "sleep", 0)
	// The churning node serves fn from the start so a request that
	// lands there mid-join always round-trips.
	deployVia(t, churnURL, "fn", "sleep", 0)

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(2)
	go func() { // membership churn
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt.Join(churnURL)
			time.Sleep(5 * time.Millisecond)
			rt.Leave(churnURL)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() { // drain churn + polls
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt.Drain(s2, true)
			rt.PollOnce()
			time.Sleep(5 * time.Millisecond)
			rt.Drain(s2, false)
			rt.PollOnce()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	const workers, perWorker = 4, 20
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(base+"/function/fn", "text/plain", strings.NewReader("2"))
				if err != nil {
					errs <- err.Error()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
	close(errs)
	var failed []string
	for e := range errs {
		failed = append(failed, e)
	}
	if len(failed) > 0 {
		t.Fatalf("%d/%d requests failed under churn: %v", len(failed), workers*perWorker, failed[:min(3, len(failed))])
	}
}

// Deploy fan-out reaches every member, so any placement can serve the
// key.
func TestDeployFansOutToAllNodes(t *testing.T) {
	_, n1 := startNode(t, live.PoolConfig{})
	_, n2 := startNode(t, live.PoolConfig{})
	_, base := startRouter(t, Config{Nodes: []string{n1, n2}})
	deployVia(t, base, "fn", "echo", 0)
	for _, n := range []string{n1, n2} {
		resp, err := http.Get(n + "/system/functions")
		if err != nil {
			t.Fatal(err)
		}
		var fns []string
		json.NewDecoder(resp.Body).Decode(&fns)
		resp.Body.Close()
		if len(fns) != 1 || fns[0] != "fn" {
			t.Fatalf("node %s functions = %v, want [fn]", n, fns)
		}
	}
}
