package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"hotc/internal/faas/live"
	"hotc/internal/obs"
)

// Response headers the router adds on top of the node's own.
const (
	// NodeHeader names the node that served the request.
	NodeHeader = "X-Hotc-Node"
	// AttemptsHeader counts placements tried, 1 = first choice.
	AttemptsHeader = "X-Hotc-Router-Attempts"
)

// candidate is one node in a request's fallback chain.
type candidate struct {
	n *node
	// kind is the placement outcome if this candidate serves as the
	// first attempt: warm, hash or rr. Any later attempt is a spill.
	kind string
}

// placement builds the ordered fallback chain for a function:
// warm-affinity first (most advertised warm instances wins), then the
// hash ring from the key's owner, capped at MaxAttempts. Unhealthy
// and draining nodes never appear.
func (rt *Router) placement(fn string) []candidate {
	rt.mu.RLock()
	ringOrder := rt.ring.Ordered(fn)
	byURL := make(map[string]*node, len(rt.nodes))
	for u, n := range rt.nodes {
		byURL[u] = n
	}
	rt.mu.RUnlock()

	// usable holds each placeable node's warm count for fn, read once
	// so ordering is consistent even while the poller updates.
	usable := make(map[string]int, len(byURL))
	for u, n := range byURL {
		n.mu.Lock()
		ok := n.healthy && !n.draining
		w := n.warm[fn]
		n.mu.Unlock()
		if ok {
			usable[u] = w
		}
	}
	if len(usable) == 0 {
		return nil
	}

	var out []candidate
	if rt.cfg.Policy == PolicyRoundRobin {
		urls := make([]string, 0, len(usable))
		for u := range usable {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		start := int(rt.rr.Add(1)-1) % len(urls)
		for i := range urls {
			out = append(out, candidate{byURL[urls[(start+i)%len(urls)]], "rr"})
		}
	} else {
		warmURLs := make([]string, 0, len(usable))
		for u, w := range usable {
			if w > 0 {
				warmURLs = append(warmURLs, u)
			}
		}
		sort.Slice(warmURLs, func(i, j int) bool {
			if usable[warmURLs[i]] != usable[warmURLs[j]] {
				return usable[warmURLs[i]] > usable[warmURLs[j]]
			}
			return warmURLs[i] < warmURLs[j]
		})
		seen := make(map[string]bool, len(usable))
		for _, u := range warmURLs {
			seen[u] = true
			out = append(out, candidate{byURL[u], "warm"})
		}
		for _, u := range ringOrder {
			if _, ok := usable[u]; ok && !seen[u] {
				seen[u] = true
				out = append(out, candidate{byURL[u], "hash"})
			}
		}
	}
	if len(out) > rt.cfg.MaxAttempts {
		out = out[:rt.cfg.MaxAttempts]
	}
	return out
}

// Routes builds the router's HTTP mux.
func (rt *Router) Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", rt.handleFunction)
	mux.HandleFunc("/system/functions", rt.handleFunctions)
	mux.HandleFunc("/system/nodes", rt.handleNodes)
	mux.HandleFunc("/system/drain", rt.handleDrain)
	mux.HandleFunc("/system/stats", rt.handleStats)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rt.reg.WritePrometheus(w)
	})
	return mux
}

// saturated reports whether an upstream status is a spill signal: the
// node is shedding (429) or refusing placements (503, including
// drain).
func saturated(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

func (rt *Router) handleFunction(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	if name == "" || strings.ContainsRune(name, '/') {
		http.Error(w, "router: use /function/<name>", http.StatusNotFound)
		return
	}
	start := time.Now()

	// One trace crosses router -> node -> watchdog: adopt the caller's
	// trace ID when the traceparent is valid, mint one otherwise, and
	// hand the node a child context whose parent is the router's span.
	tc, ok := obs.ParseTraceparent(r.Header.Get(live.TraceparentHeader))
	if !ok {
		tc = obs.TraceContext{TraceID: rt.ids.NewTraceID(), Flags: 1}
	}
	tc.SpanID = rt.ids.NewSpanID()
	traceparent := tc.Traceparent()

	// Bodies up to SpillMaxBody buffer for replay so a spill can
	// resend them; larger bodies stream to the first candidate only.
	var buf []byte
	var tail io.Reader
	replayable := true
	if r.Body != nil {
		b, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.SpillMaxBody+1))
		if err != nil {
			http.Error(w, "router: reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(b)) > rt.cfg.SpillMaxBody {
			replayable = false
			tail = io.MultiReader(bytes.NewReader(b), r.Body)
		} else {
			buf = b
		}
	}

	cands := rt.placement(name)
	if len(cands) == 0 {
		rt.finish(w, "no_node", start, tc, 0, nil, nil)
		return
	}
	var lastResp *http.Response
	var lastNode *node
	attempts := 0
	for i, c := range cands {
		if i > 0 && !replayable {
			break
		}
		attempts++
		// Optimistically consume one cached warm slot so concurrent
		// requests between polls spread instead of dogpiling.
		c.n.mu.Lock()
		if c.n.warm[name] > 0 {
			c.n.warm[name]--
		}
		c.n.mu.Unlock()

		var body io.Reader = tail
		if replayable {
			body = bytes.NewReader(buf)
		}
		resp, err := rt.forward(r, c.n, name, body, traceparent)
		if err != nil {
			// Transport failure: the node is likely gone. Count it
			// towards the probe threshold and spill.
			rt.recordMiss(c.n)
			if i < len(cands)-1 && replayable {
				rt.mSpills.Inc()
			}
			continue
		}
		if saturated(resp.StatusCode) {
			if resp.Header.Get(live.DrainingHeader) == "true" {
				rt.mDrains.Inc()
			}
			if i < len(cands)-1 && replayable {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rt.mSpills.Inc()
				continue
			}
			lastResp, lastNode = resp, c.n
			break
		}
		outcome := c.kind
		if i > 0 {
			outcome = "spill"
		}
		rt.finish(w, outcome, start, tc, attempts, c.n, resp)
		return
	}
	// Every candidate was saturated or unreachable. Relay the last
	// saturation response when there is one (it carries Retry-After
	// and the drain marker); otherwise synthesize a 503.
	rt.finish(w, "error", start, tc, attempts, lastNode, lastResp)
}

// forward proxies the request to one node, propagating headers and
// the router's trace context.
func (rt *Router) forward(orig *http.Request, n *node, name string, body io.Reader, traceparent string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(orig.Context(), orig.Method, n.url+"/function/"+name, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range orig.Header {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Content-Length":
			continue
		}
		req.Header[k] = vs
	}
	req.Header.Set(live.TraceparentHeader, traceparent)
	return rt.client.Do(req)
}

// finish relays the upstream response (or synthesizes a failure),
// stamps the router headers and records the request metrics.
func (rt *Router) finish(w http.ResponseWriter, outcome string, start time.Time, tc obs.TraceContext, attempts int, n *node, resp *http.Response) {
	rt.mRequests.With(outcome).Inc()
	rt.mLatency.With(outcome).ObserveDuration(time.Since(start))

	h := w.Header()
	status := http.StatusServiceUnavailable
	var body io.ReadCloser
	if resp != nil {
		for k, vs := range resp.Header {
			h[k] = vs
		}
		status = resp.StatusCode
		body = resp.Body
	}
	if n != nil {
		h.Set(NodeHeader, n.name)
	}
	if attempts > 0 {
		h.Set(AttemptsHeader, strconv.Itoa(attempts))
	}
	if h.Get(live.TraceIDHeader) == "" {
		h.Set(live.TraceIDHeader, tc.TraceIDString())
	}
	if resp == nil {
		h.Set("Retry-After", "1")
		msg := "router: no node accepted the request"
		if outcome == "no_node" {
			msg = "router: no healthy node available"
		}
		http.Error(w, msg, status)
		return
	}
	w.WriteHeader(status)
	io.Copy(w, body)
	body.Close()
}

// handleFunctions fans a deployment out to every member (so any node
// can serve any key) and records it for replay to late joiners; GET
// proxies the listing from the first healthy node.
func (rt *Router) handleFunctions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		statuses := rt.Nodes()
		if len(statuses) == 0 {
			http.Error(w, "router: no members", http.StatusServiceUnavailable)
			return
		}
		okCount := 0
		var firstErr string
		for _, st := range statuses {
			resp, err := rt.client.Post(st.URL+"/system/functions", "application/json", bytes.NewReader(body))
			if err != nil {
				if firstErr == "" {
					firstErr = err.Error()
				}
				continue
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				if firstErr == "" {
					firstErr = fmt.Sprintf("%s: %s", st.Name, strings.TrimSpace(string(b)))
				}
				continue
			}
			okCount++
		}
		if okCount == 0 {
			http.Error(w, "router: deploy failed on every node: "+firstErr, http.StatusBadGateway)
			return
		}
		rt.mu.Lock()
		rt.deploys = append(rt.deploys, body)
		rt.mu.Unlock()
		writeJSON(w, http.StatusAccepted, struct {
			Deployed int    `json:"deployedNodes"`
			Total    int    `json:"totalNodes"`
			Error    string `json:"error,omitempty"`
		}{okCount, len(statuses), firstErr})
	case http.MethodGet:
		for _, st := range rt.Nodes() {
			if !st.Healthy {
				continue
			}
			resp, err := rt.client.Get(st.URL + "/system/functions")
			if err != nil {
				continue
			}
			defer resp.Body.Close()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
			return
		}
		writeJSON(w, http.StatusOK, []string{})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleNodes is the membership API: GET lists, POST {"url"} joins,
// DELETE ?url= leaves.
func (rt *Router) handleNodes(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, rt.Nodes())
	case http.MethodPost:
		var req struct {
			URL string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		u, err := rt.Join(req.URL)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rt.PollOnce()
		writeJSON(w, http.StatusOK, struct {
			URL   string `json:"url"`
			Nodes int    `json:"nodes"`
		}{u, len(rt.Nodes())})
	case http.MethodDelete:
		u := r.URL.Query().Get("url")
		if u == "" {
			http.Error(w, "router: ?url= required", http.StatusBadRequest)
			return
		}
		if !rt.Leave(u) {
			http.Error(w, "router: not a member", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Nodes int `json:"nodes"`
		}{len(rt.Nodes())})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleDrain forwards a drain (POST) or undrain (DELETE) to the node
// named by ?url= and updates the router's placement state in the same
// step.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodDelete {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	u := r.URL.Query().Get("url")
	if u == "" {
		http.Error(w, "router: ?url= required", http.StatusBadRequest)
		return
	}
	if err := rt.Drain(u, r.Method == http.MethodPost); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		URL      string `json:"url"`
		Draining bool   `json:"draining"`
	}{u, r.Method == http.MethodPost})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	nodes := rt.Nodes()
	healthy := 0
	for _, n := range nodes {
		if n.Healthy {
			healthy++
		}
	}
	rt.mu.RLock()
	deploys := len(rt.deploys)
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, struct {
		Policy       Policy       `json:"policy"`
		Nodes        []NodeStatus `json:"nodes"`
		Healthy      int          `json:"healthyNodes"`
		Deployments  int          `json:"routedDeployments"`
		PollInterval string       `json:"pollInterval"`
	}{rt.cfg.Policy, nodes, healthy, deploys, rt.cfg.PollInterval.String()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
