package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotc/internal/obs"
)

// Policy selects how the router places requests.
type Policy string

// The placement policies.
const (
	// PolicyWarmAware is the default: warm-affinity first, then the
	// consistent-hash owner, spilling to ring successors on
	// saturation.
	PolicyWarmAware Policy = "warm"
	// PolicyRoundRobin ignores warmth and hashing — the baseline the
	// cluster bench compares against.
	PolicyRoundRobin Policy = "rr"
)

// Config tunes the router.
type Config struct {
	// Nodes are the initial hotcd base URLs (scheme optional).
	Nodes []string
	// Policy selects placement (default PolicyWarmAware).
	Policy Policy
	// VNodes is the virtual-node multiplier (default DefaultVNodes).
	VNodes int
	// PollInterval is the stats-poll/health-probe period (default
	// 500ms).
	PollInterval time.Duration
	// ProbeFailures is how many consecutive missed probes mark a node
	// unhealthy (default 3). A transport error on a proxied request
	// counts as a missed probe, so a killed node is usually out of
	// rotation before its next poll.
	ProbeFailures int
	// MaxAttempts bounds the fallback chain per request: the first
	// placement plus spills (default 3, clamped to the node count).
	MaxAttempts int
	// SpillMaxBody is the largest request body buffered for replay on
	// spill (default 1 MiB). Larger bodies stream to the first
	// candidate only.
	SpillMaxBody int64
	// Registry receives hotc_router_* metrics (nil = a private one).
	Registry *obs.Registry
	// Client overrides the upstream HTTP client (tests).
	Client *http.Client
	// TraceSeed seeds the trace-ID generator (0 = random).
	TraceSeed uint64
}

// node is the router's view of one hotcd.
type node struct {
	// url is the normalized base URL ("http://host:port").
	url string
	// name labels metrics and response headers (host:port).
	name string

	mu       sync.Mutex
	healthy  bool
	draining bool
	// warm is the latest polled per-function warm-instance count,
	// decremented optimistically on placement so concurrent requests
	// spread instead of dogpiling one warm node between polls.
	warm   map[string]int
	misses int
	// lastPoll is when the node last answered a probe.
	lastPoll time.Time
}

func (n *node) snapshot() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	warm := make(map[string]int, len(n.warm))
	total := 0
	for k, v := range n.warm {
		warm[k] = v
		total += v
	}
	return NodeStatus{
		URL: n.url, Name: n.name, Healthy: n.healthy, Draining: n.draining,
		Warm: warm, WarmTotal: total, Misses: n.misses,
	}
}

// NodeStatus is one node's state in the /system/nodes listing.
type NodeStatus struct {
	URL       string         `json:"url"`
	Name      string         `json:"name"`
	Healthy   bool           `json:"healthy"`
	Draining  bool           `json:"draining"`
	Warm      map[string]int `json:"warmInstances,omitempty"`
	WarmTotal int            `json:"warmTotal"`
	Misses    int            `json:"probeMisses"`
}

// Router is the front tier: it owns the membership ring, polls every
// node's /system/stats for warmth and drain state, and proxies
// /function/ requests to the placement the policy picks.
type Router struct {
	cfg    Config
	reg    *obs.Registry
	ids    *obs.IDGen
	client *http.Client

	mu    sync.RWMutex
	ring  *Ring
	nodes map[string]*node
	// deploys replays through-the-router deployments to late joiners,
	// so a node added mid-run serves the same functions.
	deploys [][]byte

	rr atomic.Uint64

	srv      *http.Server
	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	mRequests  *obs.CounterVec
	mLatency   *obs.HistogramVec
	mSpills    *obs.Counter
	mHealthy   *obs.GaugeVec
	mWarm      *obs.GaugeVec
	mPollErrs  *obs.CounterVec
	mNodes     *obs.Gauge
	mDrains    *obs.Counter
	mMembershp *obs.CounterVec
}

// New builds a router over the configured nodes. Nodes are assumed
// healthy until the first probe says otherwise, so a freshly started
// cluster serves immediately.
func New(cfg Config) (*Router, error) {
	if cfg.Policy == "" {
		cfg.Policy = PolicyWarmAware
	}
	if cfg.Policy != PolicyWarmAware && cfg.Policy != PolicyRoundRobin {
		return nil, fmt.Errorf("router: unknown policy %q", cfg.Policy)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 3
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.SpillMaxBody <= 0 {
		cfg.SpillMaxBody = 1 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.New()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	rt := &Router{
		cfg:    cfg,
		reg:    reg,
		ids:    obs.NewIDGen(cfg.TraceSeed),
		client: client,
		ring:   NewRing(cfg.VNodes),
		nodes:  make(map[string]*node),
		stopCh: make(chan struct{}),
	}
	rt.mRequests = reg.CounterVec("hotc_router_requests_total",
		"Routed invocations by placement outcome: warm (warm-affinity hit), hash (ring owner), spill (ring successor after saturation), rr (round-robin policy), no_node (no healthy target), error (every attempt failed).",
		"outcome")
	rt.mLatency = reg.HistogramVec("hotc_router_request_duration_ms",
		"End-to-end routed request latency in milliseconds, labeled by placement outcome.",
		obs.DefaultLatencyBucketsMS(), "outcome")
	rt.mSpills = reg.Counter("hotc_router_spill_attempts_total",
		"Fallback hops to a ring successor after a 429/503 or transport error.")
	rt.mHealthy = reg.GaugeVec("hotc_router_node_healthy",
		"1 when the node is answering probes, 0 after ProbeFailures consecutive misses.",
		"node")
	rt.mWarm = reg.GaugeVec("hotc_router_node_warm_instances",
		"Warm instances the node advertised at its last poll, summed across functions.",
		"node")
	rt.mPollErrs = reg.CounterVec("hotc_router_poll_failures_total",
		"Stats probes that failed, per node.",
		"node")
	rt.mNodes = reg.Gauge("hotc_router_nodes",
		"Current membership size.")
	rt.mDrains = reg.Counter("hotc_router_drain_rejections_total",
		"Placements refused by a draining node and retried elsewhere.")
	rt.mMembershp = reg.CounterVec("hotc_router_membership_changes_total",
		"Join and leave operations.",
		"op")
	for _, u := range cfg.Nodes {
		if _, err := rt.Join(u); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// Registry exposes the router's metrics registry (served at /metrics).
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// normalizeURL defaults the scheme and strips a trailing slash.
func normalizeURL(u string) (string, error) {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return "", fmt.Errorf("router: empty node URL")
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		return "", fmt.Errorf("router: unsupported node URL %q", u)
	}
	return u, nil
}

func nodeName(url string) string {
	name := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	return name
}

// Join adds a node to the ring and replays deployments made through
// the router so the newcomer serves the same functions. It reports
// the normalized URL.
func (rt *Router) Join(rawURL string) (string, error) {
	u, err := normalizeURL(rawURL)
	if err != nil {
		return "", err
	}
	rt.mu.Lock()
	if _, ok := rt.nodes[u]; ok {
		rt.mu.Unlock()
		return u, nil
	}
	n := &node{url: u, name: nodeName(u), healthy: true, warm: map[string]int{}}
	rt.nodes[u] = n
	rt.ring.Add(u)
	replay := make([][]byte, len(rt.deploys))
	copy(replay, rt.deploys)
	size := len(rt.nodes)
	rt.mu.Unlock()

	rt.mNodes.Set(float64(size))
	rt.mHealthy.With(n.name).Set(1)
	rt.mMembershp.With("join").Inc()
	for _, body := range replay {
		resp, err := rt.client.Post(u+"/system/functions", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return u, nil
}

// Leave removes a node from the ring, reporting whether it was a
// member. In-flight requests to it complete; new placements skip it
// immediately.
func (rt *Router) Leave(rawURL string) bool {
	u, err := normalizeURL(rawURL)
	if err != nil {
		return false
	}
	rt.mu.Lock()
	n, ok := rt.nodes[u]
	if ok {
		delete(rt.nodes, u)
		rt.ring.Remove(u)
	}
	size := len(rt.nodes)
	rt.mu.Unlock()
	if !ok {
		return false
	}
	rt.mNodes.Set(float64(size))
	rt.mHealthy.With(n.name).Set(0)
	rt.mWarm.With(n.name).Set(0)
	rt.mMembershp.With("leave").Inc()
	return true
}

// Drain toggles a member's drain state: the node's /system/drain is
// called and the router stops (or resumes) placing new work there
// without waiting for the next poll.
func (rt *Router) Drain(rawURL string, on bool) error {
	u, err := normalizeURL(rawURL)
	if err != nil {
		return err
	}
	rt.mu.RLock()
	n, ok := rt.nodes[u]
	rt.mu.RUnlock()
	if !ok {
		return fmt.Errorf("router: %s is not a member", u)
	}
	method := http.MethodPost
	if !on {
		method = http.MethodDelete
	}
	req, err := http.NewRequest(method, u+"/system/drain", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return fmt.Errorf("router: drain %s: %w", u, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: drain %s: status %d", u, resp.StatusCode)
	}
	n.mu.Lock()
	n.draining = on
	n.mu.Unlock()
	return nil
}

// Nodes returns every member's status, sorted by URL.
func (rt *Router) Nodes() []NodeStatus {
	rt.mu.RLock()
	members := make([]*node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		members = append(members, n)
	}
	rt.mu.RUnlock()
	out := make([]NodeStatus, 0, len(members))
	for _, n := range members {
		out = append(out, n.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// nodeStats is the slice of hotcd's /system/stats the poller reads.
type nodeStats struct {
	Draining bool           `json:"draining"`
	Warm     map[string]int `json:"warmInstances"`
}

// PollOnce probes every member once, synchronously — the poll loop's
// body, exported so tests drive probes deterministically.
func (rt *Router) PollOnce() {
	rt.mu.RLock()
	members := make([]*node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		members = append(members, n)
	}
	rt.mu.RUnlock()
	var wg sync.WaitGroup
	for _, n := range members {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			rt.probe(n)
		}(n)
	}
	wg.Wait()
}

func (rt *Router) probe(n *node) {
	resp, err := rt.client.Get(n.url + "/system/stats")
	if err != nil {
		rt.recordMiss(n)
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		rt.recordMiss(n)
		return
	}
	var st nodeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		rt.recordMiss(n)
		return
	}
	total := 0
	for _, v := range st.Warm {
		total += v
	}
	n.mu.Lock()
	n.healthy = true
	n.misses = 0
	n.draining = st.Draining
	n.warm = st.Warm
	if n.warm == nil {
		n.warm = map[string]int{}
	}
	n.lastPoll = time.Now()
	n.mu.Unlock()
	rt.mHealthy.With(n.name).Set(1)
	rt.mWarm.With(n.name).Set(float64(total))
}

// recordMiss counts a failed probe (or a transport error on a proxied
// request) and flips the node unhealthy at the threshold.
func (rt *Router) recordMiss(n *node) {
	rt.mPollErrs.With(n.name).Inc()
	n.mu.Lock()
	n.misses++
	wentDown := n.healthy && n.misses >= rt.cfg.ProbeFailures
	if wentDown {
		n.healthy = false
	}
	n.mu.Unlock()
	if wentDown {
		rt.mHealthy.With(n.name).Set(0)
	}
}

func (rt *Router) pollLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-t.C:
			rt.PollOnce()
		}
	}
}

// Start binds the router to a random loopback port. It returns the
// base URL.
func (rt *Router) Start() (string, error) {
	return rt.StartOn("127.0.0.1:0")
}

// StartOn binds the router to an explicit address and launches the
// poll loop.
func (rt *Router) StartOn(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rt.srv = &http.Server{Handler: rt.Routes()}
	rt.wg.Add(2)
	go func() {
		defer rt.wg.Done()
		rt.srv.Serve(ln)
	}()
	go rt.pollLoop()
	rt.PollOnce()
	return "http://" + ln.Addr().String(), nil
}

// Stop shuts the listener and poll loop down.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() {
		close(rt.stopCh)
		if rt.srv != nil {
			rt.srv.Close()
		}
	})
	rt.wg.Wait()
}
