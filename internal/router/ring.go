// Package router is the multi-node front tier: an HTTP reverse proxy
// that places function invocations across a fleet of hotcd nodes. The
// paper's runtime-reuse economics only pay off when requests for a
// function keep landing where its warm runtimes live, so placement is
// a consistent-hash ring over function keys biased by each node's
// advertised warm-instance count, with bounded spill to ring
// successors when the preferred node is saturated or draining.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node multiplier: enough points that a
// three-node ring splits keys within a few percent of evenly, small
// enough that membership changes rebuild in microseconds.
const DefaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes. A key hashes to
// a point on the ring and is owned by the first virtual node at or
// after it; removing a node moves only that node's keys. Not
// concurrency-safe — the Router guards it with its membership lock.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	// points are the virtual nodes sorted by hash; each carries the
	// physical node it stands for.
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates an empty ring with the given virtual-node count per
// physical node (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hashKey is FNV-1a with a murmur-style finalizer: raw FNV leaves
// vnode labels that differ only in a suffix digit clustered, which
// skews ring ownership badly; the avalanche spreads them.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a node's virtual nodes. Adding a present node is a
// no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hashKey(node + "#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and its virtual nodes, reporting whether it
// was present.
func (r *Ring) Remove(node string) bool {
	if !r.nodes[node] {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Len reports the physical node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the physical nodes, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	o := r.Ordered(key)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// Ordered returns every distinct node in ring order starting at key's
// owner — the owner first, then the successors a saturated request
// spills to. Walking from the key's ring position keeps the spill
// target stable per key, so retries concentrate warmth instead of
// scattering it.
func (r *Ring) Ordered(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	out := make([]string, 0, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
