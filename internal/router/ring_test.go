package router

import (
	"fmt"
	"testing"
)

func TestRingOwnerStableAndComplete(t *testing.T) {
	r := NewRing(0)
	if r.Owner("k") != "" {
		t.Fatal("empty ring owns keys")
	}
	nodes := []string{"http://a", "http://b", "http://c"}
	for _, n := range nodes {
		r.Add(n)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("fn-%d", i)
		o1, o2 := r.Owner(key), r.Owner(key)
		if o1 == "" || o1 != o2 {
			t.Fatalf("unstable owner for %s: %s vs %s", key, o1, o2)
		}
	}
	// Ordered visits every node exactly once, owner first.
	ord := r.Ordered("some-key")
	if len(ord) != 3 || ord[0] != r.Owner("some-key") {
		t.Fatalf("Ordered = %v, owner %s", ord, r.Owner("some-key"))
	}
	seen := map[string]bool{}
	for _, n := range ord {
		if seen[n] {
			t.Fatalf("Ordered repeats %s", n)
		}
		seen[n] = true
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("http://node-%d", i))
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("fn-%d", i))]++
	}
	for n, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.0f%% of keys — ring badly unbalanced: %v", n, frac*100, counts)
		}
	}
}

// The consistent-hashing property: removing a node moves only the
// keys it owned; every other key keeps its owner.
func TestRingRemoveMovesOnlyDepartedKeys(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a", "http://b", "http://c"}
	for _, n := range nodes {
		r.Add(n)
	}
	before := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("fn-%d", i)
		before[k] = r.Owner(k)
	}
	if !r.Remove("http://b") {
		t.Fatal("Remove returned false for a member")
	}
	if r.Remove("http://b") {
		t.Fatal("Remove returned true for a non-member")
	}
	moved := 0
	for k, prev := range before {
		now := r.Owner(k)
		if prev == "http://b" {
			if now == "http://b" || now == "" {
				t.Fatalf("key %s still owned by removed node", k)
			}
			moved++
		} else if now != prev {
			t.Fatalf("key %s moved from %s to %s though its owner stayed", k, prev, now)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys — test vacuous")
	}
	// Re-adding restores the original ownership exactly.
	r.Add("http://b")
	for k, prev := range before {
		if got := r.Owner(k); got != prev {
			t.Fatalf("after re-add, key %s owned by %s, was %s", k, got, prev)
		}
	}
}
