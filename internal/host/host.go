// Package host models the physical machine under the container
// engine: its resource capacity (the paper's Dell T430 server and
// Raspberry Pi 3 profiles) and a periodic resource monitor that
// reproduces the Fig. 15 measurements — CPU and memory usage as a
// function of the number of live containers and of a containerised
// application's lifecycle.
//
// The monitor's memory signal also implements the paper's §IV.B
// heuristic: HotC "identif[ies] the memory pressure through monitoring
// used_mem and used_swap in the kernel"; here UsedMemPct is that
// heuristic's simulated equivalent and feeds the pool's eviction
// threshold.
package host

import (
	"time"

	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/metrics"
	"hotc/internal/simclock"
)

// Host couples a hardware profile with the engine running on it.
type Host struct {
	prof costmodel.Profile
	eng  *container.Engine
}

// New returns a Host for the engine's profile.
func New(eng *container.Engine) *Host {
	if eng == nil {
		panic("host: nil engine")
	}
	return &Host{prof: eng.Model().P, eng: eng}
}

// Profile returns the hardware profile.
func (h *Host) Profile() costmodel.Profile { return h.prof }

// UsedMemMB reports current memory usage: the OS base footprint, the
// idle cost of live containers (~0.7 MB each, Fig. 15a) and the
// resident memory of executing workloads.
func (h *Host) UsedMemMB() float64 {
	return h.prof.BaseMemMB + h.eng.IdleOverheadMemMB() + h.eng.ActiveMemMB()
}

// UsedSwapMB reports simulated swap usage: demand beyond physical
// memory spills to swap. This is the second half of the paper's §IV.B
// heuristic ("monitoring used_mem and used_swap in the kernel").
func (h *Host) UsedSwapMB() float64 {
	over := h.UsedMemMB() - h.prof.TotalMemoryMB
	if over < 0 {
		return 0
	}
	return over
}

// UsedMemPct reports memory usage as a percentage of the host's
// physical memory — the pool's eviction signal. Any swap usage pins
// the signal above 100, so the pool sheds containers aggressively when
// the host is thrashing.
func (h *Host) UsedMemPct() float64 {
	return 100 * h.UsedMemMB() / h.prof.TotalMemoryMB
}

// UnderMemoryPressure applies the paper's heuristic directly: memory
// above the threshold percentage, or any swap in use.
func (h *Host) UnderMemoryPressure(thresholdPct float64) bool {
	return h.UsedMemPct() >= thresholdPct || h.UsedSwapMB() > 0
}

// UsedCPUPct reports current CPU usage in percent of one core-set
// (0-100 scale like the paper's plots): OS base, idle container
// overhead, and executing workloads, saturating at 100.
func (h *Host) UsedCPUPct() float64 {
	v := h.prof.BaseCPUPct + h.eng.IdleOverheadCPUPct() + h.eng.ActiveCPUPct()
	if v > 100 {
		v = 100
	}
	return v
}

// Monitor samples host resources on a fixed interval into time series,
// producing the Fig. 15 plots.
type Monitor struct {
	// CPU and Mem are the sampled series (percent and MB).
	CPU metrics.TimeSeries
	Mem metrics.TimeSeries

	host  *Host
	sched *simclock.Scheduler
	stop  func()
}

// NewMonitor creates a monitor for the host on the given scheduler.
func NewMonitor(h *Host, sched *simclock.Scheduler) *Monitor {
	if h == nil || sched == nil {
		panic("host: NewMonitor requires host and scheduler")
	}
	return &Monitor{host: h, sched: sched}
}

// Start begins sampling every interval. It panics if already running.
func (m *Monitor) Start(interval time.Duration) {
	if m.stop != nil {
		panic("host: monitor already running")
	}
	sample := func() {
		now := m.sched.Now()
		m.CPU.Add(now, m.host.UsedCPUPct())
		m.Mem.Add(now, m.host.UsedMemMB())
	}
	sample() // t=0 sample
	m.stop = m.sched.Every(interval, sample)
}

// Stop halts sampling. Safe to call when not running.
func (m *Monitor) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}
