package host

import (
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

type fixture struct {
	sched *simclock.Scheduler
	eng   *container.Engine
	host  *Host
	reg   *image.Registry
}

func newFixture(t *testing.T, prof costmodel.Profile) *fixture {
	t.Helper()
	sched := simclock.New()
	reg := image.StandardCatalog()
	eng := container.NewEngine(sched, costmodel.New(prof), reg, image.NewCache(), nil)
	return &fixture{sched: sched, eng: eng, host: New(eng), reg: reg}
}

func (f *fixture) create(t *testing.T, img string) *container.Container {
	t.Helper()
	spec, err := container.ResolveSpec(config.Runtime{Image: img}, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	var ctr *container.Container
	f.eng.Create(spec, func(c *container.Container, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ctr = c
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	return ctr
}

func TestBaselineUsage(t *testing.T) {
	f := newFixture(t, costmodel.Server())
	if f.host.UsedMemMB() != costmodel.Server().BaseMemMB {
		t.Fatalf("empty host mem = %v", f.host.UsedMemMB())
	}
	if f.host.UsedCPUPct() != costmodel.Server().BaseCPUPct {
		t.Fatalf("empty host cpu = %v", f.host.UsedCPUPct())
	}
}

// Fig. 15(a): live containers barely move the needle — ten containers
// add <1% CPU and ~0.7 MB each of memory.
func TestFig15aIdleContainerOverhead(t *testing.T) {
	f := newFixture(t, costmodel.Server())
	base := f.host.UsedMemMB()
	baseCPU := f.host.UsedCPUPct()
	for i := 0; i < 10; i++ {
		f.create(t, "alpine:3.9")
	}
	memDelta := f.host.UsedMemMB() - base
	cpuDelta := f.host.UsedCPUPct() - baseCPU
	if memDelta < 6.5 || memDelta > 7.5 {
		t.Fatalf("10 containers added %v MB, want ~7", memDelta)
	}
	if cpuDelta >= 1 {
		t.Fatalf("10 containers added %v%% CPU, want < 1%%", cpuDelta)
	}
}

// Fig. 15(b): a heavy application dominates resource usage while it
// executes; the live container left behind costs almost nothing.
func TestFig15bApplicationLifecycle(t *testing.T) {
	f := newFixture(t, costmodel.Server())
	c := f.create(t, "cassandra:3.11")
	app := workload.Cassandra()

	mon := NewMonitor(f.host, f.sched)
	mon.Start(time.Second)

	idleMem := f.host.UsedMemMB()
	var duringMem, duringCPU float64
	f.eng.Exec(c, app, func(time.Duration, error) {})
	// Sample mid-execution (the exec takes several seconds).
	f.sched.After(3*time.Second, func() {
		duringMem = f.host.UsedMemMB()
		duringCPU = f.host.UsedCPUPct()
	})
	// Run is unusable here: the periodic monitor keeps the event queue
	// non-empty forever, so drive the clock explicitly.
	if err := f.sched.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	mon.Stop()

	if duringMem < idleMem+app.MemMB*0.9 {
		t.Fatalf("during exec mem = %v, want >= idle %v + app %v", duringMem, idleMem, app.MemMB)
	}
	if duringCPU < app.CPUPct {
		t.Fatalf("during exec cpu = %v, want >= %v", duringCPU, app.CPUPct)
	}
	// After the app stops, the OS reclaims its resources but the
	// container stays live and cheap.
	afterMem := f.host.UsedMemMB()
	if afterMem > idleMem+1 {
		t.Fatalf("after exec mem = %v, want back near %v", afterMem, idleMem)
	}
	if mon.CPU.Len() == 0 || mon.Mem.Len() != mon.CPU.Len() {
		t.Fatalf("monitor samples: cpu=%d mem=%d", mon.CPU.Len(), mon.Mem.Len())
	}
	// The CPU series must show the execution bump.
	if mon.CPU.MaxValue() < app.CPUPct {
		t.Fatalf("monitor never saw the execution: max CPU %v", mon.CPU.MaxValue())
	}
}

func TestUsedMemPctOnPi(t *testing.T) {
	f := newFixture(t, costmodel.EdgePi())
	// The Pi has 1 GB; its base footprint alone is a visible fraction.
	pct := f.host.UsedMemPct()
	if pct <= 5 || pct >= 100 {
		t.Fatalf("pi base mem pct = %v", pct)
	}
	// A heavy app saturates the Pi's memory percentage quickly.
	c := f.create(t, "cassandra:3.11")
	f.eng.Exec(c, workload.Cassandra(), func(time.Duration, error) {})
	f.sched.Sleep(time.Second)
	if f.host.UsedMemPct() <= pct {
		t.Fatal("executing app should raise memory pressure")
	}
}

func TestSwapAccounting(t *testing.T) {
	f := newFixture(t, costmodel.EdgePi()) // 1 GB physical
	if f.host.UsedSwapMB() != 0 {
		t.Fatal("idle host should not swap")
	}
	if f.host.UnderMemoryPressure(80) {
		t.Fatal("idle host should not be under pressure")
	}
	// A 1.2 GB workload on a 1 GB device spills to swap.
	c := f.create(t, "cassandra:3.11")
	f.eng.Exec(c, workload.Cassandra(), func(time.Duration, error) {})
	f.sched.Sleep(time.Second)
	if f.host.UsedSwapMB() <= 0 {
		t.Fatalf("oversubscribed host should swap: mem=%vMB of %vMB",
			f.host.UsedMemMB(), costmodel.EdgePi().TotalMemoryMB)
	}
	if !f.host.UnderMemoryPressure(80) {
		t.Fatal("swapping host must report pressure")
	}
	// Even with a generous threshold, any swap means pressure.
	if !f.host.UnderMemoryPressure(99999) {
		t.Fatal("used_swap > 0 must trigger the heuristic regardless of threshold")
	}
}

func TestCPUSaturates(t *testing.T) {
	f := newFixture(t, costmodel.Server())
	// Many concurrent heavy executions cannot exceed 100%.
	for i := 0; i < 5; i++ {
		c := f.create(t, "cassandra:3.11")
		f.eng.Exec(c, workload.Cassandra(), func(time.Duration, error) {})
	}
	if f.host.UsedCPUPct() > 100 {
		t.Fatalf("cpu = %v%% > 100%%", f.host.UsedCPUPct())
	}
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorDoubleStartPanics(t *testing.T) {
	f := newFixture(t, costmodel.Server())
	mon := NewMonitor(f.host, f.sched)
	mon.Start(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	mon.Start(time.Second)
}

func TestMonitorStopIdempotent(t *testing.T) {
	f := newFixture(t, costmodel.Server())
	mon := NewMonitor(f.host, f.sched)
	mon.Stop() // not running: no-op
	mon.Start(time.Second)
	f.sched.Sleep(5 * time.Second)
	mon.Stop()
	n := mon.CPU.Len()
	f.sched.Sleep(5 * time.Second)
	if mon.CPU.Len() != n {
		t.Fatal("monitor kept sampling after Stop")
	}
	mon.Stop()
}
