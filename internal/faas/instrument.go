package faas

import (
	"sync"
	"time"

	"hotc/internal/obs"
	"hotc/internal/simclock"
	"hotc/internal/trace"
)

// fnHandles holds the pre-resolved per-function series so the request
// path records metrics without label joins or vec lookups.
type fnHandles struct {
	reqOK     *obs.Counter
	reqErr    *obs.Counter
	latency   *obs.Histogram
	queueWait *obs.Histogram
}

// keyHandles holds the pre-resolved per-runtime-key series.
type keyHandles struct {
	acquire      *obs.Histogram
	breakerState *obs.Gauge
}

// instruments bundles the gateway's metric families. nil (the default)
// means uninstrumented — the hot path pays only a nil check. Handles
// for label combinations seen in traffic are resolved once and cached,
// so steady-state recording is vec-lookup free.
type instruments struct {
	requests     *obs.CounterVec   // hotc_requests_total{function, outcome}
	starts       *obs.CounterVec   // hotc_starts_total{mode}
	latency      *obs.HistogramVec // hotc_request_latency_ms{function}
	queueWait    *obs.HistogramVec // hotc_gateway_queue_wait_ms{function}
	acquire      *obs.HistogramVec // hotc_acquire_latency_ms{key}
	events       *obs.CounterVec   // hotc_resilience_events_total{kind}
	breakerState *obs.GaugeVec     // hotc_breaker_state{key}

	startsWarm *obs.Counter // hotc_starts_total{mode="warm"}
	startsCold *obs.Counter // hotc_starts_total{mode="cold"}

	mu   sync.RWMutex
	fns  map[string]*fnHandles
	keys map[string]*keyHandles
}

// forFunction returns the cached handles for one function, resolving
// them on first sight.
func (ins *instruments) forFunction(name string) *fnHandles {
	ins.mu.RLock()
	h := ins.fns[name]
	ins.mu.RUnlock()
	if h != nil {
		return h
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	if h := ins.fns[name]; h != nil {
		return h
	}
	h = &fnHandles{
		reqOK:     ins.requests.With(name, "ok"),
		reqErr:    ins.requests.With(name, "error"),
		latency:   ins.latency.With(name),
		queueWait: ins.queueWait.With(name),
	}
	ins.fns[name] = h
	return h
}

// forKey returns the cached handles for one runtime key.
func (ins *instruments) forKey(key string) *keyHandles {
	ins.mu.RLock()
	h := ins.keys[key]
	ins.mu.RUnlock()
	if h != nil {
		return h
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	if h := ins.keys[key]; h != nil {
		return h
	}
	h = &keyHandles{
		acquire:      ins.acquire.With(key),
		breakerState: ins.breakerState.With(key),
	}
	ins.keys[key] = h
	return h
}

// Instrument registers the gateway's metric families on the registry
// and turns on recording. Safe to call before any traffic; calling with
// nil turns instrumentation off.
func (g *Gateway) Instrument(reg *obs.Registry) {
	if reg == nil {
		g.obs = nil
		return
	}
	ins := &instruments{
		requests: reg.CounterVec("hotc_requests_total",
			"Requests handled by the gateway, by function and outcome (ok|error).",
			"function", "outcome"),
		starts: reg.CounterVec("hotc_starts_total",
			"Container starts behind served requests, by mode (warm = live runtime reused, cold = fresh boot).",
			"mode"),
		latency: reg.HistogramVec("hotc_request_latency_ms",
			"End-to-end request latency (client in to client out), in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "function"),
		queueWait: reg.HistogramVec("hotc_gateway_queue_wait_ms",
			"Time spent queued behind the per-function concurrency cap, in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "function"),
		acquire: reg.HistogramVec("hotc_acquire_latency_ms",
			"Gateway-to-watchdog time: forwarding plus runtime acquisition with retries, in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "key"),
		events: reg.CounterVec("hotc_resilience_events_total",
			"Resilience events on the request path, by kind.",
			"kind"),
		breakerState: reg.GaugeVec("hotc_breaker_state",
			"Per-runtime-key circuit breaker state (0 closed, 1 open, 2 half-open).",
			"key"),
		fns:  make(map[string]*fnHandles),
		keys: make(map[string]*keyHandles),
	}
	ins.startsWarm = ins.starts.With("warm")
	ins.startsCold = ins.starts.With("cold")
	g.obs = ins
}

// Trace attaches a span tracer: every completed request (success or
// failure) is recorded as an obs.Span over the §III.A timestamps.
func (g *Gateway) Trace(t *obs.Tracer) { g.tracer = t }

// setBreakerGauge reflects a breaker transition into the state gauge.
func (g *Gateway) setBreakerGauge(key string, brk *Breaker) {
	if g.obs == nil || brk == nil {
		return
	}
	g.obs.forKey(key).breakerState.Set(float64(brk.State(g.sched.Now())))
}

// record emits the per-request metrics and span once the outcome is
// known. admitAt is when the request cleared the concurrency queue;
// arrival is ts.GatewayIn (stamped at Handle).
func (g *Gateway) record(req trace.Request, name, key string, ts Timestamps,
	reused bool, err error, faults []trace.FaultEvent, admitAt simclock.Time) {
	if g.obs != nil {
		h := g.obs.forFunction(name)
		if err != nil {
			h.reqErr.Inc()
		} else {
			h.reqOK.Inc()
			if reused {
				g.obs.startsWarm.Inc()
			} else {
				g.obs.startsCold.Inc()
			}
			h.latency.ObserveDuration(ts.Total())
			if ts.WatchdogIn > 0 {
				g.obs.forKey(key).acquire.ObserveDuration(ts.WatchdogIn - admitAt)
			}
		}
	}
	if g.tracer != nil {
		s := obs.Span{
			ID:          g.tracer.NextID(),
			Function:    name,
			Key:         key,
			Round:       req.Round,
			Reused:      reused,
			ClientIn:    time.Duration(ts.GatewayIn),
			GatewayIn:   time.Duration(admitAt),
			WatchdogIn:  time.Duration(ts.WatchdogIn),
			FuncStart:   time.Duration(ts.FuncStart),
			FuncDone:    time.Duration(ts.FuncStop),
			WatchdogOut: time.Duration(ts.WatchdogOut),
			ClientOut:   time.Duration(ts.ClientOut),
		}
		if err != nil {
			s.Err = err.Error()
		}
		for _, f := range faults {
			s.Events = append(s.Events, obs.SpanEvent{At: f.At, Kind: f.Kind, Detail: f.Detail})
		}
		g.tracer.Record(s)
	}
}
