package faas

import (
	"time"

	"hotc/internal/obs"
	"hotc/internal/simclock"
	"hotc/internal/trace"
)

// instruments bundles the gateway's metric families. nil (the default)
// means uninstrumented — the hot path pays only a nil check.
type instruments struct {
	requests     *obs.CounterVec   // hotc_requests_total{function, outcome}
	starts       *obs.CounterVec   // hotc_starts_total{mode}
	latency      *obs.HistogramVec // hotc_request_latency_ms{function}
	queueWait    *obs.HistogramVec // hotc_gateway_queue_wait_ms{function}
	acquire      *obs.HistogramVec // hotc_acquire_latency_ms{key}
	events       *obs.CounterVec   // hotc_resilience_events_total{kind}
	breakerState *obs.GaugeVec     // hotc_breaker_state{key}
}

// Instrument registers the gateway's metric families on the registry
// and turns on recording. Safe to call before any traffic; calling with
// nil turns instrumentation off.
func (g *Gateway) Instrument(reg *obs.Registry) {
	if reg == nil {
		g.obs = nil
		return
	}
	g.obs = &instruments{
		requests: reg.CounterVec("hotc_requests_total",
			"Requests handled by the gateway, by function and outcome (ok|error).",
			"function", "outcome"),
		starts: reg.CounterVec("hotc_starts_total",
			"Container starts behind served requests, by mode (warm = live runtime reused, cold = fresh boot).",
			"mode"),
		latency: reg.HistogramVec("hotc_request_latency_ms",
			"End-to-end request latency (client in to client out), in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "function"),
		queueWait: reg.HistogramVec("hotc_gateway_queue_wait_ms",
			"Time spent queued behind the per-function concurrency cap, in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "function"),
		acquire: reg.HistogramVec("hotc_acquire_latency_ms",
			"Gateway-to-watchdog time: forwarding plus runtime acquisition with retries, in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "key"),
		events: reg.CounterVec("hotc_resilience_events_total",
			"Resilience events on the request path, by kind.",
			"kind"),
		breakerState: reg.GaugeVec("hotc_breaker_state",
			"Per-runtime-key circuit breaker state (0 closed, 1 open, 2 half-open).",
			"key"),
	}
}

// Trace attaches a span tracer: every completed request (success or
// failure) is recorded as an obs.Span over the §III.A timestamps.
func (g *Gateway) Trace(t *obs.Tracer) { g.tracer = t }

// setBreakerGauge reflects a breaker transition into the state gauge.
func (g *Gateway) setBreakerGauge(key string, brk *Breaker) {
	if g.obs == nil || brk == nil {
		return
	}
	g.obs.breakerState.With(key).Set(float64(brk.State(g.sched.Now())))
}

// record emits the per-request metrics and span once the outcome is
// known. admitAt is when the request cleared the concurrency queue;
// arrival is ts.GatewayIn (stamped at Handle).
func (g *Gateway) record(req trace.Request, name, key string, ts Timestamps,
	reused bool, err error, faults []trace.FaultEvent, admitAt simclock.Time) {
	if g.obs != nil {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		g.obs.requests.With(name, outcome).Inc()
		if err == nil {
			mode := "cold"
			if reused {
				mode = "warm"
			}
			g.obs.starts.With(mode).Inc()
			g.obs.latency.With(name).ObserveDuration(ts.Total())
			if ts.WatchdogIn > 0 {
				g.obs.acquire.With(key).ObserveDuration(ts.WatchdogIn - admitAt)
			}
		}
	}
	if g.tracer != nil {
		s := obs.Span{
			ID:          g.tracer.NextID(),
			Function:    name,
			Key:         key,
			Round:       req.Round,
			Reused:      reused,
			ClientIn:    time.Duration(ts.GatewayIn),
			GatewayIn:   time.Duration(admitAt),
			WatchdogIn:  time.Duration(ts.WatchdogIn),
			FuncStart:   time.Duration(ts.FuncStart),
			FuncDone:    time.Duration(ts.FuncStop),
			WatchdogOut: time.Duration(ts.WatchdogOut),
			ClientOut:   time.Duration(ts.ClientOut),
		}
		if err != nil {
			s.Err = err.Error()
		}
		for _, f := range faults {
			s.Events = append(s.Events, obs.SpanEvent{At: f.At, Kind: f.Kind, Detail: f.Detail})
		}
		g.tracer.Record(s)
	}
}
