package faas

import (
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// deployStage registers one pipeline stage function.
func (f *fixture) deployStage(t *testing.T, name, img string, lang workload.Language) {
	t.Helper()
	fn := Function{
		Name:    name,
		Runtime: config.Runtime{Image: img, Env: []string{"STAGE=" + name}},
		App:     workload.QRApp(lang),
	}
	resolver := ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, f.reg)
	})
	if err := f.gw.Deploy(fn, resolver); err != nil {
		t.Fatal(err)
	}
}

func pipelineStages(t *testing.T, f *fixture) []string {
	f.deployStage(t, "upload", "python:3.8", workload.Python)
	f.deployStage(t, "compress", "python:3.8", workload.Python)
	f.deployStage(t, "watermark", "node:10", workload.Node)
	f.deployStage(t, "persist", "golang:1.12", workload.Go)
	return []string{"upload", "compress", "watermark", "persist"}
}

func TestChainExecutesAllStagesInOrder(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	stages := pipelineStages(t, f)
	results, err := RunChain(f.gw, []trace.Request{{At: 0}}, stages)
	if err != nil {
		t.Fatal(err)
	}
	cr := results[0]
	if cr.Err != nil {
		t.Fatal(cr.Err)
	}
	if len(cr.Stages) != 4 {
		t.Fatalf("stages = %d", len(cr.Stages))
	}
	for i, s := range cr.Stages {
		if s.Function != stages[i] {
			t.Fatalf("stage %d served by %q, want %q", i, s.Function, stages[i])
		}
		if i > 0 && s.Timestamps.GatewayIn < cr.Stages[i-1].Timestamps.ClientOut {
			t.Fatal("stages overlap; chain must be sequential")
		}
	}
	if cr.Total() <= 0 {
		t.Fatal("non-positive total")
	}
	// All four stages cold on the first traversal.
	if cr.ColdStages() != 4 {
		t.Fatalf("cold stages = %d, want 4", cr.ColdStages())
	}
}

func TestChainReusesOnRevisit(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	stages := pipelineStages(t, f)
	sched := trace.Serial{Interval: time.Minute, Count: 3}.Generate()
	results, err := RunChain(f.gw, sched, stages)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ColdStages() != 4 {
		t.Fatalf("first traversal cold stages = %d", results[0].ColdStages())
	}
	for i, cr := range results[1:] {
		if cr.ColdStages() != 0 {
			t.Fatalf("traversal %d cold stages = %d, want 0", i+1, cr.ColdStages())
		}
	}
	// Warm chains are much faster.
	if results[2].Total() > results[0].Total()/2 {
		t.Fatalf("warm chain %v not clearly below cold %v", results[2].Total(), results[0].Total())
	}
}

func TestChainStageFailureStopsPipeline(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	stages := pipelineStages(t, f)
	// Unknown function in the middle.
	broken := []string{stages[0], "ghost", stages[2]}
	results, err := RunChain(f.gw, []trace.Request{{At: 0}}, broken)
	if err != nil {
		t.Fatal(err)
	}
	cr := results[0]
	if cr.Err == nil {
		t.Fatal("broken chain succeeded")
	}
	if len(cr.Stages) != 2 { // upload ok, ghost errored
		t.Fatalf("stages recorded = %d, want 2", len(cr.Stages))
	}
}

func TestChainEmpty(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	var got ChainResult
	f.gw.HandleChain(nil, trace.Request{}, func(cr ChainResult) { got = cr })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Err == nil {
		t.Fatal("empty chain accepted")
	}
	if got.Total() != 0 || got.ColdStages() != 0 {
		t.Fatal("empty chain should report zeros")
	}
}

func TestChainConcurrentTraversals(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	stages := pipelineStages(t, f)
	// Three chains start at the same instant; stage containers cannot
	// be shared between in-flight traversals, so each gets its own.
	sched := []trace.Request{{At: 0}, {At: 0}, {At: 0}}
	results, err := RunChain(f.gw, sched, stages)
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range results {
		if cr.Err != nil {
			t.Fatalf("chain %d: %v", i, cr.Err)
		}
		if len(cr.Stages) != 4 {
			t.Fatalf("chain %d stages = %d", i, len(cr.Stages))
		}
	}
}
