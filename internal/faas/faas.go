// Package faas implements the serverless request pipeline of the
// paper's §III analysis: clients send requests to a gateway, which
// forwards them to a per-function watchdog (the "tiny Golang HTTP
// server" of OpenFaaS) that pipes the request into the function
// process and returns the response. The pipeline records the six
// workflow moments of §III.A:
//
//	(1) request arrives at the gateway
//	(2) request reaches the watchdog
//	(3) function process starts executing
//	(4) function process stops
//	(5) response leaves the watchdog
//	(6) client receives the response
//
// The gap (2)->(3) — function initiation — is where cold start lives
// and is what the paper finds dominating total latency.
//
// How the backend obtains a container runtime is pluggable through the
// Provider interface; the policy package supplies the industry
// baselines and the core package supplies HotC.
package faas

import (
	"fmt"
	"sort"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/metrics"
	"hotc/internal/obs"
	"hotc/internal/rng"
	"hotc/internal/simclock"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// Function is a deployed serverless function: a runtime configuration
// plus the application logic that runs inside it.
type Function struct {
	// Name identifies the function at the gateway.
	Name string
	// Runtime is the container configuration the function executes in.
	Runtime config.Runtime
	// App is the workload model.
	App workload.App
	// MaxConcurrency caps simultaneous executions of this function;
	// excess requests queue FIFO at the gateway (0 = unlimited). This
	// models per-function scale limits of real FaaS platforms.
	MaxConcurrency int
}

// Provider supplies container runtimes to the gateway. Implementations
// decide whether to reuse (HotC, keep-alive baselines) or cold start
// every time (the default behaviour the paper compares against).
type Provider interface {
	// Name identifies the policy in reports.
	Name() string
	// Acquire obtains a runtime for the spec. reused reports whether
	// an existing live container was handed out; delta carries
	// exec-time adjustments for relaxed matches.
	Acquire(spec container.Spec, done func(c *container.Container, reused bool, delta config.Delta, err error))
	// Complete is invoked after the response is sent; the provider
	// decides whether to clean and keep the container or stop it.
	Complete(c *container.Container, spec container.Spec)
}

// Discarder is an optional Provider extension: taking back a suspect
// container without re-pooling it (quarantine or stop instead of
// clean-and-keep). The gateway uses it when an execution fails and the
// runtime can no longer be trusted. Providers that do not implement it
// get the container back through Complete.
type Discarder interface {
	Discard(c *container.Container, spec container.Spec)
}

// Timestamps are the six measured moments, as virtual times.
type Timestamps struct {
	GatewayIn   simclock.Time // (1)
	WatchdogIn  simclock.Time // (2)
	FuncStart   simclock.Time // (3)
	FuncStop    simclock.Time // (4)
	WatchdogOut simclock.Time // (5)
	ClientOut   simclock.Time // (6)
}

// Total is the end-to-end latency the client observes.
func (ts Timestamps) Total() time.Duration { return ts.ClientOut - ts.GatewayIn }

// Initiation is the (2)->(3) gap: container acquisition plus function
// initialisation — the cold-start component.
func (ts Timestamps) Initiation() time.Duration { return ts.FuncStart - ts.WatchdogIn }

// Execution is the (3)->(4) gap.
func (ts Timestamps) Execution() time.Duration { return ts.FuncStop - ts.FuncStart }

// Forwarding is the network/proxy time: everything outside
// initiation and execution.
func (ts Timestamps) Forwarding() time.Duration {
	return ts.Total() - ts.Initiation() - ts.Execution()
}

// Result is the outcome of one request.
type Result struct {
	// Request is the originating trace entry.
	Request trace.Request
	// Function is the function that served it.
	Function string
	// Timestamps are the six measured moments.
	Timestamps Timestamps
	// Reused reports whether a live container was reused.
	Reused bool
	// Err is non-nil if the request failed.
	Err error
	// Faults annotates resilience events the request went through:
	// acquire retries, exec fallbacks, quarantines, breaker transitions
	// and degraded cold starts. Empty for an untroubled request.
	Faults []trace.FaultEvent
}

// Gateway is the entry point: it resolves functions, obtains runtimes
// from the provider and drives executions on the simulation scheduler.
type Gateway struct {
	sched    *simclock.Scheduler
	eng      *container.Engine
	provider Provider

	functions map[string]Function
	specs     map[string]container.Spec

	inFlight map[string]int
	waiting  map[string][]func()
	// QueuedPeak tracks the maximum queue depth seen per function.
	queuedPeak map[string]int

	// MaxAcquireRetries is how many times a failed runtime acquisition
	// is retried before the request fails (transient engine errors —
	// momentary resource exhaustion, registry hiccups — usually clear
	// within a backoff). Default 1.
	MaxAcquireRetries int
	// RetryBackoff is the delay before the first retry and the base of
	// the exponential schedule. Default 100ms.
	RetryBackoff time.Duration
	// BackoffFactor grows the delay per attempt (default 2).
	BackoffFactor float64
	// BackoffMax caps the retry delay (default 5s).
	BackoffMax time.Duration
	// BackoffJitter spreads each delay by the given fraction to avoid
	// retry lockstep; requires BackoffRng. Default 0 (deterministic
	// schedule).
	BackoffJitter float64
	// BackoffRng supplies jitter draws.
	BackoffRng *rng.Source

	// ExecRetries is how many times a failed execution falls back to a
	// fresh acquisition: the suspect container is discarded (see
	// Discarder) and the acquire loop restarts. Default 0 — an exec
	// failure is returned to the client, the pre-resilience behaviour.
	ExecRetries int

	// BreakerThreshold arms a per-runtime-key circuit breaker: after
	// this many consecutive acquire failures on a key the breaker opens
	// and requests degrade to dedicated cold starts that bypass the
	// provider (they complete at cold-start latency instead of
	// erroring). 0 disables breaking.
	BreakerThreshold int
	// BreakerOpenFor is the open window before a half-open probe is
	// allowed through to the provider again. Default 30s.
	BreakerOpenFor time.Duration

	breakers map[string]*Breaker
	counters metrics.Counters
	retries  int

	// obs and tracer are the optional observability hooks (see
	// Instrument and Trace); nil keeps the seed behaviour.
	obs    *instruments
	tracer *obs.Tracer
}

// Retries reports how many acquire retries the gateway has performed.
func (g *Gateway) Retries() int { return g.retries }

// Counter names recorded by the gateway's resilience machinery.
const (
	CounterAcquireRetries   = "acquire.retries"
	CounterRequestsFailed   = "requests.failed"
	CounterExecFallbacks    = "exec.fallbacks"
	CounterQuarantines      = "quarantines"
	CounterBreakerTrips     = "breaker.trips"
	CounterBreakerCloses    = "breaker.closes"
	CounterDegradedRequests = "degraded.requests"
)

// ResilienceCounters exposes the gateway's fault/retry/breaker/
// degradation counters.
func (g *Gateway) ResilienceCounters() *metrics.Counters { return &g.counters }

// BreakerFor returns the circuit breaker guarding the runtime key, or
// nil when breaking is disabled or the key has seen no traffic yet.
func (g *Gateway) BreakerFor(key string) *Breaker { return g.breakers[key] }

// NewGateway builds a gateway over the engine with the given runtime
// provider.
func NewGateway(eng *container.Engine, provider Provider) *Gateway {
	if eng == nil || provider == nil {
		panic("faas: NewGateway requires engine and provider")
	}
	return &Gateway{
		sched:             eng.Scheduler(),
		eng:               eng,
		provider:          provider,
		functions:         make(map[string]Function),
		specs:             make(map[string]container.Spec),
		inFlight:          make(map[string]int),
		waiting:           make(map[string][]func()),
		queuedPeak:        make(map[string]int),
		breakers:          make(map[string]*Breaker),
		MaxAcquireRetries: 1,
		RetryBackoff:      100 * time.Millisecond,
	}
}

// backoff assembles the retry schedule from the gateway knobs.
func (g *Gateway) backoff() Backoff {
	b := Backoff{
		Base:       g.RetryBackoff,
		Factor:     g.BackoffFactor,
		Max:        g.BackoffMax,
		JitterFrac: g.BackoffJitter,
		Rng:        g.BackoffRng,
	}
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	return b
}

// breakerFor lazily builds the breaker guarding a runtime key; nil when
// breaking is disabled.
func (g *Gateway) breakerFor(key string) *Breaker {
	if g.BreakerThreshold <= 0 {
		return nil
	}
	b := g.breakers[key]
	if b == nil {
		b = NewBreaker(g.BreakerThreshold, g.BreakerOpenFor)
		g.breakers[key] = b
	}
	return b
}

// discard hands a suspect container back to the provider via Discard
// when supported, falling back to Complete.
func (g *Gateway) discard(c *container.Container, spec container.Spec) {
	if d, ok := g.provider.(Discarder); ok {
		d.Discard(c, spec)
		return
	}
	g.provider.Complete(c, spec)
}

// QueuedPeak reports the maximum gateway queue depth observed for a
// concurrency-limited function.
func (g *Gateway) QueuedPeak(name string) int { return g.queuedPeak[name] }

// admit runs start immediately if the function has a free concurrency
// slot, otherwise enqueues it.
func (g *Gateway) admit(fn Function, start func()) {
	if fn.MaxConcurrency <= 0 || g.inFlight[fn.Name] < fn.MaxConcurrency {
		g.inFlight[fn.Name]++
		start()
		return
	}
	g.waiting[fn.Name] = append(g.waiting[fn.Name], start)
	if depth := len(g.waiting[fn.Name]); depth > g.queuedPeak[fn.Name] {
		g.queuedPeak[fn.Name] = depth
	}
}

// releaseSlot frees a concurrency slot and starts the next queued
// request, if any.
func (g *Gateway) releaseSlot(name string) {
	g.inFlight[name]--
	if q := g.waiting[name]; len(q) > 0 {
		next := q[0]
		g.waiting[name] = q[1:]
		g.inFlight[name]++
		next()
	}
}

// Provider returns the gateway's runtime provider.
func (g *Gateway) Provider() Provider { return g.provider }

// Deploy registers a function. The runtime must resolve against the
// engine's registry.
func (g *Gateway) Deploy(fn Function, reg SpecResolver) error {
	if fn.Name == "" {
		return fmt.Errorf("faas: function needs a name")
	}
	if err := fn.App.Validate(); err != nil {
		return err
	}
	spec, err := reg.Resolve(fn.Runtime)
	if err != nil {
		return fmt.Errorf("faas: deploying %q: %w", fn.Name, err)
	}
	g.functions[fn.Name] = fn
	g.specs[fn.Name] = spec
	return nil
}

// SpecResolver resolves runtime configurations to specs; the image
// registry satisfies it through ResolverFunc.
type SpecResolver interface {
	Resolve(rt config.Runtime) (container.Spec, error)
}

// ResolverFunc adapts a function to SpecResolver.
type ResolverFunc func(rt config.Runtime) (container.Spec, error)

// Resolve implements SpecResolver.
func (f ResolverFunc) Resolve(rt config.Runtime) (container.Spec, error) { return f(rt) }

// Functions returns the deployed function names, sorted.
func (g *Gateway) Functions() []string {
	names := make([]string, 0, len(g.functions))
	for n := range g.functions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spec returns the resolved spec of a deployed function.
func (g *Gateway) Spec(name string) (container.Spec, bool) {
	s, ok := g.specs[name]
	return s, ok
}

// Handle processes one request for the named function, invoking done
// with the full timestamp record when the response reaches the client.
// It must be called on the scheduler goroutine at the request's
// arrival time.
func (g *Gateway) Handle(name string, req trace.Request, done func(Result)) {
	if done == nil {
		panic("faas: Handle requires a completion callback")
	}
	fn, ok := g.functions[name]
	if !ok {
		done(Result{Request: req, Function: name, Err: fmt.Errorf("faas: unknown function %q", name)})
		return
	}

	var ts Timestamps
	ts.GatewayIn = g.sched.Now() // queue time counts into the latency
	finish := func(r Result) {
		g.releaseSlot(name)
		done(r)
	}

	g.admit(fn, func() {
		g.handleAdmitted(fn, req, ts, finish)
	})
}

// handleAdmitted drives an admitted request through the pipeline.
//
// The happy path is unchanged from the seed: acquire a runtime from
// the provider, exec, forward the response. Around it sits the
// resilience machinery: acquire failures retry on an exponential
// backoff and feed the per-key circuit breaker; while the breaker is
// open, requests degrade to dedicated cold starts that bypass the
// provider; exec failures discard the suspect container and fall back
// to a fresh acquisition up to ExecRetries times.
func (g *Gateway) handleAdmitted(fn Function, req trace.Request, ts Timestamps, finish func(Result)) {
	name := fn.Name
	spec := g.specs[name]
	key := string(spec.Key())
	brk := g.breakerFor(key)
	backoff := g.backoff()

	// admitAt is when the request cleared the concurrency queue; the
	// gap back to ts.GatewayIn is pure queue wait.
	admitAt := g.sched.Now()
	if g.obs != nil {
		g.obs.forFunction(name).queueWait.ObserveDuration(admitAt - ts.GatewayIn)
	}

	var faults []trace.FaultEvent
	annotate := func(kind, detail string) {
		faults = append(faults, trace.FaultEvent{At: g.sched.Now(), Kind: kind, Detail: detail})
		if g.obs != nil {
			g.obs.events.With(kind).Inc()
		}
	}

	// Error contract: a failed request still completes — done fires
	// exactly once with Err set and the error timestamp (ClientOut)
	// stamped, and finish releases the concurrency slot. Acquire or
	// exec failures must never strand the gateway queue.
	fail := func(err error) {
		ts.ClientOut = g.sched.Now()
		g.counters.Inc(CounterRequestsFailed)
		g.record(req, name, key, ts, false, err, faults, admitAt)
		finish(Result{Request: req, Function: name, Timestamps: ts, Err: err, Faults: faults})
	}

	var acquire func(attempt, execAttempt int)

	// runExec drives (2)->(6) on an acquired runtime. owned marks a
	// degraded-path container the gateway created itself: it never
	// touches the provider and is stopped after the response.
	runExec := func(c *container.Container, reused bool, delta config.Delta, owned bool, execAttempt int) {
		// Relaxed matches apply their exec-time delta first.
		adjust := time.Duration(0)
		if !delta.Empty() {
			adjust = g.eng.Model().DeltaApplyCost()
		}
		g.sched.After(adjust, func() {
			if ts.WatchdogIn == 0 {
				// Stamped once: an exec fallback re-enters here, and the
				// recovery time belongs to this request's initiation.
				ts.WatchdogIn = g.sched.Now()
			}
			initPhase, execPhase := g.eng.ExecPhases(c, fn.App)
			g.eng.Exec(c, fn.App, func(actual time.Duration, err error) {
				if err != nil {
					if execAttempt < g.ExecRetries {
						// Graceful degradation: the runtime is suspect, so
						// quarantine it and transparently fall back to a
						// fresh acquisition (typically a cold start).
						g.counters.Inc(CounterExecFallbacks)
						annotate("exec-fallback", err.Error())
						if owned {
							g.eng.Stop(c, nil)
						} else {
							g.counters.Inc(CounterQuarantines)
							annotate("quarantine", c.ID)
							g.discard(c, spec)
						}
						g.sched.After(backoff.Delay(execAttempt), func() { acquire(0, execAttempt+1) })
						return
					}
					if owned {
						g.eng.Stop(c, nil)
					} else {
						g.provider.Complete(c, spec)
					}
					fail(err)
					return
				}
				// Apportion the (possibly jittered) actual duration
				// over the nominal phases to place (3) and (4).
				ts.FuncStop = g.sched.Now()
				nominal := initPhase + execPhase
				execShare := execPhase
				if nominal > 0 {
					execShare = time.Duration(float64(actual) * float64(execPhase) / float64(nominal))
				}
				ts.FuncStart = ts.FuncStop - execShare
				// (4) -> (5): watchdog copies the response out.
				g.sched.After(g.eng.Model().WatchdogShimCost(), func() {
					ts.WatchdogOut = g.sched.Now()
					// (5) -> (6): gateway returns to the client.
					g.sched.After(g.eng.Model().GatewayForwardCost(), func() {
						ts.ClientOut = g.sched.Now()
						if owned {
							g.eng.Stop(c, nil)
						} else {
							g.provider.Complete(c, spec)
						}
						g.record(req, name, key, ts, reused, nil, faults, admitAt)
						finish(Result{
							Request:    req,
							Function:   name,
							Timestamps: ts,
							Reused:     reused,
							Faults:     faults,
						})
					})
				})
			})
		})
	}

	// retryOrFail reschedules the acquire loop after a failure, or
	// surfaces the error once the retry budget is spent.
	retryOrFail := func(attempt, execAttempt int, err error) {
		if attempt < g.MaxAcquireRetries {
			g.retries++
			g.counters.Inc(CounterAcquireRetries)
			annotate("acquire-retry", err.Error())
			g.sched.After(backoff.Delay(attempt), func() { acquire(attempt+1, execAttempt) })
			return
		}
		fail(err)
	}

	// (1) -> gateway proxies the request towards the backend. The
	// provider hands over a runtime; for a cold start the boot happens
	// inside Acquire, i.e. between (1) and (2) the request is waiting
	// for the backend to scale from zero.
	acquire = func(attempt, execAttempt int) {
		g.setBreakerGauge(key, brk)
		if brk != nil && !brk.Allow(g.sched.Now()) {
			// Breaker open: degrade to a dedicated cold start that
			// bypasses the provider entirely. The request completes at
			// cold-start-always latency instead of erroring.
			g.counters.Inc(CounterDegradedRequests)
			annotate("degraded-cold", key)
			g.eng.Create(spec, func(c *container.Container, err error) {
				if err != nil {
					retryOrFail(attempt, execAttempt, err)
					return
				}
				runExec(c, false, config.Delta{}, true, execAttempt)
			})
			return
		}
		g.provider.Acquire(spec, func(c *container.Container, reused bool, delta config.Delta, err error) {
			if err != nil {
				if brk != nil && brk.OnFailure(g.sched.Now()) {
					g.counters.Inc(CounterBreakerTrips)
					annotate("breaker-open", key)
				}
				g.setBreakerGauge(key, brk)
				retryOrFail(attempt, execAttempt, err)
				return
			}
			if brk != nil {
				if was := brk.State(g.sched.Now()); was != BreakerClosed {
					g.counters.Inc(CounterBreakerCloses)
					annotate("breaker-close", key)
				}
				brk.OnSuccess()
				g.setBreakerGauge(key, brk)
			}
			runExec(c, reused, delta, false, execAttempt)
		})
	}
	g.sched.After(g.eng.Model().GatewayForwardCost(), func() { acquire(0, 0) })
}

// Run replays a request schedule against the gateway: request classes
// are mapped to function names by classFn, all arrivals are scheduled,
// and the simulation is stepped until every response has been
// delivered. Stepping (rather than draining the queue) lets periodic
// provider machinery — control loops, warm-up pingers — keep running
// without deadlocking the replay. Results are returned in arrival
// order.
func Run(g *Gateway, schedule []trace.Request, classFn func(class int) string) ([]Result, error) {
	results := make([]Result, len(schedule))
	remaining := len(schedule)
	base := g.sched.Now()
	for i, req := range schedule {
		i, req := i, req
		g.sched.At(base+req.At, func() {
			g.Handle(classFn(req.Class), req, func(r Result) {
				results[i] = r
				remaining--
			})
		})
	}
	for remaining > 0 {
		if !g.sched.Step() {
			return nil, fmt.Errorf("faas: scheduler drained with %d requests outstanding", remaining)
		}
	}
	// Settle: let post-response housekeeping (container teardown,
	// volume cleanup) that the provider scheduled finish before
	// returning, so callers observe a quiescent engine.
	if err := g.sched.RunUntil(g.sched.Now() + settleWindow); err != nil {
		return nil, err
	}
	return results, nil
}

// settleWindow bounds the post-replay housekeeping time; it is far
// beyond any teardown cost on any profile.
const settleWindow = 10 * time.Second
