package faas

import (
	"fmt"
	"time"

	"hotc/internal/trace"
)

// ChainResult is the outcome of one request through a function chain.
type ChainResult struct {
	// Request is the originating trace entry.
	Request trace.Request
	// Stages holds the per-function results in execution order; on
	// failure it contains the stages completed before the error.
	Stages []Result
	// Err is the first stage error, if any.
	Err error
}

// Total is the end-to-end latency across all stages.
func (cr ChainResult) Total() time.Duration {
	if len(cr.Stages) == 0 {
		return 0
	}
	first := cr.Stages[0].Timestamps.GatewayIn
	last := cr.Stages[len(cr.Stages)-1].Timestamps.ClientOut
	return last - first
}

// ColdStages counts stages that did not reuse a runtime.
func (cr ChainResult) ColdStages() int {
	n := 0
	for _, s := range cr.Stages {
		if s.Err == nil && !s.Reused {
			n++
		}
	}
	return n
}

// HandleChain drives a request through a pipeline of functions — the
// paper's Fig. 3(a) scenario (upload -> compress -> watermark ->
// persist): each stage's response triggers the next stage through the
// gateway. Every stage resolves its own runtime, so a chain of n
// functions can pay up to n cold starts without reuse.
func (g *Gateway) HandleChain(stages []string, req trace.Request, done func(ChainResult)) {
	if done == nil {
		panic("faas: HandleChain requires a completion callback")
	}
	if len(stages) == 0 {
		done(ChainResult{Request: req, Err: fmt.Errorf("faas: empty chain")})
		return
	}
	cr := ChainResult{Request: req}
	var next func(i int)
	next = func(i int) {
		if i >= len(stages) {
			done(cr)
			return
		}
		g.Handle(stages[i], req, func(r Result) {
			cr.Stages = append(cr.Stages, r)
			if r.Err != nil {
				cr.Err = fmt.Errorf("faas: chain stage %d (%s): %w", i, stages[i], r.Err)
				done(cr)
				return
			}
			next(i + 1)
		})
	}
	next(0)
}

// RunChain replays a schedule where every request traverses the whole
// chain. Results are in arrival order.
func RunChain(g *Gateway, schedule []trace.Request, stages []string) ([]ChainResult, error) {
	results := make([]ChainResult, len(schedule))
	remaining := len(schedule)
	base := g.sched.Now()
	for i, req := range schedule {
		i, req := i, req
		g.sched.At(base+req.At, func() {
			g.HandleChain(stages, req, func(cr ChainResult) {
				results[i] = cr
				remaining--
			})
		})
	}
	for remaining > 0 {
		if !g.sched.Step() {
			return nil, fmt.Errorf("faas: scheduler drained with %d chain requests outstanding", remaining)
		}
	}
	if err := g.sched.RunUntil(g.sched.Now() + settleWindow); err != nil {
		return nil, err
	}
	return results, nil
}
