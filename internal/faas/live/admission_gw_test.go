package live

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotc/internal/admission"
	"hotc/internal/obs"
	"hotc/internal/predictor"
)

// blockingFn is a handler that parks on release after announcing
// itself on entered, letting tests hold instances busy for exactly as
// long as they need.
func blockingFn(name string, entered chan struct{}, release chan struct{}) Function {
	return Function{
		Name: name,
		Handler: func(b []byte) ([]byte, error) {
			entered <- struct{}{}
			<-release
			return b, nil
		},
	}
}

// waitAdm polls the function's admission snapshot until cond accepts
// it.
func waitAdm(t *testing.T, g *Gateway, fn string, what string, cond func(admission.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := g.AdmissionStats()[fn]; ok && cond(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission state never reached %q: %+v", what, g.AdmissionStats()[fn])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func postTenant(base, fn, tenant, body string, hdr map[string]string) (*http.Response, error) {
	req, _ := http.NewRequest(http.MethodPost, base+"/function/"+fn, strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	return http.DefaultClient.Do(req)
}

// A full tenant queue rejects that tenant with 429 + Retry-After +
// the refusal reason, while another tenant still queues: the bound is
// per tenant, so one aggressive client cannot consume the entire
// waiting room.
func TestAdmissionQueueFullIsPerTenant(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	g := NewGateway(true)
	g.Instrument(obs.New())
	g.EnableAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 1})
	if err := g.Register(blockingFn("f", entered, release)); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	defer releaseAll()

	var wg sync.WaitGroup
	codes := make([]int32, 4) // [0] in-flight, [1] queued a, [2] rejected a, [3] queued b
	fire := func(slot int, tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := postTenant(base, "f", tenant, "x", nil)
			if err != nil {
				atomic.StoreInt32(&codes[slot], -1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			atomic.StoreInt32(&codes[slot], int32(resp.StatusCode))
		}()
	}

	fire(0, "a")
	<-entered // instance busy, capacity full
	fire(1, "a")
	waitAdm(t, g, "f", "one queued", func(st admission.Stats) bool { return st.Queued == 1 })

	// Tenant a's queue (depth 1) is full: immediate 429 with the
	// reason and an actionable Retry-After.
	resp, err := postTenant(base, "f", "a", "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(RejectedHeader); got != string(admission.ReasonQueueFull) {
		t.Fatalf("%s = %q, want %q", RejectedHeader, got, admission.ReasonQueueFull)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
	}

	// Tenant b queues untouched by a's overflow.
	fire(3, "b")
	waitAdm(t, g, "f", "two queued", func(st admission.Stats) bool { return st.Queued == 2 })

	releaseAll()
	wg.Wait()
	for _, slot := range []int{0, 1, 3} {
		if got := atomic.LoadInt32(&codes[slot]); got != http.StatusOK {
			t.Fatalf("request %d finished %d, want 200", slot, got)
		}
	}

	st := g.AdmissionStats()["f"]
	if st.Admitted != 3 || st.Rejected[admission.ReasonQueueFull] != 1 {
		t.Fatalf("admission stats = %+v, want 3 admitted / 1 queue_full", st)
	}
	if st.Tenants["a"].Admitted != 2 || st.Tenants["b"].Admitted != 1 {
		t.Fatalf("tenant split = %+v, want a:2 b:1", st.Tenants)
	}
}

// A queued request whose deadline passes while it waits is shed at
// dispatch with 429/deadline instead of being served late: work the
// client has given up on is the cheapest work to drop.
func TestAdmissionShedsExpiredQueuedRequest(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	g := NewGateway(true)
	g.EnableAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 4})
	if err := g.Register(blockingFn("f", entered, release)); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := postTenant(base, "f", "", "x", nil)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	var queued *http.Response
	wg.Add(1)
	go func() {
		defer wg.Done()
		queued, _ = postTenant(base, "f", "", "x", map[string]string{DeadlineHeader: "50"})
	}()
	waitAdm(t, g, "f", "one queued", func(st admission.Stats) bool { return st.Queued == 1 })

	// Hold the slot until well past the queued request's deadline,
	// then free it: dispatch must shed, not serve.
	time.Sleep(120 * time.Millisecond)
	close(release)
	wg.Wait()

	if queued == nil {
		t.Fatal("queued request returned no response")
	}
	defer queued.Body.Close()
	io.Copy(io.Discard, queued.Body)
	if queued.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expired-in-queue status = %d, want 429", queued.StatusCode)
	}
	if got := queued.Header.Get(RejectedHeader); got != string(admission.ReasonDeadline) {
		t.Fatalf("%s = %q, want %q", RejectedHeader, got, admission.ReasonDeadline)
	}
	if st := g.AdmissionStats()["f"]; st.Rejected[admission.ReasonDeadline] != 1 {
		t.Fatalf("admission stats = %+v, want 1 deadline shed", st)
	}
}

// A deadline that expires mid-execution cancels the backend call: the
// client gets 504, the instance is torn down (its work was abandoned
// mid-flight), and the breaker is NOT fed — the backend did nothing
// wrong.
func TestDeadlineCancelsInFlightBackend(t *testing.T) {
	g := NewGateway(true)
	g.EnableBreaker(1, time.Hour) // hair trigger: one blamed failure opens it
	if err := g.Register(Function{
		Name: "slow",
		Handler: func(b []byte) ([]byte, error) {
			time.Sleep(500 * time.Millisecond)
			return b, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	resp, err := postTenant(base, "slow", "", "x", map[string]string{DeadlineHeader: "50"})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-in-flight status = %d, want 504", resp.StatusCode)
	}
	if got := resp.Header.Get(RejectedHeader); got != string(admission.ReasonDeadline) {
		t.Fatalf("%s = %q, want %q", RejectedHeader, got, admission.ReasonDeadline)
	}
	if warm := g.WarmInstances("slow"); warm != 0 {
		t.Fatalf("abandoned instance re-pooled: warm = %d, want 0", warm)
	}

	// The breaker must still be closed: a deadline is the client's
	// choice, not a backend fault. A healthy follow-up proves it.
	body, _ := post(t, base+"/function/slow", "y")
	if body != "y" {
		t.Fatalf("post-cancel invoke = %q", body)
	}
	if res := g.ResilienceCounters(); res["proxy.failures"] != 0 || res["breaker.trips"] != 0 {
		t.Fatalf("client deadline fed the breaker: %v", res)
	}
}

// Regression for the proxy-context audit: a client that disconnects
// mid-request cancels the in-flight backend call. The gateway discards
// the instance (never re-pools abandoned work), feeds nothing to the
// breaker, and the admission slot is released.
func TestClientDisconnectCancelsBackend(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	g := NewGateway(true)
	g.EnableBreaker(1, time.Hour)
	g.EnableAdmission(AdmissionConfig{MaxInFlight: 4, QueueDepth: 4})
	if err := g.Register(blockingFn("f", entered, release)); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/function/f", strings.NewReader("x"))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered // the backend is executing
	cancel()  // ...and the client walks away

	if err := <-errc; err == nil {
		t.Fatal("canceled request reported success")
	}
	// The handler must conclude: admission slot freed, instance
	// discarded rather than re-pooled.
	waitAdm(t, g, "f", "drained", func(st admission.Stats) bool { return st.InFlight == 0 })
	deadline := time.Now().Add(5 * time.Second)
	for g.WarmInstances("f") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned instance re-pooled: warm = %d, want 0", g.WarmInstances("f"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res := g.ResilienceCounters(); res["proxy.failures"] != 0 || res["breaker.trips"] != 0 {
		t.Fatalf("client disconnect fed the breaker: %v", res)
	}
	if st := g.Stats(); st.Canceled != 1 {
		t.Fatalf("stats = %+v, want Canceled = 1", st)
	}
}

// Stop wakes queued waiters with 503/stopped instead of stranding
// their handler goroutines; afterwards the goroutine count returns to
// its pre-gateway baseline (the HOTC_LEAKCHECK TestMain pass re-checks
// this package-wide).
func TestStopDrainsQueuedAdmissionWaiters(t *testing.T) {
	before := runtime.NumGoroutine()
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	g := NewGateway(true)
	g.EnableAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 8})
	if err := g.Register(blockingFn("f", entered, release)); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var stopped503 atomic.Int32
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := postTenant(base, "f", "", "x", nil)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode == http.StatusServiceUnavailable &&
				resp.Header.Get(RejectedHeader) == string(admission.ReasonStopped) {
				stopped503.Add(1)
			}
			resp.Body.Close()
		}()
	}
	<-entered
	waitAdm(t, g, "f", "four queued", func(st admission.Stats) bool { return st.Queued == 4 })

	// Free the executing handler shortly after Stop begins so the
	// server's drain isn't pinned for the full grace period.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	g.Stop()
	wg.Wait()

	if got := stopped503.Load(); got != 4 {
		t.Fatalf("queued waiters resolved to %d stopped-503s, want 4", got)
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	const slack = 4
	for runtime.NumGoroutine() > before+slack {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d (+%d slack): queued waiters leaked through Stop",
				runtime.NumGoroutine(), before, slack)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The janitor's memory budget reclaims warm capacity from the largest
// holders first (water-filling): the function hoarding 4 instances is
// cut before the one holding 2 loses anything.
func TestMemoryBudgetReclaimsLargestHoldersFirst(t *testing.T) {
	g := NewGateway(true)
	g.Instrument(obs.New())
	g.EnableAdmission(AdmissionConfig{
		MemoryBudget:     4 << 20,
		InstanceMemBytes: 1 << 20, // budget = 4 instances
	})
	for _, spec := range []struct {
		name string
		warm int
	}{{"big", 4}, {"small", 2}} {
		if err := g.Register(echoFn(spec.name, 0)); err != nil {
			t.Fatal(err)
		}
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	warmUp := func(name string, n int) {
		var wg sync.WaitGroup
		gate := make(chan struct{})
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, _ := http.NewRequest(http.MethodPost, base+"/function/"+name, &gatedReader{gate: gate})
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		// All n requests are in flight (each pinning an instance)
		// before any completes, so n instances exist.
		time.Sleep(50 * time.Millisecond)
		close(gate)
		wg.Wait()
	}
	warmUp("big", 4)
	warmUp("small", 2)
	if b, s := g.WarmInstances("big"), g.WarmInstances("small"); b != 4 || s != 2 {
		t.Fatalf("warm = big:%d small:%d, want 4/2", b, s)
	}

	if n := g.reclaimMemoryOnce(); n != 2 {
		t.Fatalf("reclaimed %d instances, want 2 (6 warm, budget 4)", n)
	}
	if b, s := g.WarmInstances("big"), g.WarmInstances("small"); b != 2 || s != 2 {
		t.Fatalf("post-reclaim warm = big:%d small:%d, want 2/2 (largest holder pays)", b, s)
	}
	mem := g.WarmMemory()
	if mem.Reclaimed != 2 || mem.WarmBytes != 4<<20 || mem.BudgetBytes != 4<<20 {
		t.Fatalf("WarmMemory = %+v", mem)
	}
	// Under budget now: another pass is a no-op.
	if n := g.reclaimMemoryOnce(); n != 0 {
		t.Fatalf("under-budget reclaim evicted %d", n)
	}
}

// gatedReader blocks the request body until gate closes, then EOFs:
// the cheapest way to pin a request in flight without a busy handler.
type gatedReader struct{ gate chan struct{} }

func (r *gatedReader) Read(p []byte) (int, error) {
	<-r.gate
	return 0, io.EOF
}

// Admission, adaptive control, the janitor's memory reclaim and stat
// snapshots all churn concurrently under -race: four workers hammer
// three functions through the full handler (tenants, deadlines,
// cancellations) while controlOnce/janitorOnce run between them. The
// assertions are occupancy book-balance; the race detector does the
// rest.
func TestAdmissionChurnWithControlLoops(t *testing.T) {
	g, clk, base := startControlled(t,
		ControlConfig{NewPredictor: func() predictor.Predictor { return predictor.Default() }, KeepAlive: time.Minute, MaxWarm: 4},
	)
	g.Instrument(obs.New())
	g.EnableAdmission(AdmissionConfig{
		MaxInFlight: 2, QueueDepth: 4,
		TenantWeights:    map[string]int{"gold": 2},
		MemoryBudget:     3 << 20,
		InstanceMemBytes: 1 << 20,
	})
	names := make([]string, 3)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		if err := g.Register(Function{
			Name:    names[i],
			Handler: func(b []byte) ([]byte, error) { return b, nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = base

	stop := make(chan struct{})
	var wg sync.WaitGroup
	tenants := []string{"gold", "bronze", ""}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("POST", "/function/"+names[(w+i)%len(names)], strings.NewReader("x"))
				if tn := tenants[i%len(tenants)]; tn != "" {
					req.Header.Set(TenantHeader, tn)
				}
				if i%5 == 0 {
					req.Header.Set(DeadlineHeader, "40")
				}
				g.handle(httptest.NewRecorder(), req)
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, name := range names {
			g.controlOnce(name, clk.Advance(time.Millisecond))
		}
		g.janitorOnce(clk.Now()) // includes reclaimMemoryOnce
		g.AdmissionStats()
		g.WarmMemory()
		g.Stats()
	}
	close(stop)
	wg.Wait()

	for name, st := range g.AdmissionStats() {
		if st.InFlight != 0 || st.Queued != 0 {
			t.Errorf("%s: occupancy after drain = %d in flight / %d queued, want 0/0", name, st.InFlight, st.Queued)
		}
		if st.Admitted == 0 {
			t.Errorf("%s: nothing admitted during churn", name)
		}
	}
}

// A malformed deadline header is the client's error: 400, nothing
// admitted, nothing fed to the breaker.
func TestBadDeadlineHeaderRejected(t *testing.T) {
	g := NewGateway(true)
	if err := g.Register(echoFn("f", 0)); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	for _, bad := range []string{"soon", "-5", "1.5"} {
		resp, err := postTenant(base, "f", "", "x", map[string]string{DeadlineHeader: bad})
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}
