package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotc/internal/obs"
)

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

func invokeTraced(t *testing.T, base, fn, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/function/"+fn, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(out)
}

func traceSnapshot(t *testing.T, base string) (TraceStats, []obs.Span) {
	t.Helper()
	resp, err := http.Get(base + "/system/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Trace TraceStats `json:"trace"`
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	return got.Trace, got.Spans
}

func findSpan(spans []obs.Span, fn func(obs.Span) bool) (obs.Span, bool) {
	for _, sp := range spans {
		if fn(sp) {
			return sp, true
		}
	}
	return obs.Span{}, false
}

// A request carrying a W3C traceparent joins the caller's trace and
// yields a span with all six §III.A moments, on both the streaming
// (echo) and buffered (qr) watchdog paths.
func TestTraceEndToEndWithTraceparent(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{TraceSampleRate: 1})
	for _, fn := range []string{"echo", "qr"} {
		if err := d.Deploy(DeploySpec{Name: fn, Handler: fn, ColdStartMs: 5}); err != nil {
			t.Fatal(err)
		}
	}
	for _, fn := range []string{"echo", "qr"} {
		resp, _ := invokeTraced(t, base, fn, "hello", map[string]string{
			"Traceparent":   testTraceparent,
			"X-Hotc-Tenant": "alice",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s invoke = %d", fn, resp.StatusCode)
		}
		// The inbound trace ID is echoed for correlation...
		if got := resp.Header.Get("X-Hotc-Trace-Id"); got != testTraceID {
			t.Fatalf("%s X-Hotc-Trace-Id = %q, want %q", fn, got, testTraceID)
		}
		// ...and the watchdog's internal timestamp headers never leak.
		for k := range resp.Header {
			if strings.HasPrefix(k, "X-Hotc-Span-") || k == "Trailer" {
				t.Fatalf("%s leaked internal response header %s", fn, k)
			}
		}

		_, spans := traceSnapshot(t, base)
		sp, ok := findSpan(spans, func(s obs.Span) bool { return s.Function == fn })
		if !ok {
			t.Fatalf("no span for %s in %d spans", fn, len(spans))
		}
		if sp.TraceID != testTraceID {
			t.Fatalf("%s span trace ID = %q, want propagated %q", fn, sp.TraceID, testTraceID)
		}
		if len(sp.SpanID) != 16 || sp.SpanID == "00f067aa0ba902b7" {
			t.Fatalf("%s span ID = %q, want a fresh 16-hex ID", fn, sp.SpanID)
		}
		if sp.KeepReason != obs.KeepCold || sp.Reused || sp.Status != http.StatusOK {
			t.Fatalf("%s span = reason %q reused %v status %d, want cold/false/200",
				fn, sp.KeepReason, sp.Reused, sp.Status)
		}
		if sp.Tenant != "alice" {
			t.Fatalf("%s span tenant = %q", fn, sp.Tenant)
		}
		// All six moments present and in pipeline order.
		stamps := []time.Duration{sp.ClientIn, sp.GatewayIn, sp.WatchdogIn,
			sp.FuncStart, sp.FuncDone, sp.WatchdogOut, sp.ClientOut}
		for i := 1; i < len(stamps); i++ {
			if stamps[i] <= 0 {
				t.Fatalf("%s span stamp %d missing: %v", fn, i, stamps)
			}
			if stamps[i] < stamps[i-1] {
				t.Fatalf("%s span stamps out of order: %v", fn, stamps)
			}
		}
		// The 5ms cold boot happens in the gateway→watchdog acquire
		// phase, so the moments measure something real.
		if sp.Acquire() < 4*time.Millisecond {
			t.Fatalf("%s cold span Acquire = %v, want >= ~5ms boot", fn, sp.Acquire())
		}
	}

	// Without an inbound traceparent the gateway mints a trace ID and
	// still echoes it.
	resp, _ := invokeTraced(t, base, "echo", "again", nil)
	minted := resp.Header.Get("X-Hotc-Trace-Id")
	if len(minted) != 32 || minted == testTraceID {
		t.Fatalf("minted trace ID = %q", minted)
	}
	_, spans := traceSnapshot(t, base)
	if _, ok := findSpan(spans, func(s obs.Span) bool { return s.TraceID == minted }); !ok {
		t.Fatalf("no span for minted trace %s", minted)
	}
}

// Admission queue time shows up as the span's (1)→gateway-admit gap.
func TestTraceQueueWait(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{TraceSampleRate: 1, MaxInFlight: 1, QueueDepth: 8})
	if err := d.Deploy(DeploySpec{Name: "sl", Handler: "sleep", ColdStartMs: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/function/sl", "text/plain", strings.NewReader("100"))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	_, spans := traceSnapshot(t, base)
	var maxQueue time.Duration
	n := 0
	for _, sp := range spans {
		if sp.Function == "sl" && sp.Status == http.StatusOK {
			n++
			if q := sp.Queue(); q > maxQueue {
				maxQueue = q
			}
		}
	}
	if n != 2 {
		t.Fatalf("want 2 sl spans, got %d", n)
	}
	// With max-inflight 1 the second request queued behind ~100ms of
	// service time.
	if maxQueue < 20*time.Millisecond {
		t.Fatalf("max queue wait = %v, want the loser to have queued", maxQueue)
	}
}

// Tail sampling: errors, sheds, cold starts and slow requests are
// always retained; bulk warm successes are dropped when the
// probabilistic baseline is off.
func TestTraceRetentionClasses(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{
		TraceSampleRate:    -1, // always-keep classes only
		TraceSlowThreshold: 250 * time.Millisecond,
		MaxBodyBytes:       64,
		BreakerThreshold:   2,
		BreakerOpenFor:     time.Hour,
	})
	for _, spec := range []DeploySpec{
		{Name: "echo", Handler: "echo", ColdStartMs: 1},
		{Name: "sl", Handler: "sleep", ColdStartMs: 1},
	} {
		if err := d.Deploy(spec); err != nil {
			t.Fatal(err)
		}
	}

	if resp, _ := invokeTraced(t, base, "echo", "x", nil); resp.StatusCode != 200 {
		t.Fatalf("cold invoke = %d", resp.StatusCode) // -> kept: cold
	}
	if resp, _ := invokeTraced(t, base, "echo", "y", nil); resp.StatusCode != 200 {
		t.Fatalf("warm invoke = %d", resp.StatusCode) // -> sampled out
	}
	if resp, _ := invokeTraced(t, base, "echo", strings.Repeat("z", 100), nil); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize invoke = %d, want 413", resp.StatusCode) // -> kept: error
	}
	if resp, _ := invokeTraced(t, base, "sl", "0", nil); resp.StatusCode != 200 {
		t.Fatalf("cold sleep = %d", resp.StatusCode) // -> kept: cold
	}
	if resp, _ := invokeTraced(t, base, "sl", "400", nil); resp.StatusCode != 200 {
		t.Fatalf("slow sleep = %d", resp.StatusCode) // warm, 400ms -> kept: slow
	}
	echo := d.gw.shard("echo")
	d.gw.breakerFailure(echo, "boot.failures")
	d.gw.breakerFailure(echo, "boot.failures")
	if resp, _ := invokeTraced(t, base, "echo", "x", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker invoke = %d, want 503", resp.StatusCode) // -> kept: shed
	}

	stats, spans := traceSnapshot(t, base)
	reasons := map[string]int{}
	for _, sp := range spans {
		reasons[sp.KeepReason]++
	}
	want := map[string]int{obs.KeepCold: 2, obs.KeepError: 1, obs.KeepSlow: 1, obs.KeepShed: 1}
	for reason, n := range want {
		if reasons[reason] != n {
			t.Errorf("kept %d %q spans, want %d (all: %v)", reasons[reason], reason, n, reasons)
		}
	}
	if reasons[obs.KeepSampled] != 0 {
		t.Errorf("probabilistic baseline off but %d sampled spans kept", reasons[obs.KeepSampled])
	}
	if stats.SampledOut != 1 || stats.Kept != 5 {
		t.Errorf("trace stats = %+v, want 1 sampled out, 5 kept", stats)
	}
	// The shed span carries the breaker event.
	shed, ok := findSpan(spans, func(s obs.Span) bool { return s.KeepReason == obs.KeepShed })
	if !ok || len(shed.Events) == 0 || shed.Events[0].Kind != "breaker-rejected" {
		t.Errorf("shed span events = %+v, want a breaker-rejected event", shed.Events)
	}

	// The same accounting is exported as hotc_trace_* counters.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, wantLine := range []string{
		`hotc_trace_kept_total{reason="cold"} 2`,
		`hotc_trace_kept_total{reason="error"} 1`,
		`hotc_trace_kept_total{reason="shed"} 1`,
		`hotc_trace_kept_total{reason="slow"} 1`,
		`hotc_trace_sampled_out_total 1`,
	} {
		if !strings.Contains(string(body), wantLine) {
			t.Errorf("/metrics missing %q", wantLine)
		}
	}
}

// An induced latency-SLO breach is visible on /system/slo and as
// hotc_slo_* burn-rate gauges.
func TestSLOBreachEndToEnd(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{
		SLOLatency:      time.Nanosecond, // every request breaches
		SLOColdStartPct: 50,
	})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo", ColdStartMs: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		postJSON(t, base+"/function/echo", "x")
	}

	resp, err := http.Get(base + "/system/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep obs.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.SLOObjective{}
	for _, o := range rep.Objectives {
		byName[o.Name] = o
	}
	lat, ok := byName[obs.SLOLatency]
	if !ok || !lat.Breach {
		t.Fatalf("latency objective = %+v, want breach", lat)
	}
	if w := lat.Windows[0]; w.Total != 4 || w.Bad != 4 || w.BurnRate < 1 {
		t.Fatalf("latency window = %+v, want 4/4 bad", w)
	}
	cold, ok := byName[obs.SLOColdStart]
	if !ok || cold.Breach {
		t.Fatalf("coldstart objective = %+v, want within budget", cold)
	}
	if w := cold.Windows[0]; w.Total != 4 || w.Bad != 1 {
		t.Fatalf("coldstart window = %+v, want 1/4 cold", w)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`hotc_slo_breach{objective="latency"} 1`,
		`hotc_slo_breach{objective="coldstart"} 0`,
		`hotc_slo_burn_rate{objective="latency",window="1m0s"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Build metadata, uptime, exemplars, and the strict exposition check
// over a real daemon scrape.
func TestMetricsBuildInfoUptimeExemplars(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo", ColdStartMs: 1}); err != nil {
		t.Fatal(err)
	}
	postJSON(t, base+"/function/echo", "x") // cold -> kept -> exemplar

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`hotc_build_info{version="dev",go_version="go`,
		"hotc_uptime_seconds",
		` # {trace_id="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The whole exposition survives the strict parser, exemplars
	// included.
	st, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition rejects live /metrics: %v", err)
	}
	if st.Exemplars < 1 {
		t.Errorf("exposition has no exemplars")
	}

	// /system/stats mirrors the build and tracing metadata.
	sresp, err := http.Get(base + "/system/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var got struct {
		Version       string     `json:"version"`
		GoVersion     string     `json:"goVersion"`
		UptimeSeconds float64    `json:"uptimeSeconds"`
		Trace         TraceStats `json:"trace"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Version != "dev" || !strings.HasPrefix(got.GoVersion, "go") {
		t.Errorf("stats version = %q/%q", got.Version, got.GoVersion)
	}
	if got.UptimeSeconds < 0 || got.UptimeSeconds > 300 {
		t.Errorf("uptimeSeconds = %v", got.UptimeSeconds)
	}
	if !got.Trace.Enabled || got.Trace.Kept < 1 {
		t.Errorf("stats trace = %+v", got.Trace)
	}
}

func TestTracingDisabled(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{DisableTracing: true})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	resp, _ := invokeTraced(t, base, "echo", "x", map[string]string{"Traceparent": testTraceparent})
	if resp.StatusCode != 200 {
		t.Fatalf("invoke = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Hotc-Trace-Id"); got != "" {
		t.Fatalf("tracing disabled but X-Hotc-Trace-Id = %q", got)
	}
	stats, spans := traceSnapshot(t, base)
	if stats.Enabled || len(spans) != 0 {
		t.Fatalf("tracing disabled but /system/trace = %+v, %d spans", stats, len(spans))
	}
	// No SLO objectives configured: /system/slo answers an empty report.
	sresp, err := http.Get(base + "/system/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var rep obs.SLOReport
	if err := json.NewDecoder(sresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 0 {
		t.Fatalf("slo report = %+v", rep)
	}
}

// Scrapes of /metrics, /system/trace and /system/slo race live
// traffic, controller ticks and janitor churn; the span ring wraps a
// tiny capacity. Run under -race this is the tracing data-path
// integrity test.
func TestTraceScrapeUnderChurn(t *testing.T) {
	newPred, err := PredictorFactory("es")
	if err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, PoolConfig{
		ControlInterval: 5 * time.Millisecond,
		NewPredictor:    newPred,
		IdleTTL:         50 * time.Millisecond,
		ReapInterval:    2 * time.Millisecond,
		TraceCapacity:   8, // force wraparound
		TraceSampleRate: 1,
		SLOLatency:      250 * time.Millisecond,
		SLOColdStartPct: 5,
		MaxInFlight:     4,
		QueueDepth:      64,
	})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo", ColdStartMs: 1}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var requests, failures atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, _ := invokeTraced(t, base, "echo", "x", map[string]string{"Traceparent": testTraceparent})
				requests.Add(1)
				// Overload refusals are legitimate under churn; transport
				// or server errors are not.
				if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
					failures.Add(1)
					return
				}
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/system/trace", "/system/slo"} {
					resp, err := http.Get(base + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				// The JSONL view stays parseable mid-churn.
				resp, err := http.Get(base + "/system/trace?format=jsonl")
				if err != nil {
					t.Errorf("GET jsonl: %v", err)
					return
				}
				spans, err := obs.ReadSpans(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("jsonl mid-churn: %v", err)
					return
				}
				if len(spans) > 8 {
					t.Errorf("snapshot has %d spans, capacity 8", len(spans))
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d requests failed hard during churn", failures.Load())
	}
	if requests.Load() < 20 {
		t.Fatalf("only %d requests completed; churn test undersampled", requests.Load())
	}

	stats, spans := traceSnapshot(t, base)
	if stats.Kept <= 8 {
		t.Fatalf("kept %d spans; ring (capacity 8) never wrapped", stats.Kept)
	}
	if len(spans) > 8 {
		t.Fatalf("final snapshot %d spans > capacity", len(spans))
	}
	// Quiesced, the full exposition must satisfy the strict parser.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := obs.ParseExposition(resp.Body); err != nil {
		t.Fatalf("post-churn exposition invalid: %v", err)
	}
}

// The sampled-out fast path must not allocate: tracing at default
// sampling adds no per-request heap traffic for the bulk of requests.
func TestFinishRequestSampledOutZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed under -race")
	}
	g := NewGateway(true)
	if err := g.Register(Function{Name: "f", Handler: func(b []byte) ([]byte, error) { return b, nil }}); err != nil {
		t.Fatal(err)
	}
	g.EnableTracing(TracingConfig{SampleRate: -1, SlowThreshold: -1, Seed: 1})
	s := g.shard("f")
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		var rt reqTrace
		rt.active, rt.reused, rt.served = true, true, true
		rt.name, rt.start = "f", start
		g.finishRequest(s, &rt, http.StatusOK, "")
	})
	if allocs > 0 {
		t.Fatalf("finishRequest allocates %.1f objects on the sampled-out path; must stay at 0", allocs)
	}
}
