package live

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/iotest"
	"time"
)

// streamEcho is the canonical StreamHandler: a pooled pass-through
// copy, never holding more than one chunk.
func streamEcho(r io.Reader, w io.Writer) error {
	_, err := copyPooled(w, r)
	return err
}

// patternedPayload builds a deterministic, non-repeating body so a
// chunk delivered out of order or twice cannot pass the equality
// check.
func patternedPayload(n int) []byte {
	p := make([]byte, n)
	x := uint32(2463534242)
	for i := range p {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		p[i] = byte(x)
	}
	return p
}

// Eight mebibytes must flow through a StreamHandler byte-for-byte over
// the real socket path — proving no stage of the pipeline buffers or
// truncates the payload — and the gateway's own headers must survive
// the streamed response.
func TestStreamLargePayloadRoundTrip(t *testing.T) {
	g := NewGateway(true)
	if err := g.Register(Function{Name: "big", Stream: streamEcho}); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	payload := patternedPayload(8 << 20)
	for i, wantReused := range []string{"false", "true"} {
		resp, err := http.Post(base+"/function/big", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d", i, resp.StatusCode)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: %d bytes back (want %d), integrity lost", i, len(got), len(payload))
		}
		if hv := resp.Header.Get("X-Hotc-Reused"); hv != wantReused {
			t.Fatalf("round %d: X-Hotc-Reused = %q, want %q", i, hv, wantReused)
		}
	}
}

// The pooled compat shim must carry the same 8 MiB for plain []byte
// handlers, and — because the watchdog declares the response length —
// the gateway must forward Content-Length instead of chunking.
func TestBytesLargePayloadForwardsLength(t *testing.T) {
	g := NewGateway(true)
	if err := g.Register(Function{
		Name:    "big",
		Handler: func(b []byte) ([]byte, error) { return b, nil },
	}); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	payload := patternedPayload(8 << 20)
	resp, err := http.Post(base+"/function/big", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.ContentLength != int64(len(payload)) {
		t.Fatalf("ContentLength = %d, want %d (watchdog length not forwarded)", resp.ContentLength, len(payload))
	}
	// The watchdog's sniffed Content-Type must ride along too.
	if resp.Header.Get("Content-Type") == "" {
		t.Fatal("watchdog Content-Type dropped")
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("%d bytes back (want %d), integrity lost", len(got), len(payload))
	}
}

// -max-body-size regression: a body declaring its oversize is rejected
// with 413 before any instance boots; an undeclared (chunked) oversize
// body against a buffered handler is caught by MaxBytesReader before
// the watchdog commits a status, so it answers 413 too; an in-bounds
// body sails through. (A *streaming* handler that has already
// committed its 200 can only truncate on overflow — HTTP cannot
// retract a sent status line — so the chunked case pins the buffered
// kind, where the 413 is deterministic.)
func TestMaxBodySizeRejectsOversize(t *testing.T) {
	g := NewGateway(true)
	g.SetMaxBodyBytes(1 << 10)
	if err := g.Register(Function{Name: "f", Stream: streamEcho}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(Function{
		Name:    "buf",
		Handler: func(b []byte) ([]byte, error) { return b, nil },
	}); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	big := bytes.Repeat([]byte("x"), 4<<10)

	// Declared oversize: Content-Length is known, so the gateway must
	// answer 413 without booting (or touching) any instance.
	resp, err := http.Post(base+"/function/f", "text/plain", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("declared oversize: status %d, want 413", resp.StatusCode)
	}
	if st := g.Stats(); st.ColdStarts != 0 {
		t.Fatalf("declared oversize booted %d instances; the early reject must be free", st.ColdStarts)
	}

	// Undeclared oversize: io.MultiReader hides the size, forcing
	// chunked encoding; MaxBytesReader trips while the watchdog shim
	// buffers the body, before any status is committed.
	resp, err = http.Post(base+"/function/buf", "text/plain", io.MultiReader(bytes.NewReader(big)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("chunked oversize: status %d, want 413", resp.StatusCode)
	}

	// An in-bounds request still works.
	resp, err = http.Post(base+"/function/f", "text/plain", strings.NewReader("ok"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("in-bounds: %d %q", resp.StatusCode, body)
	}
}

// The daemon plumbs PoolConfig.MaxBodyBytes through to the gateway.
func TestDaemonMaxBodySize(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{MaxBodyBytes: 512})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, base+"/function/echo", strings.Repeat("x", 2048))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/function/echo", "small"); resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bounds status %d", resp.StatusCode)
	}
}

// upperStream must never split a UTF-8 rune across its 32 KiB chunk
// boundary: a leading ASCII byte misaligns a run of two-byte runes so
// every chunk ends mid-rune.
func TestUpperStreamRuneBoundaries(t *testing.T) {
	in := "a" + strings.Repeat("é", copyBufSize)
	var out bytes.Buffer
	if err := upperStream(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if want := strings.ToUpper(in); out.String() != want {
		t.Fatal("upperStream mangled runes across chunk boundaries")
	}

	// One-byte reads force the carry logic on every multi-byte rune.
	out.Reset()
	if err := upperStream(iotest.OneByteReader(strings.NewReader("héllo wörld")), &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "HÉLLO WÖRLD" {
		t.Fatalf("one-byte reads: %q", got)
	}
}

// wordcountStream counts across chunk boundaries without buffering the
// body.
func TestWordcountStream(t *testing.T) {
	const words = 100_000
	var in strings.Builder
	for i := 0; i < words; i++ {
		fmt.Fprintf(&in, "word%d ", i)
	}
	var out bytes.Buffer
	if err := wordcountStream(strings.NewReader(in.String()), &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "100000" {
		t.Fatalf("wordcount = %q, want 100000", got)
	}
}

// The streaming builtins behave like their buffered ancestors end to
// end through the daemon.
func TestBuiltinStreamsViaDaemon(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})
	for _, name := range []string{"echo", "upper", "wordcount"} {
		if err := d.Deploy(DeploySpec{Name: name, Handler: name}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct{ fn, in, want string }{
		{"echo", "héllo wörld", "héllo wörld"},
		{"upper", "héllo wörld", "HÉLLO WÖRLD"},
		{"wordcount", "a b  c\nd", "4"},
	} {
		resp := postJSON(t, base+"/function/"+tc.fn, tc.in)
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK || string(body) != tc.want {
			t.Fatalf("%s(%q) = %d %q, want %q", tc.fn, tc.in, resp.StatusCode, body, tc.want)
		}
	}
}

// The steady-state proxy copy must not touch the heap: every chunk
// moves through the recycled pool buffer. Guarded by verify.sh as the
// alloc-regression tier.
func TestCopyPooledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed under -race")
	}
	payload := bytes.Repeat([]byte("z"), 64<<10)
	src := bytes.NewReader(payload)
	if _, err := copyPooled(io.Discard, src); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		src.Reset(payload)
		if _, err := copyPooled(io.Discard, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 1 {
		t.Fatalf("copyPooled allocates %.1f objects per copy; the pooled path must stay at 0", allocs)
	}
}

// The []byte compat shim's whole-body buffer recycles too: after the
// first request of a given size, invoking a buffered handler allocates
// no heap buffers at all.
func TestBytesShimZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed under -race")
	}
	payload := bytes.Repeat([]byte("z"), 64<<10)
	src := bytes.NewReader(payload)
	handler := Handler(func(b []byte) ([]byte, error) { return b, nil })
	run := func() {
		src.Reset(payload)
		buf := getBodyBuf()
		if _, err := buf.ReadFrom(src); err != nil {
			t.Fatal(err)
		}
		out, err := handler(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		io.Discard.Write(out)
		putBodyBuf(buf)
	}
	run() // warm the pool to steady state
	allocs := testing.AllocsPerRun(100, run)
	if allocs >= 1 {
		t.Fatalf("bytes shim allocates %.1f objects per request; the pooled path must stay at 0", allocs)
	}
}

// Concurrent multi-megabyte streams must coexist with controller
// prewarm/retire ticks and the janitor: run under -race, the detector
// does the heavy lifting; the assertions check integrity under churn.
func TestConcurrentLargeStreamsDuringControl(t *testing.T) {
	g, clk, _ := startControlled(t,
		ControlConfig{NewPredictor: naiveFactory, KeepAlive: time.Minute, MaxWarm: 2},
		Function{Name: "big", Stream: streamEcho})

	const size = 1 << 20
	payload := patternedPayload(size)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("POST", "/function/big", bytes.NewReader(payload))
				rec := &discardResponseWriter{}
				g.handle(rec, req)
				if rec.status != http.StatusOK || rec.n != size {
					bad.Add(1)
					return
				}
			}
		}()
	}
	// Controller and janitor churn the warm pool while streams fly.
	for i := 0; i < 40; i++ {
		g.controlOnce("big", clk.Advance(50*time.Millisecond))
		g.janitorOnce(clk.Now())
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n > 0 {
		t.Fatalf("%d large streams failed or truncated during control churn", n)
	}
}
