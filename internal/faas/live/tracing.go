package live

import (
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hotc/internal/obs"
)

// The distributed-tracing request and response headers. The gateway
// accepts (or generates) a W3C traceparent, propagates it to the
// watchdog, and echoes the trace ID back to the client; the watchdog
// answers a traced request with its own §III.A workflow moments so the
// gateway can assemble the complete six-timestamp span.
const (
	// TraceparentHeader is the W3C Trace Context header
	// (https://www.w3.org/TR/trace-context/): version-00
	// "00-<trace-id>-<parent-id>-<flags>". Inbound it joins the request
	// to the caller's trace; the gateway forwards it to the watchdog
	// with its own span ID as parent-id.
	TraceparentHeader = "Traceparent"
	// TraceIDHeader echoes the request's 32-hex trace ID on every
	// gateway response (including refusals), so clients and load
	// generators can correlate a response with its span in
	// /system/trace without parsing traceparent.
	TraceIDHeader = "X-Hotc-Trace-Id"

	// The watchdog's span-timestamp response headers: §III.A moments
	// (2)..(5) as unix nanoseconds, returned only when the request
	// carried a traceparent. On the streaming path moments (4) and (5)
	// are not known before the response body starts, so they travel as
	// HTTP trailers under the same names.
	//
	// SpanWatchdogInHeader is moment (2): the request reached the
	// watchdog.
	SpanWatchdogInHeader = "X-Hotc-Span-Watchdog-In"
	// SpanFuncStartHeader is moment (3): the function began executing.
	SpanFuncStartHeader = "X-Hotc-Span-Func-Start"
	// SpanFuncDoneHeader is moment (4): the function finished.
	SpanFuncDoneHeader = "X-Hotc-Span-Func-Done"
	// SpanWatchdogOutHeader is moment (5): the response left the
	// watchdog.
	SpanWatchdogOutHeader = "X-Hotc-Span-Watchdog-Out"

	// spanHeaderPrefix marks the internal watchdog→gateway timestamp
	// headers, which are consumed at the gateway and never forwarded.
	spanHeaderPrefix = "X-Hotc-Span-"
)

// TracingConfig arms the gateway's live request tracing.
type TracingConfig struct {
	// Capacity is the span ring size (default 2048).
	Capacity int
	// SampleRate is the probabilistic keep rate for unremarkable
	// successes, in [0,1]; errors, sheds, cold starts and slow requests
	// are always kept. 0 means the 1% default; negative means keep
	// only the always-keep classes.
	SampleRate float64
	// SlowThreshold always keeps spans at or above this end-to-end
	// latency (default 500ms; negative disables the slow rule).
	SlowThreshold time.Duration
	// Seed fixes the ID and sampling streams for tests (0 = random).
	Seed uint64
}

// tracing is the gateway's live-tracing state, swapped in whole
// through an atomic pointer (nil = tracing off, the request path pays
// one pointer load).
type tracing struct {
	ring    *obs.TraceRing
	sampler *obs.TailSampler
	ids     *obs.IDGen
	// epochNano anchors span timestamps: offsets from the gateway's
	// construction, so gateway stamps and watchdog unix-nano stamps
	// land on one time base.
	epochNano int64
	// nextID orders kept spans for human readers.
	nextID atomic.Uint64
	// sampledOut counts completed requests whose spans were dropped by
	// the probabilistic baseline.
	sampledOut atomic.Uint64
}

// EnableTracing switches live request tracing on. Call before Start,
// like EnableBreaker.
func (g *Gateway) EnableTracing(cfg TracingConfig) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2048
	}
	rate := cfg.SampleRate
	switch {
	case rate == 0:
		rate = 0.01
	case rate < 0:
		rate = 0
	}
	slow := cfg.SlowThreshold
	switch {
	case slow == 0:
		slow = 500 * time.Millisecond
	case slow < 0:
		slow = 0
	}
	g.trace.Store(&tracing{
		ring:      obs.NewTraceRing(cfg.Capacity),
		sampler:   obs.NewTailSampler(obs.SamplerConfig{SlowThreshold: slow, SampleRate: rate, Seed: cfg.Seed}),
		ids:       obs.NewIDGen(cfg.Seed),
		epochNano: g.epoch.UnixNano(),
	})
}

// SetSLO attaches an SLO monitor: every completed request feeds its
// status, cold/warm mode and latency into the monitor's burn-rate
// windows. nil detaches.
func (g *Gateway) SetSLO(m *obs.SLOMonitor) { g.slo.Store(m) }

// TraceSpans snapshots the span ring, newest first.
func (g *Gateway) TraceSpans() []obs.Span {
	tr := g.trace.Load()
	if tr == nil {
		return nil
	}
	return tr.ring.Snapshot()
}

// TraceStats summarizes the tracing subsystem's accounting.
type TraceStats struct {
	// Enabled reports whether tracing is armed.
	Enabled bool `json:"enabled"`
	// Capacity is the span ring size.
	Capacity int `json:"capacity"`
	// Kept counts spans the tail sampler retained (including any later
	// dropped on ring contention).
	Kept uint64 `json:"kept"`
	// SampledOut counts completed requests whose spans the sampler
	// dropped.
	SampledOut uint64 `json:"sampledOut"`
	// RingDropped counts kept spans dropped because their ring slot
	// was busy.
	RingDropped uint64 `json:"ringDropped"`
}

// TraceStats reports the tracing subsystem's accounting (zero value
// when tracing is off).
func (g *Gateway) TraceStats() TraceStats {
	tr := g.trace.Load()
	if tr == nil {
		return TraceStats{}
	}
	return TraceStats{
		Enabled:     true,
		Capacity:    tr.ring.Capacity(),
		Kept:        tr.ring.Written() + tr.ring.Contended(),
		SampledOut:  tr.sampledOut.Load(),
		RingDropped: tr.ring.Contended(),
	}
}

// reqTrace is one request's tracing state, stack-allocated in handle:
// nothing here escapes to the heap unless the span is kept, which is
// what keeps the sampled-out path allocation-free.
type reqTrace struct {
	active    bool
	hasParent bool
	reused    bool
	// served reports the request reached a watchdog and got a response.
	served  bool
	nEvents int
	tc      obs.TraceContext
	parent  obs.TraceContext
	name    string
	tenant  string
	start   time.Time
	// clientIn and the watchdog moments are nanoseconds from the
	// gateway epoch (0 = never reached).
	clientIn                                     int64
	watchdogIn, funcStart, funcDone, watchdogOut int64
	queueWait                                    time.Duration
	events                                       [4]obs.SpanEvent
}

// begin stamps moment (1) and resolves the request's trace context:
// join the inbound traceparent when one parses, else start a new
// trace. The gateway's own span ID is always fresh.
func (tr *tracing) begin(rt *reqTrace, r *http.Request, start time.Time) {
	rt.active = true
	rt.clientIn = start.UnixNano() - tr.epochNano
	if parent, ok := obs.ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
		rt.parent = parent
		rt.hasParent = true
		rt.tc.TraceID = parent.TraceID
		rt.tc.Flags = parent.Flags | 1
	} else {
		rt.tc.TraceID = tr.ids.NewTraceID()
		rt.tc.Flags = 1
	}
	rt.tc.SpanID = tr.ids.NewSpanID()
}

// addEvent appends a span event (silently dropping past the fixed
// per-request budget: events annotate, they must not allocate).
func (rt *reqTrace) addEvent(at time.Duration, kind, detail string) {
	if rt.nEvents < len(rt.events) {
		rt.events[rt.nEvents] = obs.SpanEvent{At: at, Kind: kind, Detail: detail}
		rt.nEvents++
	}
}

// traceEvent records a resilience event on the request's span (no-op
// when tracing is off).
func (g *Gateway) traceEvent(rt *reqTrace, kind, detail string) {
	tr := g.trace.Load()
	if tr == nil || !rt.active {
		return
	}
	rt.addEvent(time.Duration(time.Now().UnixNano()-tr.epochNano), kind, detail)
}

// noteWatchdog parses the watchdog's span-timestamp headers (or
// trailers) into the request state, filling only moments not already
// set — headers first, then trailers complete the streaming path.
func (tr *tracing) noteWatchdog(h http.Header, rt *reqTrace) {
	if rt.watchdogIn == 0 {
		rt.watchdogIn = tr.headerNanos(h, SpanWatchdogInHeader)
	}
	if rt.funcStart == 0 {
		rt.funcStart = tr.headerNanos(h, SpanFuncStartHeader)
	}
	if rt.funcDone == 0 {
		rt.funcDone = tr.headerNanos(h, SpanFuncDoneHeader)
	}
	if rt.watchdogOut == 0 {
		rt.watchdogOut = tr.headerNanos(h, SpanWatchdogOutHeader)
	}
}

// headerNanos converts one unix-nano timestamp header to an epoch
// offset (0 when absent or malformed).
func (tr *tracing) headerNanos(h http.Header, key string) int64 {
	v := h.Get(key)
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n <= tr.epochNano {
		return 0
	}
	return n - tr.epochNano
}

// internalRespHeader reports response headers the gateway consumes
// itself and must not forward to clients: the watchdog's span
// timestamps and its trailer declaration.
func internalRespHeader(k string) bool {
	return k == "Trailer" || strings.HasPrefix(k, spanHeaderPrefix)
}

// finishRequest concludes a request's observability: feed the SLO
// monitor, assemble the span, let the tail sampler judge it, and (for
// keepers) commit it to the ring with its trace IDs and a latency
// exemplar. This runs on every handle exit; on the sampled-out path it
// touches only stack state and a handful of atomics — no locks, no
// allocation.
func (g *Gateway) finishRequest(s *shard, rt *reqTrace, status int, errMsg string) {
	if m := g.slo.Load(); m != nil {
		m.Record(status, rt.served, rt.served && !rt.reused, time.Since(rt.start))
	}
	tr := g.trace.Load()
	if tr == nil || !rt.active {
		return
	}
	clientOut := time.Duration(time.Now().UnixNano() - tr.epochNano)
	sp := obs.Span{
		Function:    rt.name,
		Tenant:      rt.tenant,
		Reused:      rt.reused,
		Err:         errMsg,
		Status:      status,
		ClientIn:    time.Duration(rt.clientIn),
		GatewayIn:   time.Duration(rt.clientIn) + rt.queueWait,
		WatchdogIn:  time.Duration(rt.watchdogIn),
		FuncStart:   time.Duration(rt.funcStart),
		FuncDone:    time.Duration(rt.funcDone),
		WatchdogOut: time.Duration(rt.watchdogOut),
		ClientOut:   clientOut,
	}
	reason, keep := tr.sampler.Decide(&sp)
	ins := g.obs.Load()
	if !keep {
		tr.sampledOut.Add(1)
		if ins != nil {
			ins.traceSampledOut.Inc()
		}
		return
	}
	// The span is a keeper: only now do the trace IDs materialize as
	// strings.
	sp.ID = int(tr.nextID.Add(1))
	sp.KeepReason = reason
	sp.TraceID = rt.tc.TraceIDString()
	sp.SpanID = rt.tc.SpanIDString()
	stored := tr.ring.Put(&sp, rt.events[:rt.nEvents])
	if ins != nil {
		if c := ins.traceKept[reason]; c != nil {
			c.Inc()
		}
		if !stored {
			ins.traceRingFull.Inc()
		}
	}
	if s != nil {
		if m := s.m.Load(); m != nil {
			// The latency histogram's bucket exemplar: this trace ID is
			// the "show me one" answer for its latency bucket.
			m.latency.SetExemplar(float64(sp.Total())/float64(time.Millisecond),
				sp.TraceID, rt.start.Add(sp.Total()))
		}
	}
}
