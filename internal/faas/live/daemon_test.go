package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func startDaemon(t *testing.T, cfg PoolConfig) (*Daemon, string) {
	t.Helper()
	d := NewDaemon(cfg)
	base, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d, base
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestDaemonDeployAndInvokeOverHTTP(t *testing.T) {
	_, base := startDaemon(t, PoolConfig{})
	resp := postJSON(t, base+"/system/functions", `{"name":"up","handler":"upper","coldStartMs":5}`)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("deploy status %d: %s", resp.StatusCode, b)
	}

	inv := postJSON(t, base+"/function/up", `hello`)
	body, _ := io.ReadAll(inv.Body)
	if inv.StatusCode != http.StatusOK || string(body) != "HELLO" {
		t.Fatalf("invoke = %d %q", inv.StatusCode, body)
	}

	// Listing shows the function.
	lst, err := http.Get(base + "/system/functions")
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Body.Close()
	var names []string
	if err := json.NewDecoder(lst.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "up" {
		t.Fatalf("functions = %v", names)
	}
}

func TestDaemonStatsEndpoint(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	postJSON(t, base+"/function/echo", "x")
	postJSON(t, base+"/function/echo", "y")

	resp, err := http.Get(base + "/system/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Stats Stats          `json:"stats"`
		Warm  map[string]int `json:"warmInstances"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Stats.Requests != 2 || got.Stats.ColdStarts != 1 || got.Stats.Reused != 1 {
		t.Fatalf("stats = %+v", got.Stats)
	}
	if got.Warm["echo"] != 1 {
		t.Fatalf("warm = %v", got.Warm)
	}
}

func TestDaemonDeployValidation(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})
	cases := []string{
		`{"name":"x","handler":"teleport"}`,
		`{"name":"x","handler":"echo","coldStartMs":-1}`,
		`{"name":"","handler":"echo"}`,
		`not json`,
	}
	for _, body := range cases {
		resp := postJSON(t, base+"/system/functions", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deploy %q status = %d, want 400", body, resp.StatusCode)
		}
	}
	if err := d.Deploy(DeploySpec{Name: "ok", Handler: "wordcount"}); err != nil {
		t.Fatal(err)
	}
	inv := postJSON(t, base+"/function/ok", "a b c")
	body, _ := io.ReadAll(inv.Body)
	if string(body) != "3" {
		t.Fatalf("wordcount = %q", body)
	}
}

func TestDaemonMethodNotAllowed(t *testing.T) {
	_, base := startDaemon(t, PoolConfig{})
	req, _ := http.NewRequest(http.MethodDelete, base+"/system/functions", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestReaperTTLExpiry(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{IdleTTL: time.Hour, ReapInterval: time.Hour})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	postJSON(t, base+"/function/echo", "x")
	if d.WarmInstances("echo") != 1 {
		t.Fatalf("warm = %d", d.WarmInstances("echo"))
	}
	// Within TTL: kept.
	d.reapOnce(time.Now().Add(30 * time.Minute))
	if d.WarmInstances("echo") != 1 {
		t.Fatal("instance reaped before TTL")
	}
	// Past TTL: reaped.
	d.reapOnce(time.Now().Add(2 * time.Hour))
	if d.WarmInstances("echo") != 0 {
		t.Fatal("instance survived TTL")
	}
	// Next request cold-starts again and still works.
	inv := postJSON(t, base+"/function/echo", "again")
	body, _ := io.ReadAll(inv.Body)
	if string(body) != "again" {
		t.Fatalf("post-reap invoke = %q", body)
	}
	if d.Stats().ColdStarts != 2 {
		t.Fatalf("cold starts = %d, want 2", d.Stats().ColdStarts)
	}
}

func TestWarmCapEnforcedContinuously(t *testing.T) {
	// The cap holds at every instant, not just at janitor ticks:
	// release evicts the oldest idle instance instead of growing past
	// the limit.
	d, base := startDaemon(t, PoolConfig{MaxIdlePerFunction: 2, ReapInterval: time.Hour})
	if err := d.Deploy(DeploySpec{Name: "s", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	// Four concurrent requests run on four distinct instances; as each
	// finishes, the pool admits it but never exceeds the cap.
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func() {
			resp, err := http.Post(base+"/function/s", "text/plain", strings.NewReader("x"))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
		if got := d.WarmInstances("s"); got > 2 {
			t.Fatalf("warm pool %d exceeds cap 2", got)
		}
	}
	if got := d.WarmInstances("s"); got != 2 {
		t.Fatalf("warm after all releases = %d, want 2", got)
	}
	if st := d.Stats(); st.Retired != 2 {
		t.Fatalf("Retired = %d, want 2 oldest-first cap evictions", st.Retired)
	}
	// The janitor's cap backstop finds nothing left to do.
	d.reapOnce(time.Now())
	if got := d.WarmInstances("s"); got != 2 {
		t.Fatalf("warm after reap = %d, want 2", got)
	}
}

// End-to-end adaptive control through the daemon: real controller
// goroutines tick, the prediction trace endpoint reports them, and
// /system/stats carries the forecast.
func TestDaemonAdaptiveControlEndToEnd(t *testing.T) {
	newPred, err := PredictorFactory("es+markov")
	if err != nil {
		t.Fatal(err)
	}
	d, base := startDaemon(t, PoolConfig{
		ControlInterval: 20 * time.Millisecond,
		NewPredictor:    newPred,
		IdleTTL:         time.Hour,
		ReapInterval:    time.Hour,
	})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	postJSON(t, base+"/function/echo", "x")

	// Wait for a few controller ticks to land.
	var trace PredictionTrace
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/system/predictions")
		if err != nil {
			t.Fatal(err)
		}
		var traces map[string]PredictionTrace
		err = json.NewDecoder(resp.Body).Decode(&traces)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tr, ok := traces["echo"]; ok && tr.Ticks >= 2 {
			trace = tr
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no controller ticks observed: %+v", traces)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if trace.Predictor != "hotc(es+markov)" {
		t.Fatalf("predictor = %q", trace.Predictor)
	}
	if len(trace.Observed) != trace.Ticks || len(trace.Predicted) != trace.Ticks {
		t.Fatalf("trace series lengths %d/%d do not match ticks %d",
			len(trace.Observed), len(trace.Predicted), trace.Ticks)
	}

	// /system/stats exposes the same forecast.
	resp, err := http.Get(base + "/system/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Forecast map[string]float64 `json:"forecast"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Forecast["echo"]; !ok {
		t.Fatalf("stats missing forecast: %v", got.Forecast)
	}

	// And /metrics carries the controller families under the same
	// names the simulated substrate emits.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, want := range []string{
		"hotc_ctl_ticks_total",
		`hotc_ctl_demand{key="echo"}`,
		`hotc_ctl_forecast{key="echo"}`,
		`hotc_ctl_target{key="echo"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// A function deployed after the daemon started joins the control loop.
func TestDaemonLateDeployJoinsController(t *testing.T) {
	newPred, err := PredictorFactory("es")
	if err != nil {
		t.Fatal(err)
	}
	_, base := startDaemon(t, PoolConfig{
		ControlInterval: 20 * time.Millisecond,
		NewPredictor:    newPred,
	})
	// Deployed over HTTP, strictly after Start.
	resp := postJSON(t, base+"/system/functions", `{"name":"late","handler":"upper"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deploy status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(base + "/system/predictions")
		if err != nil {
			t.Fatal(err)
		}
		var traces map[string]PredictionTrace
		err = json.NewDecoder(r.Body).Decode(&traces)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tr, ok := traces["late"]; ok && tr.Ticks >= 1 {
			if tr.Predictor != "es(α=0.80)" {
				t.Fatalf("predictor = %q", tr.Predictor)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("late-deployed function never ticked: %+v", traces)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPredictorFactory(t *testing.T) {
	for _, name := range []string{"es", "markov", "es+markov"} {
		f, err := PredictorFactory(name)
		if err != nil || f == nil {
			t.Errorf("PredictorFactory(%q): factory nil=%v, err=%v", name, f == nil, err)
		} else if f() == nil {
			t.Errorf("PredictorFactory(%q) built a nil predictor", name)
		}
	}
	for _, name := range []string{"", "off"} {
		f, err := PredictorFactory(name)
		if err != nil || f != nil {
			t.Errorf("PredictorFactory(%q): factory nil=%v, err=%v, want nil, nil", name, f == nil, err)
		}
	}
	if _, err := PredictorFactory("oracle"); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

func TestBuiltinsListed(t *testing.T) {
	for _, name := range Builtins() {
		fn, err := builtinFunction(name)
		if err != nil {
			t.Errorf("builtin %q unavailable: %v", name, err)
			continue
		}
		if fn.Handler == nil && fn.Stream == nil {
			t.Errorf("builtin %q resolved to no handler", name)
		}
	}
	if _, err := builtinFunction("nope"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func TestBreakerOpensAndRejects(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{BreakerThreshold: 2, BreakerOpenFor: time.Hour})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	// A healthy request passes through a closed breaker.
	if resp := postJSON(t, base+"/function/echo", "x"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy invoke = %d", resp.StatusCode)
	}
	// Feed the breaker consecutive backend failures until it trips.
	echo := d.gw.shard("echo")
	d.gw.breakerFailure(echo, "boot.failures")
	d.gw.breakerFailure(echo, "boot.failures")

	resp := postJSON(t, base+"/function/echo", "x")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker invoke = %d, want 503", resp.StatusCode)
	}
	// The fast-fail carries an honest retry hint: the remainder of the
	// breaker's open window (an hour here), not a blind constant.
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 3500 || ra > 3600 {
		t.Fatalf("open-breaker Retry-After = %q, want ~3600s (remaining open window)", resp.Header.Get("Retry-After"))
	}

	res := d.gw.ResilienceCounters()
	for counter, want := range map[string]int{
		"boot.failures":    2,
		"breaker.trips":    1,
		"breaker.rejected": 1,
	} {
		if res[counter] != want {
			t.Errorf("resilience[%s] = %d, want %d (all: %v)", counter, res[counter], want, res)
		}
	}

	// The trip is visible on /metrics as an open breaker gauge.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(body), `hotc_breaker_state{key="echo"} 1`) {
		t.Fatalf("/metrics missing open breaker gauge:\n%s", body)
	}

	// Unknown functions keep 404ing rather than feeding or consulting
	// the breaker.
	if resp := postJSON(t, base+"/function/typo", "x"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown function = %d, want 404", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	postJSON(t, base+"/function/echo", "x")
	postJSON(t, base+"/function/echo", "y")

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`hotc_requests_total{function="echo",outcome="ok"} 2`,
		`hotc_starts_total{mode="cold"} 1`,
		`hotc_starts_total{mode="warm"} 1`,
		`hotc_live_warm_instances{function="echo"} 1`,
		`hotc_request_latency_ms_bucket{function="echo",le="+Inf"} 2`,
		`# TYPE hotc_request_latency_ms histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

func TestStatsResilienceAndWarmAges(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})
	if err := d.Deploy(DeploySpec{Name: "echo", Handler: "echo"}); err != nil {
		t.Fatal(err)
	}
	postJSON(t, base+"/function/echo", "x")

	resp, err := http.Get(base + "/system/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Resilience map[string]int       `json:"resilience"`
		WarmAges   map[string][]float64 `json:"warmAgeSeconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Resilience == nil {
		t.Fatal("stats missing resilience counters")
	}
	ages := got.WarmAges["echo"]
	if len(ages) != 1 || ages[0] < 0 || ages[0] > 60 {
		t.Fatalf("warmAgeSeconds[echo] = %v, want one small non-negative age", ages)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	_, off := startDaemon(t, PoolConfig{})
	resp, err := http.Get(off + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled but GET /debug/pprof/ = %d", resp.StatusCode)
	}

	_, on := startDaemon(t, PoolConfig{EnablePprof: true})
	resp, err = http.Get(on + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled but GET /debug/pprof/ = %d", resp.StatusCode)
	}
}

// doMethod issues a bodyless request with an explicit method.
func doMethod(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// Drain must complete in-flight work while refusing new placements,
// and undrain must restore service.
func TestDrainCompletesInFlightAndRefusesNew(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})
	if err := d.Deploy(DeploySpec{Name: "sleep", Handler: "sleep"}); err != nil {
		t.Fatal(err)
	}

	// A slow request in flight when the drain lands.
	type outcome struct {
		status int
		body   string
	}
	inFlight := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(base+"/function/sleep", "text/plain", strings.NewReader("300"))
		if err != nil {
			inFlight <- outcome{}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inFlight <- outcome{resp.StatusCode, string(b)}
	}()
	time.Sleep(50 * time.Millisecond) // the sleep handler is now executing

	if resp := doMethod(t, http.MethodPost, base+"/system/drain"); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	if !d.gw.Draining() {
		t.Fatal("gateway not draining after POST /system/drain")
	}

	// New placements are refused with the drain marker...
	ref := postJSON(t, base+"/function/sleep", "1")
	if ref.StatusCode != http.StatusServiceUnavailable || ref.Header.Get(DrainingHeader) != "true" {
		t.Fatalf("draining refusal = %d, %s=%q; want 503 with drain header",
			ref.StatusCode, DrainingHeader, ref.Header.Get(DrainingHeader))
	}

	// ...while the in-flight request runs to completion.
	got := <-inFlight
	if got.status != http.StatusOK || got.body != "slept 300ms" {
		t.Fatalf("in-flight request during drain = %d %q, want it to complete", got.status, got.body)
	}

	// /system/stats advertises the drain (the router's poll signal).
	stats, err := http.Get(base + "/system/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	if !st.Draining {
		t.Fatal("stats did not report draining")
	}

	// Undrain restores service.
	if resp := doMethod(t, http.MethodDelete, base+"/system/drain"); resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain status %d", resp.StatusCode)
	}
	ok := postJSON(t, base+"/function/sleep", "1")
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("post-undrain invoke = %d, want 200", ok.StatusCode)
	}

	if resp := doMethod(t, http.MethodPut, base+"/system/drain"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /system/drain = %d, want 405", resp.StatusCode)
	}
}
