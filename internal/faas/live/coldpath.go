package live

import (
	"sync/atomic"
	"time"

	"hotc/internal/image"
	"hotc/internal/prefork"
)

// BootHeader reports how the serving instance came to exist:
// "rented" (an idle container leased from another function and
// re-specialized), "generic" (specialized from the pre-forked pool) or
// "cold" (full boot). Warm reuses carry only X-Hotc-Reused: true — the
// hot path stays header- and allocation-free.
const BootHeader = "X-Hotc-Boot"

// The default ColdStart phase split when a function does not declare
// explicit phases, following §III.B's finding that image pull/unpack
// dominates container start time.
const (
	defaultPullFrac    = 0.55
	defaultRuntimeFrac = 0.30
	defaultAppFrac     = 0.15
)

// defaultPreforkSize is the generic-pool target when prefork is armed
// without an explicit size.
const defaultPreforkSize = 4

// ColdPathConfig arms the gateway's fast cold path: the ColdStart
// phase split, the content-addressed layer cache that lets functions
// sharing base layers skip the pull/unpack phase, and the pre-forked
// generic watchdog pool that pre-pays the function-agnostic share of
// boot. Call EnableColdPath before Start, like the other Enables.
type ColdPathConfig struct {
	// Registry resolves Function.Image references (nil = image
	// modelling off; the pull phase is always paid in full).
	Registry *image.Registry
	// Cache is the host-local layer store. A cold boot admits its
	// image's layers and pays the pull phase only for the megabytes
	// that were actually missing — the admit is one atomic
	// check-and-admit, so concurrent boots of overlapping images each
	// pull only the layers they were first to admit. nil = no cache.
	Cache *image.Cache
	// PullFrac, RuntimeFrac and AppFrac split ColdStart into the
	// §III.B phases for functions that do not declare explicit ones.
	// All zero = the 0.55/0.30/0.15 defaults; otherwise normalized to
	// sum to 1.
	PullFrac, RuntimeFrac, AppFrac float64
	// Prefork arms the generic pre-forked watchdog pool: cold starts
	// are served by specializing an already-running generic instance,
	// paying only the pull (cache-scaled) and app-init shares.
	Prefork bool
	// PreforkSize is the target number of idle generics (default 4).
	PreforkSize int
	// PreforkBoot is the delay one generic boot pays (the pre-baked
	// generic image's create + runtime init). It is only ever paid on
	// pool refill goroutines, never on the request path.
	PreforkBoot time.Duration
}

// coldPath is the gateway's resolved cold-path state. The config
// fields are written by EnableColdPath before Start and read-only
// afterwards; the counters are atomics fed from boot paths.
type coldPath struct {
	registry *image.Registry
	cache    *image.Cache
	// Normalized phase fractions (always valid: NewGateway seeds the
	// defaults so an un-configured gateway still decomposes ColdStart
	// into the same total).
	pullFrac, runtimeFrac, appFrac float64
	// pool is the generic watchdog pool; nil = prefork off.
	pool *prefork.Pool

	refillBoots   atomic.Uint64 // completed generic boots
	genericReaped atomic.Uint64 // generics stopped by budget pressure
	pullSkippedKB atomic.Uint64 // pull megabytes skipped via cache, in KB
	serveErrs     atomic.Uint64 // watchdog accept loops that died with an error
	bootErrs      atomic.Uint64 // failed watchdog boots (generic refills)
}

// EnableColdPath configures the fast cold path. Call before Start.
func (g *Gateway) EnableColdPath(cfg ColdPathConfig) {
	p, r, a := cfg.PullFrac, cfg.RuntimeFrac, cfg.AppFrac
	if p <= 0 && r <= 0 && a <= 0 {
		p, r, a = defaultPullFrac, defaultRuntimeFrac, defaultAppFrac
	}
	sum := p + r + a
	g.cold.pullFrac, g.cold.runtimeFrac, g.cold.appFrac = p/sum, r/sum, a/sum
	g.cold.registry = cfg.Registry
	g.cold.cache = cfg.Cache
	if !cfg.Prefork {
		return
	}
	size := cfg.PreforkSize
	if size <= 0 {
		size = defaultPreforkSize
	}
	genericBoot := cfg.PreforkBoot
	g.cold.pool = prefork.NewPool(prefork.Config{
		Size: size,
		Boot: func() (*prefork.Watchdog, error) {
			wd, err := prefork.Start(g.watchdogServeError)
			if err != nil {
				return nil, err
			}
			// The generic share of cold start (pre-baked image create +
			// runtime init), paid here — on a refill goroutine — instead
			// of on some future request.
			if genericBoot > 0 {
				time.Sleep(genericBoot)
			}
			return wd, nil
		},
		OnBoot: func() {
			g.cold.refillBoots.Add(1)
			if ins := g.obs.Load(); ins != nil {
				ins.coldRefills.Inc()
			}
		},
		OnBootError: func(err error) {
			g.cold.bootErrs.Add(1)
			g.event("prefork-boot-failure")
		},
		OnIdle: func(n int) {
			if ins := g.obs.Load(); ins != nil {
				ins.coldGenericIdle.Set(float64(n))
			}
		},
	})
}

// bootMode classifies how a request's instance came to exist.
type bootMode uint8

const (
	// bootWarm reused an idle instance from the warm pool.
	bootWarm bootMode = iota
	// bootRented leased an idle instance from another function: volume
	// wipe + re-specialization + app init (plus any image-layer delta).
	bootRented
	// bootGeneric specialized a pre-forked generic watchdog.
	bootGeneric
	// bootCold paid the full boot: pull + runtime init + app init.
	bootCold
)

// String names the mode for the X-Hotc-Boot header (constant strings:
// no allocation).
func (m bootMode) String() string {
	switch m {
	case bootWarm:
		return "warm"
	case bootRented:
		return "rented"
	case bootGeneric:
		return "generic"
	default:
		return "cold"
	}
}

// bootInfo reports what one boot actually paid. Passed by value; it
// never escapes on the warm path.
type bootInfo struct {
	mode bootMode
	// pull, runtime and app are the phase delays actually slept (pull
	// already cache-scaled; runtime is zero on a generic handoff).
	pull, runtime, app time.Duration
	// wipe is the volume-cleanup delay a rented boot paid before
	// re-specialization (zero on every other mode).
	wipe time.Duration
	// skippedMB is the image download avoided by layer-cache hits.
	skippedMB float64
}

// bootPhases is one function's resolved phase split plus its image,
// if any.
type bootPhases struct {
	pull, runtime, app time.Duration
	im                 image.Image
	hasImage           bool
}

// phasesFor resolves a function's boot phases: explicit fields win;
// otherwise ColdStart is split by the configured fractions, with the
// remainder assigned to app init so the three phases always sum to
// exactly ColdStart (an unconfigured gateway boots in the same total
// time as the old monolithic sleep).
func (g *Gateway) phasesFor(fn Function) bootPhases {
	var ph bootPhases
	if fn.Pull > 0 || fn.RuntimeInit > 0 || fn.AppInit > 0 {
		ph.pull, ph.runtime, ph.app = fn.Pull, fn.RuntimeInit, fn.AppInit
	} else {
		cs := fn.ColdStart
		ph.pull = time.Duration(g.cold.pullFrac * float64(cs))
		ph.runtime = time.Duration(g.cold.runtimeFrac * float64(cs))
		ph.app = cs - ph.pull - ph.runtime
	}
	if fn.Image != "" && g.cold.registry != nil {
		if im, err := g.cold.registry.Lookup(fn.Image); err == nil {
			ph.im, ph.hasImage = im, true
		}
	}
	return ph
}

// pullCost resolves the pull/unpack delay for one boot. With an image
// and a layer cache, the image's layers are admitted and only the
// megabytes actually missing are paid for, pro-rata of the phase
// delay; the rest is the cache hit the paper's Fig. 2 layer-sharing
// study predicts. Admit is a single locked check-and-admit, so two
// concurrent boots of overlapping images never both pay for a shared
// layer.
func (g *Gateway) pullCost(ph bootPhases) (time.Duration, float64) {
	if !ph.hasImage || g.cold.cache == nil {
		return ph.pull, 0
	}
	total := ph.im.SizeMB()
	if total <= 0 {
		return 0, 0
	}
	added := g.cold.cache.Admit(ph.im)
	skipped := total - added
	return time.Duration(float64(ph.pull) * added / total), skipped
}

// bootInstance is the shared cold-boot path for requests and
// controller prewarms: a generic handoff when the pre-forked pool has
// an instance ready, else a full cold boot. Either way the pool is
// asked to refill — a mutex and goroutine spawns only, never a boot on
// this goroutine.
func (g *Gateway) bootInstance(fn Function) (*instance, bootInfo, error) {
	if pool := g.cold.pool; pool != nil {
		if wd := pool.TryAcquire(); wd != nil {
			pool.Refill()
			return g.specialize(wd, fn)
		}
		pool.Refill()
	}
	return g.startInstance(fn)
}

// specialize turns a generic watchdog into fn's instance: swap the
// handler in and pay only the function-specific share of boot — the
// cache-scaled pull of fn's own layers plus app init. The generic
// runtime share was pre-paid when the watchdog booted.
func (g *Gateway) specialize(wd *prefork.Watchdog, fn Function) (*instance, bootInfo, error) {
	ph := g.phasesFor(fn)
	wd.Specialize(watchdogHandler(fn, g.maxBody))
	var pull time.Duration
	var skipped float64
	if ph.hasImage {
		pull, skipped = g.pullCost(ph)
	}
	if d := pull + ph.app; d > 0 {
		time.Sleep(d)
	}
	info := bootInfo{mode: bootGeneric, pull: pull, app: ph.app, skippedMB: skipped}
	g.observeBoot(info)
	return &instance{fn: fn, wd: wd, addr: wd.Addr()}, info, nil
}

// startInstance pays the full cold boot: listener + server up, then
// pull (cache-scaled), runtime init and app init.
func (g *Gateway) startInstance(fn Function) (*instance, bootInfo, error) {
	ph := g.phasesFor(fn)
	wd, err := prefork.Start(g.watchdogServeError)
	if err != nil {
		return nil, bootInfo{}, err
	}
	wd.Specialize(watchdogHandler(fn, g.maxBody))
	pull, skipped := g.pullCost(ph)
	if d := pull + ph.runtime + ph.app; d > 0 {
		time.Sleep(d)
	}
	info := bootInfo{mode: bootCold, pull: pull, runtime: ph.runtime, app: ph.app, skippedMB: skipped}
	g.observeBoot(info)
	return &instance{fn: fn, wd: wd, addr: wd.Addr()}, info, nil
}

// observeBoot feeds one boot's phase accounting into the
// hotc_coldpath_* families and the gateway's own counters.
func (g *Gateway) observeBoot(info bootInfo) {
	if info.skippedMB > 0 {
		g.cold.pullSkippedKB.Add(uint64(info.skippedMB * 1024))
	}
	ins := g.obs.Load()
	if ins == nil {
		return
	}
	switch info.mode {
	case bootRented:
		// Rented boots have their own phase family (wipe has no
		// cold-boot analogue) and stay out of hotc_coldpath_phase_ms.
		ins.coldBootsRented.Inc()
		ins.sharePhaseWipe.ObserveDuration(info.wipe)
		ins.sharePhasePull.ObserveDuration(info.pull)
		ins.sharePhaseApp.ObserveDuration(info.app)
		if info.skippedMB > 0 {
			ins.coldSkippedMB.Add(info.skippedMB)
		}
		return
	case bootGeneric:
		ins.coldBootsGeneric.Inc()
	case bootCold:
		ins.coldBootsFull.Inc()
		ins.coldPhaseRuntime.ObserveDuration(info.runtime)
	}
	// Pull is observed on every boot: a zero is a layer-cache hit, the
	// exact signal the phase histogram exists to show.
	ins.coldPhasePull.ObserveDuration(info.pull)
	ins.coldPhaseApp.ObserveDuration(info.app)
	if info.skippedMB > 0 {
		ins.coldSkippedMB.Add(info.skippedMB)
	}
}

// watchdogServeError records a watchdog accept loop dying with an
// unexpected error — previously discarded inside the Serve goroutine,
// now a resilience event (watchdog-serve-error) and a counter the
// stats surface reports.
func (g *Gateway) watchdogServeError(err error) {
	g.cold.serveErrs.Add(1)
	g.event("watchdog-serve-error")
}

// refillPrefork tops the generic pool up (no-op without prefork). The
// controller calls it each tick so the pool recovers from bursts even
// when no further requests arrive; tests call it to prefill
// deterministically.
func (g *Gateway) refillPrefork() {
	if g.cold.pool != nil {
		g.cold.pool.Refill()
	}
}

// ColdPathStats snapshots the fast cold path's accounting.
type ColdPathStats struct {
	// Prefork reports whether the generic pool is armed.
	Prefork bool `json:"prefork"`
	// GenericIdle and GenericBooting are the pool's current occupancy.
	GenericIdle    int `json:"genericIdle"`
	GenericBooting int `json:"genericBooting"`
	// RefillBoots counts completed generic boots over the gateway's
	// lifetime; GenericReaped counts generics stopped by memory-budget
	// pressure.
	RefillBoots   uint64 `json:"refillBoots"`
	GenericReaped uint64 `json:"genericReaped"`
	// PullSkippedMB is the image download avoided by layer-cache hits;
	// CacheMB is the layer store's current size.
	PullSkippedMB float64 `json:"pullSkippedMB"`
	CacheMB       float64 `json:"cacheMB"`
}

// ColdPathStats reports the cold-path accounting (zero value when the
// cold path was never configured).
func (g *Gateway) ColdPathStats() ColdPathStats {
	st := ColdPathStats{
		RefillBoots:   g.cold.refillBoots.Load(),
		GenericReaped: g.cold.genericReaped.Load(),
		PullSkippedMB: float64(g.cold.pullSkippedKB.Load()) / 1024,
	}
	if g.cold.pool != nil {
		st.Prefork = true
		st.GenericIdle = g.cold.pool.Idle()
		st.GenericBooting = g.cold.pool.Booting()
	}
	if g.cold.cache != nil {
		st.CacheMB = g.cold.cache.SizeMB()
	}
	return st
}
