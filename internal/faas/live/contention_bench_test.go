package live

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotc/internal/obs"
)

// benchGateway drives the gateway hot path (handle → acquire → watchdog
// proxy → release, instrumented) with a fixed worker count spread over
// several functions, bypassing the outer HTTP listener so the numbers
// measure the gateway itself plus the real watchdog round-trip — the
// serialization the per-function sharding is meant to remove.
func benchGateway(b *testing.B, workers, fns int) {
	b.Helper()
	g := NewGateway(true)
	g.Instrument(obs.New())
	names := make([]string, fns)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		if err := g.Register(Function{
			Name:    names[i],
			Handler: func(body []byte) ([]byte, error) { return body, nil },
		}); err != nil {
			b.Fatal(err)
		}
	}
	defer g.Stop()

	// Prime one warm instance per function so the timed region measures
	// steady-state reuse, not cold boots.
	for _, name := range names {
		req := httptest.NewRequest("POST", "/function/"+name, strings.NewReader("x"))
		rec := httptest.NewRecorder()
		g.handle(rec, req)
		if rec.Code != 200 {
			b.Fatalf("prime %s: status %d: %s", name, rec.Code, rec.Body)
		}
	}

	var next atomic.Int64
	var fail atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				name := names[i%int64(fns)]
				req := httptest.NewRequest("POST", "/function/"+name, strings.NewReader("x"))
				rec := httptest.NewRecorder()
				g.handle(rec, req)
				if rec.Code != 200 {
					fail.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if n := fail.Load(); n > 0 {
		b.Fatalf("%d requests failed", n)
	}
}

// benchGatewayHotPath drives the gateway's concurrency bookkeeping —
// breaker gate, acquire, release, demand accounting, stats deltas and
// metric observation — without the watchdog proxy hop. This isolates
// exactly the state transitions the per-function sharding
// de-serializes; the e2e variant above includes the real-socket round
// trip, which is syscall-bound and swamps lock effects on small hosts.
func benchGatewayHotPath(b *testing.B, workers, fns int) {
	b.Helper()
	g := NewGateway(true)
	g.Instrument(obs.New())
	shards := make([]*shard, fns)
	for i := range shards {
		name := fmt.Sprintf("f%d", i)
		if err := g.Register(Function{
			Name:    name,
			Handler: func(body []byte) ([]byte, error) { return body, nil },
		}); err != nil {
			b.Fatal(err)
		}
		shards[i] = g.shard(name)
	}
	defer g.Stop()

	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				s := shards[i%int64(fns)]
				start := time.Now()
				if ok, _ := g.breakerAllow(s); !ok {
					b.Error("breaker open")
					return
				}
				inst, boot, err := g.acquire(s)
				if err != nil {
					b.Error(err)
					return
				}
				g.release(s, inst)
				g.breakerSuccess(s)
				if ins := g.obs.Load(); ins != nil {
					if boot.mode == bootWarm {
						ins.startsWarm.Inc()
					} else {
						ins.startsCold.Inc()
					}
				}
				s.observe("ok", start)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkGatewayParallel is the contention benchmark the sharding PR
// is judged on: M workers spread over N functions. The 8x4 shape is
// the acceptance configuration; 1x1 gives the uncontended floor for
// comparison. The e2e variants include the watchdog TCP round trip,
// the hotpath variants measure only the gateway's own bookkeeping.
func BenchmarkGatewayParallel(b *testing.B) {
	for _, cfg := range []struct{ workers, fns int }{
		{1, 1},
		{8, 4},
		{16, 4},
	} {
		b.Run(fmt.Sprintf("e2e_%dworkers_%dfns", cfg.workers, cfg.fns), func(b *testing.B) {
			benchGateway(b, cfg.workers, cfg.fns)
		})
	}
	for _, cfg := range []struct{ workers, fns int }{
		{1, 1},
		{8, 4},
	} {
		b.Run(fmt.Sprintf("hotpath_%dworkers_%dfns", cfg.workers, cfg.fns), func(b *testing.B) {
			benchGatewayHotPath(b, cfg.workers, cfg.fns)
		})
	}
}

// BenchmarkGatewayStatsUnderLoad measures Stats() while request traffic
// flows: the snapshot must not stop the world.
func BenchmarkGatewayStatsUnderLoad(b *testing.B) {
	g := NewGateway(true)
	if err := g.Register(Function{
		Name:    "f",
		Handler: func(body []byte) ([]byte, error) { return body, nil },
	}); err != nil {
		b.Fatal(err)
	}
	defer g.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("POST", "/function/f", strings.NewReader("x"))
				g.handle(httptest.NewRecorder(), req)
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Stats()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
