package live

import (
	"math"
	"sync/atomic"
	"time"

	"hotc/internal/sharing"
)

// Default lease costs: the volume wipe is §IV.B's cleanup (small, paid
// on the renter's first request), and the idle grace keeps just-parked
// instances out of the lending pool so a lender's own next request
// still finds them warm.
const (
	defaultShareWipe      = 5 * time.Millisecond
	defaultShareIdleGrace = 250 * time.Millisecond
)

// SharingConfig arms Pagurus-style inter-function sharing: on a warm
// miss, before any boot is paid, the gateway tries to lease an idle
// instance from another function — wipe its volume, atomically swap
// the watchdog handler to the renter's, and pay only app init plus any
// image-layer delta. Call EnableSharing before Start, like the other
// Enables.
type SharingConfig struct {
	// Policy gates which function pairs may share (same-image by
	// default; see sharing.ParseMode for the flag values).
	Policy sharing.Policy
	// Wipe is the volume-cleanup delay every lease pays before
	// re-specialization (default 5ms).
	Wipe time.Duration
	// IdleGrace is the minimum idle age before an instance may be lent
	// (default 250ms). Lower it in tests for determinism.
	IdleGrace time.Duration
	// Classifier tunes the lender/renter classifier fed by the control
	// loop (zero value = defaults).
	Classifier sharing.ClassifierConfig
}

// shareState is the gateway's resolved sharing state. Config fields
// are written by EnableSharing before Start and read-only afterwards;
// the counters are atomics fed from the lease path and the controller.
type shareState struct {
	enabled   bool
	policy    sharing.Policy
	wipe      time.Duration
	idleGrace time.Duration
	clsCfg    sharing.ClassifierConfig

	lenders     atomic.Int64  // functions currently classified lenders
	renters     atomic.Int64  // functions currently classified renters
	granted     atomic.Uint64 // leases that produced a rented boot
	noCandidate atomic.Uint64 // lease attempts with no eligible lender
	denied      atomic.Uint64 // lease attempts blocked by policy/opt-out
}

// EnableSharing configures inter-function sharing. Call before Start.
func (g *Gateway) EnableSharing(cfg SharingConfig) {
	if cfg.Wipe <= 0 {
		cfg.Wipe = defaultShareWipe
	}
	switch {
	case cfg.IdleGrace == 0:
		cfg.IdleGrace = defaultShareIdleGrace
	case cfg.IdleGrace < 0:
		cfg.IdleGrace = 0
	}
	g.share.enabled = true
	g.share.policy = cfg.Policy
	g.share.wipe = cfg.Wipe
	g.share.idleGrace = cfg.IdleGrace
	g.share.clsCfg = cfg.Classifier
	// Shards registered before EnableSharing get their classifiers
	// seeded with the configured tuning.
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		s.ctl.share = *sharing.NewClassifier(cfg.Classifier)
		s.mu.Unlock()
	}
}

// candidateOf builds the policy slice of a deployed function.
func candidateOf(fn Function) sharing.Candidate {
	return sharing.Candidate{Image: fn.Image, MemoryMB: fn.MemoryMB, Shareable: !fn.NoShare}
}

// leaseInstance tries to rent an idle instance from another function's
// warm pool: the third acquisition tier, between the relaxed warm pool
// and the generic prefork handoff. It scans classified lenders first
// (they reserve nothing), then neutral shards (which lend only surplus
// above their own forecast — a fresh function with no classification
// history can still rent, which is what makes the very first cold
// start of a new deploy avoidable); renter shards never lend. The
// chosen instance is the lender's oldest — the one its keep-alive
// would reclaim first anyway.
//
// The lease itself runs outside every lock: taint the instance, pay
// the volume wipe, swap the watchdog handler atomically, pay the
// image-layer delta (zero on a same-image lease) plus the renter's app
// init. The tainted lender-side instance struct is abandoned — it can
// never re-enter any idle list — and the renter gets a fresh clean
// instance around the same watchdog.
func (g *Gateway) leaseInstance(renter *shard, fn Function) (*instance, bootInfo, bool) {
	rc := candidateOf(fn)
	ins := g.obs.Load()
	if !rc.Shareable {
		g.share.denied.Add(1)
		if ins != nil {
			ins.shareLeaseDenied.Inc()
		}
		return nil, bootInfo{}, false
	}
	now := g.nowFn()
	var lend *instance
	var lenderFn Function
	sawDenial := false
	shards := g.snapshotShards()
scan:
	for pass := 0; pass < 2; pass++ {
		for _, s := range shards {
			if s == renter {
				continue
			}
			s.mu.Lock()
			role := s.ctl.share.Role()
			if role == sharing.RoleRenter ||
				(pass == 0) != (role == sharing.RoleLender) {
				s.mu.Unlock()
				continue
			}
			ok, _ := g.share.policy.Compatible(rc, candidateOf(s.fn))
			if !ok {
				sawDenial = true
				s.mu.Unlock()
				continue
			}
			// A neutral shard keeps its own forecast's worth of warm
			// instances; a classified lender has demonstrably more than
			// it needs and reserves nothing.
			reserve := 0
			if role != sharing.RoleLender {
				reserve = int(math.Ceil(s.ctl.forecast))
			}
			if len(s.idle) <= reserve {
				s.mu.Unlock()
				continue
			}
			inst := s.idle[0] // oldest: reuse pops from the tail
			if inst.tainted.Load() || now.Sub(inst.idleSince) < g.share.idleGrace {
				s.mu.Unlock()
				continue
			}
			s.idle = append(s.idle[:0:0], s.idle[1:]...)
			s.syncWarmLocked()
			lenderFn = s.fn
			lend = inst
			s.mu.Unlock()
			break scan
		}
	}
	if lend == nil {
		if sawDenial {
			g.share.denied.Add(1)
			if ins != nil {
				ins.shareLeaseDenied.Inc()
			}
		} else {
			g.share.noCandidate.Add(1)
			if ins != nil {
				ins.shareLeaseNoCandidate.Inc()
			}
		}
		return nil, bootInfo{}, false
	}

	// The lease: wipe, re-specialize, pay the renter-specific boot
	// share. Tainting first guarantees the old instance can never be
	// re-rented or re-pooled while (or after) it is being wiped.
	lend.tainted.Store(true)
	if g.share.wipe > 0 {
		time.Sleep(g.share.wipe)
	}
	wd := lend.wd
	wd.Specialize(watchdogHandler(fn, g.maxBody))
	ph := g.phasesFor(fn)
	var pull time.Duration
	var skipped float64
	if fn.Image != lenderFn.Image {
		// Cross-image lease (ModeAny): the renter pays the layer delta
		// its own boot would have, cache-scaled. Same image = the
		// layers are already in place, nothing to pull.
		pull, skipped = g.pullCost(ph)
	}
	if d := pull + ph.app; d > 0 {
		time.Sleep(d)
	}
	info := bootInfo{mode: bootRented, wipe: g.share.wipe, pull: pull, app: ph.app, skippedMB: skipped}
	g.share.granted.Add(1)
	if ins != nil {
		ins.shareLeaseGranted.Inc()
	}
	g.observeBoot(info)
	return &instance{fn: fn, wd: wd, addr: wd.Addr()}, info, true
}

// shareRoleTransition updates the lender/renter population counters
// and gauges when a function's classification changes.
func (g *Gateway) shareRoleTransition(prev, next sharing.Role, ins *instruments) {
	adj := func(r sharing.Role, d int64) {
		switch r {
		case sharing.RoleLender:
			g.share.lenders.Add(d)
		case sharing.RoleRenter:
			g.share.renters.Add(d)
		}
	}
	adj(prev, -1)
	adj(next, 1)
	if ins != nil {
		ins.shareLenders.Set(float64(g.share.lenders.Load()))
		ins.shareRenters.Set(float64(g.share.renters.Load()))
	}
}

// SharingStats snapshots the sharing layer for /system/stats.
type SharingStats struct {
	// Enabled reports whether EnableSharing was called.
	Enabled bool `json:"enabled"`
	// Policy is the compatibility mode ("same-image" or "any").
	Policy string `json:"policy"`
	// WipeMS is the configured volume-wipe cost per lease.
	WipeMS float64 `json:"wipeMS"`
	// Lenders and Renters count functions currently classified.
	Lenders int `json:"lenders"`
	Renters int `json:"renters"`
	// Lease outcomes over the gateway's lifetime.
	LeasesGranted     uint64 `json:"leasesGranted"`
	LeasesNoCandidate uint64 `json:"leasesNoCandidate"`
	LeasesDenied      uint64 `json:"leasesDenied"`
	// RentedBoots counts requests served by a rented zygote (the
	// per-shard sum; equals LeasesGranted minus controller prewarms).
	RentedBoots int `json:"rentedBoots"`
	// Roles maps each function to its current classification.
	Roles map[string]string `json:"roles,omitempty"`
}

// SharingStats reports the sharing layer's accounting (zero value with
// Enabled=false when sharing was never configured).
func (g *Gateway) SharingStats() SharingStats {
	st := SharingStats{
		Enabled: g.share.enabled,
		Policy:  g.share.policy.Mode.String(),
	}
	if !g.share.enabled {
		return st
	}
	st.WipeMS = float64(g.share.wipe) / float64(time.Millisecond)
	st.Lenders = int(g.share.lenders.Load())
	st.Renters = int(g.share.renters.Load())
	st.LeasesGranted = g.share.granted.Load()
	st.LeasesNoCandidate = g.share.noCandidate.Load()
	st.LeasesDenied = g.share.denied.Load()
	st.Roles = make(map[string]string)
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		st.Roles[s.name] = s.ctl.share.Role().String()
		st.RentedBoots += s.stats.RentedBoots
		s.mu.Unlock()
	}
	return st
}
