package live

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hotc/internal/image"
)

// waitIdleGenerics blocks until the generic pool holds exactly want
// idle watchdogs (refills run on background goroutines).
func waitIdleGenerics(t *testing.T, g *Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.cold.pool.Idle() != want {
		if time.Now().After(deadline) {
			t.Fatalf("generic idle = %d, want %d", g.cold.pool.Idle(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The default phase split decomposes ColdStart without changing the
// total: pull+runtime+app must equal ColdStart exactly, for any value,
// so an unconfigured gateway boots in the same time it always did.
func TestPhaseSplitSumsToColdStart(t *testing.T) {
	g := NewGateway(true)
	defer g.Stop()
	for _, cs := range []time.Duration{0, time.Millisecond, 7 * time.Millisecond, 200 * time.Millisecond, 333 * time.Millisecond} {
		ph := g.phasesFor(echoFn("f", cs))
		if got := ph.pull + ph.runtime + ph.app; got != cs {
			t.Errorf("ColdStart %v: phases sum to %v (pull=%v runtime=%v app=%v)", cs, got, ph.pull, ph.runtime, ph.app)
		}
		if cs > 0 && !(ph.pull > ph.runtime && ph.runtime > ph.app) {
			t.Errorf("ColdStart %v: want pull > runtime > app, got %v/%v/%v", cs, ph.pull, ph.runtime, ph.app)
		}
	}
}

// Explicit per-phase durations override the fractional split entirely.
func TestPhaseSplitExplicitPhasesWin(t *testing.T) {
	g := NewGateway(true)
	defer g.Stop()
	fn := echoFn("f", 999*time.Millisecond)
	fn.Pull, fn.RuntimeInit, fn.AppInit = 30*time.Millisecond, 20*time.Millisecond, 10*time.Millisecond
	ph := g.phasesFor(fn)
	if ph.pull != fn.Pull || ph.runtime != fn.RuntimeInit || ph.app != fn.AppInit {
		t.Fatalf("phases = %v/%v/%v, want explicit 30ms/20ms/10ms", ph.pull, ph.runtime, ph.app)
	}
}

// A generic handoff must beat the full cold start by roughly the
// pre-paid share: with the default split only app init (15%) remains,
// so a 300ms function specializes in well under half its ColdStart.
// The response carries X-Hotc-Reused: false (it IS a cold start from
// the client's perspective) plus X-Hotc-Boot: generic.
func TestGenericHandoffFasterThanFullCold(t *testing.T) {
	g := NewGateway(true)
	g.EnableColdPath(ColdPathConfig{Prefork: true, PreforkSize: 1})
	if err := g.Register(echoFn("f", 300*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	g.refillPrefork()
	waitIdleGenerics(t, g, 1)

	start := time.Now()
	rec := httptest.NewRecorder()
	g.handle(rec, httptest.NewRequest("POST", "/function/f", strings.NewReader("hi")))
	elapsed := time.Since(start)
	if rec.Code != 200 || rec.Body.String() != "echo:hi" {
		t.Fatalf("status %d body %q", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Hotc-Reused"); got != "false" {
		t.Fatalf("X-Hotc-Reused = %q, want false", got)
	}
	if got := rec.Header().Get(BootHeader); got != "generic" {
		t.Fatalf("%s = %q, want generic", BootHeader, got)
	}
	// App init is 45ms of the 300ms ColdStart; anything under 150ms
	// proves the pull+runtime shares were not paid on this request.
	if elapsed >= 150*time.Millisecond {
		t.Fatalf("generic handoff took %v, want well under the 300ms full cold", elapsed)
	}
	if st := g.Stats(); st.GenericHandoffs != 1 || st.ColdStarts != 1 {
		t.Fatalf("stats = %+v, want 1 generic handoff counted as the cold start", st)
	}

	// The warm reuse that follows carries no boot header at all.
	rec = httptest.NewRecorder()
	g.handle(rec, httptest.NewRequest("POST", "/function/f", strings.NewReader("x")))
	if got := rec.Header().Get("X-Hotc-Reused"); got != "true" {
		t.Fatalf("second request X-Hotc-Reused = %q, want true", got)
	}
	if got := rec.Header().Get(BootHeader); got != "" {
		t.Fatalf("warm response carries %s = %q, want unset", BootHeader, got)
	}
}

// When the pool is empty the request pays the full cold boot — but it
// must never wait for the refill: generic boots happen on background
// goroutines only. A 40ms function in front of a 250ms generic boot
// must answer long before 250ms, and the pool still fills afterwards.
func TestEmptyPoolFullColdNeverWaitsForRefill(t *testing.T) {
	g := NewGateway(true)
	g.EnableColdPath(ColdPathConfig{Prefork: true, PreforkSize: 1, PreforkBoot: 250 * time.Millisecond})
	if err := g.Register(echoFn("f", 40*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	start := time.Now()
	rec := httptest.NewRecorder()
	g.handle(rec, httptest.NewRequest("POST", "/function/f", strings.NewReader("x")))
	elapsed := time.Since(start)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(BootHeader); got != "cold" {
		t.Fatalf("%s = %q, want cold", BootHeader, got)
	}
	if elapsed >= 200*time.Millisecond {
		t.Fatalf("full cold with empty pool took %v: the 250ms generic refill leaked onto the request path", elapsed)
	}
	// The miss still triggered a refill, off the request path.
	waitIdleGenerics(t, g, 1)
	if st := g.ColdPathStats(); st.RefillBoots < 1 {
		t.Fatalf("ColdPathStats = %+v, want at least one refill boot", st)
	}
}

// Functions sharing image layers skip the cached share of the pull
// phase. python:3.8 and node:10 share the 101MB debian base; a second
// python boot skips everything.
func TestLayerCacheScalesPullPhase(t *testing.T) {
	g := NewGateway(true)
	g.EnableColdPath(ColdPathConfig{Registry: image.StandardCatalog(), Cache: image.NewCache()})
	defer g.Stop()

	pyFn := echoFn("py", 0)
	pyFn.Image = "python:3.8"
	pyFn.Pull, pyFn.AppInit = 100*time.Millisecond, time.Millisecond

	inst, info, err := g.bootInstance(pyFn)
	if err != nil {
		t.Fatal(err)
	}
	inst.stop()
	if info.mode != bootCold || info.skippedMB != 0 || info.pull != 100*time.Millisecond {
		t.Fatalf("first python boot = %+v, want full 100ms pull, nothing skipped", info)
	}

	// Second boot of the same image: every layer is cached.
	py2 := pyFn
	py2.Name = "py2"
	inst, info, err = g.bootInstance(py2)
	if err != nil {
		t.Fatal(err)
	}
	inst.stop()
	pySize := 101.0 + 48 + 9
	if info.pull != 0 || info.skippedMB != pySize {
		t.Fatalf("cached python boot = %+v, want zero pull and %.0fMB skipped", info, pySize)
	}

	// node:10 shares only the debian base: it pays pull pro-rata of its
	// own 67MB runtime layer out of 168MB total.
	nodeFn := echoFn("node", 0)
	nodeFn.Image = "node:10"
	nodeFn.Pull, nodeFn.AppInit = 100*time.Millisecond, time.Millisecond
	inst, info, err = g.bootInstance(nodeFn)
	if err != nil {
		t.Fatal(err)
	}
	inst.stop()
	if info.skippedMB != 101 {
		t.Fatalf("node boot skipped %.0fMB, want the 101MB shared debian base", info.skippedMB)
	}
	phase := float64(100 * time.Millisecond)
	wantPull := time.Duration(phase * 67 / 168)
	if diff := info.pull - wantPull; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("node pull = %v, want ~%v (67/168 of the phase)", info.pull, wantPull)
	}

	if st := g.ColdPathStats(); st.PullSkippedMB < pySize+100 || st.CacheMB != 101+48+9+67 {
		t.Fatalf("ColdPathStats = %+v, want ~%.0fMB skipped and 225MB cached", st, pySize+101)
	}
}

// Under memory-budget pressure the janitor hands back idle generics
// before touching any function's warm pool: generics carry no function
// state, so they are the cheapest reclaim.
func TestReclaimMemoryReapsGenericsFirst(t *testing.T) {
	g := NewGateway(true)
	g.EnableColdPath(ColdPathConfig{Prefork: true, PreforkSize: 2})
	const mib = int64(1 << 20)
	g.EnableAdmission(AdmissionConfig{MemoryBudget: 1 * mib, InstanceMemBytes: mib})
	if err := g.Register(echoFn("f", time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	g.refillPrefork()
	waitIdleGenerics(t, g, 2)

	// Prime one warm instance: total = 1 warm + 2 generic = 3, budget 1.
	rec := httptest.NewRecorder()
	g.handle(rec, httptest.NewRequest("POST", "/function/f", strings.NewReader("x")))
	if rec.Code != 200 {
		t.Fatalf("prime: status %d", rec.Code)
	}

	if n := g.reclaimMemoryOnce(); n != 2 {
		t.Fatalf("reclaimMemoryOnce = %d, want exactly the 2 generics", n)
	}
	if got := g.cold.pool.Idle(); got != 0 {
		t.Fatalf("generic idle after reclaim = %d, want 0", got)
	}
	if got := g.WarmInstances("f"); got != 1 {
		t.Fatalf("warm instances after reclaim = %d, want 1 (generics go first)", got)
	}
	if st := g.ColdPathStats(); st.GenericReaped != 2 {
		t.Fatalf("ColdPathStats = %+v, want GenericReaped 2", st)
	}
	if wm := g.WarmMemory(); wm.Reclaimed != 2 || wm.WarmBytes != mib {
		t.Fatalf("WarmMemory = %+v, want 2 reclaimed and 1MiB resident", wm)
	}
}

// When the generics alone do not cover the excess, the remainder still
// comes out of the warm shards.
func TestReclaimMemorySpillsPastGenerics(t *testing.T) {
	g := NewGateway(true)
	g.EnableColdPath(ColdPathConfig{Prefork: true, PreforkSize: 1})
	const mib = int64(1 << 20)
	g.EnableAdmission(AdmissionConfig{MemoryBudget: 1 * mib, InstanceMemBytes: mib})
	if err := g.Register(echoFn("f", time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	g.refillPrefork()
	waitIdleGenerics(t, g, 1)

	// Two warm instances via two overlapping requests.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			g.handle(rec, httptest.NewRequest("POST", "/function/f", strings.NewReader("x")))
		}()
	}
	wg.Wait()
	if got := g.WarmInstances("f"); got != 2 {
		t.Skipf("warm instances = %d, want 2 (requests did not overlap)", got)
	}

	// total = 2 warm + 1 generic = 3, budget 1: the generic goes, then
	// one warm instance.
	if n := g.reclaimMemoryOnce(); n != 2 {
		t.Fatalf("reclaimMemoryOnce = %d, want 2 (1 generic + 1 warm)", n)
	}
	if got := g.WarmInstances("f"); got != 1 {
		t.Fatalf("warm instances after reclaim = %d, want 1", got)
	}
	if st := g.ColdPathStats(); st.GenericReaped != 1 {
		t.Fatalf("ColdPathStats = %+v, want GenericReaped 1", st)
	}
}

// The controller's prewarms draw from the generic pool too: a prewarm
// is just a boot nobody is waiting on, and it should be as cheap as
// any other.
func TestPrewarmUsesGenericPool(t *testing.T) {
	g := NewGateway(true)
	g.EnableColdPath(ColdPathConfig{Prefork: true, PreforkSize: 1})
	if err := g.Register(echoFn("f", 50*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	g.refillPrefork()
	waitIdleGenerics(t, g, 1)

	s := g.shard("f")
	g.wg.Add(1) // prewarmOne is normally spawned by controlOnce, which Adds
	start := time.Now()
	g.prewarmOne(s, s.fn)
	elapsed := time.Since(start)
	if got := g.WarmInstances("f"); got != 1 {
		t.Fatalf("warm instances after prewarm = %d, want 1", got)
	}
	// A generic handoff pays only app init (7.5ms of the 50ms split); a
	// full cold boot would have paid all 50ms.
	if elapsed >= 35*time.Millisecond {
		t.Fatalf("prewarm took %v, want the generic-pool fast path", elapsed)
	}
	// The prewarm drained the pool and triggered its refill.
	waitIdleGenerics(t, g, 1)
	if st := g.ColdPathStats(); st.RefillBoots < 2 {
		t.Fatalf("ColdPathStats = %+v, want a second refill boot after the prewarm", st)
	}
}

// A watchdog accept loop dying is no longer silent: the error feeds a
// resilience counter and event instead of vanishing in a goroutine.
func TestWatchdogServeErrorSurfaces(t *testing.T) {
	g := NewGateway(true)
	defer g.Stop()
	g.watchdogServeError(errors.New("accept: too many open files"))
	if got := g.ResilienceCounters()["watchdog.serve_errors"]; got != 1 {
		t.Fatalf("watchdog.serve_errors = %d, want 1", got)
	}
}

// Deploys referencing an image are validated against the registry and
// surfaced through /system/stats' coldPath block.
func TestDaemonDeployWithImage(t *testing.T) {
	d, base := startDaemon(t, PoolConfig{})

	if err := d.Deploy(DeploySpec{Name: "bad", Handler: "echo", Image: "no-such-image:1.0"}); err == nil {
		t.Fatal("deploy with unknown image succeeded, want error")
	}
	if err := d.Deploy(DeploySpec{Name: "neg", Handler: "echo", PullMs: -1}); err == nil {
		t.Fatal("deploy with negative pull phase succeeded, want error")
	}
	if err := d.Deploy(DeploySpec{Name: "py", Handler: "echo", Image: "python:3.8", PullMs: 5, AppInitMs: 1}); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, base+"/function/py", "x")
	if resp.StatusCode != 200 {
		t.Fatalf("invoke status %d", resp.StatusCode)
	}
	var got struct {
		ColdPath ColdPathStats `json:"coldPath"`
	}
	statsResp, err := http.Get(base + "/system/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	if err := json.NewDecoder(statsResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ColdPath.CacheMB != 101+48+9 {
		t.Fatalf("coldPath = %+v, want the python:3.8 layers (158MB) cached", got.ColdPath)
	}
}

// Churn the whole cold path under the race detector: concurrent
// requests over several functions, pool refills, reclaims and stats
// snapshots.
func TestColdPathConcurrentChurn(t *testing.T) {
	g := NewGateway(true)
	g.EnableColdPath(ColdPathConfig{
		Registry: image.StandardCatalog(),
		Cache:    image.NewCache(),
		Prefork:  true, PreforkSize: 2, PreforkBoot: time.Millisecond,
	})
	const mib = int64(1 << 20)
	g.EnableAdmission(AdmissionConfig{MemoryBudget: 4 * mib, InstanceMemBytes: mib})
	names := []string{"a", "b", "c"}
	images := []string{"python:3.8", "node:10", ""}
	for i, n := range names {
		fn := echoFn(n, 2*time.Millisecond)
		fn.Image = images[i]
		if err := g.Register(fn); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Stop()
	g.refillPrefork()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				name := names[(w+i)%len(names)]
				rec := httptest.NewRecorder()
				g.handle(rec, httptest.NewRequest("POST", "/function/"+name, strings.NewReader("x")))
				if rec.Code != 200 {
					t.Errorf("status %d for %s", rec.Code, name)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			g.reclaimMemoryOnce()
			g.ColdPathStats()
			g.Stats()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	st := g.Stats()
	if st.Requests != 8*30 {
		t.Fatalf("requests = %d, want %d", st.Requests, 8*30)
	}
	if cp := g.ColdPathStats(); cp.PullSkippedMB <= 0 {
		t.Fatalf("ColdPathStats = %+v, want layer-cache hits under churn", cp)
	}
}

// Ensure the string form of every boot mode is stable: these are wire
// values in X-Hotc-Boot.
func TestBootModeStrings(t *testing.T) {
	for _, tc := range []struct {
		mode bootMode
		want string
	}{{bootWarm, "warm"}, {bootGeneric, "generic"}, {bootCold, "cold"}} {
		if got := tc.mode.String(); got != tc.want {
			t.Fatalf("bootMode(%d) = %q, want %q", tc.mode, got, tc.want)
		}
	}
}
