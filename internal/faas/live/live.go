// Package live is a real (non-simulated) miniature of the OpenFaaS
// pipeline the paper instruments: an HTTP gateway that proxies
// requests to per-function watchdog processes over actual TCP sockets
// on localhost. Each watchdog is an http.Server wrapping the function
// handler — the role OpenFaaS's "tiny Golang HTTP server" plays inside
// the container.
//
// Cold start is modelled by a configurable delay when a new watchdog
// instance boots (standing in for container creation, runtime init and
// application init); with reuse enabled the gateway keeps finished
// instances warm in a pool, HotC-style, and skips that delay.
//
// With EnableControl the gateway also runs the paper's adaptive
// live-container control (Algorithm 3) against the real pool: a
// per-function controller samples demand each interval, forecasts the
// next one with the ES+Markov predictor, and prewarms or retires warm
// instances to meet it — see controller.go.
//
// # Hot-path concurrency
//
// All mutable per-function state — the idle warm list, the circuit
// breaker, resilience counters, controller demand accounting and the
// stats deltas — lives in a per-function shard guarded by its own
// small mutex. Shards are resolved through a read-mostly RWMutex
// registry, so requests for two different functions never contend on a
// lock, and requests for the same function only serialize for the few
// instructions of pool bookkeeping. Aggregate views (Stats,
// ResilienceCounters, /system/stats) sum across shards on demand,
// locking one shard at a time: there is no global pause. Metric
// observations go through per-shard pre-resolved obs handles whose
// updates are lock-free atomics.
//
// This package exists so the examples and the hotcd daemon can
// demonstrate the middleware against a real network stack; the figure
// benchmarks use the deterministic simulated pipeline in the parent
// package.
package live

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotc/internal/admission"
	"hotc/internal/faas"
	"hotc/internal/obs"
	"hotc/internal/prefork"
	"hotc/internal/sharing"
)

// Handler is the buffered function body: bytes in, bytes out. The
// watchdog runs it through a pooled-buffer shim, so existing []byte
// handlers ride the streaming data path unchanged.
type Handler func(body []byte) ([]byte, error)

// StreamHandler is the streaming function body: consume the request
// from r, produce the response on w. Handlers that can work chunk-wise
// never hold the full payload in memory — the watchdog wires both ends
// straight to the socket.
type StreamHandler func(r io.Reader, w io.Writer) error

// Function describes a deployable function.
type Function struct {
	// Name routes requests: the gateway serves it at /function/<name>.
	Name string
	// Handler is the buffered business logic. Ignored when Stream is
	// set.
	Handler Handler
	// Stream, when set, takes precedence over Handler and processes the
	// body as a stream instead of a buffered slice.
	Stream StreamHandler
	// ColdStart is the artificial boot delay a fresh instance pays
	// (container create + runtime init + app init). When the explicit
	// phase fields below are zero, ColdStart is decomposed by the
	// gateway's configured phase split (see EnableColdPath).
	ColdStart time.Duration

	// Image, when set, names this function's container image
	// ("name:tag") in the gateway's registry. Boots then admit the
	// image's layers into the layer cache and pay the pull phase only
	// for layers actually missing — functions sharing base layers skip
	// most of the pull.
	Image string
	// Pull, RuntimeInit and AppInit, when any is set, spell the boot
	// phases out explicitly instead of splitting ColdStart: image
	// pull/unpack, generic runtime init (pre-paid by a pre-forked
	// generic), and function/app init (always paid).
	Pull, RuntimeInit, AppInit time.Duration

	// MemoryMB is the function's declared memory class for the sharing
	// policy (0 = unconstrained): a renter must fit inside its lender's
	// class.
	MemoryMB int
	// NoShare opts the function out of inter-function sharing on both
	// sides: it never lends its idle instances and never rents. The
	// zero value keeps sharing on, so existing deploys participate.
	NoShare bool
}

// instance is one live watchdog bound to a loopback port, running the
// function handler. The server itself is a prefork.Watchdog: full cold
// boots and generic-pool handoffs produce the same instance shape, and
// stop() is deterministic (the accept-loop goroutine has exited when it
// returns).
type instance struct {
	fn   Function
	wd   *prefork.Watchdog
	addr string
	// idleSince is when the instance last returned to the warm pool
	// (set under the shard lock; read by the janitor).
	idleSince time.Time
	// tainted marks an instance claimed by an inter-function lease:
	// from the moment it is set the instance must never be lent again
	// or re-enter any idle list under its former function. The lease
	// path abandons the tainted struct after the wipe and hands the
	// renter a fresh one around the same watchdog.
	tainted atomic.Bool
}

// watchdogHandler builds the watchdog-side request handler for fn —
// what specialization installs into a generic or freshly-booted
// watchdog.
func watchdogHandler(fn Function, maxBody int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveFunction(w, r, fn, maxBody)
	})
}

// serveFunction is the watchdog request handler. Streaming bodies run
// directly against the socket; []byte handlers go through the pooled
// compat shim, which replaces the old per-request io.ReadAll with a
// recycled whole-body buffer. maxBody > 0 bounds the request body
// (HTTP 413 on overflow) so one request can never balloon the
// watchdog's memory.
//
// A request carrying a traceparent gets the watchdog's §III.A moments
// (2)..(5) back as X-Hotc-Span-* unix-nano headers. On the streaming
// path moments (4) and (5) are unknowable before the response body
// starts, so they return as HTTP trailers on the chunked reply; the
// gateway reads them after draining the body.
func serveFunction(w http.ResponseWriter, r *http.Request, fn Function, maxBody int64) {
	traced := r.Header.Get(TraceparentHeader) != ""
	var watchdogIn int64
	if traced {
		watchdogIn = time.Now().UnixNano() // moment (2)
	}
	body := r.Body
	if maxBody > 0 {
		body = http.MaxBytesReader(w, body, maxBody)
	}
	if fn.Stream != nil {
		// A streaming handler reads the request while writing the
		// response; without full duplex the HTTP/1.1 server aborts
		// body reads at the first response write. Writers that don't
		// support it (tests' fakes) just stay half-duplex.
		http.NewResponseController(w).EnableFullDuplex()
		if traced {
			h := w.Header()
			h.Set("Trailer", SpanFuncDoneHeader+", "+SpanWatchdogOutHeader)
			h.Set(SpanWatchdogInHeader, strconv.FormatInt(watchdogIn, 10))
			h.Set(SpanFuncStartHeader, strconv.FormatInt(time.Now().UnixNano(), 10))
		}
		tw := &trackWriter{w: w}
		err := fn.Stream(body, tw)
		if traced {
			// Moments (4) and (5) coincide for a stream: the handler's
			// last write is the response leaving the watchdog. Written
			// into the declared trailers when the reply is chunked.
			now := strconv.FormatInt(time.Now().UnixNano(), 10)
			w.Header().Set(SpanFuncDoneHeader, now)
			w.Header().Set(SpanWatchdogOutHeader, now)
		}
		if err != nil && tw.n == 0 {
			// Nothing committed yet: a real status line is still
			// possible. After first byte, all we can do is truncate.
			if isMaxBytesErr(err) {
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
		return
	}
	buf := getBodyBuf()
	if _, err := buf.ReadFrom(body); err != nil {
		putBodyBuf(buf)
		if isMaxBytesErr(err) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	var funcStart int64
	if traced {
		funcStart = time.Now().UnixNano() // moment (3)
	}
	out, err := fn.Handler(buf.Bytes())
	if traced {
		h := w.Header()
		h.Set(SpanWatchdogInHeader, strconv.FormatInt(watchdogIn, 10))
		h.Set(SpanFuncStartHeader, strconv.FormatInt(funcStart, 10))
		h.Set(SpanFuncDoneHeader, strconv.FormatInt(time.Now().UnixNano(), 10)) // moment (4)
	}
	if err != nil {
		putBodyBuf(buf)
		if traced {
			w.Header().Set(SpanWatchdogOutHeader, strconv.FormatInt(time.Now().UnixNano(), 10))
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Declare the length so the gateway can forward it instead of
	// chunking. The buffer recycles only after the write: echo-style
	// handlers return slices aliasing it.
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	if traced {
		w.Header().Set(SpanWatchdogOutHeader, strconv.FormatInt(time.Now().UnixNano(), 10)) // moment (5)
	}
	w.WriteHeader(http.StatusOK)
	w.Write(out)
	putBodyBuf(buf)
}

func (i *instance) stop() {
	i.wd.Stop()
}

// stopAll shuts instances down concurrently and waits for all of them:
// each Shutdown can block up to its timeout on active connections, so
// serial teardown would cost the sum instead of the max.
func stopAll(insts []*instance) {
	var wg sync.WaitGroup
	for _, inst := range insts {
		wg.Add(1)
		go func(i *instance) {
			defer wg.Done()
			i.stop()
		}(inst)
	}
	wg.Wait()
}

// Stats counts gateway activity.
type Stats struct {
	Requests   int
	ColdStarts int
	Reused     int
	// GenericHandoffs counts the subset of ColdStarts served by
	// specializing a pre-forked generic watchdog instead of a full
	// boot (these requests still report X-Hotc-Reused: false).
	GenericHandoffs int
	// RentedBoots counts the subset of ColdStarts served by leasing an
	// idle instance from another function (X-Hotc-Boot: rented; these
	// requests also report X-Hotc-Reused: false).
	RentedBoots int
	// Prewarmed counts instances the controller booted ahead of demand.
	Prewarmed int
	// Retired counts instances stopped by controller scale-down or the
	// warm-pool cap's oldest-first eviction.
	Retired int
	// Expired counts instances stopped by keep-alive (idle TTL) expiry.
	Expired int
	// Canceled counts requests abandoned mid-flight or mid-queue by
	// client disconnect or deadline expiry.
	Canceled int
}

// add accumulates another shard's deltas.
func (s *Stats) add(o Stats) {
	s.Requests += o.Requests
	s.ColdStarts += o.ColdStarts
	s.Reused += o.Reused
	s.GenericHandoffs += o.GenericHandoffs
	s.RentedBoots += o.RentedBoots
	s.Prewarmed += o.Prewarmed
	s.Retired += o.Retired
	s.Expired += o.Expired
	s.Canceled += o.Canceled
}

// shard is one function's slice of the gateway: everything a request
// for that function mutates lives here, behind the shard's own mutex,
// so functions never contend with each other and aggregate reads
// (Stats, ResilienceCounters) never pause the request path globally.
type shard struct {
	name string

	mu sync.Mutex
	// fn is the deployed function (Register may replace it in place).
	fn Function
	// idle is the warm pool, oldest first; reuse pops from the tail.
	idle []*instance
	// stats are this function's deltas; Gateway.Stats sums shards.
	stats Stats
	// breaker guards the function when breaking is armed (lazy).
	breaker *faas.Breaker
	// res counts resilience events by kind (lazy map).
	res map[string]int
	// ctl is the adaptive-control state: in-flight demand accounting,
	// the predictor and its evaluation series.
	ctl fnControl

	// adm is the function's admission queue; nil when overload control
	// is off. It has its own internal lock and is never touched under
	// s.mu (queueing must not serialize with pool bookkeeping).
	adm *admission.Queue

	// m holds the pre-resolved per-function metric handles; nil when
	// the gateway is uninstrumented. Swapped wholesale by Instrument,
	// read lock-free on the request path.
	m atomic.Pointer[shardMetrics]
}

// syncWarmLocked refreshes the warm-pool gauge. Caller holds s.mu.
func (s *shard) syncWarmLocked() {
	if m := s.m.Load(); m != nil {
		m.warm.Set(float64(len(s.idle)))
	}
}

// resLocked bumps a resilience counter. Caller holds s.mu.
func (s *shard) resLocked(kind string) {
	if s.res == nil {
		s.res = make(map[string]int)
	}
	s.res[kind]++
}

// Gateway proxies /function/<name> requests to watchdog instances.
type Gateway struct {
	reuse bool
	// epoch anchors the breaker's monotonic clock.
	epoch time.Time
	// nowFn is the wall clock; tests inject a fake for deterministic
	// keep-alive and controller timing.
	nowFn func() time.Time

	// smu guards the shard registry and the gateway lifecycle
	// transitions (start/stop/register). The request path only ever
	// takes the read side, for the map lookup.
	smu    sync.RWMutex
	shards map[string]*shard

	// stopped flips once in Stop (under smu); the request path and the
	// background loops read it lock-free.
	stopped atomic.Bool

	// draining, while set, refuses new /function/ placements with 503 +
	// X-Hotc-Draining while in-flight work (and the warm pool, the
	// control loops, the management API) keeps running — the node-level
	// half of a routed cluster's drain. Reversible, read lock-free.
	draining atomic.Bool

	// ctl configures adaptive control (see EnableControl). It is
	// written before Start and read-only afterwards; ctlRunning (under
	// smu) reports that background loops were launched.
	ctl        ControlConfig
	ctlRunning bool
	ctlStop    chan struct{}
	// wg tracks every background goroutine the gateway owns:
	// controllers, the janitor, prewarm boots and retire teardowns.
	// Adds happen under smu (read or write side) after a stopped
	// check, so they cannot race Stop's Wait.
	wg sync.WaitGroup

	// breakerThreshold/breakerOpenFor arm the per-function circuit
	// breaker (see EnableBreaker). Written before traffic, read-only
	// afterwards.
	breakerThreshold int
	breakerOpenFor   time.Duration

	// adm configures overload control (see EnableAdmission). Written
	// before traffic, read-only afterwards; memReclaimed counts warm
	// instances evicted by memory-budget pressure.
	adm          AdmissionConfig
	memReclaimed atomic.Uint64

	// maxBody bounds request bodies at the gateway and every watchdog
	// it boots (see SetMaxBodyBytes). Written before traffic, read-only
	// afterwards; 0 = unlimited.
	maxBody int64

	// cold is the fast-cold-path state (see EnableColdPath): phase
	// split, layer cache, generic pre-forked pool. Config fields are
	// written before Start and read-only afterwards; counters are
	// atomics.
	cold coldPath

	// share is the inter-function sharing state (see EnableSharing):
	// policy, lease costs, classifier tuning and outcome counters.
	// Config fields are written before Start and read-only afterwards;
	// counters are atomics.
	share shareState

	// obs is the optional metric hookup (see Instrument), read
	// lock-free on the request path.
	obs atomic.Pointer[instruments]

	// trace is the optional live-tracing hookup (see EnableTracing):
	// span ring, tail sampler and ID generator, read lock-free on the
	// request path. nil = tracing off.
	trace atomic.Pointer[tracing]
	// slo is the optional SLO monitor (see SetSLO) fed by every
	// completed request. nil = no objectives tracked.
	slo atomic.Pointer[obs.SLOMonitor]

	server    *http.Server
	lis       net.Listener
	client    *http.Client
	transport *http.Transport
}

// NewGateway creates a gateway. With reuse enabled, finished instances
// return to a warm pool (the HotC behaviour); without it every request
// boots and tears down an instance (the default cold behaviour).
func NewGateway(reuse bool) *Gateway {
	// The gateway talks to many watchdog instances, each its own
	// host:port serving one request at a time. The default transport's
	// 2-idle-conns-per-host and 100 idle conns total force TCP churn as
	// soon as the warm pool grows past a hundred instances, so the
	// gateway owns a transport sized for the pool: one keep-alive
	// connection per warm instance, with generous totals.
	transport := &http.Transport{
		MaxIdleConns:        4096,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
	g := &Gateway{
		reuse:     reuse,
		epoch:     time.Now(),
		nowFn:     time.Now,
		shards:    make(map[string]*shard),
		ctlStop:   make(chan struct{}),
		transport: transport,
		client:    &http.Client{Timeout: 30 * time.Second, Transport: transport},
	}
	// Seed the default phase split so an un-configured gateway still
	// decomposes ColdStart (summing to exactly the same total delay);
	// EnableColdPath overrides.
	g.cold.pullFrac = defaultPullFrac
	g.cold.runtimeFrac = defaultRuntimeFrac
	g.cold.appFrac = defaultAppFrac
	return g
}

// shard returns the function's shard, or nil if it was never
// registered. One read-locked map lookup: the request path's only
// touch of gateway-global state.
func (g *Gateway) shard(name string) *shard {
	g.smu.RLock()
	s := g.shards[name]
	g.smu.RUnlock()
	return s
}

// snapshotShards copies the shard list for iteration outside the
// registry lock.
func (g *Gateway) snapshotShards() []*shard {
	g.smu.RLock()
	out := make([]*shard, 0, len(g.shards))
	for _, s := range g.shards {
		out = append(out, s)
	}
	g.smu.RUnlock()
	return out
}

// newShardLocked creates a shard with its predictor and metric handles
// resolved. Caller holds smu (write side).
func (g *Gateway) newShardLocked(name string) *shard {
	s := &shard{name: name}
	if g.ctl.NewPredictor != nil {
		s.ctl.pred = g.ctl.NewPredictor()
	}
	if g.share.enabled {
		s.ctl.share = *sharing.NewClassifier(g.share.clsCfg)
	}
	if ins := g.obs.Load(); ins != nil {
		s.m.Store(ins.forFunction(name))
	}
	if g.adm.MaxInFlight > 0 {
		s.adm = g.newAdmissionQueueLocked(s)
	}
	return s
}

// Register deploys a function. Functions registered after Start join
// the adaptive control loop immediately; re-registering a name swaps
// the handler in place.
func (g *Gateway) Register(fn Function) error {
	if fn.Name == "" || (fn.Handler == nil && fn.Stream == nil) {
		return fmt.Errorf("live: function needs a name and a handler")
	}
	g.smu.Lock()
	s, existed := g.shards[fn.Name]
	if !existed {
		s = g.newShardLocked(fn.Name)
		g.shards[fn.Name] = s
	}
	spawn := !existed && g.ctlRunning && g.ctl.NewPredictor != nil && !g.stopped.Load()
	if spawn {
		g.wg.Add(1)
	}
	g.smu.Unlock()
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
	if spawn {
		go g.runController(fn.Name)
	}
	return nil
}

// Start binds the gateway to a loopback port and returns its base URL.
func (g *Gateway) Start() (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", g.handle)
	return g.startWith(mux)
}

// startWith binds the gateway with a custom route table (the daemon
// adds management endpoints).
func (g *Gateway) startWith(mux *http.ServeMux) (string, error) {
	return g.startOn("127.0.0.1:0", mux)
}

// startOn binds to an explicit address and launches the control-loop
// goroutines configured by EnableControl.
func (g *Gateway) startOn(addr string, mux *http.ServeMux) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: gateway listen: %w", err)
	}
	g.lis = lis
	g.server = &http.Server{Handler: mux}
	go g.server.Serve(lis)
	g.startControlLoops()
	return "http://" + lis.Addr().String(), nil
}

// Stop shuts the gateway, the control loops and all warm instances
// down. It is idempotent. Instances are collected shard by shard but
// stopped outside the locks, concurrently: holding any lock across N
// serial 1s-timeout shutdowns would block gateway methods for up to N
// seconds.
func (g *Gateway) Stop() {
	g.smu.Lock()
	if g.stopped.Load() {
		g.smu.Unlock()
		return
	}
	// Mark stopped before anything else: from here on, release() and
	// the controller/janitor tear instances down instead of touching
	// the pool, so an in-flight request finishing after Stop cannot
	// resurrect an instance into a drained shard.
	g.stopped.Store(true)
	shards := make([]*shard, 0, len(g.shards))
	for _, s := range g.shards {
		shards = append(shards, s)
	}
	g.smu.Unlock()

	// Wake every queued request with a "stopped" refusal before the
	// server drains: a waiter blocked in its admission queue is an
	// in-flight handler Shutdown would otherwise wait out (or strand).
	for _, s := range shards {
		if s.adm != nil {
			s.adm.Stop()
		}
	}
	close(g.ctlStop)
	if g.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		g.server.Shutdown(ctx)
		cancel()
	}
	var insts []*instance
	for _, s := range shards {
		s.mu.Lock()
		insts = append(insts, s.idle...)
		s.idle = nil
		s.syncWarmLocked()
		s.mu.Unlock()
	}
	stopAll(insts)
	// The generic pre-forked pool goes down with the gateway: idle
	// generics stop concurrently, in-flight refills are waited out.
	if g.cold.pool != nil {
		g.cold.pool.Stop()
	}
	// Drop the keep-alive connections to the (now gone) watchdogs so
	// their transport read loops exit with the gateway.
	g.transport.CloseIdleConnections()
	g.wg.Wait()
}

// SetDraining marks the gateway as (not) accepting new function
// placements. While draining, /function/ requests are refused with
// 503 + the X-Hotc-Draining header and an honest Retry-After is
// deliberately absent (the router should place elsewhere, not retry
// here); requests already admitted run to completion and return their
// instances to the warm pool as usual. Drain is reversible: a router
// rebalance or rolling restart undrains when done.
func (g *Gateway) SetDraining(on bool) { g.draining.Store(on) }

// Draining reports whether the gateway is refusing new placements.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Stats sums the per-shard counters into a snapshot. Each shard is
// locked for a handful of integer reads; requests for other functions
// proceed untouched and requests for the sampled function wait only
// for that copy — there is no global pause.
func (g *Gateway) Stats() Stats {
	var total Stats
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		total.add(s.stats)
		s.mu.Unlock()
	}
	return total
}

// WarmInstances reports the number of idle warm instances for a
// function.
func (g *Gateway) WarmInstances(name string) int {
	s := g.shard(name)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idle)
}

// acquire returns a warm instance or boots a new one (via the generic
// pre-forked pool when armed), tracking in-flight demand for the
// controller.
func (g *Gateway) acquire(s *shard) (*instance, bootInfo, error) {
	s.mu.Lock()
	fn := s.fn
	s.ctl.inFlight++
	if s.ctl.inFlight > s.ctl.peak {
		s.ctl.peak = s.ctl.inFlight
	}
	if n := len(s.idle); n > 0 {
		inst := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.stats.Reused++
		s.stats.Requests++
		s.syncWarmLocked()
		s.mu.Unlock()
		return inst, bootInfo{mode: bootWarm}, nil
	}
	s.stats.ColdStarts++
	s.stats.Requests++
	s.mu.Unlock()

	// Sharing tier: before paying any boot, try renting an idle
	// instance from another function (wipe + re-specialize + app
	// init) — strictly cheaper than a generic handoff when the
	// runtimes match, because the runtime AND pull shares are already
	// in place.
	if g.share.enabled {
		if inst, info, ok := g.leaseInstance(s, fn); ok {
			s.mu.Lock()
			s.stats.RentedBoots++
			s.mu.Unlock()
			return inst, info, nil
		}
	}

	inst, info, err := g.bootInstance(fn) // cold boot outside the lock
	if err != nil {
		g.decInFlight(s)
		return nil, info, err
	}
	if info.mode == bootGeneric {
		s.mu.Lock()
		s.stats.GenericHandoffs++
		s.mu.Unlock()
	}
	return inst, info, nil
}

// SetMaxBodyBytes bounds request bodies at the gateway and every
// watchdog booted afterwards: oversized requests get HTTP 413 instead
// of ballooning a watchdog. Call before Start; 0 (the default) leaves
// bodies unbounded.
func (g *Gateway) SetMaxBodyBytes(n int64) { g.maxBody = n }

// decInFlight ends a request's demand accounting.
func (g *Gateway) decInFlight(s *shard) {
	s.mu.Lock()
	if s.ctl.inFlight > 0 {
		s.ctl.inFlight--
	}
	s.mu.Unlock()
}

// release returns the instance to the warm pool, enforcing the warm
// cap with oldest-first eviction — or tears it down when reuse is off
// or the gateway already stopped (an in-flight request that outlives
// Stop must not leak its watchdog into a dead pool).
func (g *Gateway) release(s *shard, inst *instance) {
	s.mu.Lock()
	if s.ctl.inFlight > 0 {
		s.ctl.inFlight--
	}
	if !g.reuse || g.stopped.Load() {
		s.mu.Unlock()
		inst.stop()
		return
	}
	var evict *instance
	if g.ctl.MaxWarm > 0 && len(s.idle) >= g.ctl.MaxWarm {
		// The gateway reuses from the tail, so the head is oldest.
		evict = s.idle[0]
		s.idle = append(s.idle[:0:0], s.idle[1:]...)
		s.stats.Retired++
		if ins := g.obs.Load(); ins != nil {
			ins.poolRetired.Inc()
		}
	}
	inst.idleSince = g.nowFn()
	s.idle = append(s.idle, inst)
	s.syncWarmLocked()
	s.mu.Unlock()
	if evict != nil {
		evict.stop()
	}
}

// discard ends a request whose instance is suspect (boot or transport
// failure): demand accounting is closed and the instance, if any, is
// torn down rather than re-pooled.
func (g *Gateway) discard(s *shard, inst *instance) {
	g.decInFlight(s)
	if inst != nil {
		inst.stop()
	}
}

func (g *Gateway) handle(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	start := time.Now()

	// Unknown functions are a client error and must not feed the
	// breaker: a typo cannot open the circuit for a healthy function.
	s := g.shard(name)
	if s == nil {
		g.observeUnknown(name, start)
		http.Error(w, fmt.Sprintf("live: unknown function %q", name), http.StatusNotFound)
		return
	}

	// Open the request's trace: join or mint a W3C trace context and
	// echo the trace ID on every response, refusals included, so any
	// client can look its request up in /system/trace. rt lives on
	// this frame; it only reaches the heap if the tail sampler keeps
	// the span.
	var rt reqTrace
	rt.name, rt.start = name, start
	tr := g.trace.Load()
	if tr != nil {
		tr.begin(&rt, r, start)
		w.Header().Set(TraceIDHeader, rt.tc.TraceIDString())
	}

	// A draining node refuses every new placement before spending
	// anything on it — in-flight requests (already past this check)
	// run to completion, which is what makes drain lossless.
	if g.draining.Load() {
		w.Header().Set(DrainingHeader, "true")
		s.observe("rejected", start)
		http.Error(w, fmt.Sprintf("live: draining, not accepting %q", name), http.StatusServiceUnavailable)
		g.traceEvent(&rt, "drain-rejected", "node draining")
		g.finishRequest(s, &rt, http.StatusServiceUnavailable, "")
		return
	}

	// Resolve the request's deadline (header override, else the
	// configured default) before committing anything: it bounds both
	// the queue wait and the backend call.
	deadline, err := g.requestDeadline(r, start)
	if err != nil {
		s.observe("rejected", start)
		http.Error(w, err.Error(), http.StatusBadRequest)
		g.finishRequest(s, &rt, http.StatusBadRequest, "bad deadline header")
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = name
	}
	rt.tenant = tenant

	// Bound the request body before any instance is committed: a
	// declared-oversize body is rejected for free here; an undeclared
	// (chunked) one is caught by MaxBytesReader mid-proxy below.
	if g.maxBody > 0 {
		if r.ContentLength > g.maxBody {
			s.observe("rejected", start)
			http.Error(w, "live: request body too large", http.StatusRequestEntityTooLarge)
			g.finishRequest(s, &rt, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, g.maxBody)
	}

	// While the breaker is open, fast-fail instead of piling boots onto
	// a failing backend — with the honest retry hint: the remainder of
	// the breaker's open window.
	if ok, retryAfter := g.breakerAllow(s); !ok {
		if retryAfter > 0 {
			setRetryAfter(w, retryAfter)
		}
		s.observe("rejected", start)
		http.Error(w, fmt.Sprintf("live: circuit breaker open for %q", name), http.StatusServiceUnavailable)
		g.traceEvent(&rt, "breaker-rejected", "circuit open")
		g.finishRequest(s, &rt, http.StatusServiceUnavailable, "")
		return
	}

	// Admission: pass the bounded, deadline-shedding, tenant-fair
	// queue before touching the warm pool. A refusal (429/503 +
	// Retry-After) was already written by admit; the span records it
	// with its shed status and reason event.
	if s.adm != nil {
		ticket, refusal := g.admit(w, r, s, &rt, tenant, deadline, start)
		if ticket == nil {
			g.finishRequest(s, &rt, refusal, "")
			return
		}
		rt.queueWait = ticket.Waited()
		defer ticket.Done()
	}

	// The backend call runs under the client's context bounded by the
	// deadline: a disconnect or an expired deadline cancels in-flight
	// backend work instead of letting it run to waste.
	ctx, cancelCtx := withDeadline(r, deadline)
	defer cancelCtx()

	inst, boot, err := g.acquire(s)
	reused := boot.mode == bootWarm
	rt.reused = reused
	if err != nil {
		g.breakerFailure(s, "boot.failures")
		s.observe("error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		g.finishRequest(s, &rt, http.StatusBadGateway, err.Error())
		return
	}
	// Annotate how the cold path was paid — generic handoff vs a full
	// boot. Warm reuse stays out: the hot path adds no span events.
	switch boot.mode {
	case bootRented:
		g.traceEvent(&rt, "boot", "rented-zygote")
	case bootGeneric:
		g.traceEvent(&rt, "boot", "generic-handoff")
	case bootCold:
		g.traceEvent(&rt, "boot", "full-cold")
	}

	// Forward to the watchdog over a real socket, streaming the request
	// body straight through and carrying the trace context so the
	// watchdog returns its span timestamps. A transport failure makes
	// the instance suspect: tear it down rather than re-pool it —
	// unless the failure was the client's own doing (an oversized body
	// tripping MaxBytesReader, a disconnect, an expired deadline),
	// which must not feed the breaker.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+inst.addr+"/", r.Body)
	if err != nil {
		g.discard(s, inst)
		s.observe("error", start)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		g.finishRequest(s, &rt, http.StatusInternalServerError, err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if rt.active {
		req.Header.Set(TraceparentHeader, rt.tc.Traceparent())
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.discard(s, inst)
		if isMaxBytesErr(err) {
			s.observe("rejected", start)
			http.Error(w, "live: request body too large", http.StatusRequestEntityTooLarge)
			g.finishRequest(s, &rt, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		if ctx.Err() != nil {
			status := g.cancelUpstream(w, r, s, &rt, false, start)
			g.finishRequest(s, &rt, status, "")
			return
		}
		g.breakerFailure(s, "proxy.failures")
		s.observe("error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		g.finishRequest(s, &rt, http.StatusBadGateway, err.Error())
		return
	}
	rt.served = true
	if tr != nil {
		tr.noteWatchdog(resp.Header, &rt)
	}

	// Forward the watchdog's response headers (Content-Type etc.) and
	// length before committing the status line, then stream the body to
	// the client through a pooled chunk buffer: the gateway never holds
	// more than one 32 KiB chunk of any response in memory, and at
	// steady state the copy allocates nothing. Streaming functions
	// produce response bytes while the request body is still being
	// forwarded, so the gateway's own server must run full duplex —
	// otherwise its first response write aborts the client's body reads
	// and truncates the upstream request.
	// The watchdog's X-Hotc-Span-* timestamps (and its trailer
	// declaration) are consumed above, not forwarded to the client.
	http.NewResponseController(w).EnableFullDuplex()
	hdr := w.Header()
	for k, vv := range resp.Header {
		if internalRespHeader(k) {
			continue
		}
		for _, v := range vv {
			hdr.Add(k, v)
		}
	}
	hdr.Set("X-Hotc-Reused", strconv.FormatBool(reused))
	if !reused {
		// Cold responses also say which cold path served them; warm
		// responses skip the extra header (zero-alloc hot path).
		hdr.Set(BootHeader, boot.mode.String())
	}
	if resp.ContentLength >= 0 {
		hdr.Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	w.WriteHeader(resp.StatusCode)
	src := readTracker{r: resp.Body}
	n, copyErr := copyPooled(w, &src)
	if copyErr != nil && src.failed {
		// The backend read died mid-stream. The status line is already
		// committed, so the client sees a truncated body; the instance
		// is suspect and its connection poisoned — close without
		// draining and tear it down. When the read died because the
		// request context did (client disconnect / deadline), the
		// watchdog is blameless: same teardown, no breaker.
		resp.Body.Close()
		g.discard(s, inst)
		if ctx.Err() != nil {
			status := g.cancelUpstream(w, r, s, &rt, true, start)
			g.finishRequest(s, &rt, status, "")
			return
		}
		g.breakerFailure(s, "proxy.failures")
		s.observe("error", start)
		g.finishRequest(s, &rt, resp.StatusCode, "backend read failed mid-stream")
		return
	}
	// The round-trip worked (a handler-level error status is the
	// function's business, not a runtime fault) — or only the client's
	// write side failed, which the watchdog cannot be blamed for.
	// Drain whatever the client refused so the keep-alive connection
	// returns to the idle pool clean, then re-pool the instance. A
	// chunked (streaming) reply carries moments (4) and (5) as
	// trailers, readable only now that the body is fully drained.
	drainClose(resp.Body)
	if tr != nil {
		tr.noteWatchdog(resp.Trailer, &rt)
	}
	g.release(s, inst)
	g.breakerSuccess(s)
	outcome := "ok"
	if resp.StatusCode >= 400 {
		outcome = "error"
	}
	if ins := g.obs.Load(); ins != nil {
		if reused {
			ins.startsWarm.Inc()
		} else {
			ins.startsCold.Inc()
		}
		ins.bodyBytes.Observe(float64(n))
		if outcome == "ok" {
			// Per-tenant goodput: completed useful work, the number
			// the saturation curves are drawn from.
			ins.admGoodput.With(tenant).Inc()
		}
	}
	s.observe(outcome, start)
	g.finishRequest(s, &rt, resp.StatusCode, "")
}
