// Package live is a real (non-simulated) miniature of the OpenFaaS
// pipeline the paper instruments: an HTTP gateway that proxies
// requests to per-function watchdog processes over actual TCP sockets
// on localhost. Each watchdog is an http.Server wrapping the function
// handler — the role OpenFaaS's "tiny Golang HTTP server" plays inside
// the container.
//
// Cold start is modelled by a configurable delay when a new watchdog
// instance boots (standing in for container creation, runtime init and
// application init); with reuse enabled the gateway keeps finished
// instances warm in a pool, HotC-style, and skips that delay.
//
// With EnableControl the gateway also runs the paper's adaptive
// live-container control (Algorithm 3) against the real pool: a
// per-function controller samples demand each interval, forecasts the
// next one with the ES+Markov predictor, and prewarms or retires warm
// instances to meet it — see controller.go.
//
// This package exists so the examples and the hotcd daemon can
// demonstrate the middleware against a real network stack; the figure
// benchmarks use the deterministic simulated pipeline in the parent
// package.
package live

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"hotc/internal/faas"
)

// Handler is the function body: bytes in, bytes out.
type Handler func(body []byte) ([]byte, error)

// Function describes a deployable function.
type Function struct {
	// Name routes requests: the gateway serves it at /function/<name>.
	Name string
	// Handler is the business logic.
	Handler Handler
	// ColdStart is the artificial boot delay a fresh instance pays
	// (container create + runtime init + app init).
	ColdStart time.Duration
}

// instance is one live watchdog: an HTTP server bound to a loopback
// port, running the function handler.
type instance struct {
	fn     Function
	server *http.Server
	addr   string
	lis    net.Listener
	// idleSince is when the instance last returned to the warm pool
	// (set under the gateway lock; read by the janitor).
	idleSince time.Time
}

func startInstance(fn Function) (*instance, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live: watchdog listen: %w", err)
	}
	inst := &instance{fn: fn, lis: lis, addr: lis.Addr().String()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := fn.Handler(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write(out)
	})
	inst.server = &http.Server{Handler: mux}
	go inst.server.Serve(lis)
	// The cold start: container boot, runtime init, business init.
	time.Sleep(fn.ColdStart)
	return inst, nil
}

func (i *instance) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	i.server.Shutdown(ctx)
}

// stopAll shuts instances down concurrently and waits for all of them:
// each Shutdown can block up to its timeout on active connections, so
// serial teardown would cost the sum instead of the max.
func stopAll(insts []*instance) {
	var wg sync.WaitGroup
	for _, inst := range insts {
		wg.Add(1)
		go func(i *instance) {
			defer wg.Done()
			i.stop()
		}(inst)
	}
	wg.Wait()
}

// Stats counts gateway activity.
type Stats struct {
	Requests   int
	ColdStarts int
	Reused     int
	// Prewarmed counts instances the controller booted ahead of demand.
	Prewarmed int
	// Retired counts instances stopped by controller scale-down or the
	// warm-pool cap's oldest-first eviction.
	Retired int
	// Expired counts instances stopped by keep-alive (idle TTL) expiry.
	Expired int
}

// Gateway proxies /function/<name> requests to watchdog instances.
type Gateway struct {
	reuse bool
	// epoch anchors the breaker's monotonic clock.
	epoch time.Time
	// nowFn is the wall clock; tests inject a fake for deterministic
	// keep-alive and controller timing.
	nowFn func() time.Time

	mu      sync.Mutex
	fns     map[string]Function
	idle    map[string][]*instance
	stats   Stats
	stopped bool

	// ctl configures adaptive control (see EnableControl); fnCtl holds
	// the per-function demand/predictor state, ctlRunning reports that
	// background loops were launched.
	ctl        ControlConfig
	fnCtl      map[string]*fnControl
	ctlRunning bool
	ctlStop    chan struct{}
	// wg tracks every background goroutine the gateway owns:
	// controllers, the janitor, prewarm boots and retire teardowns.
	wg sync.WaitGroup

	// breakerThreshold/breakerOpenFor arm the per-function circuit
	// breaker (see EnableBreaker); breakers and res hold its state and
	// the resilience counters.
	breakerThreshold int
	breakerOpenFor   time.Duration
	breakers         map[string]*faas.Breaker
	res              map[string]int

	// obs is the optional metric hookup (see Instrument).
	obs *instruments

	server *http.Server
	lis    net.Listener
	client *http.Client
}

// NewGateway creates a gateway. With reuse enabled, finished instances
// return to a warm pool (the HotC behaviour); without it every request
// boots and tears down an instance (the default cold behaviour).
func NewGateway(reuse bool) *Gateway {
	return &Gateway{
		reuse:    reuse,
		epoch:    time.Now(),
		nowFn:    time.Now,
		fns:      make(map[string]Function),
		idle:     make(map[string][]*instance),
		fnCtl:    make(map[string]*fnControl),
		ctlStop:  make(chan struct{}),
		breakers: make(map[string]*faas.Breaker),
		res:      make(map[string]int),
		client:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Register deploys a function. Functions registered after Start join
// the adaptive control loop immediately.
func (g *Gateway) Register(fn Function) error {
	if fn.Name == "" || fn.Handler == nil {
		return fmt.Errorf("live: function needs a name and a handler")
	}
	g.mu.Lock()
	_, existed := g.fns[fn.Name]
	g.fns[fn.Name] = fn
	spawn := !existed && g.ctlRunning && g.ctl.NewPredictor != nil && !g.stopped
	if spawn {
		g.wg.Add(1)
	}
	g.mu.Unlock()
	if spawn {
		go g.runController(fn.Name)
	}
	return nil
}

// Start binds the gateway to a loopback port and returns its base URL.
func (g *Gateway) Start() (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", g.handle)
	return g.startWith(mux)
}

// startWith binds the gateway with a custom route table (the daemon
// adds management endpoints).
func (g *Gateway) startWith(mux *http.ServeMux) (string, error) {
	return g.startOn("127.0.0.1:0", mux)
}

// startOn binds to an explicit address and launches the control-loop
// goroutines configured by EnableControl.
func (g *Gateway) startOn(addr string, mux *http.ServeMux) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: gateway listen: %w", err)
	}
	g.lis = lis
	g.server = &http.Server{Handler: mux}
	go g.server.Serve(lis)
	g.startControlLoops()
	return "http://" + lis.Addr().String(), nil
}

// Stop shuts the gateway, the control loops and all warm instances
// down. It is idempotent. Instances are collected under the lock but
// stopped outside it, concurrently: holding the gateway mutex across N
// serial 1s-timeout shutdowns would block every other gateway method
// for up to N seconds.
func (g *Gateway) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	// Mark stopped before anything else: from here on, release() and
	// the controller/janitor tear instances down instead of touching
	// the pool, so an in-flight request finishing after Stop cannot
	// resurrect an instance into the cleared idle map.
	g.stopped = true
	var insts []*instance
	for name, list := range g.idle {
		insts = append(insts, list...)
		delete(g.idle, name)
		g.syncWarmGaugeLocked(name)
	}
	g.mu.Unlock()

	close(g.ctlStop)
	if g.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		g.server.Shutdown(ctx)
		cancel()
	}
	stopAll(insts)
	g.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// WarmInstances reports the number of idle warm instances for a
// function.
func (g *Gateway) WarmInstances(name string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.idle[name])
}

// acquire returns a warm instance or boots a new one, tracking
// in-flight demand for the controller.
func (g *Gateway) acquire(name string) (*instance, bool, error) {
	g.mu.Lock()
	fn, ok := g.fns[name]
	if !ok {
		g.mu.Unlock()
		return nil, false, fmt.Errorf("live: unknown function %q", name)
	}
	st := g.fnCtlLocked(name)
	st.inFlight++
	if st.inFlight > st.peak {
		st.peak = st.inFlight
	}
	if list := g.idle[name]; len(list) > 0 {
		inst := list[len(list)-1]
		g.idle[name] = list[:len(list)-1]
		g.stats.Reused++
		g.stats.Requests++
		g.syncWarmGaugeLocked(name)
		g.mu.Unlock()
		return inst, true, nil
	}
	g.stats.ColdStarts++
	g.stats.Requests++
	g.mu.Unlock()

	inst, err := startInstance(fn) // cold boot outside the lock
	if err != nil {
		g.decInFlight(name)
	}
	return inst, false, err
}

// decInFlight ends a request's demand accounting.
func (g *Gateway) decInFlight(name string) {
	g.mu.Lock()
	if st := g.fnCtl[name]; st != nil && st.inFlight > 0 {
		st.inFlight--
	}
	g.mu.Unlock()
}

// release returns the instance to the warm pool, enforcing the warm
// cap with oldest-first eviction — or tears it down when reuse is off
// or the gateway already stopped (an in-flight request that outlives
// Stop must not leak its watchdog into a dead pool).
func (g *Gateway) release(name string, inst *instance) {
	g.mu.Lock()
	if st := g.fnCtl[name]; st != nil && st.inFlight > 0 {
		st.inFlight--
	}
	if !g.reuse || g.stopped {
		g.mu.Unlock()
		inst.stop()
		return
	}
	var evict *instance
	if g.ctl.MaxWarm > 0 && len(g.idle[name]) >= g.ctl.MaxWarm {
		// The gateway reuses from the tail, so the head is oldest.
		list := g.idle[name]
		evict = list[0]
		g.idle[name] = append(list[:0:0], list[1:]...)
		g.stats.Retired++
		if g.obs != nil {
			g.obs.poolRetired.Inc()
		}
	}
	inst.idleSince = g.nowFn()
	g.idle[name] = append(g.idle[name], inst)
	g.syncWarmGaugeLocked(name)
	g.mu.Unlock()
	if evict != nil {
		evict.stop()
	}
}

// discard ends a request whose instance is suspect (boot or transport
// failure): demand accounting is closed and the instance, if any, is
// torn down rather than re-pooled.
func (g *Gateway) discard(name string, inst *instance) {
	g.decInFlight(name)
	if inst != nil {
		inst.stop()
	}
}

func (g *Gateway) handle(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	start := time.Now()

	// Unknown functions are a client error and must not feed the
	// breaker: a typo cannot open the circuit for a healthy function.
	g.mu.Lock()
	_, known := g.fns[name]
	g.mu.Unlock()
	if !known {
		g.observe(name, "error", start)
		http.Error(w, fmt.Sprintf("live: unknown function %q", name), http.StatusNotFound)
		return
	}

	// While the breaker is open, fast-fail instead of piling boots onto
	// a failing backend.
	if !g.breakerAllow(name) {
		g.observe(name, "rejected", start)
		http.Error(w, fmt.Sprintf("live: circuit breaker open for %q", name), http.StatusServiceUnavailable)
		return
	}

	inst, reused, err := g.acquire(name)
	if err != nil {
		g.breakerFailure(name, "boot.failures")
		g.observe(name, "error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}

	// Forward to the watchdog over a real socket. A transport failure
	// makes the instance suspect: tear it down rather than re-pool it.
	resp, err := g.client.Post("http://"+inst.addr+"/", "application/octet-stream", r.Body)
	if err != nil {
		g.discard(name, inst)
		g.breakerFailure(name, "proxy.failures")
		g.observe(name, "error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		g.discard(name, inst)
		g.breakerFailure(name, "proxy.failures")
		g.observe(name, "error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	// The round-trip worked; a handler-level error status is the
	// function's business, not a runtime fault.
	g.release(name, inst)
	g.breakerSuccess(name)
	outcome := "ok"
	if resp.StatusCode >= 400 {
		outcome = "error"
	}
	g.mu.Lock()
	if g.obs != nil {
		mode := "cold"
		if reused {
			mode = "warm"
		}
		g.obs.starts.With(mode).Inc()
	}
	g.mu.Unlock()
	g.observe(name, outcome, start)
	// Forward the watchdog's response headers (Content-Type etc.)
	// before committing the status line, then the gateway's own.
	hdr := w.Header()
	for k, vv := range resp.Header {
		for _, v := range vv {
			hdr.Add(k, v)
		}
	}
	hdr.Set("X-Hotc-Reused", fmt.Sprintf("%v", reused))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}
