// Package live is a real (non-simulated) miniature of the OpenFaaS
// pipeline the paper instruments: an HTTP gateway that proxies
// requests to per-function watchdog processes over actual TCP sockets
// on localhost. Each watchdog is an http.Server wrapping the function
// handler — the role OpenFaaS's "tiny Golang HTTP server" plays inside
// the container.
//
// Cold start is modelled by a configurable delay when a new watchdog
// instance boots (standing in for container creation, runtime init and
// application init); with reuse enabled the gateway keeps finished
// instances warm in a pool, HotC-style, and skips that delay.
//
// This package exists so the examples can demonstrate the middleware
// against a real network stack; the figure benchmarks use the
// deterministic simulated pipeline in the parent package.
package live

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"hotc/internal/faas"
)

// Handler is the function body: bytes in, bytes out.
type Handler func(body []byte) ([]byte, error)

// Function describes a deployable function.
type Function struct {
	// Name routes requests: the gateway serves it at /function/<name>.
	Name string
	// Handler is the business logic.
	Handler Handler
	// ColdStart is the artificial boot delay a fresh instance pays
	// (container create + runtime init + app init).
	ColdStart time.Duration
}

// instance is one live watchdog: an HTTP server bound to a loopback
// port, running the function handler.
type instance struct {
	fn     Function
	server *http.Server
	addr   string
	lis    net.Listener
	// idleSince is when the instance last returned to the warm pool
	// (set under the gateway lock; read by the daemon's reaper).
	idleSince time.Time
}

func startInstance(fn Function) (*instance, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live: watchdog listen: %w", err)
	}
	inst := &instance{fn: fn, lis: lis, addr: lis.Addr().String()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := fn.Handler(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write(out)
	})
	inst.server = &http.Server{Handler: mux}
	go inst.server.Serve(lis)
	// The cold start: container boot, runtime init, business init.
	time.Sleep(fn.ColdStart)
	return inst, nil
}

func (i *instance) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	i.server.Shutdown(ctx)
}

// Stats counts gateway activity.
type Stats struct {
	Requests   int
	ColdStarts int
	Reused     int
}

// Gateway proxies /function/<name> requests to watchdog instances.
type Gateway struct {
	reuse bool
	// epoch anchors the breaker's monotonic clock.
	epoch time.Time

	mu    sync.Mutex
	fns   map[string]Function
	idle  map[string][]*instance
	stats Stats

	// breakerThreshold/breakerOpenFor arm the per-function circuit
	// breaker (see EnableBreaker); breakers and res hold its state and
	// the resilience counters.
	breakerThreshold int
	breakerOpenFor   time.Duration
	breakers         map[string]*faas.Breaker
	res              map[string]int

	// obs is the optional metric hookup (see Instrument).
	obs *instruments

	server *http.Server
	lis    net.Listener
	client *http.Client
}

// NewGateway creates a gateway. With reuse enabled, finished instances
// return to a warm pool (the HotC behaviour); without it every request
// boots and tears down an instance (the default cold behaviour).
func NewGateway(reuse bool) *Gateway {
	return &Gateway{
		reuse:    reuse,
		epoch:    time.Now(),
		fns:      make(map[string]Function),
		idle:     make(map[string][]*instance),
		breakers: make(map[string]*faas.Breaker),
		res:      make(map[string]int),
		client:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Register deploys a function. It must be called before Start.
func (g *Gateway) Register(fn Function) error {
	if fn.Name == "" || fn.Handler == nil {
		return fmt.Errorf("live: function needs a name and a handler")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fns[fn.Name] = fn
	return nil
}

// Start binds the gateway to a loopback port and returns its base URL.
func (g *Gateway) Start() (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", g.handle)
	return g.startWith(mux)
}

// startWith binds the gateway with a custom route table (the daemon
// adds management endpoints).
func (g *Gateway) startWith(mux *http.ServeMux) (string, error) {
	return g.startOn("127.0.0.1:0", mux)
}

// startOn binds to an explicit address.
func (g *Gateway) startOn(addr string, mux *http.ServeMux) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: gateway listen: %w", err)
	}
	g.lis = lis
	g.server = &http.Server{Handler: mux}
	go g.server.Serve(lis)
	return "http://" + lis.Addr().String(), nil
}

// Stop shuts the gateway and all warm instances down.
func (g *Gateway) Stop() {
	if g.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		g.server.Shutdown(ctx)
		cancel()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, list := range g.idle {
		for _, inst := range list {
			inst.stop()
		}
	}
	g.idle = make(map[string][]*instance)
}

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// WarmInstances reports the number of idle warm instances for a
// function.
func (g *Gateway) WarmInstances(name string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.idle[name])
}

// acquire returns a warm instance or boots a new one.
func (g *Gateway) acquire(name string) (*instance, bool, error) {
	g.mu.Lock()
	fn, ok := g.fns[name]
	if !ok {
		g.mu.Unlock()
		return nil, false, fmt.Errorf("live: unknown function %q", name)
	}
	if list := g.idle[name]; len(list) > 0 {
		inst := list[len(list)-1]
		g.idle[name] = list[:len(list)-1]
		g.stats.Reused++
		g.stats.Requests++
		g.syncWarmGaugeLocked(name)
		g.mu.Unlock()
		return inst, true, nil
	}
	g.stats.ColdStarts++
	g.stats.Requests++
	g.mu.Unlock()

	inst, err := startInstance(fn) // cold boot outside the lock
	return inst, false, err
}

// release returns the instance to the warm pool or tears it down.
func (g *Gateway) release(name string, inst *instance) {
	if !g.reuse {
		inst.stop()
		return
	}
	g.mu.Lock()
	inst.idleSince = time.Now()
	g.idle[name] = append(g.idle[name], inst)
	g.syncWarmGaugeLocked(name)
	g.mu.Unlock()
}

func (g *Gateway) handle(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	start := time.Now()

	// Unknown functions are a client error and must not feed the
	// breaker: a typo cannot open the circuit for a healthy function.
	g.mu.Lock()
	_, known := g.fns[name]
	g.mu.Unlock()
	if !known {
		g.observe(name, "error", start)
		http.Error(w, fmt.Sprintf("live: unknown function %q", name), http.StatusNotFound)
		return
	}

	// While the breaker is open, fast-fail instead of piling boots onto
	// a failing backend.
	if !g.breakerAllow(name) {
		g.observe(name, "rejected", start)
		http.Error(w, fmt.Sprintf("live: circuit breaker open for %q", name), http.StatusServiceUnavailable)
		return
	}

	inst, reused, err := g.acquire(name)
	if err != nil {
		g.breakerFailure(name, "boot.failures")
		g.observe(name, "error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}

	// Forward to the watchdog over a real socket. A transport failure
	// makes the instance suspect: tear it down rather than re-pool it.
	resp, err := g.client.Post("http://"+inst.addr+"/", "application/octet-stream", r.Body)
	if err != nil {
		inst.stop()
		g.breakerFailure(name, "proxy.failures")
		g.observe(name, "error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		inst.stop()
		g.breakerFailure(name, "proxy.failures")
		g.observe(name, "error", start)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	// The round-trip worked; a handler-level error status is the
	// function's business, not a runtime fault.
	g.release(name, inst)
	g.breakerSuccess(name)
	outcome := "ok"
	if resp.StatusCode >= 400 {
		outcome = "error"
	}
	g.mu.Lock()
	if g.obs != nil {
		mode := "cold"
		if reused {
			mode = "warm"
		}
		g.obs.starts.With(mode).Inc()
	}
	g.mu.Unlock()
	g.observe(name, outcome, start)
	w.Header().Set("X-Hotc-Reused", fmt.Sprintf("%v", reused))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}
