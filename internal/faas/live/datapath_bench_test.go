package live

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// discardResponseWriter is an http.ResponseWriter that counts and
// drops the body: benchmark iterations must not accumulate megabytes
// in a recorder, or the harness's own allocations would swamp the
// gateway's.
type discardResponseWriter struct {
	h      http.Header
	status int
	n      int64
}

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}

func (d *discardResponseWriter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}

func (d *discardResponseWriter) WriteHeader(code int) { d.status = code }

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dKiB", n>>10)
	}
}

// benchThroughput drives payloads of the given size through the full
// gateway data path (handle → watchdog TCP round trip → response copy)
// against an echo function of the given kind, reporting MB/s and B/op.
func benchThroughput(b *testing.B, size int, fn Function) {
	b.Helper()
	g := NewGateway(true)
	if err := g.Register(fn); err != nil {
		b.Fatal(err)
	}
	defer g.Stop()

	payload := bytes.Repeat([]byte("hotc-datapath!!!"), size/16)
	body := bytes.NewReader(payload)

	// Prime one warm instance so the timed region measures steady-state
	// reuse, not the cold boot.
	req := httptest.NewRequest("POST", "/function/"+fn.Name, body)
	w := &discardResponseWriter{}
	g.handle(w, req)
	if w.status != http.StatusOK || w.n != int64(size) {
		b.Fatalf("prime: status %d, %d bytes (want %d)", w.status, w.n, size)
	}

	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Reset(payload)
		req := httptest.NewRequest("POST", "/function/"+fn.Name, body)
		w := &discardResponseWriter{}
		g.handle(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
		if w.n != int64(size) {
			b.Fatalf("body %d bytes, want %d", w.n, size)
		}
	}
}

// BenchmarkGatewayThroughput is the data-path suite the streaming PR is
// judged on: echo payloads from 1 KiB to 4 MiB through the live
// gateway, for both handler kinds. bytes_* uses the []byte Handler
// (through the pooled compat shim); stream_* uses a StreamHandler, so
// no stage of the pipeline ever buffers the payload.
func BenchmarkGatewayThroughput(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20, 4 << 20} {
		b.Run("bytes_"+sizeLabel(size), func(b *testing.B) {
			benchThroughput(b, size, Function{
				Name:    "f",
				Handler: func(p []byte) ([]byte, error) { return p, nil },
			})
		})
		b.Run("stream_"+sizeLabel(size), func(b *testing.B) {
			benchThroughput(b, size, Function{
				Name: "f",
				Stream: func(r io.Reader, w io.Writer) error {
					_, err := copyPooled(w, r)
					return err
				},
			})
		})
	}
}
