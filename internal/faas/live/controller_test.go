package live

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hotc/internal/predictor"
)

// fakeClock is an injectable wall clock for deterministic keep-alive
// and controller timing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
	return f.t
}

// startControlled builds a started gateway with adaptive control armed
// and background loops effectively idle (hour-long periods), so tests
// drive controlOnce/janitorOnce by hand with the fake clock.
func startControlled(t *testing.T, cfg ControlConfig, fns ...Function) (*Gateway, *fakeClock, string) {
	t.Helper()
	if cfg.Interval == 0 {
		cfg.Interval = time.Hour
	}
	if cfg.JanitorInterval == 0 {
		cfg.JanitorInterval = time.Hour
	}
	g := NewGateway(true)
	clk := newFakeClock()
	g.nowFn = clk.Now
	g.EnableControl(cfg)
	for _, fn := range fns {
		if err := g.Register(fn); err != nil {
			t.Fatal(err)
		}
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	return g, clk, base
}

func waitWarm(t *testing.T, g *Gateway, name string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.WarmInstances(name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("warm instances = %d, want %d", g.WarmInstances(name), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func naiveFactory() predictor.Predictor { return predictor.NewNaive() }

// The controller samples the interval's peak concurrent demand,
// forecasts the next interval and prewarms to meet it: after a burst
// of 3 whose instances expired, the next tick boots 3 fresh instances
// ahead of demand.
func TestControllerPrewarmsForecastDemand(t *testing.T) {
	g, clk, base := startControlled(t,
		ControlConfig{NewPredictor: naiveFactory, KeepAlive: time.Minute},
		Function{Name: "f", Handler: func(b []byte) ([]byte, error) {
			time.Sleep(50 * time.Millisecond)
			return b, nil
		}})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/function/f", "text/plain", strings.NewReader("x"))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	waitWarm(t, g, "f", 3)

	// Keep-alive expires the burst's instances...
	g.janitorOnce(clk.Advance(2 * time.Minute))
	waitWarm(t, g, "f", 0)
	if st := g.Stats(); st.Expired != 3 {
		t.Fatalf("Expired = %d, want 3", st.Expired)
	}

	// ...but the controller saw peak demand 3 and prewarms it back.
	g.controlOnce("f", clk.Now())
	waitWarm(t, g, "f", 3)
	if st := g.Stats(); st.Prewarmed != 3 {
		t.Fatalf("Prewarmed = %d, want 3", st.Prewarmed)
	}
	tr := g.PredictionTraces()["f"]
	if tr.Ticks != 1 || tr.Forecast != 3 || len(tr.Observed) != 1 || tr.Observed[0] != 3 {
		t.Fatalf("trace = %+v", tr)
	}
}

// Falling demand scales the pool down with hysteresis (at most a
// quarter of the live set per tick) until nothing is left.
func TestControllerRetiresOnFallingDemand(t *testing.T) {
	g, clk, base := startControlled(t,
		ControlConfig{NewPredictor: naiveFactory},
		echoFn("f", 0))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/function/f", "text/plain", strings.NewReader("x"))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	warm := g.WarmInstances("f")
	if warm == 0 {
		t.Fatal("no warm instances after burst")
	}
	g.controlOnce("f", clk.Now()) // observes the burst's peak

	// Demand goes to zero: each tick may retire at most
	// ceil(live*0.25); the pool must drain within a bounded number of
	// ticks and never jump to zero in one step from a large pool.
	first := true
	for i := 0; i < 20 && g.WarmInstances("f") > 0; i++ {
		before := g.WarmInstances("f")
		g.controlOnce("f", clk.Advance(time.Second))
		after := g.WarmInstances("f")
		if after > before {
			t.Fatalf("scale-down grew the pool: %d -> %d", before, after)
		}
		if first && before == 4 && before-after > 1 {
			t.Fatalf("hysteresis violated: retired %d of %d in one tick", before-after, before)
		}
		first = false
	}
	if got := g.WarmInstances("f"); got != 0 {
		t.Fatalf("pool did not drain: %d warm", got)
	}
	if st := g.Stats(); st.Retired != warm {
		t.Fatalf("Retired = %d, want %d", st.Retired, warm)
	}
}

// Prewarming never pushes the idle pool past MaxWarm.
func TestControllerPrewarmRespectsMaxWarm(t *testing.T) {
	g, clk, _ := startControlled(t,
		ControlConfig{NewPredictor: naiveFactory, MaxWarm: 2},
		echoFn("f", 0))

	// Simulate a burst of 5 observed in the closing interval.
	s := g.shard("f")
	s.mu.Lock()
	s.ctl.peak = 5
	s.mu.Unlock()

	g.controlOnce("f", clk.Now())
	waitWarm(t, g, "f", 2)
	time.Sleep(50 * time.Millisecond) // any excess boot would land by now
	if got := g.WarmInstances("f"); got != 2 {
		t.Fatalf("warm = %d, want MaxWarm 2", got)
	}
	if st := g.Stats(); st.Prewarmed != 2 {
		t.Fatalf("Prewarmed = %d, want 2", st.Prewarmed)
	}
}

// A prewarm boot that completes after Stop must tear its instance down
// instead of populating a dead pool — the janitor-side variant of the
// release-after-Stop race.
func TestStopDuringPrewarmDoesNotLeak(t *testing.T) {
	g, clk, _ := startControlled(t,
		ControlConfig{NewPredictor: naiveFactory},
		echoFn("f", 150*time.Millisecond))

	s := g.shard("f")
	s.mu.Lock()
	s.ctl.peak = 2
	s.mu.Unlock()
	g.controlOnce("f", clk.Now()) // schedules 2 boots of 150ms each

	g.Stop() // waits for the boots; they must self-destruct
	if got := g.WarmInstances("f"); got != 0 {
		t.Fatalf("prewarm leaked %d instances into a stopped gateway", got)
	}
	if st := g.Stats(); st.Prewarmed != 0 {
		t.Fatalf("Prewarmed = %d, want 0 after stop", st.Prewarmed)
	}
}

// Keep-alive expiry against the injected clock: one nanosecond short
// keeps the instance, the exact TTL expires it.
func TestJanitorExpiryWithInjectedClock(t *testing.T) {
	g, clk, base := startControlled(t,
		ControlConfig{KeepAlive: time.Minute},
		echoFn("f", 0))

	post(t, base+"/function/f", "x")
	waitWarm(t, g, "f", 1)
	idleAt := clk.Now()

	g.janitorOnce(idleAt.Add(time.Minute - time.Nanosecond))
	if got := g.WarmInstances("f"); got != 1 {
		t.Fatalf("janitor expired an instance %v before its keep-alive", time.Nanosecond)
	}
	g.janitorOnce(idleAt.Add(time.Minute))
	if got := g.WarmInstances("f"); got != 0 {
		t.Fatal("janitor kept an instance past its keep-alive")
	}
	if st := g.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
}

// The janitor must not touch a stopped gateway: Stop owns teardown.
func TestJanitorNoopAfterStop(t *testing.T) {
	g, clk, base := startControlled(t,
		ControlConfig{KeepAlive: time.Minute},
		echoFn("f", 0))
	post(t, base+"/function/f", "x")
	g.Stop()
	g.janitorOnce(clk.Advance(time.Hour)) // must not panic or resurrect
	if st := g.Stats(); st.Expired != 0 {
		t.Fatalf("janitor expired %d instances on a stopped gateway", st.Expired)
	}
}

// Race coverage: acquire/release traffic, controller ticks, janitor
// scans and stats reads all interleave. Run under -race.
func TestConcurrentAcquireReleaseControllerTicks(t *testing.T) {
	g, clk, base := startControlled(t,
		ControlConfig{NewPredictor: func() predictor.Predictor { return predictor.Default() },
			KeepAlive: 50 * time.Millisecond, MaxWarm: 3},
		echoFn("f", 2*time.Millisecond))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Post(base+"/function/f", "text/plain", strings.NewReader("x"))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			g.controlOnce("f", clk.Advance(5*time.Millisecond))
			if got := g.WarmInstances("f"); got > 3 {
				t.Errorf("warm pool %d exceeds MaxWarm 3", got)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			g.janitorOnce(clk.Now())
			g.Stats()
			g.PredictionTraces()
			g.Forecasts()
		}
	}()
	wg.Wait()
	if got := g.WarmInstances("f"); got > 3 {
		t.Fatalf("warm pool %d exceeds MaxWarm 3", got)
	}
}
