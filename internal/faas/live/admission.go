package live

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"hotc/internal/admission"
)

// The overload-control request headers. Tenants tag their traffic so
// fair queuing can tell them apart; deadlines bound how long a request
// may queue and execute before shedding beats serving.
const (
	// TenantHeader names the tenant a request bills to. Untagged
	// requests bill to the function itself, so fairness degrades to
	// per-function instead of collapsing to one shared bucket.
	TenantHeader = "X-Hotc-Tenant"
	// DeadlineHeader carries the request's end-to-end deadline in
	// milliseconds from arrival, overriding the gateway's default
	// (0 = explicitly no deadline).
	DeadlineHeader = "X-Hotc-Deadline-Ms"
	// RejectedHeader reports why an admission-rejected request was
	// refused (queue_full, deadline, stopped).
	RejectedHeader = "X-Hotc-Rejected"
	// DrainingHeader marks 503 refusals from a draining gateway (see
	// Gateway.SetDraining): the router reads it as "place elsewhere,
	// permanently, until this node undrains" rather than "retry later".
	DrainingHeader = "X-Hotc-Draining"
)

// defaultInstanceMemBytes is the per-warm-instance memory estimate the
// budget reclaim uses when the caller does not supply one: 64 MiB, the
// order of a small language runtime's RSS.
const defaultInstanceMemBytes = 64 << 20

// AdmissionConfig arms the gateway's overload-control tier (see
// internal/admission): bounded per-tenant queues in front of the warm
// pool, deadline-aware shedding, weighted fair dispatch, and a warm-
// memory budget the janitor enforces by reclaiming from the biggest
// consumers first.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently executing requests per function.
	// <= 0 disables admission control entirely: no queue, no caps
	// (deadline propagation still applies).
	MaxInFlight int
	// QueueDepth caps waiting requests per tenant per function; past
	// it arrivals are rejected with 429 + Retry-After. <= 0 with a
	// finite MaxInFlight rejects everything beyond the in-flight cap.
	QueueDepth int
	// DefaultDeadline is applied to requests that do not carry
	// DeadlineHeader (0 = none). The deadline sheds queued requests
	// whose time has passed and cancels in-flight backend work.
	DefaultDeadline time.Duration
	// TenantWeights sets fair-dispatch quanta per tenant name;
	// unlisted tenants weigh 1.
	TenantWeights map[string]int
	// MemoryBudget bounds the estimated memory of all warm instances
	// across functions, in bytes (0 = unlimited). When exceeded the
	// janitor reclaims warm capacity from the most over-quota
	// functions first, oldest instances first.
	MemoryBudget int64
	// InstanceMemBytes is the per-instance memory estimate backing the
	// budget (default 64 MiB).
	InstanceMemBytes int64
}

// EnableAdmission configures overload control. Call before Start, like
// EnableBreaker; functions registered before or after all get their
// admission queue.
func (g *Gateway) EnableAdmission(cfg AdmissionConfig) {
	if cfg.MemoryBudget > 0 && cfg.InstanceMemBytes <= 0 {
		cfg.InstanceMemBytes = defaultInstanceMemBytes
	}
	g.smu.Lock()
	defer g.smu.Unlock()
	g.adm = cfg
	if cfg.MaxInFlight > 0 {
		for _, s := range g.shards {
			if s.adm == nil {
				s.adm = g.newAdmissionQueueLocked(s)
			}
		}
	}
}

// newAdmissionQueueLocked builds one shard's admission queue, wiring
// its occupancy hooks to the shard's (swap-on-Instrument) gauges.
// Caller holds smu.
func (g *Gateway) newAdmissionQueueLocked(s *shard) *admission.Queue {
	return admission.New(admission.Config{
		MaxInFlight: g.adm.MaxInFlight,
		QueueDepth:  g.adm.QueueDepth,
		Weights:     g.adm.TenantWeights,
		Now:         func() time.Time { return g.nowFn() },
		OnQueueDepth: func(n int) {
			if m := s.m.Load(); m != nil {
				m.admDepth.Set(float64(n))
			}
		},
		OnInFlight: func(n int) {
			if m := s.m.Load(); m != nil {
				m.admInFlight.Set(float64(n))
			}
		},
	})
}

// requestDeadline resolves a request's absolute deadline: the
// DeadlineHeader override when present, else the configured default;
// zero time means none.
func (g *Gateway) requestDeadline(r *http.Request, start time.Time) (time.Time, error) {
	d := g.adm.DefaultDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms < 0 {
			return time.Time{}, fmt.Errorf("live: bad %s %q (want non-negative milliseconds)", DeadlineHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return time.Time{}, nil
	}
	return start.Add(d), nil
}

// admit runs the request through the shard's admission queue (a no-op
// pass when admission is off). It either returns a ticket — whose Done
// the caller must arrange — or writes the refusal response itself and
// returns a nil ticket with the refusal's HTTP status (the caller
// feeds it to the request's span; a queue-canceled request reports 499
// even though no status line went out).
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request, s *shard, rt *reqTrace, tenant string, deadline time.Time, start time.Time) (*admission.Ticket, int) {
	if s.adm == nil {
		return nil, 0
	}
	ticket, rej := s.adm.Acquire(r.Context(), tenant, deadline)
	if rej == nil {
		if m := s.m.Load(); m != nil {
			m.admWait.ObserveDuration(ticket.Waited())
		}
		return ticket, 0
	}
	if ins := g.obs.Load(); ins != nil {
		ins.admRejected.With(s.name, string(rej.Reason)).Inc()
	}
	if rej.Reason == admission.ReasonCanceled {
		// The client hung up while queued; nobody is listening for a
		// status line.
		s.countCanceled()
		s.observe("canceled", start)
		g.traceEvent(rt, "canceled", "client disconnect while queued")
		return nil, statusClientClosedRequest
	}
	status := http.StatusTooManyRequests
	if rej.Reason == admission.ReasonStopped {
		status = http.StatusServiceUnavailable
	}
	if rej.RetryAfter > 0 {
		setRetryAfter(w, rej.RetryAfter)
	}
	w.Header().Set(RejectedHeader, string(rej.Reason))
	http.Error(w, fmt.Sprintf("live: overloaded (%s) for %q", rej.Reason, s.name), status)
	s.observe("rejected", start)
	g.traceEvent(rt, "admission-rejected", string(rej.Reason))
	return nil, status
}

// setRetryAfter writes a whole-seconds Retry-After header, always at
// least 1 so the hint is actionable.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// AdmissionStats snapshots every function's admission queue (empty map
// when admission is off).
func (g *Gateway) AdmissionStats() map[string]admission.Stats {
	out := make(map[string]admission.Stats)
	for _, s := range g.snapshotShards() {
		if s.adm != nil {
			out[s.name] = s.adm.Snapshot()
		}
	}
	return out
}

// WarmMemoryStats reports the estimated warm-instance memory footprint
// against the configured budget (both zero when no budget is set).
type WarmMemoryStats struct {
	BudgetBytes int64 `json:"budgetBytes"`
	WarmBytes   int64 `json:"warmBytes"`
	// Reclaimed counts instances evicted by budget pressure.
	Reclaimed int `json:"reclaimed"`
}

// WarmMemory snapshots the memory-budget accounting. Idle generic
// pre-forked watchdogs count against the budget like any other warm
// instance.
func (g *Gateway) WarmMemory() WarmMemoryStats {
	if g.adm.MemoryBudget <= 0 {
		return WarmMemoryStats{}
	}
	total := 0
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		total += len(s.idle)
		s.mu.Unlock()
	}
	if g.cold.pool != nil {
		total += g.cold.pool.Idle()
	}
	return WarmMemoryStats{
		BudgetBytes: g.adm.MemoryBudget,
		WarmBytes:   int64(total) * g.adm.InstanceMemBytes,
		Reclaimed:   int(g.memReclaimed.Load()),
	}
}

// reclaimMemoryOnce enforces the warm-memory budget: when the summed
// per-instance estimates exceed it, warm capacity is reclaimed from
// the functions holding the most (the over-quota tenants), oldest
// instances first, until the estimate fits. Water-filling keeps the
// eviction proportional: every shard is cut down to the same level L
// before any shard below L loses an instance. Runs from the janitor;
// tests call it directly. Returns the number of instances reclaimed.
func (g *Gateway) reclaimMemoryOnce() int {
	budget, est := g.adm.MemoryBudget, g.adm.InstanceMemBytes
	if budget <= 0 || est <= 0 || g.stopped.Load() {
		return 0
	}
	budgetInst := int(budget / est)

	shards := g.snapshotShards()
	counts := make([]int, len(shards))
	total := 0
	for i, s := range shards {
		s.mu.Lock()
		counts[i] = len(s.idle)
		s.mu.Unlock()
		total += counts[i]
	}
	generics := 0
	if g.cold.pool != nil {
		generics = g.cold.pool.Idle()
		total += generics
	}
	ins := g.obs.Load()
	if ins != nil {
		ins.admMemBytes.Set(float64(total) * float64(est))
	}
	if total <= budgetInst {
		return 0
	}

	// Generic pre-forked watchdogs are the cheapest memory to hand
	// back — no function state or warm affinity is lost, and the pool
	// re-grows whenever the budget allows — so they go first, oldest
	// first.
	reapedGen := 0
	if excess := total - budgetInst; generics > 0 {
		want := excess
		if want > generics {
			want = generics
		}
		reapedGen = g.cold.pool.Reap(want)
		g.cold.genericReaped.Add(uint64(reapedGen))
		if ins != nil && reapedGen > 0 {
			ins.coldReaped.Add(float64(reapedGen))
		}
		total -= reapedGen
		if total <= budgetInst {
			g.memReclaimed.Add(uint64(reapedGen))
			if ins != nil {
				ins.admMemReclaimed.Add(float64(reapedGen))
				ins.admMemBytes.Set(float64(total) * float64(est))
			}
			return reapedGen
		}
	}

	// Water-filling over the warm shards for the remainder: find the
	// level L such that capping every shard at L fits the budget, then
	// each shard's quota is what it holds past L (spread one-by-one
	// across the largest when L is fractional). The remaining generics
	// (all reaped by now unless the pool emptied mid-scan) stay counted
	// against the shard budget.
	quota := overQuota(counts, budgetInst-(generics-reapedGen))

	var doomed []*instance
	for i, s := range shards {
		if quota[i] <= 0 {
			continue
		}
		s.mu.Lock()
		n := quota[i]
		if n > len(s.idle) {
			n = len(s.idle)
		}
		if n > 0 {
			doomed = append(doomed, s.idle[:n]...)
			s.idle = append(s.idle[:0:0], s.idle[n:]...)
			s.stats.Retired += n
			s.syncWarmLocked()
		}
		s.mu.Unlock()
	}
	reclaimed := reapedGen + len(doomed)
	if reclaimed > 0 {
		g.memReclaimed.Add(uint64(reclaimed))
		if ins != nil {
			ins.admMemReclaimed.Add(float64(reclaimed))
			ins.admMemBytes.Set(float64(total-len(doomed)) * float64(est))
		}
	}
	if len(doomed) > 0 {
		if ins != nil {
			ins.poolRetired.Add(float64(len(doomed)))
		}
		stopAll(doomed)
	}
	return reclaimed
}

// overQuota distributes the eviction burden of fitting counts into
// budget: shards are cut down toward a common water level, largest
// holders first, and nobody below the level is touched. Returns the
// per-shard eviction quota.
func overQuota(counts []int, budget int) []int {
	quota := make([]int, len(counts))
	total := 0
	for _, c := range counts {
		total += c
	}
	excess := total - budget
	if excess <= 0 {
		return quota
	}
	// Shard indexes sorted by holding, largest first (stable on index
	// for determinism).
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	// Peel one instance at a time from the current largest holder:
	// O(excess * n) with tiny constants, and exactly the water-filling
	// result without fractional-level bookkeeping.
	remaining := append([]int(nil), counts...)
	for evicted := 0; evicted < excess; evicted++ {
		best := -1
		for _, i := range order {
			if best == -1 || remaining[i] > remaining[best] {
				best = i
			}
		}
		if best == -1 || remaining[best] == 0 {
			break
		}
		remaining[best]--
		quota[best]++
	}
	return quota
}

// statusClientClosedRequest is the span status for requests abandoned
// by their client before any status line went out (nginx's 499
// convention) — not a wire status, only trace/SLO bookkeeping.
const statusClientClosedRequest = 499

// cancelUpstream writes the client-side conclusion of a request whose
// context died mid-flight: nothing for a vanished client, 504 for a
// deadline that expired while the backend worked. The backend is
// blameless either way — the caller already discarded the instance
// without feeding the breaker. Returns the status the span records:
// 504 when the deadline refusal went out, 499 when nobody was
// listening.
func (g *Gateway) cancelUpstream(w http.ResponseWriter, r *http.Request, s *shard, rt *reqTrace, committed bool, start time.Time) int {
	s.countCanceled()
	if ins := g.obs.Load(); ins != nil {
		ins.admCanceled.Inc()
	}
	if r.Context().Err() != nil || committed {
		// Client disconnect (or the status line already went out):
		// there is nobody/no way to tell.
		g.traceEvent(rt, "canceled", "client disconnect mid-flight")
		s.observe("canceled", start)
		return statusClientClosedRequest
	}
	w.Header().Set(RejectedHeader, string(admission.ReasonDeadline))
	http.Error(w, "live: deadline exceeded", http.StatusGatewayTimeout)
	g.traceEvent(rt, "canceled", "deadline exceeded mid-flight")
	s.observe("canceled", start)
	return http.StatusGatewayTimeout
}

// countCanceled bumps the shard's abandoned-request counter (Stats
// aggregation; the metrics side goes through observe/admCanceled).
func (s *shard) countCanceled() {
	s.mu.Lock()
	s.stats.Canceled++
	s.mu.Unlock()
}

// withDeadline derives the request context the backend call runs
// under: the client's own context (so disconnects cancel backend
// work), bounded by the admission deadline when one is set.
func withDeadline(r *http.Request, deadline time.Time) (context.Context, context.CancelFunc) {
	if deadline.IsZero() {
		return r.Context(), func() {}
	}
	return context.WithDeadline(r.Context(), deadline)
}
