package live

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain adds an opt-in goroutine-leak pass over the whole package:
// with HOTC_LEAKCHECK set (scripts/verify.sh does), the process fails
// if the goroutine count has not returned to near the pre-test
// baseline once every gateway is stopped. Leaked watchdog
// http.Servers — the release-after-Stop class of bug — hold their
// Serve goroutine forever and trip this.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 && os.Getenv("HOTC_LEAKCHECK") != "" {
		code = leakCheck(baseline)
	}
	os.Exit(code)
}

// Shard teardown must not strand goroutines: a gateway with many
// populated shards (warm instances, per-function controllers, breaker
// state) is stopped and the goroutine count must fall back to its
// pre-gateway level. This checks locally what the TestMain pass checks
// package-wide, so a shard-lifecycle leak is pinned to this test
// instead of surfacing as an end-of-run failure.
func TestShardTeardownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	g := NewGateway(true)
	g.EnableControl(ControlConfig{
		NewPredictor: naiveFactory,
		Interval:     time.Hour, JanitorInterval: time.Hour,
		KeepAlive: time.Minute,
	})
	for i := 0; i < 8; i++ {
		if err := g.Register(echoFn(fmt.Sprintf("f%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		post(t, base+fmt.Sprintf("/function/f%d", i), "x")
	}
	g.Stop()

	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections() // the test's own post() connections
	}
	deadline := time.Now().Add(5 * time.Second)
	const slack = 4
	for runtime.NumGoroutine() > before+slack {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("shard teardown leaked goroutines: %d alive, baseline %d (slack %d):\n%s",
				runtime.NumGoroutine(), before, slack, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func leakCheck(baseline int) int {
	// Idle keep-alive connections in the shared transport pin their
	// read loops; they are pool bookkeeping, not leaks.
	closeIdle := func() {
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
	}
	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for {
		closeIdle()
		if runtime.NumGoroutine() <= baseline+slack {
			return 0
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(os.Stderr,
		"leakcheck: %d goroutines alive after all tests (baseline %d, slack %d):\n%s\n",
		runtime.NumGoroutine(), baseline, slack, buf[:n])
	return 1
}
