package live

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain adds an opt-in goroutine-leak pass over the whole package:
// with HOTC_LEAKCHECK set (scripts/verify.sh does), the process fails
// if the goroutine count has not returned to near the pre-test
// baseline once every gateway is stopped. Leaked watchdog
// http.Servers — the release-after-Stop class of bug — hold their
// Serve goroutine forever and trip this.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 && os.Getenv("HOTC_LEAKCHECK") != "" {
		code = leakCheck(baseline)
	}
	os.Exit(code)
}

func leakCheck(baseline int) int {
	// Idle keep-alive connections in the shared transport pin their
	// read loops; they are pool bookkeeping, not leaks.
	closeIdle := func() {
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
	}
	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for {
		closeIdle()
		if runtime.NumGoroutine() <= baseline+slack {
			return 0
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(os.Stderr,
		"leakcheck: %d goroutines alive after all tests (baseline %d, slack %d):\n%s\n",
		runtime.NumGoroutine(), baseline, slack, buf[:n])
	return 1
}
