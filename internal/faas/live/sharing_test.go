package live

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hotc/internal/sharing"
)

// testSharing is the deterministic test tuning: a measurable but tiny
// wipe, and no idle grace so a just-released instance is immediately
// lendable.
func testSharing() SharingConfig {
	return SharingConfig{Wipe: time.Millisecond, IdleGrace: -1}
}

// postRec drives one request through the gateway handler directly.
func postRec(t *testing.T, g *Gateway, name, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	g.handle(rec, httptest.NewRequest("POST", "/function/"+name, strings.NewReader(body)))
	return rec
}

// The headline behaviour: a fresh function's very first request is
// served by renting another function's idle instance — X-Hotc-Boot:
// rented, X-Hotc-Reused: false — and beats the full cold start by
// roughly the pull+runtime share.
func TestFirstRequestRentsIdleInstance(t *testing.T) {
	g := NewGateway(true)
	g.EnableSharing(testSharing())
	cold := 300 * time.Millisecond
	for _, n := range []string{"lender", "renter"} {
		if err := g.Register(echoFn(n, cold)); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Stop()

	if rec := postRec(t, g, "lender", "a"); rec.Header().Get(BootHeader) != "cold" {
		t.Fatalf("lender's first boot = %q, want cold", rec.Header().Get(BootHeader))
	}

	start := time.Now()
	rec := postRec(t, g, "renter", "b")
	elapsed := time.Since(start)
	if rec.Code != 200 || rec.Body.String() != "echo:b" {
		t.Fatalf("status %d body %q", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Hotc-Reused"); got != "false" {
		t.Fatalf("X-Hotc-Reused = %q, want false (a rented boot is not a warm reuse)", got)
	}
	if got := rec.Header().Get(BootHeader); got != "rented" {
		t.Fatalf("X-Hotc-Boot = %q, want rented", got)
	}
	// A rented boot pays wipe + app init (15% of 300ms = 45ms); the
	// pull and runtime shares (85%) are already in place.
	if elapsed >= cold/2 {
		t.Fatalf("rented boot took %v, want well under the %v cold start", elapsed, cold)
	}

	st := g.Stats()
	if st.RentedBoots != 1 {
		t.Fatalf("RentedBoots = %d, want 1", st.RentedBoots)
	}
	if st.ColdStarts != 2 {
		t.Fatalf("ColdStarts = %d, want 2 (a rented boot is still a cold start)", st.ColdStarts)
	}
	sh := g.SharingStats()
	if !sh.Enabled || sh.LeasesGranted != 1 {
		t.Fatalf("sharing stats = %+v, want enabled with 1 granted lease", sh)
	}

	// The renter's rented instance pooled normally: its next request
	// is a plain warm reuse.
	if rec := postRec(t, g, "renter", "c"); rec.Header().Get("X-Hotc-Reused") != "true" {
		t.Fatal("renter's second request should reuse its rented instance warm")
	}
}

// The lender's instance left its pool: the lender's own next request
// must not find it (it cold-starts again), and the abandoned
// lender-side struct is tainted so it can never be lent again.
func TestLeaseRemovesInstanceFromLender(t *testing.T) {
	g := NewGateway(true)
	g.EnableSharing(testSharing())
	for _, n := range []string{"lender", "renter"} {
		if err := g.Register(echoFn(n, 20*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Stop()

	postRec(t, g, "lender", "a")
	ls := g.shard("lender")
	ls.mu.Lock()
	if len(ls.idle) != 1 {
		ls.mu.Unlock()
		t.Fatal("lender should have one idle instance")
	}
	lent := ls.idle[0]
	ls.mu.Unlock()

	if rec := postRec(t, g, "renter", "b"); rec.Header().Get(BootHeader) != "rented" {
		t.Fatalf("boot = %q, want rented", rec.Header().Get(BootHeader))
	}
	if !lent.tainted.Load() {
		t.Fatal("the lent instance struct must be tainted")
	}
	if g.WarmInstances("lender") != 0 {
		t.Fatal("lender's pool should be empty after the lease")
	}
	if rec := postRec(t, g, "lender", "c"); rec.Header().Get("X-Hotc-Reused") != "false" {
		t.Fatal("lender must not be handed its lent-out instance")
	}
}

// A tainted instance sitting in an idle list (defense in depth: the
// lease path never re-pools one) is skipped by the lender scan.
func TestTaintedIdleInstanceNeverLent(t *testing.T) {
	g := NewGateway(true)
	g.EnableSharing(testSharing())
	for _, n := range []string{"lender", "renter"} {
		if err := g.Register(echoFn(n, 20*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Stop()

	postRec(t, g, "lender", "a")
	ls := g.shard("lender")
	ls.mu.Lock()
	ls.idle[0].tainted.Store(true)
	ls.mu.Unlock()

	before := g.SharingStats().LeasesNoCandidate
	if rec := postRec(t, g, "renter", "b"); rec.Header().Get(BootHeader) != "cold" {
		t.Fatalf("boot = %q, want cold (tainted instance must not be lent)", rec.Header().Get(BootHeader))
	}
	if got := g.SharingStats().LeasesNoCandidate; got != before+1 {
		t.Fatalf("LeasesNoCandidate went %d -> %d, want +1", before, got)
	}
}

// Per-deploy opt-out removes a function from both sides of sharing.
func TestNoShareOptOut(t *testing.T) {
	for _, side := range []string{"lender", "renter"} {
		t.Run(side+" opted out", func(t *testing.T) {
			g := NewGateway(true)
			g.EnableSharing(testSharing())
			lf, rf := echoFn("lender", 20*time.Millisecond), echoFn("renter", 20*time.Millisecond)
			if side == "lender" {
				lf.NoShare = true
			} else {
				rf.NoShare = true
			}
			for _, fn := range []Function{lf, rf} {
				if err := g.Register(fn); err != nil {
					t.Fatal(err)
				}
			}
			defer g.Stop()

			postRec(t, g, "lender", "a")
			before := g.SharingStats().LeasesDenied
			if rec := postRec(t, g, "renter", "b"); rec.Header().Get(BootHeader) != "cold" {
				t.Fatalf("boot = %q, want cold (opt-out must block the lease)", rec.Header().Get(BootHeader))
			}
			if got := g.SharingStats().LeasesDenied; got != before+1 {
				t.Fatalf("LeasesDenied went %d -> %d, want +1", before, got)
			}
		})
	}
}

// The same-image default refuses cross-image leases; ModeAny bridges
// them. Memory classes gate both ways.
func TestSharingPolicyGates(t *testing.T) {
	boot := func(t *testing.T, cfg SharingConfig, lender, renter Function) string {
		t.Helper()
		g := NewGateway(true)
		g.EnableSharing(cfg)
		for _, fn := range []Function{lender, renter} {
			if err := g.Register(fn); err != nil {
				t.Fatal(err)
			}
		}
		defer g.Stop()
		postRec(t, g, lender.Name, "a")
		return postRec(t, g, renter.Name, "b").Header().Get(BootHeader)
	}
	py := func(name string, mem int) Function {
		fn := echoFn(name, 20*time.Millisecond)
		fn.Image, fn.MemoryMB = "python:3.8", mem
		return fn
	}
	node := echoFn("renter", 20*time.Millisecond)
	node.Image = "node:10"

	anyMode := testSharing()
	anyMode.Policy = sharing.Policy{Mode: sharing.ModeAny}

	if got := boot(t, testSharing(), py("lender", 0), node); got != "cold" {
		t.Fatalf("cross-image under same-image policy: boot = %q, want cold", got)
	}
	if got := boot(t, anyMode, py("lender", 0), node); got != "rented" {
		t.Fatalf("cross-image under any policy: boot = %q, want rented", got)
	}
	if got := boot(t, testSharing(), py("lender", 512), py("renter", 1024)); got != "cold" {
		t.Fatalf("renter exceeding lender memory class: boot = %q, want cold", got)
	}
	if got := boot(t, testSharing(), py("lender", 512), py("renter", 256)); got != "rented" {
		t.Fatalf("renter inside lender memory class: boot = %q, want rented", got)
	}
}

// A neutral shard lends only surplus above its own forecast; a shard
// classified renter never lends at all.
func TestLenderReservesAndRenterNeverLends(t *testing.T) {
	g := NewGateway(true)
	g.EnableSharing(testSharing())
	// One lender and a fresh probe function per step: a probe's own
	// cold boot would otherwise become a lendable instance (or a warm
	// hit) and contaminate the next step.
	for _, n := range []string{"lender", "p1", "p2", "p3"} {
		if err := g.Register(echoFn(n, 20*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Stop()
	// retire takes a probe's instance out of the candidate set after
	// its step, leaving only the lender shard to scan.
	retire := func(name string) {
		s := g.shard(name)
		s.mu.Lock()
		for _, inst := range s.idle {
			inst.tainted.Store(true)
		}
		s.mu.Unlock()
	}

	postRec(t, g, "lender", "a")
	ls := g.shard("lender")

	// Forecast says the lender needs its one idle instance: reserved.
	ls.mu.Lock()
	ls.ctl.forecast = 1
	ls.mu.Unlock()
	if rec := postRec(t, g, "p1", "b"); rec.Header().Get(BootHeader) != "cold" {
		t.Fatalf("boot = %q, want cold (neutral lender reserves its forecast)", rec.Header().Get(BootHeader))
	}
	retire("p1")

	// Forecast drops to zero but the function is classified a renter:
	// still untouchable.
	ls.mu.Lock()
	ls.ctl.forecast = 0
	for i := 0; i < 6; i++ {
		ls.ctl.share.Observe(0, 5, 0) // persistently under-forecasted
	}
	if ls.ctl.share.Role() != sharing.RoleRenter {
		ls.mu.Unlock()
		t.Fatal("setup: expected renter classification")
	}
	ls.mu.Unlock()
	if rec := postRec(t, g, "p2", "c"); rec.Header().Get(BootHeader) != "cold" {
		t.Fatalf("boot = %q, want cold (renter shards never lend)", rec.Header().Get(BootHeader))
	}
	retire("p2")

	// Back to a classified lender via direct classifier feed: the lease
	// now goes through even though forecast == idle, because lenders
	// reserve nothing.
	ls.mu.Lock()
	ls.ctl.share = *sharing.NewClassifier(sharing.ClassifierConfig{})
	for i := 0; i < 6; i++ {
		ls.ctl.share.Observe(5, 0, 1) // persistently over-forecasted
	}
	if ls.ctl.share.Role() != sharing.RoleLender {
		ls.mu.Unlock()
		t.Fatal("setup: expected lender classification")
	}
	ls.ctl.forecast = 1
	ls.mu.Unlock()
	if rec := postRec(t, g, "p3", "d"); rec.Header().Get(BootHeader) != "rented" {
		t.Fatalf("boot = %q, want rented (classified lenders reserve nothing)", rec.Header().Get(BootHeader))
	}
}

// The idle grace keeps just-parked instances out of the lending pool.
func TestIdleGraceBlocksFreshInstances(t *testing.T) {
	g := NewGateway(true)
	cfg := testSharing()
	cfg.IdleGrace = time.Hour
	g.EnableSharing(cfg)
	for _, n := range []string{"lender", "renter"} {
		if err := g.Register(echoFn(n, 20*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Stop()

	postRec(t, g, "lender", "a")
	if rec := postRec(t, g, "renter", "b"); rec.Header().Get(BootHeader) != "cold" {
		t.Fatalf("boot = %q, want cold (instance younger than the idle grace)", rec.Header().Get(BootHeader))
	}
}

// The control loop classifies from real forecast errors and surfaces
// roles in the prediction traces, the stats block and the population
// gauges.
func TestClassifierDrivenByControlLoop(t *testing.T) {
	g := NewGateway(true)
	cfg := testSharing()
	// The ES forecast decays toward zero alongside the vanished demand,
	// so the steady-state over-forecast error is modest; lower the lend
	// threshold so the classification flips within a few ticks.
	cfg.Classifier = sharing.ClassifierConfig{LendThreshold: 0.4}
	g.EnableSharing(cfg)
	pf, err := PredictorFactory("es")
	if err != nil {
		t.Fatal(err)
	}
	g.EnableControl(ControlConfig{Interval: time.Hour, NewPredictor: pf, MaxWarm: 1})
	if err := g.Register(echoFn("f", 0)); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	s := g.shard("f")
	tick := func(peak int) {
		s.mu.Lock()
		s.ctl.peak = peak
		s.mu.Unlock()
		g.controlOnce("f", g.nowFn())
	}
	// Demand appears, the forecast learns it, then demand vanishes:
	// the forecast overshoots reality tick after tick — a lender.
	for i := 0; i < 3; i++ {
		tick(4)
	}
	for i := 0; i < 6; i++ {
		tick(0)
	}
	tr, ok := g.PredictionTraces()["f"]
	if !ok {
		t.Fatal("no prediction trace for f")
	}
	if tr.Role != "lender" {
		t.Fatalf("role = %q (forecast error %.2f), want lender", tr.Role, tr.ForecastError)
	}
	if tr.ForecastError <= 0 {
		t.Fatalf("forecast error = %.2f, want positive (over-forecasted)", tr.ForecastError)
	}
	sh := g.SharingStats()
	if sh.Lenders != 1 || sh.Roles["f"] != "lender" {
		t.Fatalf("sharing stats = %+v, want one lender", sh)
	}
}

// Concurrent renters and lenders churning across functions must stay
// race-free (run under -race) and account every request exactly once.
func TestSharingChurnRace(t *testing.T) {
	g := NewGateway(true)
	g.EnableSharing(testSharing())
	const fns = 3
	for i := 0; i < fns; i++ {
		if err := g.Register(echoFn(fmt.Sprintf("f%d", i), 2*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Stop()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("f%d", (w+i)%fns)
				rec := httptest.NewRecorder()
				g.handle(rec, httptest.NewRequest("POST", "/function/"+name, strings.NewReader("x")))
				if rec.Code != 200 {
					t.Errorf("status %d", rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := g.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("Requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Reused+st.ColdStarts != st.Requests {
		t.Fatalf("Reused(%d) + ColdStarts(%d) != Requests(%d)", st.Reused, st.ColdStarts, st.Requests)
	}
	if st.RentedBoots > st.ColdStarts {
		t.Fatalf("RentedBoots(%d) > ColdStarts(%d)", st.RentedBoots, st.ColdStarts)
	}
	sh := g.SharingStats()
	if int(sh.LeasesGranted) != st.RentedBoots {
		t.Fatalf("LeasesGranted(%d) != RentedBoots(%d)", sh.LeasesGranted, st.RentedBoots)
	}
}
