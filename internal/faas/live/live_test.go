package live

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoFn(name string, cold time.Duration) Function {
	return Function{
		Name: name,
		Handler: func(body []byte) ([]byte, error) {
			return append([]byte("echo:"), body...), nil
		},
		ColdStart: cold,
	}
}

func post(t *testing.T, url, body string) (string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	return string(data), resp.Header
}

func TestGatewayRoundTrip(t *testing.T) {
	g := NewGateway(true)
	if err := g.Register(echoFn("echo", 10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	body, hdr := post(t, base+"/function/echo", "hello")
	if body != "echo:hello" {
		t.Fatalf("body = %q", body)
	}
	if hdr.Get("X-Hotc-Reused") != "false" {
		t.Fatal("first request should be cold")
	}
	body, hdr = post(t, base+"/function/echo", "again")
	if body != "echo:again" {
		t.Fatalf("body = %q", body)
	}
	if hdr.Get("X-Hotc-Reused") != "true" {
		t.Fatal("second request should reuse")
	}
	st := g.Stats()
	if st.Requests != 2 || st.ColdStarts != 1 || st.Reused != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReuseEliminatesColdLatency(t *testing.T) {
	const cold = 150 * time.Millisecond
	g := NewGateway(true)
	g.Register(echoFn("echo", cold))
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	t0 := time.Now()
	post(t, base+"/function/echo", "x")
	coldLat := time.Since(t0)
	t1 := time.Now()
	post(t, base+"/function/echo", "x")
	warmLat := time.Since(t1)

	if coldLat < cold {
		t.Fatalf("cold latency %v below configured cold start %v", coldLat, cold)
	}
	if warmLat > coldLat/2 {
		t.Fatalf("warm latency %v not clearly below cold %v", warmLat, coldLat)
	}
}

func TestNoReuseAlwaysCold(t *testing.T) {
	g := NewGateway(false)
	g.Register(echoFn("echo", 5*time.Millisecond))
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	for i := 0; i < 3; i++ {
		_, hdr := post(t, base+"/function/echo", "x")
		if hdr.Get("X-Hotc-Reused") != "false" {
			t.Fatalf("request %d reused under no-reuse gateway", i)
		}
	}
	if g.WarmInstances("echo") != 0 {
		t.Fatal("no-reuse gateway kept instances warm")
	}
	st := g.Stats()
	if st.ColdStarts != 3 || st.Reused != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownFunction404(t *testing.T) {
	g := NewGateway(true)
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	resp, err := http.Post(base+"/function/ghost", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	g := NewGateway(true)
	g.Register(Function{
		Name:    "boom",
		Handler: func([]byte) ([]byte, error) { return nil, fmt.Errorf("kaput") },
	})
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	resp, err := http.Post(base+"/function/boom", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("kaput")) {
		t.Fatalf("error body = %q", body)
	}
}

func TestRegisterValidation(t *testing.T) {
	g := NewGateway(true)
	if err := g.Register(Function{}); err == nil {
		t.Fatal("invalid function registered")
	}
}

func TestConcurrentRequestsGetDistinctInstances(t *testing.T) {
	g := NewGateway(true)
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	g.Register(Function{
		Name: "slow",
		Handler: func(b []byte) ([]byte, error) {
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(50 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return b, nil
		},
	})
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/function/slow", "text/plain", strings.NewReader("x"))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if maxInFlight < 2 {
		t.Fatalf("expected concurrent executions, max in flight = %d", maxInFlight)
	}
	if g.Stats().Requests != 4 {
		t.Fatalf("requests = %d", g.Stats().Requests)
	}
	// All four instances returned to the warm pool.
	if got := g.WarmInstances("slow"); got != 4 {
		t.Fatalf("warm instances = %d, want 4", got)
	}
}

// Regression: an in-flight request that finishes after Stop must tear
// its instance down, not re-append it into the freshly-reset idle map
// where its watchdog http.Server would leak forever. The handler
// outlasts Stop's 1s shutdown grace so release() runs strictly after
// Stop returned.
func TestReleaseAfterStopTearsDownInstance(t *testing.T) {
	g := NewGateway(true)
	g.Register(Function{
		Name: "slow",
		Handler: func(b []byte) ([]byte, error) {
			time.Sleep(1300 * time.Millisecond)
			return b, nil
		},
	})
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()

	// Boot one instance and let it return to the pool, then capture its
	// watchdog address.
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.Post(base+"/function/slow", "text/plain", strings.NewReader("x"))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait until the request holds the (only) instance in flight.
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Requests == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // instance booted, handler sleeping

	g.Stop() // returns after ~1s grace, before the handler finishes
	<-reqDone

	// The late release must not have resurrected the instance.
	waitDeadline := time.Now().Add(3 * time.Second)
	for g.WarmInstances("slow") != 0 {
		if time.Now().After(waitDeadline) {
			t.Fatalf("late release re-pooled an instance into a stopped gateway: warm = %d",
				g.WarmInstances("slow"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And its watchdog goroutines must be gone: the goroutine count
	// returns to (about) the pre-test baseline.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after stop+release",
				before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Regression: Stop must not hold the gateway lock while shutting
// instances down serially — N warm instances with active connections
// would take up to N seconds and block every other gateway method.
// Three pinned instances must shut down concurrently (~1s), not
// serially (~3s).
func TestStopShutsPinnedInstancesConcurrently(t *testing.T) {
	g := NewGateway(true)
	g.Register(Function{
		Name: "slow",
		Handler: func(b []byte) ([]byte, error) {
			time.Sleep(50 * time.Millisecond)
			return b, nil
		},
	})
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	// Warm three instances via overlapping requests.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/function/slow", "text/plain", strings.NewReader("x"))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := g.WarmInstances("slow"); got != 3 {
		t.Fatalf("warm = %d, want 3", got)
	}

	// Pin each watchdog with a half-sent request so its Shutdown blocks
	// for the full 1s grace.
	s := g.shard("slow")
	s.mu.Lock()
	addrs := make([]string, 0, 3)
	for _, inst := range s.idle {
		addrs = append(addrs, inst.addr)
	}
	s.mu.Unlock()
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("POST / HTTP/1.1\r\nHost: x\r\n")); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	g.Stop()
	if took := time.Since(start); took > 2500*time.Millisecond {
		t.Fatalf("Stop took %v: instances shut down serially, not concurrently", took)
	}
}

// Regression: the gateway must forward the watchdog's response headers
// — previously only status and body were copied, dropping Content-Type
// and friends. The watchdog's error path sets X-Content-Type-Options,
// which the gateway cannot re-derive from the body.
func TestGatewayForwardsWatchdogHeaders(t *testing.T) {
	g := NewGateway(true)
	g.Register(Function{
		Name:    "boom",
		Handler: func([]byte) ([]byte, error) { return nil, fmt.Errorf("kaput") },
	})
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	resp, err := http.Post(base+"/function/boom", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Content-Type-Options"); got != "nosniff" {
		t.Fatalf("X-Content-Type-Options = %q: watchdog headers dropped", got)
	}
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("Content-Type = %q, want the watchdog's text/plain", got)
	}
	if resp.Header.Get("X-Hotc-Reused") == "" {
		t.Fatal("gateway's own header missing")
	}
}

func TestStopShutsInstancesDown(t *testing.T) {
	g := NewGateway(true)
	g.Register(echoFn("echo", 0))
	base, err := g.Start()
	if err != nil {
		t.Fatal(err)
	}
	post(t, base+"/function/echo", "x")
	g.Stop()
	if g.WarmInstances("echo") != 0 {
		t.Fatal("instances survived Stop")
	}
}
