package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"hotc/internal/admission"
	"hotc/internal/image"
	"hotc/internal/obs"
	"hotc/internal/predictor"
	"hotc/internal/sharing"
)

// PoolConfig tunes the daemon gateway's warm-instance management,
// mirroring the simulated pool's knobs on the real-socket path.
type PoolConfig struct {
	// IdleTTL stops instances idle longer than this (0 = keep forever)
	// — the keep-alive enforced by the gateway's janitor.
	IdleTTL time.Duration
	// MaxIdlePerFunction caps warm instances per function (0 = no
	// cap), enforced continuously with oldest-first eviction.
	MaxIdlePerFunction int
	// ReapInterval is how often the janitor scans (default 1s).
	ReapInterval time.Duration
	// ControlInterval is the adaptive controller's period (default 2s
	// when a predictor is set).
	ControlInterval time.Duration
	// NewPredictor arms adaptive live-container control: each function
	// gets its own demand predictor and a controller goroutine that
	// prewarms or retires warm instances towards the forecast. nil
	// disables prediction. Use PredictorFactory to resolve names.
	NewPredictor func() predictor.Predictor
	// Headroom is added to every forecast before provisioning, as a
	// fraction (0.1 = +10%). Default 0.
	Headroom float64
	// BreakerThreshold arms the per-function circuit breaker: after
	// this many consecutive boot/proxy failures requests fast-fail with
	// 503 until the open window elapses. 0 disables breaking.
	BreakerThreshold int
	// BreakerOpenFor is the open window before a half-open probe
	// (default 30s when a threshold is set).
	BreakerOpenFor time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// daemon mux. Off by default: profiling endpoints expose internals
	// and should be opted into.
	EnablePprof bool
	// MaxBodyBytes bounds request bodies at the gateway and every
	// watchdog (0 = unlimited): oversized requests get HTTP 413
	// instead of ballooning a watchdog's memory.
	MaxBodyBytes int64
	// MaxInFlight caps concurrently executing requests per function;
	// past it arrivals wait in the admission queue. 0 disables
	// admission control (the pre-overload-tier behaviour).
	MaxInFlight int
	// QueueDepth caps waiting requests per tenant per function; past
	// it arrivals get 429 + Retry-After.
	QueueDepth int
	// DefaultDeadline is applied to requests without an explicit
	// X-Hotc-Deadline-Ms header (0 = none): queued requests past their
	// deadline are shed, in-flight backend work is canceled at it.
	DefaultDeadline time.Duration
	// TenantWeights sets admission fair-dispatch quanta per tenant
	// (unlisted tenants weigh 1).
	TenantWeights map[string]int
	// MemoryBudget bounds estimated warm-instance memory across all
	// functions, in bytes (0 = unlimited); the janitor reclaims from
	// the biggest holders first when exceeded.
	MemoryBudget int64
	// InstanceMemBytes overrides the per-instance estimate backing the
	// budget (default 64 MiB).
	InstanceMemBytes int64
	// DisableTracing turns live request tracing off. Tracing is on by
	// default: its sampled-out path costs a handful of atomics per
	// request and nothing on the pool hot path.
	DisableTracing bool
	// TraceCapacity sizes the span ring behind /system/trace (default
	// 2048).
	TraceCapacity int
	// TraceSampleRate is the probabilistic keep rate for unremarkable
	// successful spans (0 = the 1% default; negative = keep only
	// errors, sheds, cold starts and slow requests).
	TraceSampleRate float64
	// TraceSlowThreshold always keeps spans at or above this latency
	// (0 = the 500ms default; negative disables the slow rule).
	TraceSlowThreshold time.Duration
	// SLOLatency arms the latency objective: a 2xx request slower than
	// this is a bad event against a p99 target (0 = objective off).
	SLOLatency time.Duration
	// SLOColdStartPct arms the cold-start objective: at most this
	// percentage of served requests may pay a cold start (0 = off).
	SLOColdStartPct float64
	// Prefork arms the generic pre-forked watchdog pool: cold starts
	// specialize an already-running generic instance and pay only the
	// function-specific share of boot.
	Prefork bool
	// PreforkSize is the generic pool's target (default 4 when Prefork
	// is set).
	PreforkSize int
	// PreforkBoot is the delay one generic boot pays, always off the
	// request path (0 = instant).
	PreforkBoot time.Duration
	// DisableLayerCache turns the host layer cache off: every boot
	// with an Image pays its full pull phase. The cache is on by
	// default — sharing base layers is the point of image modelling.
	DisableLayerCache bool
	// LayerCacheCapMB bounds the layer cache with LRU eviction (0 =
	// unbounded).
	LayerCacheCapMB float64
	// BootPullFrac, BootRuntimeFrac and BootAppFrac split ColdStart
	// into the §III.B phases for functions without explicit ones. All
	// zero = the 55/30/15 defaults.
	BootPullFrac, BootRuntimeFrac, BootAppFrac float64
	// Share arms inter-function sharing: on a warm miss the gateway
	// leases an idle instance from another function before paying any
	// boot.
	Share bool
	// SharePolicy selects the compatibility rule ("same-image", the
	// default, or "any"); see sharing.ParseMode. Unknown values fall
	// back to same-image — the CLIs validate before they get here.
	SharePolicy string
	// ShareWipe is the volume-cleanup cost each lease pays (default
	// 5ms).
	ShareWipe time.Duration
	// ShareIdleGrace is the minimum idle age before an instance may be
	// lent (default 250ms; negative = none).
	ShareIdleGrace time.Duration
}

// Daemon is the long-running HotC gateway server: the live gateway
// plus adaptive control, idle-instance expiry and an HTTP management
// API.
//
// Routes:
//
//	POST /function/{name}          invoke a function
//	GET  /system/functions         list deployed functions
//	POST /system/functions         deploy {"name","handler","coldStartMs"}
//	GET  /system/stats             gateway counters, warm pool sizes, forecasts
//	GET  /system/predictions       per-function controller prediction traces
//
// Handlers are chosen from a built-in registry by name (this is a
// demonstration daemon; it does not execute arbitrary code).
type Daemon struct {
	gw  *Gateway
	cfg PoolConfig
	reg *obs.Registry
	// images resolves DeploySpec.Image references (the standard
	// catalog); the gateway shares it for boot-time layer admission.
	images *image.Registry

	// slo is the burn-rate monitor behind /system/slo and hotc_slo_*;
	// nil when no objective is armed.
	slo *obs.SLOMonitor
	// started anchors hotc_uptime_seconds, refreshed on each scrape.
	started time.Time
	uptime  *obs.Gauge

	mu       sync.Mutex
	deployed []string
}

// Version labels hotc_build_info; release builds override it via
// -ldflags "-X hotc/internal/faas/live.Version=v1.2.3".
var Version = "dev"

// Builtin handler names deployable through the API.
func Builtins() []string { return []string{"echo", "qr", "sleep", "upper", "wordcount"} }

// builtinFunction resolves a builtin by name into its handler fields
// (the caller fills in Name and ColdStart). echo, upper and wordcount
// are streaming: they process the body chunk-wise through pooled
// buffers and never hold the full payload. qr stays a []byte handler
// deliberately — it keeps the pooled compat shim exercised on the
// daemon path.
func builtinFunction(name string) (Function, error) {
	switch name {
	case "echo":
		return Function{Stream: func(r io.Reader, w io.Writer) error {
			_, err := copyPooled(w, r)
			return err
		}}, nil
	case "upper":
		return Function{Stream: upperStream}, nil
	case "wordcount":
		return Function{Stream: wordcountStream}, nil
	case "qr":
		return Function{Handler: func(b []byte) ([]byte, error) {
			s := strings.TrimSpace(string(b))
			if s == "" {
				return nil, fmt.Errorf("empty input")
			}
			return []byte("QR(" + s + ")"), nil
		}}, nil
	case "sleep":
		// Constant-service-time handler for load benches: the body is
		// the service time in milliseconds (default 20). It occupies
		// its instance for the whole interval, which is what makes
		// saturation reproducible — throughput is instances/latency,
		// not CPU-bound.
		return Function{Handler: func(b []byte) ([]byte, error) {
			ms := 20
			if s := strings.TrimSpace(string(b)); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil || n < 0 || n > 10_000 {
					return nil, fmt.Errorf("sleep: want milliseconds 0..10000, got %q", s)
				}
				ms = n
			}
			time.Sleep(time.Duration(ms) * time.Millisecond)
			return []byte(fmt.Sprintf("slept %dms", ms)), nil
		}}, nil
	default:
		return Function{}, fmt.Errorf("live: unknown builtin handler %q (have %v)", name, Builtins())
	}
}

// upperStream uppercases the body chunk-wise through a pooled buffer:
// ASCII chunks (the common case) are rewritten in place with zero
// allocations; chunks containing multi-byte runes fall back to
// bytes.ToUpper, with an incomplete trailing rune carried into the
// next read so no rune is ever split across a chunk boundary.
func upperStream(r io.Reader, w io.Writer) error {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	buf := *bp
	keep := 0
	for {
		n, err := r.Read(buf[keep:])
		n += keep
		keep = 0
		chunk := buf[:n]
		if err == nil {
			// A trailing incomplete rune waits for its continuation
			// bytes — even when it is all we have (tiny reads).
			if tail := incompleteRuneTail(chunk); tail > 0 {
				keep = tail
				chunk = chunk[:n-tail]
			}
		}
		if len(chunk) > 0 {
			out := chunk
			if asciiOnly(chunk) {
				upperASCII(chunk)
			} else {
				out = bytes.ToUpper(chunk)
			}
			if _, werr := w.Write(out); werr != nil {
				return werr
			}
		}
		if keep > 0 {
			copy(buf, buf[n-keep:n])
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// incompleteRuneTail reports how many trailing bytes of p form the
// start of a UTF-8 rune whose continuation bytes have not arrived yet
// (0 when p ends on a rune boundary or in bytes that can never
// complete a rune).
func incompleteRuneTail(p []byte) int {
	for i := 1; i <= utf8.UTFMax && i <= len(p); i++ {
		b := p[len(p)-i]
		if b < utf8.RuneSelf {
			return 0 // ASCII: a boundary
		}
		if b&0xC0 == 0xC0 { // leading byte of a multi-byte rune
			var need int
			switch {
			case b&0xE0 == 0xC0:
				need = 2
			case b&0xF0 == 0xE0:
				need = 3
			case b&0xF8 == 0xF0:
				need = 4
			default:
				return 0 // invalid lead byte: pass through as-is
			}
			if i < need {
				return i // rune truncated at the chunk end
			}
			return 0
		}
		// 0b10xxxxxx continuation byte: keep scanning backwards.
	}
	return 0
}

func asciiOnly(p []byte) bool {
	for _, b := range p {
		if b >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

func upperASCII(p []byte) {
	for i, b := range p {
		if 'a' <= b && b <= 'z' {
			p[i] = b - ('a' - 'A')
		}
	}
}

// wordcountStream counts whitespace-separated words without ever
// holding more than one token: a bufio scanner over a pooled buffer,
// strconv.Itoa for the allocation-free reply.
func wordcountStream(r io.Reader, w io.Writer) error {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	sc := bufio.NewScanner(r)
	sc.Buffer(*bp, bufio.MaxScanTokenSize)
	sc.Split(bufio.ScanWords)
	count := 0
	for sc.Scan() {
		count++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	_, err := io.WriteString(w, strconv.Itoa(count))
	return err
}

// NewDaemon wraps a reusing gateway with adaptive control, pool
// management, a metrics registry and (optionally) a circuit breaker.
func NewDaemon(cfg PoolConfig) *Daemon {
	d := &Daemon{
		gw:      NewGateway(true),
		cfg:     cfg,
		reg:     obs.New(),
		images:  image.StandardCatalog(),
		started: time.Now(),
	}
	d.gw.Instrument(d.reg)
	d.gw.SetMaxBodyBytes(cfg.MaxBodyBytes)
	var cache *image.Cache
	if !cfg.DisableLayerCache {
		if cfg.LayerCacheCapMB > 0 {
			cache = image.NewCacheWithCap(cfg.LayerCacheCapMB)
		} else {
			cache = image.NewCache()
		}
	}
	d.gw.EnableColdPath(ColdPathConfig{
		Registry:    d.images,
		Cache:       cache,
		PullFrac:    cfg.BootPullFrac,
		RuntimeFrac: cfg.BootRuntimeFrac,
		AppFrac:     cfg.BootAppFrac,
		Prefork:     cfg.Prefork,
		PreforkSize: cfg.PreforkSize,
		PreforkBoot: cfg.PreforkBoot,
	})
	d.reg.GaugeVec("hotc_build_info",
		"Build metadata: constant 1, labeled by gateway version and Go runtime version.",
		"version", "go_version").With(Version, runtime.Version()).Set(1)
	d.uptime = d.reg.Gauge("hotc_uptime_seconds",
		"Seconds since the daemon started, refreshed on scrape.")
	if !cfg.DisableTracing {
		d.gw.EnableTracing(TracingConfig{
			Capacity:      cfg.TraceCapacity,
			SampleRate:    cfg.TraceSampleRate,
			SlowThreshold: cfg.TraceSlowThreshold,
		})
	}
	if cfg.SLOLatency > 0 || cfg.SLOColdStartPct > 0 {
		d.slo = obs.NewSLOMonitor(obs.SLOConfig{
			LatencyThreshold: cfg.SLOLatency,
			ColdStartBudget:  cfg.SLOColdStartPct / 100,
		})
		d.slo.Instrument(d.reg)
		d.gw.SetSLO(d.slo)
	}
	if cfg.Share {
		mode, err := sharing.ParseMode(cfg.SharePolicy)
		if err != nil {
			mode = sharing.ModeSameImage
		}
		d.gw.EnableSharing(SharingConfig{
			Policy:    sharing.Policy{Mode: mode},
			Wipe:      cfg.ShareWipe,
			IdleGrace: cfg.ShareIdleGrace,
		})
	}
	d.gw.EnableControl(ControlConfig{
		Interval:        cfg.ControlInterval,
		NewPredictor:    cfg.NewPredictor,
		Headroom:        cfg.Headroom,
		KeepAlive:       cfg.IdleTTL,
		MaxWarm:         cfg.MaxIdlePerFunction,
		JanitorInterval: cfg.ReapInterval,
	})
	if cfg.BreakerThreshold > 0 {
		d.gw.EnableBreaker(cfg.BreakerThreshold, cfg.BreakerOpenFor)
	}
	if cfg.MaxInFlight > 0 || cfg.DefaultDeadline > 0 || cfg.MemoryBudget > 0 {
		d.gw.EnableAdmission(AdmissionConfig{
			MaxInFlight:      cfg.MaxInFlight,
			QueueDepth:       cfg.QueueDepth,
			DefaultDeadline:  cfg.DefaultDeadline,
			TenantWeights:    cfg.TenantWeights,
			MemoryBudget:     cfg.MemoryBudget,
			InstanceMemBytes: cfg.InstanceMemBytes,
		})
	}
	return d
}

// Registry exposes the daemon's metrics registry (served at /metrics).
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// DeploySpec is the management-API deployment payload.
type DeploySpec struct {
	// Name routes requests.
	Name string `json:"name"`
	// Handler is a builtin handler name; see Builtins.
	Handler string `json:"handler"`
	// ColdStartMs is the artificial instance boot delay, decomposed
	// into pull/runtime-init/app-init by the daemon's phase split
	// unless the explicit phase fields below are set.
	ColdStartMs int `json:"coldStartMs"`
	// Image, optional, names the function's container image in the
	// standard catalog ("python:3.8", "node:10", ...): boots then skip
	// the pull share of layers already cached on the host.
	Image string `json:"image,omitempty"`
	// PullMs, RuntimeInitMs and AppInitMs, when any is set, spell the
	// boot phases out explicitly instead of splitting ColdStartMs.
	PullMs        int `json:"pullMs,omitempty"`
	RuntimeInitMs int `json:"runtimeInitMs,omitempty"`
	AppInitMs     int `json:"appInitMs,omitempty"`
	// Shareable is the per-deploy sharing opt-out (default true):
	// false keeps this function's instances out of inter-function
	// sharing on both sides.
	Shareable *bool `json:"shareable,omitempty"`
	// MemoryMB declares the function's memory class for the sharing
	// policy (0 = unconstrained).
	MemoryMB int `json:"memoryMB,omitempty"`
}

// Deploy registers a function from a spec.
func (d *Daemon) Deploy(spec DeploySpec) error {
	fn, err := builtinFunction(spec.Handler)
	if err != nil {
		return err
	}
	if spec.ColdStartMs < 0 {
		return fmt.Errorf("live: negative cold start")
	}
	if spec.PullMs < 0 || spec.RuntimeInitMs < 0 || spec.AppInitMs < 0 {
		return fmt.Errorf("live: negative boot phase")
	}
	if spec.Image != "" {
		// An unknown image would silently degrade to no-image boots
		// (full pull every time); refuse it up front instead.
		if _, err := d.images.Lookup(spec.Image); err != nil {
			return err
		}
	}
	fn.Name = spec.Name
	fn.ColdStart = time.Duration(spec.ColdStartMs) * time.Millisecond
	fn.Image = spec.Image
	fn.Pull = time.Duration(spec.PullMs) * time.Millisecond
	fn.RuntimeInit = time.Duration(spec.RuntimeInitMs) * time.Millisecond
	fn.AppInit = time.Duration(spec.AppInitMs) * time.Millisecond
	fn.NoShare = spec.Shareable != nil && !*spec.Shareable
	if spec.MemoryMB < 0 {
		return fmt.Errorf("live: negative memoryMB")
	}
	fn.MemoryMB = spec.MemoryMB
	if err := d.gw.Register(fn); err != nil {
		return err
	}
	d.mu.Lock()
	d.deployed = append(d.deployed, spec.Name)
	sort.Strings(d.deployed)
	d.mu.Unlock()
	return nil
}

// Start binds the daemon to a random loopback port and begins the
// control loops. It returns the base URL.
func (d *Daemon) Start() (string, error) {
	return d.StartOn("127.0.0.1:0")
}

// StartOn binds the daemon to an explicit address. The gateway's
// janitor and per-function controllers launch with it.
func (d *Daemon) StartOn(addr string) (string, error) {
	return d.gw.startOn(addr, d.routes())
}

// Stop shuts down the HTTP server, the control loops and all warm
// instances.
func (d *Daemon) Stop() {
	d.gw.Stop()
}

// Stats reports gateway counters.
func (d *Daemon) Stats() Stats { return d.gw.Stats() }

// WarmInstances reports the warm pool size for a function.
func (d *Daemon) WarmInstances(name string) int { return d.gw.WarmInstances(name) }

func (d *Daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", d.gw.handle)
	mux.HandleFunc("/system/functions", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			d.mu.Lock()
			names := append([]string(nil), d.deployed...)
			d.mu.Unlock()
			writeJSON(w, names)
		case http.MethodPost:
			var spec DeploySpec
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := d.Deploy(spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusAccepted)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/system/stats", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		names := append([]string(nil), d.deployed...)
		d.mu.Unlock()
		warm := map[string]int{}
		for _, n := range names {
			warm[n] = d.gw.WarmInstances(n)
		}
		// resilience, warmAges, forecast and admission share their
		// source of truth with the /metrics endpoint (the same gateway
		// counters, idle lists, controller state and queues).
		writeJSON(w, struct {
			Version       string                     `json:"version"`
			GoVersion     string                     `json:"goVersion"`
			UptimeSeconds float64                    `json:"uptimeSeconds"`
			Draining      bool                       `json:"draining"`
			Stats         Stats                      `json:"stats"`
			Warm          map[string]int             `json:"warmInstances"`
			Forecast      map[string]float64         `json:"forecast"`
			Resilience    map[string]int             `json:"resilience"`
			WarmAges      map[string][]float64       `json:"warmAgeSeconds"`
			Admission     map[string]admission.Stats `json:"admission,omitempty"`
			WarmMemory    WarmMemoryStats            `json:"warmMemory,omitempty"`
			ColdPath      ColdPathStats              `json:"coldPath"`
			Sharing       SharingStats               `json:"sharing"`
			Trace         TraceStats                 `json:"trace"`
		}{Version, runtime.Version(), time.Since(d.started).Seconds(),
			d.gw.Draining(), d.gw.Stats(), warm, d.gw.Forecasts(),
			d.gw.ResilienceCounters(), d.gw.WarmAges(time.Now()),
			d.gw.AdmissionStats(), d.gw.WarmMemory(), d.gw.ColdPathStats(),
			d.gw.SharingStats(), d.gw.TraceStats()})
	})
	mux.HandleFunc("/system/drain", func(w http.ResponseWriter, r *http.Request) {
		// POST drains (stop accepting placements, finish in-flight),
		// DELETE undrains, GET reports. The flag also surfaces in
		// /system/stats, which is what the router's poller watches.
		switch r.Method {
		case http.MethodPost:
			d.gw.SetDraining(true)
		case http.MethodDelete:
			d.gw.SetDraining(false)
		case http.MethodGet:
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, struct {
			Draining bool `json:"draining"`
		}{d.gw.Draining()})
	})
	mux.HandleFunc("/system/trace", func(w http.ResponseWriter, r *http.Request) {
		spans := d.gw.TraceSpans()
		if v := r.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(spans) {
				spans = spans[:n]
			}
		}
		if r.URL.Query().Get("format") == "jsonl" {
			// The same JSONL shape the sim writes and `hotc-trace
			// spans` reads: one span per line.
			w.Header().Set("Content-Type", "application/x-ndjson")
			obs.WriteSpans(w, spans)
			return
		}
		writeJSON(w, struct {
			Trace TraceStats `json:"trace"`
			Spans []obs.Span `json:"spans"`
		}{d.gw.TraceStats(), spans})
	})
	mux.HandleFunc("/system/slo", func(w http.ResponseWriter, r *http.Request) {
		if d.slo == nil {
			writeJSON(w, obs.SLOReport{})
			return
		}
		// Sync refreshes the hotc_slo_* gauges from the same pass that
		// builds the JSON, so the two views never disagree.
		writeJSON(w, d.slo.Sync())
	})
	mux.HandleFunc("/system/predictions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.gw.PredictionTraces())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Scrape-time refresh: uptime and the SLO burn-rate gauges are
		// computed views, made exactly as fresh as the scrape.
		d.uptime.Set(time.Since(d.started).Seconds())
		if d.slo != nil {
			d.slo.Sync()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.reg.WritePrometheus(w)
	})
	if d.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// reapOnce applies the keep-alive and cap policy once; tests call it
// with deterministic now values. The periodic scan is the gateway's
// janitor goroutine.
func (d *Daemon) reapOnce(now time.Time) {
	d.gw.janitorOnce(now)
}
