package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"hotc/internal/obs"
	"hotc/internal/predictor"
)

// PoolConfig tunes the daemon gateway's warm-instance management,
// mirroring the simulated pool's knobs on the real-socket path.
type PoolConfig struct {
	// IdleTTL stops instances idle longer than this (0 = keep forever)
	// — the keep-alive enforced by the gateway's janitor.
	IdleTTL time.Duration
	// MaxIdlePerFunction caps warm instances per function (0 = no
	// cap), enforced continuously with oldest-first eviction.
	MaxIdlePerFunction int
	// ReapInterval is how often the janitor scans (default 1s).
	ReapInterval time.Duration
	// ControlInterval is the adaptive controller's period (default 2s
	// when a predictor is set).
	ControlInterval time.Duration
	// NewPredictor arms adaptive live-container control: each function
	// gets its own demand predictor and a controller goroutine that
	// prewarms or retires warm instances towards the forecast. nil
	// disables prediction. Use PredictorFactory to resolve names.
	NewPredictor func() predictor.Predictor
	// Headroom is added to every forecast before provisioning, as a
	// fraction (0.1 = +10%). Default 0.
	Headroom float64
	// BreakerThreshold arms the per-function circuit breaker: after
	// this many consecutive boot/proxy failures requests fast-fail with
	// 503 until the open window elapses. 0 disables breaking.
	BreakerThreshold int
	// BreakerOpenFor is the open window before a half-open probe
	// (default 30s when a threshold is set).
	BreakerOpenFor time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// daemon mux. Off by default: profiling endpoints expose internals
	// and should be opted into.
	EnablePprof bool
}

// Daemon is the long-running HotC gateway server: the live gateway
// plus adaptive control, idle-instance expiry and an HTTP management
// API.
//
// Routes:
//
//	POST /function/{name}          invoke a function
//	GET  /system/functions         list deployed functions
//	POST /system/functions         deploy {"name","handler","coldStartMs"}
//	GET  /system/stats             gateway counters, warm pool sizes, forecasts
//	GET  /system/predictions       per-function controller prediction traces
//
// Handlers are chosen from a built-in registry by name (this is a
// demonstration daemon; it does not execute arbitrary code).
type Daemon struct {
	gw  *Gateway
	cfg PoolConfig
	reg *obs.Registry

	mu       sync.Mutex
	deployed []string
}

// Builtin handler names deployable through the API.
func Builtins() []string { return []string{"echo", "qr", "upper", "wordcount"} }

func builtinHandler(name string) (Handler, error) {
	switch name {
	case "echo":
		return func(b []byte) ([]byte, error) { return b, nil }, nil
	case "upper":
		return func(b []byte) ([]byte, error) { return []byte(strings.ToUpper(string(b))), nil }, nil
	case "wordcount":
		return func(b []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("%d", len(strings.Fields(string(b))))), nil
		}, nil
	case "qr":
		return func(b []byte) ([]byte, error) {
			s := strings.TrimSpace(string(b))
			if s == "" {
				return nil, fmt.Errorf("empty input")
			}
			return []byte("QR(" + s + ")"), nil
		}, nil
	default:
		return nil, fmt.Errorf("live: unknown builtin handler %q (have %v)", name, Builtins())
	}
}

// NewDaemon wraps a reusing gateway with adaptive control, pool
// management, a metrics registry and (optionally) a circuit breaker.
func NewDaemon(cfg PoolConfig) *Daemon {
	d := &Daemon{
		gw:  NewGateway(true),
		cfg: cfg,
		reg: obs.New(),
	}
	d.gw.Instrument(d.reg)
	d.gw.EnableControl(ControlConfig{
		Interval:        cfg.ControlInterval,
		NewPredictor:    cfg.NewPredictor,
		Headroom:        cfg.Headroom,
		KeepAlive:       cfg.IdleTTL,
		MaxWarm:         cfg.MaxIdlePerFunction,
		JanitorInterval: cfg.ReapInterval,
	})
	if cfg.BreakerThreshold > 0 {
		d.gw.EnableBreaker(cfg.BreakerThreshold, cfg.BreakerOpenFor)
	}
	return d
}

// Registry exposes the daemon's metrics registry (served at /metrics).
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// DeploySpec is the management-API deployment payload.
type DeploySpec struct {
	// Name routes requests.
	Name string `json:"name"`
	// Handler is a builtin handler name; see Builtins.
	Handler string `json:"handler"`
	// ColdStartMs is the artificial instance boot delay.
	ColdStartMs int `json:"coldStartMs"`
}

// Deploy registers a function from a spec.
func (d *Daemon) Deploy(spec DeploySpec) error {
	h, err := builtinHandler(spec.Handler)
	if err != nil {
		return err
	}
	if spec.ColdStartMs < 0 {
		return fmt.Errorf("live: negative cold start")
	}
	if err := d.gw.Register(Function{
		Name:      spec.Name,
		Handler:   h,
		ColdStart: time.Duration(spec.ColdStartMs) * time.Millisecond,
	}); err != nil {
		return err
	}
	d.mu.Lock()
	d.deployed = append(d.deployed, spec.Name)
	sort.Strings(d.deployed)
	d.mu.Unlock()
	return nil
}

// Start binds the daemon to a random loopback port and begins the
// control loops. It returns the base URL.
func (d *Daemon) Start() (string, error) {
	return d.StartOn("127.0.0.1:0")
}

// StartOn binds the daemon to an explicit address. The gateway's
// janitor and per-function controllers launch with it.
func (d *Daemon) StartOn(addr string) (string, error) {
	return d.gw.startOn(addr, d.routes())
}

// Stop shuts down the HTTP server, the control loops and all warm
// instances.
func (d *Daemon) Stop() {
	d.gw.Stop()
}

// Stats reports gateway counters.
func (d *Daemon) Stats() Stats { return d.gw.Stats() }

// WarmInstances reports the warm pool size for a function.
func (d *Daemon) WarmInstances(name string) int { return d.gw.WarmInstances(name) }

func (d *Daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", d.gw.handle)
	mux.HandleFunc("/system/functions", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			d.mu.Lock()
			names := append([]string(nil), d.deployed...)
			d.mu.Unlock()
			writeJSON(w, names)
		case http.MethodPost:
			var spec DeploySpec
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := d.Deploy(spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusAccepted)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/system/stats", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		names := append([]string(nil), d.deployed...)
		d.mu.Unlock()
		warm := map[string]int{}
		for _, n := range names {
			warm[n] = d.gw.WarmInstances(n)
		}
		// resilience, warmAges and forecast share their source of truth
		// with the /metrics endpoint (the same gateway counters, idle
		// lists and controller state).
		writeJSON(w, struct {
			Stats      Stats                `json:"stats"`
			Warm       map[string]int       `json:"warmInstances"`
			Forecast   map[string]float64   `json:"forecast"`
			Resilience map[string]int       `json:"resilience"`
			WarmAges   map[string][]float64 `json:"warmAgeSeconds"`
		}{d.gw.Stats(), warm, d.gw.Forecasts(), d.gw.ResilienceCounters(), d.gw.WarmAges(time.Now())})
	})
	mux.HandleFunc("/system/predictions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.gw.PredictionTraces())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.reg.WritePrometheus(w)
	})
	if d.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// reapOnce applies the keep-alive and cap policy once; tests call it
// with deterministic now values. The periodic scan is the gateway's
// janitor goroutine.
func (d *Daemon) reapOnce(now time.Time) {
	d.gw.janitorOnce(now)
}
