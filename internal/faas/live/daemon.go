package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"hotc/internal/obs"
)

// PoolConfig tunes the daemon gateway's warm-instance management,
// mirroring the simulated pool's knobs on the real-socket path.
type PoolConfig struct {
	// IdleTTL stops instances idle longer than this (0 = keep forever).
	IdleTTL time.Duration
	// MaxIdlePerFunction caps warm instances per function (0 = no cap).
	MaxIdlePerFunction int
	// ReapInterval is how often the reaper scans (default 1s when a
	// TTL is set).
	ReapInterval time.Duration
	// BreakerThreshold arms the per-function circuit breaker: after
	// this many consecutive boot/proxy failures requests fast-fail with
	// 503 until the open window elapses. 0 disables breaking.
	BreakerThreshold int
	// BreakerOpenFor is the open window before a half-open probe
	// (default 30s when a threshold is set).
	BreakerOpenFor time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// daemon mux. Off by default: profiling endpoints expose internals
	// and should be opted into.
	EnablePprof bool
}

// Daemon is the long-running HotC gateway server: the live gateway
// plus idle-instance reaping and an HTTP management API.
//
// Routes:
//
//	POST /function/{name}          invoke a function
//	GET  /system/functions         list deployed functions
//	POST /system/functions         deploy {"name","handler","coldStartMs"}
//	GET  /system/stats             gateway counters and warm pool sizes
//
// Handlers are chosen from a built-in registry by name (this is a
// demonstration daemon; it does not execute arbitrary code).
type Daemon struct {
	gw  *Gateway
	cfg PoolConfig
	reg *obs.Registry

	mu       sync.Mutex
	deployed []string
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// Builtin handler names deployable through the API.
func Builtins() []string { return []string{"echo", "qr", "upper", "wordcount"} }

func builtinHandler(name string) (Handler, error) {
	switch name {
	case "echo":
		return func(b []byte) ([]byte, error) { return b, nil }, nil
	case "upper":
		return func(b []byte) ([]byte, error) { return []byte(strings.ToUpper(string(b))), nil }, nil
	case "wordcount":
		return func(b []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("%d", len(strings.Fields(string(b))))), nil
		}, nil
	case "qr":
		return func(b []byte) ([]byte, error) {
			s := strings.TrimSpace(string(b))
			if s == "" {
				return nil, fmt.Errorf("empty input")
			}
			return []byte("QR(" + s + ")"), nil
		}, nil
	default:
		return nil, fmt.Errorf("live: unknown builtin handler %q (have %v)", name, Builtins())
	}
}

// NewDaemon wraps a reusing gateway with pool management, a metrics
// registry and (optionally) a circuit breaker.
func NewDaemon(cfg PoolConfig) *Daemon {
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = time.Second
	}
	d := &Daemon{
		gw:     NewGateway(true),
		cfg:    cfg,
		reg:    obs.New(),
		stopCh: make(chan struct{}),
	}
	d.gw.Instrument(d.reg)
	if cfg.BreakerThreshold > 0 {
		d.gw.EnableBreaker(cfg.BreakerThreshold, cfg.BreakerOpenFor)
	}
	return d
}

// Registry exposes the daemon's metrics registry (served at /metrics).
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// DeploySpec is the management-API deployment payload.
type DeploySpec struct {
	// Name routes requests.
	Name string `json:"name"`
	// Handler is a builtin handler name; see Builtins.
	Handler string `json:"handler"`
	// ColdStartMs is the artificial instance boot delay.
	ColdStartMs int `json:"coldStartMs"`
}

// Deploy registers a function from a spec.
func (d *Daemon) Deploy(spec DeploySpec) error {
	h, err := builtinHandler(spec.Handler)
	if err != nil {
		return err
	}
	if spec.ColdStartMs < 0 {
		return fmt.Errorf("live: negative cold start")
	}
	if err := d.gw.Register(Function{
		Name:      spec.Name,
		Handler:   h,
		ColdStart: time.Duration(spec.ColdStartMs) * time.Millisecond,
	}); err != nil {
		return err
	}
	d.mu.Lock()
	d.deployed = append(d.deployed, spec.Name)
	sort.Strings(d.deployed)
	d.mu.Unlock()
	return nil
}

// Start binds the daemon to a random loopback port and begins the
// reaper. It returns the base URL.
func (d *Daemon) Start() (string, error) {
	return d.StartOn("127.0.0.1:0")
}

// StartOn binds the daemon to an explicit address.
func (d *Daemon) StartOn(addr string) (string, error) {
	base, err := d.gw.startOn(addr, d.routes())
	if err != nil {
		return "", err
	}
	d.wg.Add(1)
	go d.reaper()
	return base, nil
}

// Stop shuts down the HTTP server, the reaper and all warm instances.
func (d *Daemon) Stop() {
	close(d.stopCh)
	d.wg.Wait()
	d.gw.Stop()
}

// Stats reports gateway counters.
func (d *Daemon) Stats() Stats { return d.gw.Stats() }

// WarmInstances reports the warm pool size for a function.
func (d *Daemon) WarmInstances(name string) int { return d.gw.WarmInstances(name) }

func (d *Daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", d.gw.handle)
	mux.HandleFunc("/system/functions", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			d.mu.Lock()
			names := append([]string(nil), d.deployed...)
			d.mu.Unlock()
			writeJSON(w, names)
		case http.MethodPost:
			var spec DeploySpec
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := d.Deploy(spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusAccepted)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/system/stats", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		names := append([]string(nil), d.deployed...)
		d.mu.Unlock()
		warm := map[string]int{}
		for _, n := range names {
			warm[n] = d.gw.WarmInstances(n)
		}
		// resilience and warmAges share their source of truth with the
		// /metrics endpoint (the same gateway counters and idle lists).
		writeJSON(w, struct {
			Stats      Stats                `json:"stats"`
			Warm       map[string]int       `json:"warmInstances"`
			Resilience map[string]int       `json:"resilience"`
			WarmAges   map[string][]float64 `json:"warmAgeSeconds"`
		}{d.gw.Stats(), warm, d.gw.ResilienceCounters(), d.gw.WarmAges(time.Now())})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.reg.WritePrometheus(w)
	})
	if d.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// reaper periodically enforces IdleTTL and MaxIdlePerFunction against
// the gateway's warm pool.
func (d *Daemon) reaper() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.ReapInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-ticker.C:
			d.reapOnce(time.Now())
		}
	}
}

// reapOnce applies the pool policy once; tests call it with
// deterministic now values.
func (d *Daemon) reapOnce(now time.Time) {
	d.gw.mu.Lock()
	defer d.gw.mu.Unlock()
	for name, list := range d.gw.idle {
		keep := make([]*instance, 0, len(list))
		for _, inst := range list {
			if d.cfg.IdleTTL > 0 && now.Sub(inst.idleSince) >= d.cfg.IdleTTL {
				go inst.stop()
				continue
			}
			keep = append(keep, inst)
		}
		// Cap: drop the oldest idle instances beyond the limit (the
		// gateway reuses from the tail, so the head is oldest).
		if d.cfg.MaxIdlePerFunction > 0 && len(keep) > d.cfg.MaxIdlePerFunction {
			drop := len(keep) - d.cfg.MaxIdlePerFunction
			for _, inst := range keep[:drop] {
				go inst.stop()
			}
			keep = keep[drop:]
		}
		d.gw.idle[name] = keep
		d.gw.syncWarmGaugeLocked(name)
	}
}
