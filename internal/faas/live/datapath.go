package live

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
)

// This file is the byte-moving half of the live data path: pooled
// buffers and streaming copies shared by the gateway proxy and the
// watchdog handler. The paper's six-timestamp breakdown (§III.A)
// leaves data transfer (4→5) as the residual request cost once reuse
// removes the boot stages, so at steady state a request through this
// path allocates no body-sized memory at all — every chunk moves
// through a recycled buffer.

// copyBufSize is the pooled copy-chunk size: 32 KiB amortizes the
// loopback syscalls without blowing the cache, matching net/http's own
// internal copy granularity.
const copyBufSize = 32 << 10

// maxPooledBody caps how large a compat-shim body buffer may grow and
// still return to the pool: buffers up to the bench suite's largest
// payload recycle (steady-state zero alloc); a pathological request
// beyond that must not pin its buffer in the pool forever.
const maxPooledBody = 8 << 20

// drainLimit bounds how many trailing response bytes the gateway reads
// to salvage a keep-alive connection; past that, closing (and
// re-dialing later) is cheaper than draining.
const drainLimit = 256 << 10

// copyBufPool recycles the fixed-size copy chunks. It stores *[]byte
// so Put never re-boxes the slice header onto the heap.
var copyBufPool = sync.Pool{New: func() any { b := make([]byte, copyBufSize); return &b }}

// bodyBufPool recycles the compat shim's whole-body buffers.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// copyPooled streams src into dst through a pooled chunk buffer. It is
// io.CopyBuffer minus the WriterTo/ReaderFrom delegation and the
// interface re-boxing needed to defeat it: the copy always goes
// through the pooled buffer, so steady-state throughput costs zero
// heap allocations regardless of the endpoints' concrete types.
func copyPooled(dst io.Writer, src io.Reader) (written int64, err error) {
	bp := copyBufPool.Get().(*[]byte)
	buf := *bp
	for {
		nr, rerr := src.Read(buf)
		if nr > 0 {
			nw, werr := dst.Write(buf[:nr])
			if nw > 0 {
				written += int64(nw)
			}
			if werr != nil {
				err = werr
				break
			}
			if nw != nr {
				err = io.ErrShortWrite
				break
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				err = rerr
			}
			break
		}
	}
	copyBufPool.Put(bp)
	return written, err
}

// getBodyBuf hands out a reset whole-body buffer for the compat shim.
func getBodyBuf() *bytes.Buffer {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

// putBodyBuf recycles a shim buffer unless a huge request grew it past
// the pooling cap.
func putBodyBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBody {
		bodyBufPool.Put(buf)
	}
}

// readTracker distinguishes read-side (backend) failures from
// write-side (client) failures during the response copy: a watchdog
// that dies mid-stream must feed the breaker and doom its instance; a
// client that hangs up must not.
type readTracker struct {
	r      io.Reader
	failed bool
}

func (t *readTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF {
		t.failed = true
	}
	return n, err
}

// trackWriter counts bytes written so the watchdog knows whether a
// failed StreamHandler already committed the response.
type trackWriter struct {
	w io.Writer
	n int64
}

func (t *trackWriter) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	t.n += int64(n)
	return n, err
}

// drainClose consumes up to drainLimit of the remaining body so the
// keep-alive connection underneath returns to the transport's idle
// pool clean instead of poisoned by unread bytes, then closes it. On
// the success path the body already sits at EOF and this is one cheap
// read.
func drainClose(rc io.ReadCloser) {
	bp := copyBufPool.Get().(*[]byte)
	buf := *bp
	var total int64
	for total < drainLimit {
		n, err := rc.Read(buf)
		total += int64(n)
		if err != nil {
			break
		}
	}
	copyBufPool.Put(bp)
	rc.Close()
}

// isMaxBytesErr reports whether err (possibly a transport-wrapped
// chain) originates from an http.MaxBytesReader limit — the signal to
// answer 413 instead of blaming the backend.
func isMaxBytesErr(err error) bool {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return true
	}
	return err != nil && strings.Contains(err.Error(), "request body too large")
}
