package live

import (
	"fmt"
	"math"
	"time"

	"hotc/internal/predictor"
	"hotc/internal/sharing"
)

// ControlConfig arms the live gateway's adaptive container control
// (Algorithm 3) and warm-pool lifecycle discipline, mirroring the
// simulated substrate's knobs on real sockets.
type ControlConfig struct {
	// Interval is the control-loop period: each tick observes the
	// interval's peak concurrent demand, forecasts the next interval
	// and resizes the warm pool towards it. Default 2s.
	Interval time.Duration
	// NewPredictor constructs the per-function demand predictor. nil
	// disables prediction (no controller goroutines run); the janitor
	// and warm cap stay active. Use PredictorFactory to resolve the
	// hotcd flag names.
	NewPredictor func() predictor.Predictor
	// Headroom is added to every forecast before provisioning, as a
	// fraction (0.1 = +10%). Default 0.
	Headroom float64
	// KeepAlive stops instances idle longer than this (0 = keep
	// forever). Enforced by the janitor.
	KeepAlive time.Duration
	// MaxWarm caps idle warm instances per function (0 = no cap),
	// enforced continuously: at release time, at prewarm time and by
	// the janitor, always evicting oldest first.
	MaxWarm int
	// JanitorInterval is how often the janitor scans for expired
	// instances. Default 1s.
	JanitorInterval time.Duration
}

// liveScaleDownFrac caps how much of a function's live set the
// controller retires per tick (hysteresis, matching the simulated
// controller): a recurring burst finds most of the previous burst's
// instances still warm.
const liveScaleDownFrac = 0.25

// ctlTraceCap bounds the per-function observed/predicted series kept
// for the prediction-trace endpoint.
const ctlTraceCap = 128

// PredictorFactory resolves a predictor name — the hotcd -predictor
// flag values — to a constructor: "es", "markov", "es+markov" (the
// paper's combined predictor), or "off"/"" for no prediction.
func PredictorFactory(name string) (func() predictor.Predictor, error) {
	switch name {
	case "", "off":
		return nil, nil
	case "es":
		return func() predictor.Predictor { return predictor.NewES(predictor.DefaultAlpha) }, nil
	case "markov":
		return func() predictor.Predictor { return predictor.NewMarkov(predictor.DefaultStates) }, nil
	case "es+markov":
		return func() predictor.Predictor { return predictor.Default() }, nil
	default:
		return nil, fmt.Errorf("live: unknown predictor %q (want es|markov|es+markov|off)", name)
	}
}

// fnControl is the per-function controller state, embedded in the
// function's shard and guarded by the shard mutex: live demand
// accounting plus the predictor and its one-step-ahead evaluation
// series (the live substrate's Fig. 10 trace).
type fnControl struct {
	pred predictor.Predictor

	inFlight int // requests currently executing
	peak     int // max concurrent demand in the current interval
	booting  int // prewarm boots in flight (counted as live)

	forecast  float64 // prediction made at the previous tick
	ticks     int
	observed  []float64
	predicted []float64

	// share classifies the function as lender/renter/neutral from the
	// same demand history (see sharing.Classifier); only fed when the
	// gateway has sharing enabled. Zero value = neutral, which is what
	// an unclassified function must be.
	share sharing.Classifier
}

// EnableControl configures adaptive control. Call before Start; the
// control loops launch when the gateway starts listening. Functions
// already registered gain predictors here.
func (g *Gateway) EnableControl(cfg ControlConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.JanitorInterval <= 0 {
		cfg.JanitorInterval = time.Second
	}
	g.smu.Lock()
	defer g.smu.Unlock()
	g.ctl = cfg
	if cfg.NewPredictor != nil {
		for _, s := range g.shards {
			s.mu.Lock()
			if s.ctl.pred == nil {
				s.ctl.pred = cfg.NewPredictor()
			}
			s.mu.Unlock()
		}
	}
}

// startControlLoops launches the janitor and one controller goroutine
// per registered function. Functions registered later spawn theirs in
// Register.
func (g *Gateway) startControlLoops() {
	g.smu.Lock()
	if g.ctlRunning || g.stopped.Load() {
		g.smu.Unlock()
		return
	}
	g.ctlRunning = true
	// The janitor owns keep-alive expiry AND memory-budget reclaim, so
	// it runs when either policy is armed.
	runJanitor := g.ctl.KeepAlive > 0 || g.adm.MemoryBudget > 0
	var names []string
	if g.ctl.NewPredictor != nil {
		for name := range g.shards {
			names = append(names, name)
		}
	}
	g.wg.Add(len(names))
	if runJanitor {
		g.wg.Add(1)
	}
	g.smu.Unlock()

	if runJanitor {
		go g.runJanitor()
	}
	for _, name := range names {
		go g.runController(name)
	}
	// Prefill the generic pre-forked pool so the first cold start
	// already finds a ready watchdog (boots run on pool goroutines).
	g.refillPrefork()
}

// runController is the per-function background control loop.
func (g *Gateway) runController(name string) {
	defer g.wg.Done()
	ticker := time.NewTicker(g.ctl.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.ctlStop:
			return
		case <-ticker.C:
			g.controlOnce(name, g.nowFn())
		}
	}
}

// controlOnce runs one control interval for a function: observe the
// interval's peak concurrent demand, forecast the next interval, and
// prewarm or retire warm instances towards the forecast. Tests call it
// directly with deterministic clocks.
//
// The registry read-lock is held across the tick so the stopped check
// and the wg.Add for prewarm boots are atomic against Stop (which sets
// stopped under the write lock before waiting); only this function's
// shard mutex is taken, so ticks never stall other functions.
func (g *Gateway) controlOnce(name string, now time.Time) {
	g.smu.RLock()
	if g.stopped.Load() {
		g.smu.RUnlock()
		return
	}
	s := g.shards[name]
	if s == nil {
		g.smu.RUnlock()
		return
	}
	ins := g.obs.Load()

	s.mu.Lock()
	st := &s.ctl
	if st.pred == nil {
		s.mu.Unlock()
		g.smu.RUnlock()
		return
	}
	fn := s.fn

	demand := float64(st.peak)
	// One-step-ahead evaluation series: the forecast recorded against
	// an interval is the one made *before* observing it.
	st.observed = appendBounded(st.observed, demand)
	st.predicted = appendBounded(st.predicted, st.forecast)
	// The sharing classifier judges the forecast that was made for
	// this interval — before it is overwritten below — against what
	// the interval actually brought, plus the idle surplus standing
	// around right now.
	if g.share.enabled {
		prevRole := st.share.Role()
		if role := st.share.Observe(st.forecast, demand, float64(len(s.idle))); role != prevRole {
			g.shareRoleTransition(prevRole, role, ins)
		}
	}
	st.pred.Observe(demand)
	raw := st.pred.Predict()
	st.forecast = raw
	st.ticks++
	st.peak = st.inFlight // restart the interval's peak tracking

	target := int(math.Ceil(raw * (1 + g.ctl.Headroom)))
	if target < st.inFlight {
		target = st.inFlight // never scale below what is executing
	}
	if g.ctl.MaxWarm > 0 && target > st.inFlight+g.ctl.MaxWarm {
		target = st.inFlight + g.ctl.MaxWarm // idle share stays under the cap
	}
	live := st.inFlight + st.booting + len(s.idle)

	boot := 0
	var retire []*instance
	switch {
	case target > live:
		boot = target - live
		if g.ctl.MaxWarm > 0 {
			if room := g.ctl.MaxWarm - len(s.idle) - st.booting; boot > room {
				boot = room
			}
		}
		if boot < 0 {
			boot = 0
		}
		st.booting += boot
	case target < live:
		// Hysteresis: retire at most liveScaleDownFrac of the live set
		// per tick (but always at least one), oldest first.
		excess := live - target
		if cap := int(math.Ceil(float64(live) * liveScaleDownFrac)); excess > cap {
			excess = cap
		}
		if excess > len(s.idle) {
			excess = len(s.idle)
		}
		if excess > 0 {
			retire = append(retire, s.idle[:excess]...)
			s.idle = append(s.idle[:0:0], s.idle[excess:]...)
			s.stats.Retired += excess
			s.syncWarmLocked()
		}
	}
	if ins != nil {
		ins.ctlTicks.Inc()
		if m := s.m.Load(); m != nil {
			m.ctlDemand.Set(demand)
			m.ctlForecast.Set(raw)
			m.ctlTarget.Set(float64(target))
		}
		if len(retire) > 0 {
			ins.ctlRetire.Add(float64(len(retire)))
			ins.poolRetired.Add(float64(len(retire)))
		}
	}
	g.wg.Add(boot)
	s.mu.Unlock()
	g.smu.RUnlock()

	for i := 0; i < boot; i++ {
		go g.prewarmOne(s, fn)
	}
	stopAll(retire)
	// Keep the generic pre-forked pool topped up even when no request
	// has drained it recently (boot errors or reaps may have left a
	// deficit); the refill itself runs on pool-owned goroutines.
	g.refillPrefork()
}

// prewarmOne boots one instance ahead of demand and pools it — unless
// the gateway stopped or the warm cap filled while it was booting. It
// rides the same fast cold path as requests: a generic pre-forked
// watchdog is specialized when one is ready (the pool refills itself
// in the background), else a full boot.
func (g *Gateway) prewarmOne(s *shard, fn Function) {
	defer g.wg.Done()
	inst, _, err := g.bootInstance(fn)
	s.mu.Lock()
	if s.ctl.booting > 0 {
		s.ctl.booting--
	}
	if err != nil {
		s.mu.Unlock()
		return
	}
	overCap := g.ctl.MaxWarm > 0 && len(s.idle) >= g.ctl.MaxWarm
	if g.stopped.Load() || overCap {
		s.mu.Unlock()
		inst.stop()
		return
	}
	inst.idleSince = g.nowFn()
	s.idle = append(s.idle, inst)
	s.stats.Prewarmed++
	if ins := g.obs.Load(); ins != nil {
		ins.ctlPrewarm.Inc()
	}
	s.syncWarmLocked()
	s.mu.Unlock()
}

// runJanitor periodically expires idle instances past the keep-alive.
func (g *Gateway) runJanitor() {
	defer g.wg.Done()
	interval := g.ctl.JanitorInterval
	if interval <= 0 {
		// A memory budget arms the janitor without EnableControl (which
		// is where the interval is normally defaulted).
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.ctlStop:
			return
		case <-ticker.C:
			g.janitorOnce(g.nowFn())
		}
	}
}

// janitorOnce enforces the keep-alive and the warm cap once, oldest
// first; expired instances are stopped outside the locks,
// concurrently. Shards are scanned one at a time — a function with a
// huge idle list delays only its own requests, not every function's.
// Tests call it with deterministic now values. A stopped gateway is
// left alone: Stop already owns teardown, and racing it could
// double-stop or resurrect state.
func (g *Gateway) janitorOnce(now time.Time) {
	if g.stopped.Load() {
		return
	}
	var doomed []*instance
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		if g.stopped.Load() {
			s.mu.Unlock()
			break
		}
		keep := make([]*instance, 0, len(s.idle))
		expired := 0
		for _, inst := range s.idle {
			if g.ctl.KeepAlive > 0 && now.Sub(inst.idleSince) >= g.ctl.KeepAlive {
				doomed = append(doomed, inst)
				expired++
				continue
			}
			keep = append(keep, inst)
		}
		s.stats.Expired += expired
		// Cap backstop (release-time eviction normally keeps this
		// invariant): drop the oldest beyond the limit.
		if g.ctl.MaxWarm > 0 && len(keep) > g.ctl.MaxWarm {
			drop := len(keep) - g.ctl.MaxWarm
			doomed = append(doomed, keep[:drop]...)
			keep = keep[drop:]
			s.stats.Retired += drop
		}
		s.idle = keep
		s.syncWarmLocked()
		s.mu.Unlock()
	}
	if len(doomed) > 0 {
		if ins := g.obs.Load(); ins != nil {
			ins.poolRetired.Add(float64(len(doomed)))
		}
		stopAll(doomed)
	}
	// With a memory budget armed, the same scan enforces it: reclaim
	// warm capacity from the biggest holders once the summed estimates
	// exceed the budget.
	g.reclaimMemoryOnce()
}

// PredictionTrace is one function's live controller trace: the
// predictor identity, its latest forecast, and the bounded
// one-step-ahead evaluation series (observed demand vs the forecast
// made for that interval).
type PredictionTrace struct {
	Predictor string    `json:"predictor"`
	Forecast  float64   `json:"forecast"`
	Ticks     int       `json:"ticks"`
	Observed  []float64 `json:"observed"`
	Predicted []float64 `json:"predicted"`
	// Role and ForecastError expose the sharing classifier: the
	// function's lender/renter/neutral classification and the smoothed
	// forecast error it was derived from (positive = over-forecasted).
	// Role is empty when sharing is disabled.
	Role          string  `json:"role,omitempty"`
	ForecastError float64 `json:"forecastError"`
}

// PredictionTraces snapshots the controller state of every function
// under prediction, one shard at a time.
func (g *Gateway) PredictionTraces() map[string]PredictionTrace {
	out := make(map[string]PredictionTrace)
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		if s.ctl.pred != nil {
			tr := PredictionTrace{
				Predictor: s.ctl.pred.Name(),
				Forecast:  s.ctl.forecast,
				Ticks:     s.ctl.ticks,
				Observed:  append([]float64(nil), s.ctl.observed...),
				Predicted: append([]float64(nil), s.ctl.predicted...),
			}
			if g.share.enabled {
				tr.Role = s.ctl.share.Role().String()
				tr.ForecastError = s.ctl.share.ForecastError()
			}
			out[s.name] = tr
		}
		s.mu.Unlock()
	}
	return out
}

// Forecasts reports each predicted function's latest demand forecast.
func (g *Gateway) Forecasts() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		if s.ctl.pred != nil {
			out[s.name] = s.ctl.forecast
		}
		s.mu.Unlock()
	}
	return out
}

// appendBounded appends keeping at most ctlTraceCap trailing elements.
func appendBounded(s []float64, v float64) []float64 {
	s = append(s, v)
	if len(s) > ctlTraceCap {
		s = append(s[:0:0], s[len(s)-ctlTraceCap:]...)
	}
	return s
}
