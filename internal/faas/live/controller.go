package live

import (
	"fmt"
	"math"
	"time"

	"hotc/internal/predictor"
)

// ControlConfig arms the live gateway's adaptive container control
// (Algorithm 3) and warm-pool lifecycle discipline, mirroring the
// simulated substrate's knobs on real sockets.
type ControlConfig struct {
	// Interval is the control-loop period: each tick observes the
	// interval's peak concurrent demand, forecasts the next interval
	// and resizes the warm pool towards it. Default 2s.
	Interval time.Duration
	// NewPredictor constructs the per-function demand predictor. nil
	// disables prediction (no controller goroutines run); the janitor
	// and warm cap stay active. Use PredictorFactory to resolve the
	// hotcd flag names.
	NewPredictor func() predictor.Predictor
	// Headroom is added to every forecast before provisioning, as a
	// fraction (0.1 = +10%). Default 0.
	Headroom float64
	// KeepAlive stops instances idle longer than this (0 = keep
	// forever). Enforced by the janitor.
	KeepAlive time.Duration
	// MaxWarm caps idle warm instances per function (0 = no cap),
	// enforced continuously: at release time, at prewarm time and by
	// the janitor, always evicting oldest first.
	MaxWarm int
	// JanitorInterval is how often the janitor scans for expired
	// instances. Default 1s.
	JanitorInterval time.Duration
}

// liveScaleDownFrac caps how much of a function's live set the
// controller retires per tick (hysteresis, matching the simulated
// controller): a recurring burst finds most of the previous burst's
// instances still warm.
const liveScaleDownFrac = 0.25

// ctlTraceCap bounds the per-function observed/predicted series kept
// for the prediction-trace endpoint.
const ctlTraceCap = 128

// PredictorFactory resolves a predictor name — the hotcd -predictor
// flag values — to a constructor: "es", "markov", "es+markov" (the
// paper's combined predictor), or "off"/"" for no prediction.
func PredictorFactory(name string) (func() predictor.Predictor, error) {
	switch name {
	case "", "off":
		return nil, nil
	case "es":
		return func() predictor.Predictor { return predictor.NewES(predictor.DefaultAlpha) }, nil
	case "markov":
		return func() predictor.Predictor { return predictor.NewMarkov(predictor.DefaultStates) }, nil
	case "es+markov":
		return func() predictor.Predictor { return predictor.Default() }, nil
	default:
		return nil, fmt.Errorf("live: unknown predictor %q (want es|markov|es+markov|off)", name)
	}
}

// fnControl is the per-function controller state: live demand
// accounting plus the predictor and its one-step-ahead evaluation
// series (the live substrate's Fig. 10 trace).
type fnControl struct {
	pred predictor.Predictor

	inFlight int // requests currently executing
	peak     int // max concurrent demand in the current interval
	booting  int // prewarm boots in flight (counted as live)

	forecast  float64 // prediction made at the previous tick
	ticks     int
	observed  []float64
	predicted []float64
}

// EnableControl configures adaptive control. Call before Start; the
// control loops launch when the gateway starts listening.
func (g *Gateway) EnableControl(cfg ControlConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.JanitorInterval <= 0 {
		cfg.JanitorInterval = time.Second
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ctl = cfg
}

// fnCtlLocked returns (creating if needed) the per-function control
// state. Caller holds g.mu.
func (g *Gateway) fnCtlLocked(name string) *fnControl {
	st := g.fnCtl[name]
	if st == nil {
		st = &fnControl{}
		if g.ctl.NewPredictor != nil {
			st.pred = g.ctl.NewPredictor()
		}
		g.fnCtl[name] = st
	}
	return st
}

// startControlLoops launches the janitor and one controller goroutine
// per registered function. Functions registered later spawn theirs in
// Register.
func (g *Gateway) startControlLoops() {
	g.mu.Lock()
	if g.ctlRunning || g.stopped {
		g.mu.Unlock()
		return
	}
	g.ctlRunning = true
	runJanitor := g.ctl.KeepAlive > 0
	var names []string
	if g.ctl.NewPredictor != nil {
		for name := range g.fns {
			names = append(names, name)
		}
	}
	g.wg.Add(len(names))
	if runJanitor {
		g.wg.Add(1)
	}
	g.mu.Unlock()

	if runJanitor {
		go g.runJanitor()
	}
	for _, name := range names {
		go g.runController(name)
	}
}

// runController is the per-function background control loop.
func (g *Gateway) runController(name string) {
	defer g.wg.Done()
	ticker := time.NewTicker(g.ctl.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.ctlStop:
			return
		case <-ticker.C:
			g.controlOnce(name, g.nowFn())
		}
	}
}

// controlOnce runs one control interval for a function: observe the
// interval's peak concurrent demand, forecast the next interval, and
// prewarm or retire warm instances towards the forecast. Tests call it
// directly with deterministic clocks.
func (g *Gateway) controlOnce(name string, now time.Time) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	fn, known := g.fns[name]
	if !known {
		g.mu.Unlock()
		return
	}
	st := g.fnCtlLocked(name)
	if st.pred == nil {
		g.mu.Unlock()
		return
	}

	demand := float64(st.peak)
	// One-step-ahead evaluation series: the forecast recorded against
	// an interval is the one made *before* observing it.
	st.observed = appendBounded(st.observed, demand)
	st.predicted = appendBounded(st.predicted, st.forecast)
	st.pred.Observe(demand)
	raw := st.pred.Predict()
	st.forecast = raw
	st.ticks++
	st.peak = st.inFlight // restart the interval's peak tracking

	target := int(math.Ceil(raw * (1 + g.ctl.Headroom)))
	if target < st.inFlight {
		target = st.inFlight // never scale below what is executing
	}
	if g.ctl.MaxWarm > 0 && target > st.inFlight+g.ctl.MaxWarm {
		target = st.inFlight + g.ctl.MaxWarm // idle share stays under the cap
	}
	live := st.inFlight + st.booting + len(g.idle[name])

	boot := 0
	var retire []*instance
	switch {
	case target > live:
		boot = target - live
		if g.ctl.MaxWarm > 0 {
			if room := g.ctl.MaxWarm - len(g.idle[name]) - st.booting; boot > room {
				boot = room
			}
		}
		if boot < 0 {
			boot = 0
		}
		st.booting += boot
	case target < live:
		// Hysteresis: retire at most liveScaleDownFrac of the live set
		// per tick (but always at least one), oldest first.
		excess := live - target
		if cap := int(math.Ceil(float64(live) * liveScaleDownFrac)); excess > cap {
			excess = cap
		}
		list := g.idle[name]
		if excess > len(list) {
			excess = len(list)
		}
		if excess > 0 {
			retire = append(retire, list[:excess]...)
			g.idle[name] = append(list[:0:0], list[excess:]...)
			g.stats.Retired += excess
			g.syncWarmGaugeLocked(name)
		}
	}
	if g.obs != nil {
		g.obs.ctlTicks.Inc()
		g.obs.ctlDemand.With(name).Set(demand)
		g.obs.ctlForecast.With(name).Set(raw)
		g.obs.ctlTarget.With(name).Set(float64(target))
		if len(retire) > 0 {
			g.obs.ctlRetire.Add(float64(len(retire)))
			g.obs.poolRetired.Add(float64(len(retire)))
		}
	}
	g.wg.Add(boot)
	g.mu.Unlock()

	for i := 0; i < boot; i++ {
		go g.prewarmOne(fn)
	}
	stopAll(retire)
}

// prewarmOne boots one instance ahead of demand and pools it — unless
// the gateway stopped or the warm cap filled while it was booting.
func (g *Gateway) prewarmOne(fn Function) {
	defer g.wg.Done()
	inst, err := startInstance(fn)
	g.mu.Lock()
	st := g.fnCtlLocked(fn.Name)
	if st.booting > 0 {
		st.booting--
	}
	if err != nil {
		g.mu.Unlock()
		return
	}
	overCap := g.ctl.MaxWarm > 0 && len(g.idle[fn.Name]) >= g.ctl.MaxWarm
	if g.stopped || overCap {
		g.mu.Unlock()
		inst.stop()
		return
	}
	inst.idleSince = g.nowFn()
	g.idle[fn.Name] = append(g.idle[fn.Name], inst)
	g.stats.Prewarmed++
	if g.obs != nil {
		g.obs.ctlPrewarm.Inc()
	}
	g.syncWarmGaugeLocked(fn.Name)
	g.mu.Unlock()
}

// runJanitor periodically expires idle instances past the keep-alive.
func (g *Gateway) runJanitor() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.ctl.JanitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.ctlStop:
			return
		case <-ticker.C:
			g.janitorOnce(g.nowFn())
		}
	}
}

// janitorOnce enforces the keep-alive and the warm cap once, oldest
// first; expired instances are stopped outside the lock, concurrently.
// Tests call it with deterministic now values. A stopped gateway is
// left alone: Stop already owns teardown, and racing it could
// double-stop or resurrect state.
func (g *Gateway) janitorOnce(now time.Time) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	var doomed []*instance
	for name, list := range g.idle {
		keep := make([]*instance, 0, len(list))
		expired := 0
		for _, inst := range list {
			if g.ctl.KeepAlive > 0 && now.Sub(inst.idleSince) >= g.ctl.KeepAlive {
				doomed = append(doomed, inst)
				expired++
				continue
			}
			keep = append(keep, inst)
		}
		g.stats.Expired += expired
		// Cap backstop (release-time eviction normally keeps this
		// invariant): drop the oldest beyond the limit.
		if g.ctl.MaxWarm > 0 && len(keep) > g.ctl.MaxWarm {
			drop := len(keep) - g.ctl.MaxWarm
			doomed = append(doomed, keep[:drop]...)
			keep = keep[drop:]
			g.stats.Retired += drop
		}
		g.idle[name] = keep
		g.syncWarmGaugeLocked(name)
	}
	if g.obs != nil && len(doomed) > 0 {
		g.obs.poolRetired.Add(float64(len(doomed)))
	}
	g.mu.Unlock()
	stopAll(doomed)
}

// PredictionTrace is one function's live controller trace: the
// predictor identity, its latest forecast, and the bounded
// one-step-ahead evaluation series (observed demand vs the forecast
// made for that interval).
type PredictionTrace struct {
	Predictor string    `json:"predictor"`
	Forecast  float64   `json:"forecast"`
	Ticks     int       `json:"ticks"`
	Observed  []float64 `json:"observed"`
	Predicted []float64 `json:"predicted"`
}

// PredictionTraces snapshots the controller state of every function
// under prediction.
func (g *Gateway) PredictionTraces() map[string]PredictionTrace {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]PredictionTrace)
	for name, st := range g.fnCtl {
		if st.pred == nil {
			continue
		}
		out[name] = PredictionTrace{
			Predictor: st.pred.Name(),
			Forecast:  st.forecast,
			Ticks:     st.ticks,
			Observed:  append([]float64(nil), st.observed...),
			Predicted: append([]float64(nil), st.predicted...),
		}
	}
	return out
}

// Forecasts reports each predicted function's latest demand forecast.
func (g *Gateway) Forecasts() map[string]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]float64)
	for name, st := range g.fnCtl {
		if st.pred != nil {
			out[name] = st.forecast
		}
	}
	return out
}

// appendBounded appends keeping at most ctlTraceCap trailing elements.
func appendBounded(s []float64, v float64) []float64 {
	s = append(s, v)
	if len(s) > ctlTraceCap {
		s = append(s[:0:0], s[len(s)-ctlTraceCap:]...)
	}
	return s
}
