package live

import (
	"sort"
	"time"

	"hotc/internal/faas"
	"hotc/internal/obs"
)

// instruments bundles the live gateway's metric families plus the
// pre-resolved handles for the unlabeled (or fixed-label) families the
// hot path bumps. nil (the default) means uninstrumented.
type instruments struct {
	requests     *obs.CounterVec   // hotc_requests_total{function, outcome}
	starts       *obs.CounterVec   // hotc_starts_total{mode}
	latency      *obs.HistogramVec // hotc_request_latency_ms{function}
	warm         *obs.GaugeVec     // hotc_live_warm_instances{function}
	events       *obs.CounterVec   // hotc_resilience_events_total{kind}
	breakerState *obs.GaugeVec     // hotc_breaker_state{key}

	// Controller families share the simulated control loop's names
	// (core.HotC.Instrument), so dashboards read either substrate.
	ctlDemand   *obs.GaugeVec // hotc_ctl_demand{key}
	ctlForecast *obs.GaugeVec // hotc_ctl_forecast{key}
	ctlTarget   *obs.GaugeVec // hotc_ctl_target{key}
	ctlPrewarm  *obs.Counter  // hotc_ctl_prewarm_total
	ctlRetire   *obs.Counter  // hotc_ctl_retire_total
	ctlTicks    *obs.Counter  // hotc_ctl_ticks_total
	poolRetired *obs.Counter  // hotc_pool_retired_total

	// bodyBytes tracks response bytes streamed to clients, recorded
	// from the copy loop's running count — the gateway never buffers a
	// body just to measure it.
	bodyBytes *obs.Histogram // hotc_gateway_body_bytes

	// Admission-control families (hotc_adm_*): the overload tier's
	// queue occupancy, waits, refusals and per-tenant goodput.
	admDepth        *obs.GaugeVec     // hotc_adm_queue_depth{function}
	admInFlight     *obs.GaugeVec     // hotc_adm_inflight{function}
	admWait         *obs.HistogramVec // hotc_adm_queue_wait_ms{function}
	admRejected     *obs.CounterVec   // hotc_adm_rejected_total{function, reason}
	admGoodput      *obs.CounterVec   // hotc_adm_goodput_total{tenant}
	admCanceled     *obs.Counter      // hotc_adm_canceled_total
	admMemBytes     *obs.Gauge        // hotc_adm_mem_bytes
	admMemReclaimed *obs.Counter      // hotc_adm_mem_reclaimed_total

	// Tracing families (hotc_trace_*): the tail sampler's verdict
	// counts. traceKept is pre-resolved per keep reason so the keep
	// path pays one map lookup and one atomic add.
	traceKept       map[string]*obs.Counter // hotc_trace_kept_total{reason}
	traceSampledOut *obs.Counter            // hotc_trace_sampled_out_total
	traceRingFull   *obs.Counter            // hotc_trace_ring_dropped_total

	// Cold-path families (hotc_coldpath_*): how each cold boot was
	// paid — generic handoff vs full boot, per-phase delays, generic
	// pool occupancy/refills/reaps, and pull megabytes the layer cache
	// saved.
	coldBoots       *obs.CounterVec   // hotc_coldpath_boots_total{mode}
	coldPhase       *obs.HistogramVec // hotc_coldpath_phase_ms{phase}
	coldGenericIdle *obs.Gauge        // hotc_coldpath_generic_idle
	coldRefills     *obs.Counter      // hotc_coldpath_refills_total
	coldReaped      *obs.Counter      // hotc_coldpath_generic_reaped_total
	coldSkippedMB   *obs.Counter      // hotc_coldpath_pull_skipped_mb_total

	// Sharing families (hotc_share_*): inter-function lease outcomes,
	// the lender/renter population, and the rented-boot phase split.
	shareLeases  *obs.CounterVec   // hotc_share_leases_total{outcome}
	shareLenders *obs.Gauge        // hotc_share_lenders
	shareRenters *obs.Gauge        // hotc_share_renters
	sharePhase   *obs.HistogramVec // hotc_share_boot_phase_ms{phase}

	// startsWarm/startsCold are the two children of starts, resolved
	// once so the request path pays a single atomic add; the coldBoots
	// and coldPhase children likewise.
	startsWarm       *obs.Counter
	startsCold       *obs.Counter
	coldBootsGeneric *obs.Counter
	coldBootsFull    *obs.Counter
	coldBootsRented  *obs.Counter
	coldPhasePull    *obs.Histogram
	coldPhaseRuntime *obs.Histogram
	coldPhaseApp     *obs.Histogram

	shareLeaseGranted     *obs.Counter
	shareLeaseNoCandidate *obs.Counter
	shareLeaseDenied      *obs.Counter
	sharePhaseWipe        *obs.Histogram
	sharePhasePull        *obs.Histogram
	sharePhaseApp         *obs.Histogram
}

// shardMetrics is one function's pre-resolved series handles: every
// label lookup the request path and controller would otherwise pay per
// observation is done once here, leaving lock-free atomic updates on
// the hot path.
type shardMetrics struct {
	reqOK       *obs.Counter
	reqError    *obs.Counter
	reqRejected *obs.Counter
	reqCanceled *obs.Counter
	latency     *obs.Histogram
	warm        *obs.Gauge
	breakerSt   *obs.Gauge
	ctlDemand   *obs.Gauge
	ctlForecast *obs.Gauge
	ctlTarget   *obs.Gauge
	admDepth    *obs.Gauge
	admInFlight *obs.Gauge
	admWait     *obs.Histogram
}

// forFunction resolves the per-function handle set.
func (ins *instruments) forFunction(name string) *shardMetrics {
	return &shardMetrics{
		reqOK:       ins.requests.With(name, "ok"),
		reqError:    ins.requests.With(name, "error"),
		reqRejected: ins.requests.With(name, "rejected"),
		reqCanceled: ins.requests.With(name, "canceled"),
		latency:     ins.latency.With(name),
		warm:        ins.warm.With(name),
		breakerSt:   ins.breakerState.With(name),
		ctlDemand:   ins.ctlDemand.With(name),
		ctlForecast: ins.ctlForecast.With(name),
		ctlTarget:   ins.ctlTarget.With(name),
		admDepth:    ins.admDepth.With(name),
		admInFlight: ins.admInFlight.With(name),
		admWait:     ins.admWait.With(name),
	}
}

// Instrument registers the gateway's metric families on the registry
// and resolves each existing shard's handle set. The families reuse
// the simulated pipeline's names, so dashboards built against a sim
// dump read hotcd's /metrics unchanged. Calling with nil turns
// instrumentation off.
func (g *Gateway) Instrument(reg *obs.Registry) {
	if reg == nil {
		g.obs.Store(nil)
		for _, s := range g.snapshotShards() {
			s.m.Store(nil)
		}
		return
	}
	ins := &instruments{
		requests: reg.CounterVec("hotc_requests_total",
			"Requests handled by the gateway, by function and outcome (ok|error|rejected|canceled).",
			"function", "outcome"),
		starts: reg.CounterVec("hotc_starts_total",
			"Watchdog instance starts behind served requests, by mode (warm = reused, cold = fresh boot).",
			"mode"),
		latency: reg.HistogramVec("hotc_request_latency_ms",
			"End-to-end request latency at the gateway, in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "function"),
		warm: reg.GaugeVec("hotc_live_warm_instances",
			"Idle warm watchdog instances per function.",
			"function"),
		events: reg.CounterVec("hotc_resilience_events_total",
			"Resilience events on the request path, by kind.",
			"kind"),
		breakerState: reg.GaugeVec("hotc_breaker_state",
			"Per-function circuit breaker state (0 closed, 1 open, 2 half-open).",
			"key"),
		ctlDemand: reg.GaugeVec("hotc_ctl_demand",
			"Observed peak concurrent demand per runtime key in the last control interval.",
			"key"),
		ctlForecast: reg.GaugeVec("hotc_ctl_forecast",
			"Demand forecast per runtime key for the next control interval.",
			"key"),
		ctlTarget: reg.GaugeVec("hotc_ctl_target",
			"Pool size target per runtime key after headroom, floors and hysteresis.",
			"key"),
		ctlPrewarm: reg.Counter("hotc_ctl_prewarm_total",
			"Containers the control loop asked the pool to pre-warm."),
		ctlRetire: reg.Counter("hotc_ctl_retire_total",
			"Containers the control loop retired on scale-down."),
		ctlTicks: reg.Counter("hotc_ctl_ticks_total",
			"Control loop ticks executed."),
		poolRetired: reg.Counter("hotc_pool_retired_total",
			"Containers stopped by scale-down, cap eviction or keep-alive expiry."),
		bodyBytes: reg.Histogram("hotc_gateway_body_bytes",
			"Response bytes streamed through the gateway per request.",
			obs.DefaultBodySizeBuckets()),
		admDepth: reg.GaugeVec("hotc_adm_queue_depth",
			"Requests waiting in the admission queue, per function.",
			"function"),
		admInFlight: reg.GaugeVec("hotc_adm_inflight",
			"Requests dispatched and executing, per function.",
			"function"),
		admWait: reg.HistogramVec("hotc_adm_queue_wait_ms",
			"Time admitted requests spent queued before dispatch, in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "function"),
		admRejected: reg.CounterVec("hotc_adm_rejected_total",
			"Requests refused by admission control, by function and reason (queue_full|deadline|canceled|stopped).",
			"function", "reason"),
		admGoodput: reg.CounterVec("hotc_adm_goodput_total",
			"Requests completed successfully, by tenant.",
			"tenant"),
		admCanceled: reg.Counter("hotc_adm_canceled_total",
			"In-flight backend calls canceled by client disconnect or deadline expiry."),
		admMemBytes: reg.Gauge("hotc_adm_mem_bytes",
			"Estimated memory held by warm instances across all functions."),
		admMemReclaimed: reg.Counter("hotc_adm_mem_reclaimed_total",
			"Warm instances reclaimed by memory-budget pressure."),
		coldBoots: reg.CounterVec("hotc_coldpath_boots_total",
			"Cold boots by mode (generic = specialized from the pre-forked pool, cold = full boot).",
			"mode"),
		coldPhase: reg.HistogramVec("hotc_coldpath_phase_ms",
			"Cold-boot phase delays actually paid, in milliseconds, by phase (pull|runtime_init|app_init); a zero pull is a layer-cache hit.",
			obs.DefaultLatencyBucketsMS(), "phase"),
		coldGenericIdle: reg.Gauge("hotc_coldpath_generic_idle",
			"Idle generic pre-forked watchdogs ready for specialization."),
		coldRefills: reg.Counter("hotc_coldpath_refills_total",
			"Generic watchdog boots completed by pool refills."),
		coldReaped: reg.Counter("hotc_coldpath_generic_reaped_total",
			"Generic pre-forked watchdogs stopped by memory-budget pressure."),
		coldSkippedMB: reg.Counter("hotc_coldpath_pull_skipped_mb_total",
			"Image megabytes not pulled thanks to layer-cache hits."),
		shareLeases: reg.CounterVec("hotc_share_leases_total",
			"Inter-function lease attempts by outcome (granted|no_candidate|denied_policy).",
			"outcome"),
		shareLenders: reg.Gauge("hotc_share_lenders",
			"Functions currently classified as lenders (persistently over-forecasted or idle-heavy)."),
		shareRenters: reg.Gauge("hotc_share_renters",
			"Functions currently classified as renters (persistently under-forecasted)."),
		sharePhase: reg.HistogramVec("hotc_share_boot_phase_ms",
			"Rented-boot phase delays actually paid, in milliseconds, by phase (wipe|pull|app_init); a zero pull is a same-image lease.",
			obs.DefaultLatencyBucketsMS(), "phase"),
	}
	traceKept := reg.CounterVec("hotc_trace_kept_total",
		"Spans retained by the tail sampler, by keep reason (error|shed|cold|slow|sampled).",
		"reason")
	ins.traceKept = make(map[string]*obs.Counter, len(obs.KeepReasons()))
	for _, reason := range obs.KeepReasons() {
		ins.traceKept[reason] = traceKept.With(reason)
	}
	ins.traceSampledOut = reg.Counter("hotc_trace_sampled_out_total",
		"Completed requests whose spans the tail sampler dropped.")
	ins.traceRingFull = reg.Counter("hotc_trace_ring_dropped_total",
		"Kept spans dropped because their trace-ring slot was busy.")
	ins.startsWarm = ins.starts.With("warm")
	ins.startsCold = ins.starts.With("cold")
	ins.coldBootsGeneric = ins.coldBoots.With("generic")
	ins.coldBootsFull = ins.coldBoots.With("cold")
	ins.coldBootsRented = ins.coldBoots.With("rented")
	ins.coldPhasePull = ins.coldPhase.With("pull")
	ins.coldPhaseRuntime = ins.coldPhase.With("runtime_init")
	ins.coldPhaseApp = ins.coldPhase.With("app_init")
	ins.shareLeaseGranted = ins.shareLeases.With("granted")
	ins.shareLeaseNoCandidate = ins.shareLeases.With("no_candidate")
	ins.shareLeaseDenied = ins.shareLeases.With("denied_policy")
	ins.sharePhaseWipe = ins.sharePhase.With("wipe")
	ins.sharePhasePull = ins.sharePhase.With("pull")
	ins.sharePhaseApp = ins.sharePhase.With("app_init")
	g.obs.Store(ins)
	// Seed the generic-idle gauge: the pool may have filled before
	// Instrument armed the OnIdle hook's sink.
	if g.cold.pool != nil {
		ins.coldGenericIdle.Set(float64(g.cold.pool.Idle()))
	}
	for _, s := range g.snapshotShards() {
		s.m.Store(ins.forFunction(s.name))
	}
}

// observe emits the per-request latency and outcome counters through
// the shard's cached handles: no locks, no label resolution.
func (s *shard) observe(outcome string, start time.Time) {
	m := s.m.Load()
	if m == nil {
		return
	}
	switch outcome {
	case "ok":
		m.reqOK.Inc()
	case "rejected":
		m.reqRejected.Inc()
	case "canceled":
		m.reqCanceled.Inc()
	default:
		m.reqError.Inc()
	}
	m.latency.ObserveDuration(time.Since(start))
}

// observeUnknown records a request for a name with no shard (404s).
// Off the hot path, so the Vec lookup cost is fine.
func (g *Gateway) observeUnknown(name string, start time.Time) {
	ins := g.obs.Load()
	if ins == nil {
		return
	}
	ins.requests.With(name, "error").Inc()
	ins.latency.With(name).ObserveDuration(time.Since(start))
}

// EnableBreaker arms a per-function circuit breaker: after threshold
// consecutive boot/proxy failures the function fast-fails with 503
// until openFor elapses and a probe succeeds. Call before traffic;
// threshold <= 0 disables breaking (the default).
func (g *Gateway) EnableBreaker(threshold int, openFor time.Duration) {
	g.smu.Lock()
	defer g.smu.Unlock()
	g.breakerThreshold = threshold
	g.breakerOpenFor = openFor
}

// since is the gateway's monotonic clock for the breaker: offsets from
// the gateway's construction, matching the simulated breaker's virtual
// time contract.
func (g *Gateway) since() time.Duration { return time.Since(g.epoch) }

// breakerLocked lazily builds the shard's breaker; nil when breaking
// is disabled. Caller holds s.mu.
func (g *Gateway) breakerLocked(s *shard) *faas.Breaker {
	if g.breakerThreshold <= 0 {
		return nil
	}
	if s.breaker == nil {
		s.breaker = faas.NewBreaker(g.breakerThreshold, g.breakerOpenFor)
	}
	return s.breaker
}

// breakerAllow reports whether a request for the function may proceed,
// counting and fast-fail accounting when it may not; a refusal comes
// with the remainder of the breaker's open window, the honest
// Retry-After. With breaking disabled (the default) this is one branch
// on an immutable field.
func (g *Gateway) breakerAllow(s *shard) (bool, time.Duration) {
	if g.breakerThreshold <= 0 {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := g.breakerLocked(s)
	now := g.since()
	ok := b.Allow(now)
	var retryAfter time.Duration
	if !ok {
		retryAfter = b.RemainingOpen(now)
		s.resLocked("breaker.rejected")
		g.event("breaker-rejected")
	}
	s.syncBreakerGaugeLocked(b, g.since())
	return ok, retryAfter
}

// breakerFailure feeds a backend failure (boot or proxy) into the
// function's breaker and bumps the named resilience counter.
func (g *Gateway) breakerFailure(s *shard, counter string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resLocked(counter)
	g.event(counter)
	b := g.breakerLocked(s)
	if b == nil {
		return
	}
	if b.OnFailure(g.since()) {
		s.resLocked("breaker.trips")
		g.event("breaker-open")
	}
	s.syncBreakerGaugeLocked(b, g.since())
}

// breakerSuccess records a successful proxy round-trip.
func (g *Gateway) breakerSuccess(s *shard) {
	if g.breakerThreshold <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := g.breakerLocked(s)
	if b.State(g.since()) != faas.BreakerClosed {
		s.resLocked("breaker.closes")
		g.event("breaker-close")
	}
	b.OnSuccess()
	s.syncBreakerGaugeLocked(b, g.since())
}

// event bumps the resilience-event metric (failure paths only).
func (g *Gateway) event(kind string) {
	if ins := g.obs.Load(); ins != nil {
		ins.events.With(kind).Inc()
	}
}

// syncBreakerGaugeLocked refreshes the breaker-state gauge. Caller
// holds s.mu.
func (s *shard) syncBreakerGaugeLocked(b *faas.Breaker, at time.Duration) {
	if m := s.m.Load(); m != nil && b != nil {
		m.breakerSt.Set(float64(b.State(at)))
	}
}

// ResilienceCounters sums the per-shard failure/breaker counters
// (boot.failures, proxy.failures, breaker.trips, breaker.closes,
// breaker.rejected) plus the gateway-wide watchdog accept-loop and
// generic-boot failures. Counters with zero value are absent.
func (g *Gateway) ResilienceCounters() map[string]int {
	out := make(map[string]int)
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		for k, v := range s.res {
			out[k] += v
		}
		s.mu.Unlock()
	}
	if n := g.cold.serveErrs.Load(); n > 0 {
		out["watchdog.serve_errors"] += int(n)
	}
	if n := g.cold.bootErrs.Load(); n > 0 {
		out["prefork.boot_failures"] += int(n)
	}
	return out
}

// WarmAges reports each function's idle warm-instance ages at now, in
// seconds, oldest first.
func (g *Gateway) WarmAges(now time.Time) map[string][]float64 {
	out := make(map[string][]float64)
	for _, s := range g.snapshotShards() {
		s.mu.Lock()
		if len(s.idle) == 0 {
			s.mu.Unlock()
			continue
		}
		ages := make([]float64, 0, len(s.idle))
		for _, inst := range s.idle {
			ages = append(ages, now.Sub(inst.idleSince).Seconds())
		}
		s.mu.Unlock()
		sort.Sort(sort.Reverse(sort.Float64Slice(ages)))
		out[s.name] = ages
	}
	return out
}
