package live

import (
	"sort"
	"time"

	"hotc/internal/faas"
	"hotc/internal/obs"
)

// instruments bundles the live gateway's metric families. nil (the
// default) means uninstrumented.
type instruments struct {
	requests     *obs.CounterVec   // hotc_requests_total{function, outcome}
	starts       *obs.CounterVec   // hotc_starts_total{mode}
	latency      *obs.HistogramVec // hotc_request_latency_ms{function}
	warm         *obs.GaugeVec     // hotc_live_warm_instances{function}
	events       *obs.CounterVec   // hotc_resilience_events_total{kind}
	breakerState *obs.GaugeVec     // hotc_breaker_state{key}

	// Controller families share the simulated control loop's names
	// (core.HotC.Instrument), so dashboards read either substrate.
	ctlDemand   *obs.GaugeVec // hotc_ctl_demand{key}
	ctlForecast *obs.GaugeVec // hotc_ctl_forecast{key}
	ctlTarget   *obs.GaugeVec // hotc_ctl_target{key}
	ctlPrewarm  *obs.Counter  // hotc_ctl_prewarm_total
	ctlRetire   *obs.Counter  // hotc_ctl_retire_total
	ctlTicks    *obs.Counter  // hotc_ctl_ticks_total
	poolRetired *obs.Counter  // hotc_pool_retired_total
}

// Instrument registers the gateway's metric families on the registry.
// The families reuse the simulated pipeline's names, so dashboards
// built against a sim dump read hotcd's /metrics unchanged. Calling
// with nil turns instrumentation off.
func (g *Gateway) Instrument(reg *obs.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if reg == nil {
		g.obs = nil
		return
	}
	g.obs = &instruments{
		requests: reg.CounterVec("hotc_requests_total",
			"Requests handled by the gateway, by function and outcome (ok|error|rejected).",
			"function", "outcome"),
		starts: reg.CounterVec("hotc_starts_total",
			"Watchdog instance starts behind served requests, by mode (warm = reused, cold = fresh boot).",
			"mode"),
		latency: reg.HistogramVec("hotc_request_latency_ms",
			"End-to-end request latency at the gateway, in milliseconds.",
			obs.DefaultLatencyBucketsMS(), "function"),
		warm: reg.GaugeVec("hotc_live_warm_instances",
			"Idle warm watchdog instances per function.",
			"function"),
		events: reg.CounterVec("hotc_resilience_events_total",
			"Resilience events on the request path, by kind.",
			"kind"),
		breakerState: reg.GaugeVec("hotc_breaker_state",
			"Per-function circuit breaker state (0 closed, 1 open, 2 half-open).",
			"key"),
		ctlDemand: reg.GaugeVec("hotc_ctl_demand",
			"Observed peak concurrent demand per runtime key in the last control interval.",
			"key"),
		ctlForecast: reg.GaugeVec("hotc_ctl_forecast",
			"Demand forecast per runtime key for the next control interval.",
			"key"),
		ctlTarget: reg.GaugeVec("hotc_ctl_target",
			"Pool size target per runtime key after headroom, floors and hysteresis.",
			"key"),
		ctlPrewarm: reg.Counter("hotc_ctl_prewarm_total",
			"Containers the control loop asked the pool to pre-warm."),
		ctlRetire: reg.Counter("hotc_ctl_retire_total",
			"Containers the control loop retired on scale-down."),
		ctlTicks: reg.Counter("hotc_ctl_ticks_total",
			"Control loop ticks executed."),
		poolRetired: reg.Counter("hotc_pool_retired_total",
			"Containers stopped by scale-down, cap eviction or keep-alive expiry."),
	}
}

// EnableBreaker arms a per-function circuit breaker: after threshold
// consecutive boot/proxy failures the function fast-fails with 503
// until openFor elapses and a probe succeeds. Call before traffic;
// threshold <= 0 disables breaking (the default).
func (g *Gateway) EnableBreaker(threshold int, openFor time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.breakerThreshold = threshold
	g.breakerOpenFor = openFor
}

// since is the gateway's monotonic clock for the breaker: offsets from
// the gateway's construction, matching the simulated breaker's virtual
// time contract.
func (g *Gateway) since() time.Duration { return time.Since(g.epoch) }

// breakerLocked lazily builds the breaker guarding a function; nil when
// breaking is disabled. Caller holds g.mu.
func (g *Gateway) breakerLocked(name string) *faas.Breaker {
	if g.breakerThreshold <= 0 {
		return nil
	}
	b := g.breakers[name]
	if b == nil {
		b = faas.NewBreaker(g.breakerThreshold, g.breakerOpenFor)
		g.breakers[name] = b
	}
	return b
}

// breakerAllow reports whether a request for the function may proceed,
// counting and fast-fail accounting when it may not.
func (g *Gateway) breakerAllow(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.breakerLocked(name)
	if b == nil {
		return true
	}
	ok := b.Allow(g.since())
	if !ok {
		g.res["breaker.rejected"]++
		g.eventLocked("breaker-rejected")
	}
	g.syncBreakerGaugeLocked(name, b)
	return ok
}

// breakerFailure feeds a backend failure (boot or proxy) into the
// function's breaker and bumps the named resilience counter.
func (g *Gateway) breakerFailure(name, counter string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.res[counter]++
	g.eventLocked(counter)
	b := g.breakerLocked(name)
	if b == nil {
		return
	}
	if b.OnFailure(g.since()) {
		g.res["breaker.trips"]++
		g.eventLocked("breaker-open")
	}
	g.syncBreakerGaugeLocked(name, b)
}

// breakerSuccess records a successful proxy round-trip.
func (g *Gateway) breakerSuccess(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.breakerLocked(name)
	if b == nil {
		return
	}
	if b.State(g.since()) != faas.BreakerClosed {
		g.res["breaker.closes"]++
		g.eventLocked("breaker-close")
	}
	b.OnSuccess()
	g.syncBreakerGaugeLocked(name, b)
}

// eventLocked bumps the resilience-event metric. Caller holds g.mu.
func (g *Gateway) eventLocked(kind string) {
	if g.obs != nil {
		g.obs.events.With(kind).Inc()
	}
}

func (g *Gateway) syncBreakerGaugeLocked(name string, b *faas.Breaker) {
	if g.obs != nil && b != nil {
		g.obs.breakerState.With(name).Set(float64(b.State(g.since())))
	}
}

// syncWarmGaugeLocked refreshes the warm-pool gauge for a function.
// Caller holds g.mu.
func (g *Gateway) syncWarmGaugeLocked(name string) {
	if g.obs != nil {
		g.obs.warm.With(name).Set(float64(len(g.idle[name])))
	}
}

// observe emits the per-request latency and outcome counters.
func (g *Gateway) observe(name, outcome string, start time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.obs == nil {
		return
	}
	g.obs.requests.With(name, outcome).Inc()
	g.obs.latency.With(name).ObserveDuration(time.Since(start))
}

// ResilienceCounters snapshots the gateway's failure/breaker counters
// (boot.failures, proxy.failures, breaker.trips, breaker.closes,
// breaker.rejected). Counters with zero value are absent.
func (g *Gateway) ResilienceCounters() map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int, len(g.res))
	for k, v := range g.res {
		out[k] = v
	}
	return out
}

// WarmAges reports each function's idle warm-instance ages at now, in
// seconds, oldest first.
func (g *Gateway) WarmAges(now time.Time) map[string][]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string][]float64, len(g.idle))
	for name, list := range g.idle {
		if len(list) == 0 {
			continue
		}
		ages := make([]float64, 0, len(list))
		for _, inst := range list {
			ages = append(ages, now.Sub(inst.idleSince).Seconds())
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ages)))
		out[name] = ages
	}
	return out
}
