package live

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotc/internal/obs"
	"hotc/internal/predictor"
)

// countDials wraps the gateway's transport dialer so tests can assert
// how many TCP connections the proxy path actually opens.
func countDials(g *Gateway) *atomic.Int64 {
	var dials atomic.Int64
	base := g.transport.DialContext
	if base == nil {
		d := &net.Dialer{}
		base = d.DialContext
	}
	g.transport.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		dials.Add(1)
		return base(ctx, network, addr)
	}
	return &dials
}

// The gateway's dedicated transport must keep one connection per warm
// watchdog alive across requests. Under parallel load on one function,
// the dial count stays in the order of the instances booted — not the
// requests served — which is exactly what the default transport's
// 2-per-host / 100-total idle caps break once the pool grows.
func TestTransportReusesWatchdogConnections(t *testing.T) {
	g := NewGateway(true)
	dials := countDials(g)
	if err := g.Register(Function{
		Name:    "f",
		Handler: func(b []byte) ([]byte, error) { return b, nil },
	}); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	var fail atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := httptest.NewRequest("POST", "/function/f", strings.NewReader("x"))
				rec := httptest.NewRecorder()
				g.handle(rec, req)
				if rec.Code != 200 {
					fail.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := fail.Load(); n > 0 {
		t.Fatalf("%d requests failed", n)
	}

	st := g.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("Requests = %d, want %d", st.Requests, workers*perWorker)
	}
	// Every cold boot needs a first dial; after that, keep-alive must
	// carry the load. Allow slack for requests racing a connection's
	// return to the idle pool.
	limit := int64(st.ColdStarts + 2*workers)
	if got := dials.Load(); got > limit {
		t.Fatalf("transport dialed %d times for %d requests over %d instances (limit %d): keep-alive reuse is broken",
			got, st.Requests, st.ColdStarts, limit)
	}
}

// Connection reuse must survive the error path too: a handler that
// always fails produces watchdog 500s, and the gateway must fully
// drain each error body before releasing the connection — otherwise
// the transport abandons it and every failed request dials anew.
func TestTransportReusesConnectionsOnErrorPath(t *testing.T) {
	g := NewGateway(true)
	dials := countDials(g)
	if err := g.Register(Function{
		Name:    "f",
		Handler: func(b []byte) ([]byte, error) { return nil, fmt.Errorf("boom") },
	}); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	var wrongStatus atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := httptest.NewRequest("POST", "/function/f", strings.NewReader("x"))
				rec := httptest.NewRecorder()
				g.handle(rec, req)
				if rec.Code != 500 {
					wrongStatus.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := wrongStatus.Load(); n > 0 {
		t.Fatalf("%d requests did not surface the handler's 500", n)
	}

	st := g.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("Requests = %d, want %d", st.Requests, workers*perWorker)
	}
	// A handler error is the function's fault, not the instance's: the
	// instance must return to the warm pool, so later requests reuse it.
	if st.Reused == 0 {
		t.Fatal("no instance reuse across handler errors: error responses must release, not discard")
	}
	limit := int64(st.ColdStarts + 2*workers)
	if got := dials.Load(); got > limit {
		t.Fatalf("transport dialed %d times for %d failing requests over %d instances (limit %d): error bodies are not drained before release",
			got, st.Requests, st.ColdStarts, limit)
	}
}

// Aggregate snapshots must not stop the world: Stats, warm counts,
// resilience counters, warm ages and prediction traces are hammered
// while request traffic flows. Run under -race; the assertions are
// about liveness and internal consistency, the race detector does the
// rest.
func TestSnapshotsDuringTraffic(t *testing.T) {
	g := NewGateway(true)
	g.Instrument(obs.New())
	g.EnableBreaker(3, time.Second)
	g.EnableControl(ControlConfig{
		NewPredictor: func() predictor.Predictor { return predictor.Default() },
		Interval:     time.Hour, JanitorInterval: time.Hour,
		KeepAlive: time.Minute, MaxWarm: 4,
	})
	names := make([]string, 3)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		if err := g.Register(Function{
			Name:    names[i],
			Handler: func(b []byte) ([]byte, error) { return b, nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Start(); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(w+i)%len(names)]
				req := httptest.NewRequest("POST", "/function/"+name, strings.NewReader("x"))
				g.handle(httptest.NewRecorder(), req)
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	var snapshots int
	for time.Now().Before(deadline) {
		st := g.Stats()
		if st.Requests < 0 || st.ColdStarts+st.Reused > st.Requests {
			t.Errorf("inconsistent stats snapshot: %+v", st)
			break
		}
		for _, name := range names {
			g.WarmInstances(name)
		}
		g.ResilienceCounters()
		g.WarmAges(time.Now())
		g.PredictionTraces()
		g.Forecasts()
		snapshots++
	}
	close(stop)
	wg.Wait()
	if snapshots == 0 {
		t.Fatal("no snapshots completed while traffic flowed: Stats blocked on the request path")
	}
}

// Register must be safe while requests, controller ticks and other
// Registers run: new functions join live, re-registering swaps the
// handler in place, and the per-function controller spawn does not
// race Stop. Run under -race.
func TestConcurrentRegisterDuringTraffic(t *testing.T) {
	g, clk, _ := startControlled(t,
		ControlConfig{NewPredictor: naiveFactory, KeepAlive: time.Minute, MaxWarm: 2},
		echoFn("f0", 0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("f%d", i%4)
				req := httptest.NewRequest("POST", "/function/"+name, strings.NewReader("x"))
				g.handle(httptest.NewRecorder(), req)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			g.controlOnce("f0", clk.Advance(time.Millisecond))
			g.janitorOnce(clk.Now())
		}
	}()

	// Racing registrations: three brand-new names (each spawns a
	// controller) and a handler swap on the live one.
	var reg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		reg.Add(1)
		go func(i int) {
			defer reg.Done()
			if err := g.Register(echoFn(fmt.Sprintf("f%d", i), 0)); err != nil {
				t.Errorf("register f%d: %v", i, err)
			}
		}(i)
	}
	reg.Add(1)
	go func() {
		defer reg.Done()
		if err := g.Register(Function{
			Name:    "f0",
			Handler: func(b []byte) ([]byte, error) { return append(b, '!'), nil },
		}); err != nil {
			t.Errorf("re-register f0: %v", err)
		}
	}()
	reg.Wait()
	time.Sleep(50 * time.Millisecond) // let traffic hit the new shards
	close(stop)
	wg.Wait()

	// A swapped handler only takes effect on fresh boots — warm
	// instances keep the handler they booted with — so expire the warm
	// pool before asserting.
	g.janitorOnce(clk.Advance(2 * time.Minute))

	// All four functions must now be live and the swapped handler in
	// effect.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("f%d", i)
		req := httptest.NewRequest("POST", "/function/"+name, strings.NewReader("x"))
		rec := httptest.NewRecorder()
		g.handle(rec, req)
		if rec.Code != 200 {
			t.Fatalf("%s after concurrent register: status %d: %s", name, rec.Code, rec.Body)
		}
		if name == "f0" && rec.Body.String() != "x!" {
			t.Fatalf("f0 handler swap not in effect: body %q", rec.Body)
		}
	}
}
