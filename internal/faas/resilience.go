package faas

import (
	"fmt"
	"time"

	"hotc/internal/rng"
	"hotc/internal/simclock"
)

// Backoff computes retry delays: exponential growth from Base by
// Factor, capped at Max, with optional seeded jitter so synchronized
// failures do not retry in lockstep. The zero value is unusable; fill
// in Base or use DefaultBackoff.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Factor multiplies the delay per attempt (default 2 when <= 1).
	Factor float64
	// Max caps the delay (0 = uncapped).
	Max time.Duration
	// JitterFrac spreads each delay uniformly over
	// [d*(1-JitterFrac), d*(1+JitterFrac)]. Requires Rng.
	JitterFrac float64
	// Rng supplies jitter draws; nil disables jitter.
	Rng *rng.Source
}

// DefaultBackoff is the schedule the gateway uses when none is
// configured: 100ms doubling to a 5s cap, no jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: 5 * time.Second}
}

// Delay returns the delay before retry number attempt (0-based: the
// first retry waits Base).
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.JitterFrac > 0 && b.Rng != nil {
		frac := b.JitterFrac
		if frac > 1 {
			frac = 1
		}
		// Uniform in [1-frac, 1+frac).
		d *= 1 - frac + 2*frac*b.Rng.Float64()
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

// BreakerState is the circuit-breaker state.
type BreakerState int

const (
	// BreakerClosed passes requests through, counting consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects the guarded operation until the open window
	// elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe through; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("faas.BreakerState(%d)", int(s))
	}
}

// Breaker is a per-runtime-key circuit breaker over container
// acquisition. It trips open after Threshold consecutive failures,
// rejects while open, half-opens after OpenFor of virtual time, and
// closes again on a successful probe. Like everything on the
// simulation goroutine it needs no locking.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	Threshold int
	// OpenFor is the open window before a probe is allowed.
	OpenFor time.Duration

	state    BreakerState
	fails    int
	openedAt simclock.Time
	probing  bool
	trips    int
}

// NewBreaker returns a closed breaker. threshold <= 0 defaults to 5;
// openFor <= 0 defaults to 30s.
func NewBreaker(threshold int, openFor time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if openFor <= 0 {
		openFor = 30 * time.Second
	}
	return &Breaker{Threshold: threshold, OpenFor: openFor}
}

// State reports the breaker state at the given virtual time (an open
// breaker whose window has elapsed reads as half-open).
func (b *Breaker) State(now simclock.Time) BreakerState {
	if b.state == BreakerOpen && now >= b.openedAt+b.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips reports how many times the breaker has tripped open.
func (b *Breaker) Trips() int { return b.trips }

// RemainingOpen reports how much of the open window is left at now —
// the honest Retry-After for a fast-failed request. Zero when the
// breaker is closed or already due for a half-open probe.
func (b *Breaker) RemainingOpen(now simclock.Time) time.Duration {
	if b.state == BreakerOpen && now < b.openedAt+b.OpenFor {
		return b.openedAt + b.OpenFor - now
	}
	return 0
}

// Allow reports whether the guarded operation may proceed at now.
// While open it returns false; once the open window elapses it admits
// exactly one probe (half-open) and rejects the rest until the probe
// resolves via OnSuccess or OnFailure.
func (b *Breaker) Allow(now simclock.Time) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now >= b.openedAt+b.OpenFor {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false // a probe is already in flight
		}
		b.probing = true
		return true
	}
	return true
}

// OnSuccess records a successful operation: it resets the failure
// count and closes a half-open breaker.
func (b *Breaker) OnSuccess() {
	b.fails = 0
	b.probing = false
	b.state = BreakerClosed
}

// OnFailure records a failed operation at now. In the closed state it
// trips the breaker once Threshold consecutive failures accumulate; in
// the half-open state the failed probe re-opens immediately. It
// reports whether this failure tripped the breaker open.
func (b *Breaker) OnFailure(now simclock.Time) bool {
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.state = BreakerOpen
		b.openedAt = now
		b.trips++
		return true
	case BreakerOpen:
		return false
	default:
		b.fails++
		if b.fails >= b.Threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.fails = 0
			b.trips++
			return true
		}
		return false
	}
}
