package faas

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/policy"
	"hotc/internal/pool"
	"hotc/internal/simclock"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

type fixture struct {
	sched *simclock.Scheduler
	eng   *container.Engine
	reg   *image.Registry
	gw    *Gateway
}

func newFixture(t *testing.T, mk func(eng *container.Engine) Provider) *fixture {
	t.Helper()
	sched := simclock.New()
	reg := image.StandardCatalog()
	eng := container.NewEngine(sched, costmodel.New(costmodel.Server()), reg, image.NewCache(), nil)
	gw := NewGateway(eng, mk(eng))
	return &fixture{sched: sched, eng: eng, reg: reg, gw: gw}
}

func coldProvider(eng *container.Engine) Provider { return policy.NewNoReuse(eng) }

func keepAliveProvider(eng *container.Engine) Provider {
	return policy.NewFixedKeepAlive(pool.New(eng, pool.Options{}), time.Hour)
}

func (f *fixture) deployQR(t *testing.T, name string, lang workload.Language) Function {
	t.Helper()
	fn := Function{
		Name:    name,
		Runtime: config.Runtime{Image: "python:3.8"},
		App:     workload.QRApp(lang),
	}
	resolver := ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, f.reg)
	})
	if err := f.gw.Deploy(fn, resolver); err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestDeployValidation(t *testing.T) {
	f := newFixture(t, coldProvider)
	resolver := ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, f.reg)
	})
	if err := f.gw.Deploy(Function{}, resolver); err == nil {
		t.Fatal("nameless function deployed")
	}
	if err := f.gw.Deploy(Function{Name: "x", Runtime: config.Runtime{Image: "nope:1"},
		App: workload.QRApp(workload.Go)}, resolver); err == nil {
		t.Fatal("unresolvable image deployed")
	}
	if err := f.gw.Deploy(Function{Name: "x", Runtime: config.Runtime{Image: "python:3.8"}},
		resolver); err == nil {
		t.Fatal("invalid app deployed")
	}
}

func TestFunctionsListing(t *testing.T) {
	f := newFixture(t, coldProvider)
	f.deployQR(t, "zeta", workload.Python)
	f.deployQR(t, "alpha", workload.Python)
	fns := f.gw.Functions()
	if len(fns) != 2 || fns[0] != "alpha" {
		t.Fatalf("Functions = %v", fns)
	}
	if _, ok := f.gw.Spec("alpha"); !ok {
		t.Fatal("spec missing")
	}
	if _, ok := f.gw.Spec("nope"); ok {
		t.Fatal("phantom spec")
	}
}

func TestHandleUnknownFunction(t *testing.T) {
	f := newFixture(t, coldProvider)
	var res Result
	f.gw.Handle("ghost", trace.Request{}, func(r Result) { res = r })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("unknown function served")
	}
}

// §III.A: timestamps are ordered (1) <= (2) <= (3) <= (4) <= (5) <= (6),
// and for a cold request initiation (2->3) dominates the total.
func TestTimestampOrderingAndInitiationDominance(t *testing.T) {
	f := newFixture(t, coldProvider)
	f.deployQR(t, "qr", workload.Python)
	results, err := Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	ts := r.Timestamps
	ordered := ts.GatewayIn <= ts.WatchdogIn &&
		ts.WatchdogIn <= ts.FuncStart &&
		ts.FuncStart <= ts.FuncStop &&
		ts.FuncStop <= ts.WatchdogOut &&
		ts.WatchdogOut <= ts.ClientOut
	if !ordered {
		t.Fatalf("timestamps out of order: %+v", ts)
	}
	if ts.Initiation() < ts.Execution() {
		t.Fatalf("cold initiation %v should dominate execution %v", ts.Initiation(), ts.Execution())
	}
	if ts.Total() != ts.Initiation()+ts.Execution()+ts.Forwarding() {
		t.Fatal("phase decomposition does not sum to total")
	}
}

func TestColdProviderNeverReuses(t *testing.T) {
	f := newFixture(t, coldProvider)
	f.deployQR(t, "qr", workload.Python)
	sched := trace.Serial{Interval: 30 * time.Second, Count: 5}.Generate()
	results, err := Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Reused {
			t.Fatalf("request %d reused under cold policy", i)
		}
	}
	// All containers torn down afterwards.
	if live := f.eng.Live(); live != 0 {
		t.Fatalf("%d containers leaked", live)
	}
}

func TestKeepAliveReusesAfterFirst(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	f.deployQR(t, "qr", workload.Python)
	sched := trace.Serial{Interval: 30 * time.Second, Count: 5}.Generate()
	results, err := Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Reused {
		t.Fatal("first request cannot reuse")
	}
	for i, r := range results[1:] {
		if !r.Reused {
			t.Fatalf("request %d did not reuse", i+1)
		}
	}
	// Warm latency is dramatically below cold latency (Fig. 12a).
	cold := results[0].Timestamps.Total()
	warm := results[4].Timestamps.Total()
	if float64(warm) > 0.5*float64(cold) {
		t.Fatalf("warm %v should be far below cold %v", warm, cold)
	}
}

func TestRunPreservesArrivalOrder(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	f.deployQR(t, "qr", workload.Python)
	sched := trace.Parallel{Threads: 4, Interval: time.Second, Rounds: 3}.Generate()
	results, err := Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sched) {
		t.Fatalf("results = %d, want %d", len(results), len(sched))
	}
	for i, r := range results {
		if r.Request != sched[i] {
			t.Fatalf("result %d out of order", i)
		}
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
}

func TestParallelSameInstantRequestsGetDistinctContainers(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	f.deployQR(t, "qr", workload.Python)
	// Ten simultaneous arrivals: no reuse possible on the first round.
	sched := trace.Parallel{Threads: 10, Interval: time.Second, Rounds: 1}.Generate()
	results, err := Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Reused {
			t.Fatalf("first-round request %d reused", i)
		}
	}
	if f.eng.Live() != 10 {
		t.Fatalf("live = %d, want 10", f.eng.Live())
	}
}

func TestMaxConcurrencySerializes(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	fn := Function{
		Name:           "limited",
		Runtime:        config.Runtime{Image: "python:3.8"},
		App:            workload.QRApp(workload.Python),
		MaxConcurrency: 1,
	}
	resolver := ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, f.reg)
	})
	if err := f.gw.Deploy(fn, resolver); err != nil {
		t.Fatal(err)
	}
	// Four simultaneous arrivals on a single-slot function.
	sched := []trace.Request{{At: 0}, {At: 0}, {At: 0}, {At: 0}}
	results, err := Run(f.gw, sched, func(int) string { return "limited" })
	if err != nil {
		t.Fatal(err)
	}
	// Executions must not overlap: sort by FuncStart and check each
	// starts after the previous stopped.
	rs := append([]Result(nil), results...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Timestamps.FuncStart < rs[j].Timestamps.FuncStart })
	for i := 1; i < len(rs); i++ {
		if rs[i].Timestamps.FuncStart < rs[i-1].Timestamps.FuncStop {
			t.Fatalf("executions overlap: %v starts before %v stops",
				rs[i].Timestamps.FuncStart, rs[i-1].Timestamps.FuncStop)
		}
	}
	// Later requests queued: their total latency includes the wait.
	if rs[3].Timestamps.Total() <= rs[0].Timestamps.Total() {
		t.Fatal("queued request should observe higher latency")
	}
	if f.gw.QueuedPeak("limited") < 2 {
		t.Fatalf("queued peak = %d, want >= 2", f.gw.QueuedPeak("limited"))
	}
	// With keep-alive reuse and serialization the pool stays tiny: the
	// first request boots one container, and at most one more boots
	// while the first is in post-request volume cleanup when the next
	// queued request is admitted.
	if f.eng.Live() > 2 {
		t.Fatalf("live = %d, want <= 2 (serialized reuse)", f.eng.Live())
	}
	reused := 0
	for _, r := range results {
		if r.Reused {
			reused++
		}
	}
	if reused < 2 {
		t.Fatalf("reused = %d of 4, want >= 2", reused)
	}
}

func TestMaxConcurrencySlotFreedOnError(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	fn := Function{
		Name:           "limited",
		Runtime:        config.Runtime{Image: "python:3.8"},
		App:            workload.QRApp(workload.Python),
		MaxConcurrency: 1,
	}
	resolver := ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, f.reg)
	})
	if err := f.gw.Deploy(fn, resolver); err != nil {
		t.Fatal(err)
	}
	// First request fails at exec; the slot must free so the second
	// (queued) request still runs.
	calls := 0
	f.eng.ExecHook = func(*container.Container, workload.App) error {
		calls++
		if calls == 1 {
			return errBoom
		}
		return nil
	}
	sched := []trace.Request{{At: 0}, {At: 0}}
	results, err := Run(f.gw, sched, func(int) string { return "limited" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("first request should have failed")
	}
	if results[1].Err != nil {
		t.Fatalf("second request should succeed after slot release: %v", results[1].Err)
	}
}

func TestUnlimitedConcurrencyByDefault(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	f.deployQR(t, "qr", workload.Python)
	sched := []trace.Request{{At: 0}, {At: 0}, {At: 0}}
	results, err := Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	// All three run concurrently in distinct containers.
	if f.eng.Live() != 3 {
		t.Fatalf("live = %d, want 3", f.eng.Live())
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if f.gw.QueuedPeak("qr") != 0 {
		t.Fatal("unlimited function should never queue")
	}
}

var errBoom = errors.New("boom")

func TestAcquireRetryRecoversTransientFailure(t *testing.T) {
	f := newFixture(t, coldProvider)
	f.deployQR(t, "qr", workload.Python)
	// First create fails (momentary resource exhaustion); the retry
	// succeeds.
	calls := 0
	f.eng.CreateHook = func(container.Spec) error {
		calls++
		if calls == 1 {
			return errBoom
		}
		return nil
	}
	results, err := Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("request failed despite retry: %v", results[0].Err)
	}
	if f.gw.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", f.gw.Retries())
	}
	// The retry backoff shows up in the latency.
	if results[0].Timestamps.Total() < f.gw.RetryBackoff {
		t.Fatal("retry backoff not reflected in latency")
	}
}

func TestAcquireRetryExhausted(t *testing.T) {
	f := newFixture(t, coldProvider)
	f.deployQR(t, "qr", workload.Python)
	f.eng.CreateHook = func(container.Spec) error { return errBoom }
	f.gw.MaxAcquireRetries = 2
	results, err := Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("request succeeded with a permanently failing engine")
	}
	if f.gw.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", f.gw.Retries())
	}
}

func TestAcquireRetryDisabled(t *testing.T) {
	f := newFixture(t, coldProvider)
	f.deployQR(t, "qr", workload.Python)
	f.eng.CreateHook = func(container.Spec) error { return errBoom }
	f.gw.MaxAcquireRetries = 0
	results, err := Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || f.gw.Retries() != 0 {
		t.Fatalf("err=%v retries=%d", results[0].Err, f.gw.Retries())
	}
}

func TestHandleRequiresCallback(t *testing.T) {
	f := newFixture(t, coldProvider)
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback accepted")
		}
	}()
	f.gw.Handle("x", trace.Request{}, nil)
}

// Property: under arbitrary schedules, policies and concurrency caps,
// every successful result has monotone timestamps, a consistent phase
// decomposition, and a latency at least the warm floor.
func TestPropertyTimestampInvariants(t *testing.T) {
	prop := func(arrivals []uint16, policyPick, capPick uint8) bool {
		var mk func(eng *container.Engine) Provider
		if policyPick%2 == 0 {
			mk = coldProvider
		} else {
			mk = keepAliveProvider
		}
		f := newFixture(&testing.T{}, mk)
		fn := Function{
			Name:           "qr",
			Runtime:        config.Runtime{Image: "python:3.8"},
			App:            workload.QRApp(workload.Python),
			MaxConcurrency: int(capPick % 4), // 0 = unlimited
		}
		resolver := ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
			return container.ResolveSpec(rt, f.reg)
		})
		if err := f.gw.Deploy(fn, resolver); err != nil {
			return false
		}
		if len(arrivals) > 30 {
			arrivals = arrivals[:30]
		}
		var schedule []trace.Request
		for i, a := range arrivals {
			schedule = append(schedule, trace.Request{
				At:    time.Duration(a%5000) * time.Millisecond,
				Round: i,
			})
		}
		sortRequests(schedule)
		results, err := Run(f.gw, schedule, func(int) string { return "qr" })
		if err != nil {
			return false
		}
		warmFloor := f.eng.Model().ExecCost(fn.App.Exec)
		for _, r := range results {
			if r.Err != nil {
				return false
			}
			ts := r.Timestamps
			ordered := ts.GatewayIn <= ts.WatchdogIn && ts.WatchdogIn <= ts.FuncStart &&
				ts.FuncStart <= ts.FuncStop && ts.FuncStop <= ts.WatchdogOut &&
				ts.WatchdogOut <= ts.ClientOut
			if !ordered {
				return false
			}
			if ts.Total() != ts.Initiation()+ts.Execution()+ts.Forwarding() {
				return false
			}
			if ts.Total() < warmFloor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sortRequests(reqs []trace.Request) {
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
}

func TestTimestampPhasesWarm(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	f.deployQR(t, "qr", workload.Python)
	sched := trace.Serial{Interval: time.Minute, Count: 2}.Generate()
	results, err := Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	warm := results[1].Timestamps
	// Warm initiation is only the watchdog shim: a tiny slice of total.
	if warm.Initiation() > warm.Execution() {
		t.Fatalf("warm initiation %v should be below execution %v", warm.Initiation(), warm.Execution())
	}
}
