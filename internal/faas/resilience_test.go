package faas

import (
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/rng"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

func TestBackoffDelaySchedule(t *testing.T) {
	cases := []struct {
		name    string
		b       Backoff
		attempt int
		want    time.Duration
	}{
		{"default first", DefaultBackoff(), 0, 100 * time.Millisecond},
		{"default second", DefaultBackoff(), 1, 200 * time.Millisecond},
		{"default third", DefaultBackoff(), 2, 400 * time.Millisecond},
		{"default capped", DefaultBackoff(), 10, 5 * time.Second},
		{"negative attempt clamps", DefaultBackoff(), -3, 100 * time.Millisecond},
		{"factor 3", Backoff{Base: time.Second, Factor: 3}, 2, 9 * time.Second},
		{"factor <= 1 defaults to 2", Backoff{Base: time.Second, Factor: 0.5}, 1, 2 * time.Second},
		{"uncapped", Backoff{Base: time.Millisecond, Factor: 2}, 20, 1 << 20 * time.Millisecond},
		{"cap below base", Backoff{Base: time.Second, Factor: 2, Max: 500 * time.Millisecond}, 0, 500 * time.Millisecond},
	}
	for _, c := range cases {
		if got := c.b.Delay(c.attempt); got != c.want {
			t.Errorf("%s: Delay(%d) = %v, want %v", c.name, c.attempt, got, c.want)
		}
	}
}

func TestBackoffJitterSeededAndBounded(t *testing.T) {
	mk := func() Backoff {
		return Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: 5 * time.Second,
			JitterFrac: 0.2, Rng: rng.New(42).Split("jitter")}
	}
	a, b := mk(), mk()
	sawDifferent := false
	for attempt := 0; attempt < 8; attempt++ {
		nominal := Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: 5 * time.Second}.Delay(attempt)
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v and %v", attempt, da, db)
		}
		lo := time.Duration(0.8 * float64(nominal))
		hi := time.Duration(1.2 * float64(nominal))
		if da < lo || da > hi {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, da, lo, hi)
		}
		if da != nominal {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Fatal("jitter never moved a delay off its nominal value")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, 10*time.Second)
	now := func(d time.Duration) time.Duration { return d }

	// Closed: failures below the threshold keep it closed.
	if !b.Allow(now(0)) {
		t.Fatal("fresh breaker should allow")
	}
	if b.OnFailure(now(1 * time.Second)) {
		t.Fatal("first failure tripped the breaker")
	}
	if b.OnFailure(now(2 * time.Second)) {
		t.Fatal("second failure tripped the breaker")
	}
	if b.State(now(2*time.Second)) != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State(now(2*time.Second)))
	}

	// Third consecutive failure trips it open.
	if !b.OnFailure(now(3 * time.Second)) {
		t.Fatal("threshold failure did not trip the breaker")
	}
	if b.State(now(3*time.Second)) != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d, want open/1", b.State(now(3*time.Second)), b.Trips())
	}
	if b.Allow(now(5 * time.Second)) {
		t.Fatal("open breaker allowed inside the window")
	}
	// A failure observed while open neither counts nor re-trips.
	if b.OnFailure(now(6 * time.Second)) {
		t.Fatal("failure while open reported a trip")
	}

	// Window elapsed: half-open, exactly one probe admitted.
	if b.State(now(13*time.Second)) != BreakerHalfOpen {
		t.Fatalf("state after window = %v, want half-open", b.State(now(13*time.Second)))
	}
	if !b.Allow(now(13 * time.Second)) {
		t.Fatal("probe rejected after the open window")
	}
	if b.Allow(now(13 * time.Second)) {
		t.Fatal("second probe admitted while the first is in flight")
	}

	// Successful probe closes the breaker.
	b.OnSuccess()
	if b.State(now(14*time.Second)) != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State(now(14*time.Second)))
	}
	if !b.Allow(now(14 * time.Second)) {
		t.Fatal("closed breaker should allow")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(1, 10*time.Second)
	if !b.OnFailure(0) {
		t.Fatal("threshold 1 should trip on the first failure")
	}
	if !b.Allow(11 * time.Second) {
		t.Fatal("probe rejected")
	}
	if !b.OnFailure(11 * time.Second) {
		t.Fatal("failed probe should re-trip the breaker")
	}
	if b.State(12*time.Second) != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state = %v trips = %d, want open/2", b.State(12*time.Second), b.Trips())
	}
	// The re-opened window is anchored at the probe failure.
	if b.Allow(20 * time.Second) {
		t.Fatal("window should have restarted at the probe failure")
	}
	if !b.Allow(22 * time.Second) {
		t.Fatal("second probe rejected after the restarted window")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(3, time.Second)
	b.OnFailure(0)
	b.OnFailure(0)
	b.OnSuccess()
	// The streak restarts: two more failures must not trip.
	if b.OnFailure(0) || b.OnFailure(0) {
		t.Fatal("breaker tripped on a broken streak")
	}
	if b.State(0) != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State(0))
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.Threshold != 5 || b.OpenFor != 30*time.Second {
		t.Fatalf("defaults = %d/%v, want 5/30s", b.Threshold, b.OpenFor)
	}
}

// Satellite: the acquire error contract. A request whose acquisition
// fails permanently must complete exactly once, with Err set, the
// client-out timestamp stamped, and its concurrency slot released.
func TestAcquireErrorContract(t *testing.T) {
	f := newFixture(t, coldProvider)
	fn := Function{
		Name:           "limited",
		Runtime:        config.Runtime{Image: "python:3.8"},
		App:            workload.QRApp(workload.Python),
		MaxConcurrency: 1,
	}
	resolver := ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, f.reg)
	})
	if err := f.gw.Deploy(fn, resolver); err != nil {
		t.Fatal(err)
	}
	f.gw.MaxAcquireRetries = 1
	// Creates fail until the fault "clears" mid-run: the first request
	// exhausts its retries, the second succeeds — proving the failed
	// request released its single concurrency slot.
	calls := 0
	f.eng.CreateHook = func(container.Spec) error {
		calls++
		if calls <= 2 {
			return errBoom
		}
		return nil
	}
	completions := 0
	var first Result
	f.gw.Handle("limited", trace.Request{At: 0}, func(r Result) { completions++; first = r })
	var second Result
	f.gw.Handle("limited", trace.Request{At: 0}, func(r Result) { second = r })
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if completions != 1 {
		t.Fatalf("first request completed %d times, want exactly once", completions)
	}
	if first.Err == nil {
		t.Fatal("first request should carry the acquire error")
	}
	if first.Timestamps.ClientOut == 0 {
		t.Fatal("failed request must stamp ClientOut (the client saw the error at a definite time)")
	}
	if len(first.Faults) == 0 || first.Faults[0].Kind != "acquire-retry" {
		t.Fatalf("faults = %+v, want an acquire-retry annotation", first.Faults)
	}
	if second.Err != nil {
		t.Fatalf("second request blocked or failed after the first errored: %v", second.Err)
	}
	if got := f.gw.ResilienceCounters().Get(CounterRequestsFailed); got != 1 {
		t.Fatalf("%s = %d, want 1", CounterRequestsFailed, got)
	}
}

func TestExecFallbackRecoversOnFreshContainer(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	f.deployQR(t, "qr", workload.Python)
	f.gw.ExecRetries = 2
	// The first exec crashes; the fallback acquires a fresh container
	// and succeeds.
	calls := 0
	f.eng.ExecHook = func(*container.Container, workload.App) error {
		calls++
		if calls == 1 {
			return errBoom
		}
		return nil
	}
	results, err := Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatalf("request failed despite exec fallback: %v", r.Err)
	}
	kinds := map[string]int{}
	for _, ev := range r.Faults {
		kinds[ev.Kind]++
	}
	if kinds["exec-fallback"] != 1 || kinds["quarantine"] != 1 {
		t.Fatalf("fault annotations = %v, want one exec-fallback and one quarantine", kinds)
	}
	c := f.gw.ResilienceCounters()
	if c.Get(CounterExecFallbacks) != 1 || c.Get(CounterQuarantines) != 1 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
	// Two containers were created: the crashed one (discarded) and its
	// replacement.
	if f.eng.Stats().Created != 2 {
		t.Fatalf("created = %d, want 2", f.eng.Stats().Created)
	}
}

func TestExecRetriesExhausted(t *testing.T) {
	f := newFixture(t, keepAliveProvider)
	f.deployQR(t, "qr", workload.Python)
	f.gw.ExecRetries = 1
	f.eng.ExecHook = func(*container.Container, workload.App) error { return errBoom }
	results, err := Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("request succeeded with a permanently crashing exec")
	}
	c := f.gw.ResilienceCounters()
	if c.Get(CounterExecFallbacks) != 1 {
		t.Fatalf("%s = %d, want 1 (one fallback, then give up)", CounterExecFallbacks, c.Get(CounterExecFallbacks))
	}
}

// failingProvider fails every Acquire while broken; once fixed it
// serves fresh containers. It stands in for a provider whose backing
// store (pool, registry) is down while the engine itself still works —
// the situation the breaker's degraded mode exists for.
type failingProvider struct {
	eng    *container.Engine
	broken bool
	calls  int
}

func (p *failingProvider) Name() string { return "failing" }

func (p *failingProvider) Acquire(spec container.Spec, done func(*container.Container, bool, config.Delta, error)) {
	p.calls++
	if p.broken {
		done(nil, false, config.Delta{}, errBoom)
		return
	}
	p.eng.Create(spec, func(c *container.Container, err error) {
		if err != nil {
			done(nil, false, config.Delta{}, err)
			return
		}
		if err := p.eng.Reserve(c); err != nil {
			done(nil, false, config.Delta{}, err)
			return
		}
		done(c, false, config.Delta{}, nil)
	})
}

func (p *failingProvider) Complete(c *container.Container, _ container.Spec) {
	p.eng.Stop(c, nil)
}

func TestBreakerDegradesAndRecovers(t *testing.T) {
	var fp *failingProvider
	f := newFixture(t, func(eng *container.Engine) Provider {
		fp = &failingProvider{eng: eng, broken: true}
		return fp
	})
	f.deployQR(t, "qr", workload.Python)
	f.gw.MaxAcquireRetries = 0
	f.gw.BreakerThreshold = 2
	f.gw.BreakerOpenFor = 30 * time.Second

	spec, _ := f.gw.Spec("qr")
	key := string(spec.Key())

	run := func(at time.Duration) Result {
		var res Result
		f.gw.Handle("qr", trace.Request{At: at}, func(r Result) { res = r })
		if err := f.sched.Run(); err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Two failures trip the breaker; both requests error (no retries).
	if r := run(0); r.Err == nil {
		t.Fatal("request 1 should fail")
	}
	if r := run(0); r.Err == nil {
		t.Fatal("request 2 should fail")
	}
	brk := f.gw.BreakerFor(key)
	if brk == nil || brk.Trips() != 1 {
		t.Fatalf("breaker = %+v, want tripped once", brk)
	}

	// Open: requests bypass the broken provider and degrade to direct
	// cold starts — they succeed at cold latency instead of erroring.
	providerCalls := fp.calls
	r := run(0)
	if r.Err != nil {
		t.Fatalf("degraded request failed: %v", r.Err)
	}
	if r.Reused {
		t.Fatal("degraded request cannot reuse")
	}
	if fp.calls != providerCalls {
		t.Fatal("degraded request touched the broken provider")
	}
	if got := f.gw.ResilienceCounters().Get(CounterDegradedRequests); got != 1 {
		t.Fatalf("%s = %d, want 1", CounterDegradedRequests, got)
	}
	degraded := false
	for _, ev := range r.Faults {
		if ev.Kind == "degraded-cold" {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("faults = %+v, want a degraded-cold annotation", r.Faults)
	}

	// Provider recovers; after the open window the next request is the
	// half-open probe, succeeds, and closes the breaker.
	fp.broken = false
	f.sched.Sleep(31 * time.Second)
	r = run(f.sched.Now())
	if r.Err != nil {
		t.Fatalf("probe request failed: %v", r.Err)
	}
	if brk.State(f.sched.Now()) != BreakerClosed {
		t.Fatalf("breaker = %v after good probe, want closed", brk.State(f.sched.Now()))
	}
	if got := f.gw.ResilienceCounters().Get(CounterBreakerCloses); got != 1 {
		t.Fatalf("%s = %d, want 1", CounterBreakerCloses, got)
	}
	// Degraded-path containers are dedicated: nothing may linger.
	if live := f.eng.Live(); live != 0 {
		t.Fatalf("%d containers leaked", live)
	}
}

func TestBreakerDisabledByDefault(t *testing.T) {
	f := newFixture(t, coldProvider)
	f.deployQR(t, "qr", workload.Python)
	f.eng.CreateHook = func(container.Spec) error { return errBoom }
	f.gw.MaxAcquireRetries = 0
	for i := 0; i < 10; i++ {
		var res Result
		f.gw.Handle("qr", trace.Request{}, func(r Result) { res = r })
		if err := f.sched.Run(); err != nil {
			t.Fatal(err)
		}
		if res.Err == nil {
			t.Fatalf("request %d succeeded with a failing engine and no breaker", i)
		}
	}
	spec, _ := f.gw.Spec("qr")
	if brk := f.gw.BreakerFor(string(spec.Key())); brk != nil {
		t.Fatal("breaker materialised despite BreakerThreshold=0")
	}
}
