// Package policy implements the industry reuse strategies the paper
// compares HotC against (§III.B):
//
//   - NoReuse — the default serverless behaviour: every request boots a
//     fresh container and tears it down afterwards.
//   - FixedKeepAlive — the AWS Lambda approach: "a fixed keep-alive
//     policy that retains the resources in memory for minutes after
//     function execution" (15 minutes in AWS).
//   - PeriodicWarmup — the Azure Logic approach of "periodically waking
//     up containers to keep warm".
//   - Histogram — the Serverless-in-the-Wild style policy of "using
//     different keep-alive values for workloads according to their
//     actual invocation frequency and patterns".
//
// All policies satisfy the faas.Provider interface; HotC itself lives
// in the core package.
package policy

import (
	"sort"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/pool"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

// NoReuse cold-starts every request and stops the container once the
// response is sent — the paper's default/baseline configuration.
type NoReuse struct {
	eng *container.Engine
}

// NewNoReuse returns the cold-start-always policy.
func NewNoReuse(eng *container.Engine) *NoReuse {
	if eng == nil {
		panic("policy: NewNoReuse requires an engine")
	}
	return &NoReuse{eng: eng}
}

// Name implements faas.Provider.
func (n *NoReuse) Name() string { return "default(cold-start)" }

// Acquire implements faas.Provider: always a fresh container.
func (n *NoReuse) Acquire(spec container.Spec, done func(*container.Container, bool, config.Delta, error)) {
	n.eng.Create(spec, func(c *container.Container, err error) {
		if err != nil {
			done(nil, false, config.Delta{}, err)
			return
		}
		if err := n.eng.Reserve(c); err != nil {
			done(nil, false, config.Delta{}, err)
			return
		}
		done(c, false, config.Delta{}, nil)
	})
}

// Complete implements faas.Provider: tear the container down.
func (n *NoReuse) Complete(c *container.Container, _ container.Spec) {
	n.eng.Stop(c, nil)
}

// Discard implements faas.Discarder. A cold-start policy tears every
// container down anyway, suspect or not.
func (n *NoReuse) Discard(c *container.Container, spec container.Spec) {
	n.Complete(c, spec)
}

// expiring is the shared keep-alive machinery: release containers back
// to a pool and stop them once they have sat idle for the policy's
// time-to-live.
type expiring struct {
	pool  *pool.Pool
	sched *simclock.Scheduler
	// ttl returns the keep-alive window for a key at completion time.
	ttl func(key config.Key) time.Duration
}

func (e *expiring) acquire(spec container.Spec, done func(*container.Container, bool, config.Delta, error)) {
	e.pool.Acquire(spec, done)
}

func (e *expiring) complete(c *container.Container, spec container.Spec) {
	e.pool.Release(c, func(error) {
		e.armExpiry(c, spec.Key())
	})
}

// discard quarantines a suspect container instead of re-pooling it.
func (e *expiring) discard(c *container.Container) {
	e.pool.Quarantine(c)
}

// armExpiry schedules an idle check at LastUsedAt + ttl. If the
// container was reused in the meantime the check re-arms itself for
// the new deadline; if it sits idle past the deadline it is stopped.
func (e *expiring) armExpiry(c *container.Container, key config.Key) {
	ttl := e.ttl(key)
	deadline := c.LastUsedAt + ttl
	now := e.sched.Now()
	var wait time.Duration
	if deadline > now {
		wait = deadline - now
	}
	e.sched.After(wait, func() {
		if c.State() == container.Stopped {
			return
		}
		if c.State() != container.Available {
			// Busy right now; the completion of that execution will
			// arm a fresh expiry.
			return
		}
		if e.sched.Now()-c.LastUsedAt >= e.ttl(key) {
			e.pool.Stop(c)
			return
		}
		e.armExpiry(c, key) // reused since; sleep again
	})
}

// FixedKeepAlive retains containers for a fixed window after their
// last use, like AWS Lambda's 15-minute policy.
type FixedKeepAlive struct {
	expiring
	window time.Duration
}

// DefaultKeepAlive is the AWS-style window the paper cites ("i.e., 15
// minutes in AWS Lambda").
const DefaultKeepAlive = 15 * time.Minute

// NewFixedKeepAlive returns the fixed-window policy over the pool.
func NewFixedKeepAlive(p *pool.Pool, window time.Duration) *FixedKeepAlive {
	if p == nil {
		panic("policy: NewFixedKeepAlive requires a pool")
	}
	if window <= 0 {
		window = DefaultKeepAlive
	}
	f := &FixedKeepAlive{window: window}
	f.pool = p
	f.sched = p.Engine().Scheduler()
	f.ttl = func(config.Key) time.Duration { return f.window }
	return f
}

// Name implements faas.Provider.
func (f *FixedKeepAlive) Name() string { return "fixed-keepalive(" + f.window.String() + ")" }

// Acquire implements faas.Provider.
func (f *FixedKeepAlive) Acquire(spec container.Spec, done func(*container.Container, bool, config.Delta, error)) {
	f.acquire(spec, done)
}

// Complete implements faas.Provider.
func (f *FixedKeepAlive) Complete(c *container.Container, spec container.Spec) {
	f.complete(c, spec)
}

// Discard implements faas.Discarder: the suspect container is
// quarantined, never re-entering the pool.
func (f *FixedKeepAlive) Discard(c *container.Container, _ container.Spec) {
	f.discard(c)
}

// PeriodicWarmup layers scheduled warm-up pings on a fixed keep-alive:
// a pinger per function refreshes idle containers (and boots one if
// none is live) every period, so the keep-alive window never lapses —
// at the price of paying for the pings.
type PeriodicWarmup struct {
	*FixedKeepAlive
	period  time.Duration
	pings   int
	stopped []func()
}

// NewPeriodicWarmup returns the warm-up policy. period is the ping
// interval; window the keep-alive window (both defaulted when zero).
func NewPeriodicWarmup(p *pool.Pool, period, window time.Duration) *PeriodicWarmup {
	if period <= 0 {
		period = 5 * time.Minute
	}
	return &PeriodicWarmup{
		FixedKeepAlive: NewFixedKeepAlive(p, window),
		period:         period,
	}
}

// Name implements faas.Provider.
func (w *PeriodicWarmup) Name() string { return "periodic-warmup(" + w.period.String() + ")" }

// Pings reports how many warm-up pings have fired.
func (w *PeriodicWarmup) Pings() int { return w.pings }

// StartPinger begins periodic warm-up for one function runtime. Call
// StopPingers to halt all pingers.
func (w *PeriodicWarmup) StartPinger(spec container.Spec, app workload.App) {
	key := spec.Key()
	stop := w.sched.Every(w.period, func() {
		w.pings++
		avail := w.pool.Available(key)
		if len(avail) == 0 {
			if w.pool.NumLive(key) == 0 {
				w.pool.Prewarm(spec, app, 1, nil)
			}
			return
		}
		// Refresh idle containers so the keep-alive window restarts —
		// the simulated equivalent of invoking the function with a
		// no-op warm-up request.
		now := w.sched.Now()
		for _, c := range avail {
			c.LastUsedAt = now
		}
	})
	w.stopped = append(w.stopped, stop)
}

// StopPingers halts every pinger started on this policy.
func (w *PeriodicWarmup) StopPingers() {
	for _, stop := range w.stopped {
		stop()
	}
	w.stopped = nil
}

// Histogram adapts the keep-alive window per runtime type from the
// observed inter-arrival times of its requests: the window is the 99th
// percentile inter-arrival time with a safety margin, clamped to
// [MinWindow, MaxWindow]. Frequently invoked functions stay warm; rare
// ones release their resources quickly.
type Histogram struct {
	expiring
	// MinWindow and MaxWindow clamp the adaptive keep-alive.
	MinWindow, MaxWindow time.Duration
	// Margin multiplies the p99 inter-arrival time.
	Margin float64

	lastArrival map[config.Key]simclock.Time
	iats        map[config.Key][]time.Duration
}

// NewHistogram returns the adaptive keep-alive policy.
func NewHistogram(p *pool.Pool) *Histogram {
	if p == nil {
		panic("policy: NewHistogram requires a pool")
	}
	h := &Histogram{
		MinWindow:   10 * time.Second,
		MaxWindow:   time.Hour,
		Margin:      1.2,
		lastArrival: make(map[config.Key]simclock.Time),
		iats:        make(map[config.Key][]time.Duration),
	}
	h.pool = p
	h.sched = p.Engine().Scheduler()
	h.ttl = h.windowFor
	return h
}

// Name implements faas.Provider.
func (h *Histogram) Name() string { return "histogram-keepalive" }

// windowFor computes the adaptive window for a key.
func (h *Histogram) windowFor(key config.Key) time.Duration {
	iats := h.iats[key]
	if len(iats) < 2 {
		return h.MaxWindow // not enough signal: be conservative
	}
	sorted := append([]time.Duration(nil), iats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted)-1) * 0.99)
	w := time.Duration(float64(sorted[idx]) * h.Margin)
	if w < h.MinWindow {
		w = h.MinWindow
	}
	if w > h.MaxWindow {
		w = h.MaxWindow
	}
	return w
}

// Acquire implements faas.Provider, recording the arrival for the
// key's inter-arrival histogram.
func (h *Histogram) Acquire(spec container.Spec, done func(*container.Container, bool, config.Delta, error)) {
	key := spec.Key()
	now := h.sched.Now()
	if last, ok := h.lastArrival[key]; ok {
		h.iats[key] = append(h.iats[key], now-last)
		// Bound history to the most recent observations.
		if len(h.iats[key]) > 4096 {
			h.iats[key] = h.iats[key][len(h.iats[key])-2048:]
		}
	}
	h.lastArrival[key] = now
	h.acquire(spec, done)
}

// Complete implements faas.Provider.
func (h *Histogram) Complete(c *container.Container, spec container.Spec) {
	h.complete(c, spec)
}

// Discard implements faas.Discarder: the suspect container is
// quarantined, never re-entering the pool.
func (h *Histogram) Discard(c *container.Container, _ container.Spec) {
	h.discard(c)
}
