package policy

import (
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/pool"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

type fixture struct {
	sched *simclock.Scheduler
	eng   *container.Engine
	reg   *image.Registry
	pool  *pool.Pool
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sched := simclock.New()
	reg := image.StandardCatalog()
	eng := container.NewEngine(sched, costmodel.New(costmodel.Server()), reg, image.NewCache(), nil)
	return &fixture{sched: sched, eng: eng, reg: reg, pool: pool.New(eng, pool.Options{})}
}

func (f *fixture) spec(t *testing.T, img string) container.Spec {
	t.Helper()
	s, err := container.ResolveSpec(config.Runtime{Image: img}, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// acquireExecComplete drives one full request through a policy.
func acquireExecComplete(t *testing.T, f *fixture, p interface {
	Acquire(container.Spec, func(*container.Container, bool, config.Delta, error))
	Complete(*container.Container, container.Spec)
}, spec container.Spec, app workload.App) (reused bool) {
	t.Helper()
	finished := false
	p.Acquire(spec, func(c *container.Container, r bool, _ config.Delta, err error) {
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		reused = r
		f.eng.Exec(c, app, func(_ time.Duration, err error) {
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			p.Complete(c, spec)
			finished = true
		})
	})
	// Step (not drain): periodic pingers keep the queue non-empty.
	for !finished {
		if !f.sched.Step() {
			t.Fatal("scheduler drained before request completed")
		}
	}
	f.sched.Sleep(time.Second) // settle post-completion housekeeping
	return reused
}

func TestNoReuseStopsEverything(t *testing.T) {
	f := newFixture(t)
	p := NewNoReuse(f.eng)
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)
	for i := 0; i < 3; i++ {
		if reused := acquireExecComplete(t, f, p, spec, app); reused {
			t.Fatalf("request %d reused under NoReuse", i)
		}
	}
	if f.eng.Live() != 0 {
		t.Fatalf("NoReuse leaked %d containers", f.eng.Live())
	}
	if f.eng.Stats().Created != 3 || f.eng.Stats().Stopped != 3 {
		t.Fatalf("stats = %+v", f.eng.Stats())
	}
}

func TestFixedKeepAliveReusesWithinWindow(t *testing.T) {
	f := newFixture(t)
	p := NewFixedKeepAlive(f.pool, 10*time.Minute)
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)

	if acquireExecComplete(t, f, p, spec, app) {
		t.Fatal("first request reused")
	}
	f.sched.Sleep(5 * time.Minute) // inside the window
	if !acquireExecComplete(t, f, p, spec, app) {
		t.Fatal("second request should reuse inside keep-alive window")
	}
}

func TestFixedKeepAliveExpiresAfterWindow(t *testing.T) {
	f := newFixture(t)
	p := NewFixedKeepAlive(f.pool, 10*time.Minute)
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)

	acquireExecComplete(t, f, p, spec, app)
	if f.eng.Live() != 1 {
		t.Fatalf("live = %d after first request", f.eng.Live())
	}
	// Past the window, the container is torn down.
	f.sched.Sleep(11 * time.Minute)
	if f.eng.Live() != 0 {
		t.Fatalf("live = %d after expiry, want 0", f.eng.Live())
	}
	// And the next request cold-starts.
	if acquireExecComplete(t, f, p, spec, app) {
		t.Fatal("request after expiry reused")
	}
}

func TestFixedKeepAliveWindowResetsOnReuse(t *testing.T) {
	f := newFixture(t)
	p := NewFixedKeepAlive(f.pool, 10*time.Minute)
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)

	acquireExecComplete(t, f, p, spec, app)
	f.sched.Sleep(8 * time.Minute)
	acquireExecComplete(t, f, p, spec, app) // reuse at t≈8m resets window
	f.sched.Sleep(8 * time.Minute)          // t≈16m: only 8m idle
	if f.eng.Live() != 1 {
		t.Fatal("window should have reset on reuse")
	}
	f.sched.Sleep(5 * time.Minute) // now >10m idle
	if f.eng.Live() != 0 {
		t.Fatal("container should expire after the reset window lapses")
	}
}

func TestFixedKeepAliveDefaultWindow(t *testing.T) {
	f := newFixture(t)
	p := NewFixedKeepAlive(f.pool, 0)
	if p.Name() != "fixed-keepalive(15m0s)" {
		t.Fatalf("Name = %q, want the AWS-style 15m default", p.Name())
	}
}

func TestPeriodicWarmupKeepsWarmForever(t *testing.T) {
	f := newFixture(t)
	p := NewPeriodicWarmup(f.pool, 5*time.Minute, 10*time.Minute)
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)

	acquireExecComplete(t, f, p, spec, app)
	p.StartPinger(spec, app)
	// Far past the keep-alive window, the pings keep the container
	// alive.
	f.sched.Sleep(60 * time.Minute)
	if f.eng.Live() != 1 {
		t.Fatalf("live = %d under periodic warmup, want 1", f.eng.Live())
	}
	if p.Pings() < 10 {
		t.Fatalf("pings = %d, want >= 10", p.Pings())
	}
	if !acquireExecComplete(t, f, p, spec, app) {
		t.Fatal("request under periodic warmup should reuse")
	}
	p.StopPingers()
	f.sched.Sleep(30 * time.Minute)
	if f.eng.Live() != 0 {
		t.Fatal("after pingers stop the keep-alive should lapse")
	}
}

func TestPeriodicWarmupBootsWhenNoneLive(t *testing.T) {
	f := newFixture(t)
	p := NewPeriodicWarmup(f.pool, time.Minute, 10*time.Minute)
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)
	p.StartPinger(spec, app)
	f.sched.Sleep(2 * time.Minute)
	if f.eng.Live() != 1 {
		t.Fatalf("pinger should boot a container: live = %d", f.eng.Live())
	}
	// The booted container is warm: the first real request reuses it.
	if !acquireExecComplete(t, f, p, spec, app) {
		t.Fatal("request should reuse the pre-booted container")
	}
	p.StopPingers()
}

func TestHistogramAdaptsWindowToArrivalRate(t *testing.T) {
	f := newFixture(t)
	h := NewHistogram(f.pool)
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)

	// A steady 30s-interval arrival stream: p99 IAT ~30s, so the
	// adaptive window is ~36s (margin 1.2) — far below the 1h max.
	for i := 0; i < 20; i++ {
		acquireExecComplete(t, f, h, spec, app)
		f.sched.Sleep(30 * time.Second)
	}
	w := h.windowFor(spec.Key())
	if w < 30*time.Second || w > 2*time.Minute {
		t.Fatalf("adaptive window = %v, want ~36s", w)
	}
	// Within the adaptive window the container is retained...
	if f.eng.Live() != 1 {
		t.Fatalf("live = %d inside adaptive window", f.eng.Live())
	}
	// ...and once idle far beyond it, released.
	f.sched.Sleep(5 * time.Minute)
	if f.eng.Live() != 0 {
		t.Fatalf("live = %d after adaptive expiry, want 0", f.eng.Live())
	}
}

func TestHistogramConservativeWithoutSignal(t *testing.T) {
	f := newFixture(t)
	h := NewHistogram(f.pool)
	spec := f.spec(t, "python:3.8")
	if h.windowFor(spec.Key()) != h.MaxWindow {
		t.Fatal("no-signal window should be the conservative maximum")
	}
}

func TestHistogramClampsToMin(t *testing.T) {
	f := newFixture(t)
	h := NewHistogram(f.pool)
	spec := f.spec(t, "python:3.8")
	app := workload.RandomNumber(workload.Python)
	// Rapid-fire arrivals: IATs near zero, window clamps to MinWindow.
	for i := 0; i < 10; i++ {
		acquireExecComplete(t, f, h, spec, app)
		f.sched.Sleep(100 * time.Millisecond)
	}
	if w := h.windowFor(spec.Key()); w != h.MinWindow {
		t.Fatalf("window = %v, want clamped to %v", w, h.MinWindow)
	}
}

func TestNames(t *testing.T) {
	f := newFixture(t)
	names := map[string]bool{}
	for _, n := range []string{
		NewNoReuse(f.eng).Name(),
		NewFixedKeepAlive(f.pool, time.Minute).Name(),
		NewPeriodicWarmup(f.pool, time.Minute, time.Minute).Name(),
		NewHistogram(f.pool).Name(),
	} {
		if n == "" || names[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		names[n] = true
	}
}
