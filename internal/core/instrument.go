package core

import (
	"hotc/internal/obs"
)

// instruments bundles the control loop's metric families. nil (the
// default) means uninstrumented.
type instruments struct {
	demand   *obs.GaugeVec // hotc_ctl_demand{key}
	forecast *obs.GaugeVec // hotc_ctl_forecast{key}
	target   *obs.GaugeVec // hotc_ctl_target{key}
	prewarm  *obs.Counter  // hotc_ctl_prewarm_total
	retire   *obs.Counter  // hotc_ctl_retire_total
	ticks    *obs.Counter  // hotc_ctl_ticks_total
}

// Instrument registers the controller's metric families on the
// registry and instruments the underlying pool too, so one call wires
// the whole provider. Calling with nil turns instrumentation off (the
// pool keeps its registration).
func (h *HotC) Instrument(reg *obs.Registry) {
	if reg == nil {
		h.obs = nil
		return
	}
	h.pool.Instrument(reg)
	h.obs = &instruments{
		demand: reg.GaugeVec("hotc_ctl_demand",
			"Observed peak concurrent demand per runtime key in the last control interval.",
			"key"),
		forecast: reg.GaugeVec("hotc_ctl_forecast",
			"Demand forecast per runtime key for the next control interval.",
			"key"),
		target: reg.GaugeVec("hotc_ctl_target",
			"Pool size target per runtime key after headroom, floors and hysteresis.",
			"key"),
		prewarm: reg.Counter("hotc_ctl_prewarm_total",
			"Containers the control loop asked the pool to pre-warm."),
		retire: reg.Counter("hotc_ctl_retire_total",
			"Containers the control loop retired on scale-down."),
		ticks: reg.Counter("hotc_ctl_ticks_total",
			"Control loop ticks executed."),
	}
}
