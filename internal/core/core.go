// Package core implements HotC itself (§IV): the middleware between
// clients and backend that maintains the live container runtime pool,
// reuses runtimes on request (Algorithm 1), cleans used containers
// back into the pool (Algorithm 2), and runs the adaptive live
// container control loop (Algorithm 3) that combines exponential
// smoothing with a Markov chain to pre-warm predicted demand and
// retire excess runtimes.
//
// HotC satisfies the faas.Provider interface, so the same gateway can
// run with HotC or any baseline policy.
package core

import (
	"fmt"
	"math"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/metrics"
	"hotc/internal/pool"
	"hotc/internal/predictor"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

// Options configure the HotC middleware.
type Options struct {
	// Pool configures the runtime pool (caps, memory threshold,
	// relaxed matching).
	Pool pool.Options
	// Interval is the control-loop period; each tick observes demand
	// and adjusts the pool. Default 10s.
	Interval time.Duration
	// NewPredictor constructs the per-runtime-type demand predictor.
	// Default: the paper's combined ES+Markov with α = 0.8. Swapping
	// this in ablations gives ES-only or Markov-only control.
	NewPredictor func() predictor.Predictor
	// Headroom is added to every prediction before provisioning, as a
	// fraction (0.1 = +10%). Default 0.
	Headroom float64
	// MinWarm keeps at least this many containers per active runtime
	// type regardless of prediction. Default 0.
	MinWarm int
	// RetainIdle keeps one container alive for a runtime type that has
	// seen a request within this window, even when the prediction
	// rounds to zero — the pool's reuse-on-request behaviour for
	// low-rate traffic (Fig. 12a). The cap and memory threshold still
	// evict under pressure. Default 30 minutes.
	RetainIdle time.Duration
	// ScaleDownFrac caps how much of a runtime type's pool may be
	// retired per control tick, as a fraction of its live containers
	// (hysteresis). Slow scale-down is what lets recurring bursts find
	// most of the previous burst's containers still warm (Fig. 14b);
	// the cap and memory threshold still bound total resource usage.
	// Default 0.25.
	ScaleDownFrac float64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
	if o.NewPredictor == nil {
		o.NewPredictor = func() predictor.Predictor { return predictor.Default() }
	}
	if o.RetainIdle <= 0 {
		o.RetainIdle = 30 * time.Minute
	}
	if o.ScaleDownFrac <= 0 || o.ScaleDownFrac > 1 {
		o.ScaleDownFrac = 0.25
	}
	return o
}

// keyState is the per-runtime-type controller state.
type keyState struct {
	spec container.Spec
	app  workload.App
	pred predictor.Predictor

	inUse int // currently executing or reserved requests
	peak  int // max concurrent demand in the current interval

	everUsed    bool
	lastArrival simclock.Time

	// observed and predicted are the Fig. 10 evaluation series: per
	// control interval, the real demand and the forecast that HotC had
	// made for it.
	observed  metrics.TimeSeries
	predicted metrics.TimeSeries
	forecast  float64 // prediction made at the previous tick
}

// HotC is the runtime-reusing middleware.
type HotC struct {
	pool  *pool.Pool
	sched *simclock.Scheduler
	opts  Options

	keys    map[config.Key]*keyState
	stopCtl func()

	// obs is the optional metric hookup (see Instrument); nil keeps the
	// seed behaviour.
	obs *instruments
}

// New builds HotC over a container engine.
func New(eng *container.Engine, opts Options) *HotC {
	if eng == nil {
		panic("core: New requires an engine")
	}
	o := opts.withDefaults()
	return &HotC{
		pool:  pool.New(eng, o.Pool),
		sched: eng.Scheduler(),
		opts:  o,
		keys:  make(map[config.Key]*keyState),
	}
}

// Pool exposes the underlying runtime pool (reports, tests).
func (h *HotC) Pool() *pool.Pool { return h.pool }

// Name implements faas.Provider.
func (h *HotC) Name() string { return "hotc" }

// Register tells HotC which application runs in a runtime type, so the
// controller can pre-warm it. The gateway calls this at deploy time.
func (h *HotC) Register(spec container.Spec, app workload.App) error {
	if err := app.Validate(); err != nil {
		return fmt.Errorf("core: registering %q: %w", app.Name, err)
	}
	key := spec.Key()
	if _, ok := h.keys[key]; ok {
		return nil
	}
	h.keys[key] = &keyState{spec: spec, app: app, pred: h.opts.NewPredictor()}
	return nil
}

// state returns (creating if needed) the per-key state. Unregistered
// keys get tracked too, but cannot be pre-warmed until an app is known.
func (h *HotC) state(spec container.Spec) *keyState {
	key := spec.Key()
	st, ok := h.keys[key]
	if !ok {
		st = &keyState{spec: spec, pred: h.opts.NewPredictor()}
		h.keys[key] = st
	}
	return st
}

// Acquire implements faas.Provider via Algorithm 1.
func (h *HotC) Acquire(spec container.Spec, done func(*container.Container, bool, config.Delta, error)) {
	st := h.state(spec)
	st.inUse++
	if st.inUse > st.peak {
		st.peak = st.inUse
	}
	st.everUsed = true
	st.lastArrival = h.sched.Now()
	h.pool.Acquire(spec, func(c *container.Container, reused bool, delta config.Delta, err error) {
		if err != nil {
			st.inUse--
			done(nil, false, config.Delta{}, err)
			return
		}
		done(c, reused, delta, nil)
	})
}

// Complete implements faas.Provider via Algorithm 2: clean the used
// container and return it to the pool.
func (h *HotC) Complete(c *container.Container, spec container.Spec) {
	if st, ok := h.keys[spec.Key()]; ok && st.inUse > 0 {
		st.inUse--
	}
	h.pool.Release(c, nil)
}

// Discard implements faas.Discarder: a container whose execution
// failed is quarantined — stopped and never re-admitted to the pool —
// instead of being cleaned and reused (Algorithm 2 assumes the runtime
// is still trustworthy; a crashed one is not).
func (h *HotC) Discard(c *container.Container, spec container.Spec) {
	if st, ok := h.keys[spec.Key()]; ok && st.inUse > 0 {
		st.inUse--
	}
	h.pool.Quarantine(c)
}

// Start launches the adaptive control loop (Algorithm 3). Stop halts
// it.
func (h *HotC) Start() {
	if h.stopCtl != nil {
		panic("core: controller already running")
	}
	h.stopCtl = h.sched.Every(h.opts.Interval, h.tick)
}

// Stop halts the control loop. Safe to call when not running.
func (h *HotC) Stop() {
	if h.stopCtl != nil {
		h.stopCtl()
		h.stopCtl = nil
	}
}

// tick is one control interval: per runtime type, observe the
// interval's demand, forecast the next interval, and resize the pool
// towards the forecast.
func (h *HotC) tick() {
	now := h.sched.Now()
	if h.obs != nil {
		h.obs.ticks.Inc()
	}
	for key, st := range h.keys {
		demand := float64(st.peak)
		st.observed.Add(now, demand)
		st.predicted.Add(now, st.forecast)

		st.pred.Observe(demand)
		raw := st.pred.Predict()
		st.forecast = raw

		target := int(math.Ceil(raw * (1 + h.opts.Headroom)))
		if target < h.opts.MinWarm {
			target = h.opts.MinWarm
		}
		if target < st.inUse {
			target = st.inUse // never scale below what is executing
		}
		// Recently used runtime types keep one warm container even when
		// the forecast rounds to zero, so low-rate traffic (one request
		// per tens of seconds) still reuses — the paper's Fig. 12(a)
		// behaviour. The cap and memory threshold remain the backstop.
		if target == 0 && st.everUsed && now-st.lastArrival <= h.opts.RetainIdle {
			target = 1
		}

		if h.obs != nil {
			k := string(key)
			h.obs.demand.With(k).Set(demand)
			h.obs.forecast.With(k).Set(raw)
			h.obs.target.With(k).Set(float64(target))
		}

		live := h.pool.NumLive(key)
		switch {
		case target > live && st.app.Name != "":
			h.pool.Prewarm(st.spec, st.app, target-live, nil)
			if h.obs != nil {
				h.obs.prewarm.Add(float64(target - live))
			}
		case target < live:
			// Hysteresis: retire at most ScaleDownFrac of the live set
			// per tick (but always at least one), so a recurring burst
			// finds most of the previous burst's runtimes warm.
			excess := live - target
			cap := int(math.Ceil(float64(live) * h.opts.ScaleDownFrac))
			if excess > cap {
				excess = cap
			}
			retired := h.pool.Retire(key, excess)
			if h.obs != nil {
				h.obs.retire.Add(float64(retired))
			}
		}
		st.peak = st.inUse // restart the interval's peak tracking
	}
}

// PredictionTrace returns the observed and predicted demand series for
// a runtime type (Fig. 10). The boolean reports whether the key is
// known.
func (h *HotC) PredictionTrace(key config.Key) (observed, predicted *metrics.TimeSeries, ok bool) {
	st, found := h.keys[key]
	if !found {
		return nil, nil, false
	}
	return &st.observed, &st.predicted, true
}

// LiveByKey reports the current number of live containers per key.
func (h *HotC) LiveByKey() map[config.Key]int {
	out := make(map[config.Key]int, len(h.keys))
	for key := range h.keys {
		if n := h.pool.NumLive(key); n > 0 {
			out[key] = n
		}
	}
	return out
}
