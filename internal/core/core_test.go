package core

import (
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/faas"
	"hotc/internal/image"
	"hotc/internal/pool"
	"hotc/internal/predictor"
	"hotc/internal/simclock"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

type fixture struct {
	sched *simclock.Scheduler
	eng   *container.Engine
	reg   *image.Registry
	hotc  *HotC
	gw    *faas.Gateway
}

func newFixture(t *testing.T, opts Options) *fixture {
	t.Helper()
	sched := simclock.New()
	reg := image.StandardCatalog()
	eng := container.NewEngine(sched, costmodel.New(costmodel.Server()), reg, image.NewCache(), nil)
	h := New(eng, opts)
	return &fixture{sched: sched, eng: eng, reg: reg, hotc: h, gw: faas.NewGateway(eng, h)}
}

func (f *fixture) deploy(t *testing.T, name, img string, app workload.App) container.Spec {
	t.Helper()
	fn := faas.Function{Name: name, Runtime: config.Runtime{Image: img}, App: app}
	resolver := faas.ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, f.reg)
	})
	if err := f.gw.Deploy(fn, resolver); err != nil {
		t.Fatal(err)
	}
	spec, _ := f.gw.Spec(name)
	if err := f.hotc.Register(spec, app); err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRegisterValidation(t *testing.T) {
	f := newFixture(t, Options{})
	spec, err := container.ResolveSpec(config.Runtime{Image: "python:3.8"}, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.hotc.Register(spec, workload.App{}); err == nil {
		t.Fatal("invalid app registered")
	}
	app := workload.QRApp(workload.Python)
	if err := f.hotc.Register(spec, app); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-registration.
	if err := f.hotc.Register(spec, app); err != nil {
		t.Fatal(err)
	}
}

// Fig. 12(a): serial same-config requests — first cold, rest reused.
func TestSerialReuse(t *testing.T) {
	f := newFixture(t, Options{})
	f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	sched := trace.Serial{Interval: 30 * time.Second, Count: 8}.Generate()
	results, err := faas.Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Reused {
		t.Fatal("first request cannot reuse")
	}
	for i, r := range results[1:] {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i+1, r.Err)
		}
		if !r.Reused {
			t.Fatalf("request %d did not reuse the previous runtime", i+1)
		}
	}
}

// The adaptive controller pre-warms predicted demand so steady traffic
// stops paying cold starts even when requests overlap.
func TestControllerPrewarmsSteadyParallelTraffic(t *testing.T) {
	f := newFixture(t, Options{Interval: 10 * time.Second})
	f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	f.hotc.Start()
	defer f.hotc.Stop()

	// 4 simultaneous same-class requests every 10s: demand per interval
	// is 4, so after a few intervals the pool holds ~4 warm containers.
	var sched []trace.Request
	for round := 0; round < 12; round++ {
		for i := 0; i < 4; i++ {
			sched = append(sched, trace.Request{At: time.Duration(round) * 10 * time.Second, Round: round})
		}
	}
	results, err := faas.Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	// Late rounds must be all-warm.
	lateCold := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Request.Round >= 8 && !r.Reused {
			lateCold++
		}
	}
	if lateCold > 0 {
		t.Fatalf("%d cold starts in late rounds despite steady demand", lateCold)
	}
}

// The controller retires excess containers when demand falls
// (Fig. 13's decreasing case keeps latency low while shrinking the
// pool).
func TestControllerRetiresOnFallingDemand(t *testing.T) {
	f := newFixture(t, Options{Interval: 10 * time.Second})
	spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	f.hotc.Start()
	defer f.hotc.Stop()

	var sched []trace.Request
	at := time.Duration(0)
	for round := 0; round < 6; round++ { // high demand: 8 per round
		for i := 0; i < 8; i++ {
			sched = append(sched, trace.Request{At: at, Round: round})
		}
		at += 10 * time.Second
	}
	results, err := faas.Run(f.gw, sched, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	highWater := f.hotc.Pool().NumLive(spec.Key())
	if highWater < 4 {
		t.Fatalf("expected a grown pool, got %d", highWater)
	}
	// No demand for many intervals: the controller should retire the
	// now-idle containers.
	f.sched.Sleep(2 * time.Minute)
	if live := f.hotc.Pool().NumLive(spec.Key()); live >= highWater {
		t.Fatalf("pool did not shrink: %d -> %d", highWater, live)
	}
}

func TestPredictionTraceRecorded(t *testing.T) {
	f := newFixture(t, Options{Interval: 10 * time.Second})
	spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	f.hotc.Start()
	defer f.hotc.Stop()

	sched := trace.Serial{Interval: 5 * time.Second, Count: 20}.Generate()
	if _, err := faas.Run(f.gw, sched, func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	obs, pred, ok := f.hotc.PredictionTrace(spec.Key())
	if !ok {
		t.Fatal("no prediction trace for registered key")
	}
	if obs.Len() == 0 || obs.Len() != pred.Len() {
		t.Fatalf("trace lengths: obs=%d pred=%d", obs.Len(), pred.Len())
	}
	if _, _, ok := f.hotc.PredictionTrace(config.Key("ghost")); ok {
		t.Fatal("phantom prediction trace")
	}
}

func TestMinWarmFloor(t *testing.T) {
	f := newFixture(t, Options{Interval: 5 * time.Second, MinWarm: 2})
	spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	f.hotc.Start()
	defer f.hotc.Stop()
	// No traffic at all: after a tick the floor should be provisioned.
	f.sched.Sleep(30 * time.Second)
	if live := f.hotc.Pool().NumLive(spec.Key()); live < 2 {
		t.Fatalf("MinWarm floor not honoured: live = %d", live)
	}
}

func TestAblationPredictorSwap(t *testing.T) {
	f := newFixture(t, Options{
		Interval:     5 * time.Second,
		NewPredictor: func() predictor.Predictor { return predictor.NewES(0.5) },
	})
	spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	f.hotc.Start()
	defer f.hotc.Stop()
	sched := trace.Serial{Interval: 2 * time.Second, Count: 10}.Generate()
	if _, err := faas.Run(f.gw, sched, func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := f.hotc.PredictionTrace(spec.Key()); !ok {
		t.Fatal("swapped predictor lost the trace")
	}
}

func TestDistinctConfigsDistinctPools(t *testing.T) {
	f := newFixture(t, Options{})
	specA := f.deploy(t, "py", "python:3.8", workload.QRApp(workload.Python))
	specB := f.deploy(t, "node", "node:10", workload.QRApp(workload.Node))
	if specA.Key() == specB.Key() {
		t.Fatal("distinct images share a key")
	}
	sched := []trace.Request{{At: 0, Class: 0}, {At: time.Minute, Class: 1}, {At: 2 * time.Minute, Class: 0}}
	classFn := func(c int) string {
		if c == 0 {
			return "py"
		}
		return "node"
	}
	results, err := faas.Run(f.gw, sched, classFn)
	if err != nil {
		t.Fatal(err)
	}
	// Third request (class 0) reuses the python container, not node's.
	if !results[2].Reused {
		t.Fatal("same-class revisit should reuse")
	}
	if results[1].Reused {
		t.Fatal("cross-class request must not reuse")
	}
}

func TestStartStopLifecycle(t *testing.T) {
	f := newFixture(t, Options{})
	f.hotc.Start()
	f.hotc.Stop()
	f.hotc.Stop() // idempotent
	f.hotc.Start()
	f.hotc.Stop()
}

func TestDoubleStartPanics(t *testing.T) {
	f := newFixture(t, Options{})
	f.hotc.Start()
	defer f.hotc.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	f.hotc.Start()
}

func TestHotCWithMemoryPressurePool(t *testing.T) {
	pressure := false
	f := newFixture(t, Options{
		Pool: pool.Options{
			MemUsedPct: func() float64 {
				if pressure {
					return 90
				}
				return 20
			},
		},
	})
	f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	sched := trace.Serial{Interval: 10 * time.Second, Count: 3}.Generate()
	if _, err := faas.Run(f.gw, sched, func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	pressure = true
	// New runtime type under pressure evicts the idle python container.
	f.deploy(t, "node", "node:10", workload.QRApp(workload.Node))
	if _, err := faas.Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "node" }); err != nil {
		t.Fatal(err)
	}
	if f.hotc.Pool().Stats().Evictions == 0 {
		t.Fatal("memory pressure did not trigger eviction")
	}
}

// ScaleDownFrac bounds how fast the pool shrinks per tick.
func TestScaleDownHysteresis(t *testing.T) {
	run := func(frac float64) []int {
		f := newFixture(t, Options{Interval: 10 * time.Second, ScaleDownFrac: frac, RetainIdle: time.Millisecond})
		spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
		f.hotc.Start()
		defer f.hotc.Stop()
		// Prewarm a large pool directly, then let demand go to zero.
		// (Sleep, not Run: the running controller keeps the event
		// queue non-empty forever.)
		f.hotc.Pool().Prewarm(spec, workload.QRApp(workload.Python), 16, nil)
		f.sched.Sleep(5 * time.Second)
		var sizes []int
		for i := 0; i < 6; i++ {
			f.sched.Sleep(10 * time.Second)
			sizes = append(sizes, f.hotc.Pool().NumLive(spec.Key()))
		}
		return sizes
	}
	fast := run(1.0)
	slow := run(0.1)
	// The slow configuration must retain more capacity at every tick
	// until both converge.
	if slow[0] <= fast[0] {
		t.Fatalf("slow scale-down %v should retain more than fast %v after one tick", slow, fast)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i] > slow[i-1] {
			t.Fatalf("scale-down must be monotone: %v", slow)
		}
	}
}

// Headroom provisions above the raw forecast.
func TestHeadroomProvisioning(t *testing.T) {
	run := func(headroom float64) int {
		f := newFixture(t, Options{Interval: 10 * time.Second, Headroom: headroom})
		spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
		f.hotc.Start()
		defer f.hotc.Stop()
		// Steady demand of 4 concurrent requests per interval.
		var sched []trace.Request
		for round := 0; round < 8; round++ {
			for i := 0; i < 4; i++ {
				sched = append(sched, trace.Request{At: time.Duration(round) * 10 * time.Second, Round: round})
			}
		}
		if _, err := faas.Run(f.gw, sched, func(int) string { return "qr" }); err != nil {
			t.Fatal(err)
		}
		return f.hotc.Pool().NumLive(spec.Key())
	}
	plain := run(0)
	padded := run(0.5)
	if padded <= plain {
		t.Fatalf("headroom 0.5 pool (%d) should exceed plain pool (%d)", padded, plain)
	}
}

// RetainIdle keeps one warm container within the window and releases
// it afterwards.
func TestRetainIdleWindow(t *testing.T) {
	f := newFixture(t, Options{Interval: 10 * time.Second, RetainIdle: 2 * time.Minute})
	spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	f.hotc.Start()
	defer f.hotc.Stop()
	if _, err := faas.Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	f.sched.Sleep(time.Minute) // inside the window
	if f.hotc.Pool().NumLive(spec.Key()) != 1 {
		t.Fatal("runtime retired inside the retain-idle window")
	}
	f.sched.Sleep(3 * time.Minute) // beyond the window
	if f.hotc.Pool().NumLive(spec.Key()) != 0 {
		t.Fatal("runtime survived past the retain-idle window")
	}
}

func TestLiveByKey(t *testing.T) {
	f := newFixture(t, Options{})
	spec := f.deploy(t, "qr", "python:3.8", workload.QRApp(workload.Python))
	if len(f.hotc.LiveByKey()) != 0 {
		t.Fatal("no containers yet")
	}
	if _, err := faas.Run(f.gw, []trace.Request{{At: 0}}, func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	m := f.hotc.LiveByKey()
	if m[spec.Key()] != 1 {
		t.Fatalf("LiveByKey = %v", m)
	}
}
