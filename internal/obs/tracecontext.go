package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// This file is the W3C Trace Context corner of the observability
// layer: parsing and rendering the `traceparent` header
// (https://www.w3.org/TR/trace-context/) and generating the random
// trace/span IDs that stitch one request's gateway span, watchdog
// timestamps and metric exemplars together. Everything here is
// allocation-free except the explicit *String renderers, which only
// run for spans the tail sampler decided to keep.

// TraceContext is one parsed (or generated) traceparent: the 16-byte
// trace ID shared by every span of a distributed request, the 8-byte
// ID of the current span, and the trace flags (bit 0 = sampled).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether both IDs are non-zero, the spec's minimum for
// a usable context.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// traceparentLen is the fixed length of a version-00 header:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 55

// ParseTraceparent parses a traceparent header value. It is strict
// per the spec: exact length, lowercase hex only, version ff and
// all-zero IDs rejected. Future versions (01..fe) are accepted as
// long as their first four fields match the version-00 layout, which
// the spec requires. The zero value and false come back for anything
// malformed, so a bad header silently degrades to "start a new
// trace" instead of failing the request.
func ParseTraceparent(s string) (TraceContext, bool) {
	var tc TraceContext
	if len(s) < traceparentLen {
		return tc, false
	}
	if len(s) > traceparentLen && s[traceparentLen] != '-' {
		return tc, false // longer forms must extend with a new field
	}
	s = s[:traceparentLen]
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, false
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok || ver == 0xff {
		return tc, false
	}
	if !hexDecode(tc.TraceID[:], s[3:35]) || !hexDecode(tc.SpanID[:], s[36:52]) {
		return tc, false
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return tc, false
	}
	tc.Flags = flags
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// Traceparent renders the context as a version-00 header value.
func (tc TraceContext) Traceparent() string {
	var buf [traceparentLen]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hexEncode(buf[3:35], tc.TraceID[:])
	buf[35] = '-'
	hexEncode(buf[36:52], tc.SpanID[:])
	buf[52] = '-'
	const hexdigits = "0123456789abcdef"
	buf[53] = hexdigits[tc.Flags>>4]
	buf[54] = hexdigits[tc.Flags&0xf]
	return string(buf[:])
}

// TraceIDString renders the trace ID as 32 lowercase hex characters.
func (tc TraceContext) TraceIDString() string {
	var buf [32]byte
	hexEncode(buf[:], tc.TraceID[:])
	return string(buf[:])
}

// SpanIDString renders the span ID as 16 lowercase hex characters.
func (tc TraceContext) SpanIDString() string {
	var buf [16]byte
	hexEncode(buf[:], tc.SpanID[:])
	return string(buf[:])
}

func hexEncode(dst, src []byte) {
	const hexdigits = "0123456789abcdef"
	for i, b := range src {
		dst[2*i] = hexdigits[b>>4]
		dst[2*i+1] = hexdigits[b&0xf]
	}
}

// hexDecode fills dst from exactly len(dst)*2 lowercase hex chars.
func hexDecode(dst []byte, s string) bool {
	for i := range dst {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false // uppercase is invalid per the spec
	}
}

func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

// IDGen produces unique trace and span IDs from a splitmix64 stream
// over an atomic counter: one CAS-free atomic add per 8 bytes of ID,
// no locks, no allocation, safe for concurrent request handlers. The
// stream is seeded from crypto/rand once at construction, so two
// gateways never collide in practice; a fixed seed makes tests
// deterministic.
type IDGen struct {
	state atomic.Uint64
}

// NewIDGen seeds a generator; seed 0 draws a random seed.
func NewIDGen(seed uint64) *IDGen {
	g := &IDGen{}
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		seed |= 1 // never zero, even if the random read failed
	}
	g.state.Store(seed)
	return g
}

// next is one splitmix64 step: the atomic add hands every caller a
// distinct gamma-spaced input, the mix turns it into output bits.
func (g *IDGen) next() uint64 {
	z := g.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTraceID draws a 16-byte trace ID (never all-zero).
func (g *IDGen) NewTraceID() [16]byte {
	var id [16]byte
	for {
		binary.LittleEndian.PutUint64(id[:8], g.next())
		binary.LittleEndian.PutUint64(id[8:], g.next())
		if id != [16]byte{} {
			return id
		}
	}
}

// NewSpanID draws an 8-byte span ID (never all-zero).
func (g *IDGen) NewSpanID() [8]byte {
	var id [8]byte
	for {
		binary.LittleEndian.PutUint64(id[:], g.next())
		if id != [8]byte{} {
			return id
		}
	}
}
