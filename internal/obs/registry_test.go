package obs

import (
	"sync"
	"testing"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestNameValidation(t *testing.T) {
	r := New()
	for _, bad := range []string{"", "requests_total", "hotc_Requests", "hotc_req-total", "hotc_req total", "HOTC_X"} {
		bad := bad
		mustPanic(t, "name "+bad, func() { r.Counter(bad, "") })
	}
	// Valid names register fine.
	r.Counter("hotc_requests_total", "requests")
	r.Gauge("hotc_pool_live", "live runtimes")
}

func TestCounterSemantics(t *testing.T) {
	r := New()
	c := r.Counter("hotc_requests_total", "")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	mustPanic(t, "negative counter add", func() { c.Add(-1) })
}

func TestGaugeSemantics(t *testing.T) {
	r := New()
	g := r.Gauge("hotc_pool_live", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %v, want 4", got)
	}
}

// TestHistogramBucketBoundaries pins the `le` (bound-inclusive)
// assignment rule: a value equal to a bound lands in that bound's
// bucket, a value above every bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("hotc_latency_ms", "", []float64{1, 2, 5})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // le="1" is inclusive
		{1.0001, 1}, {2, 1},
		{2.5, 2}, {5, 2},
		{5.0001, 3}, {100, 3}, // +Inf
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := make([]uint64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	wantSum := 0.0
	for _, c := range cases {
		wantSum += c.v
	}
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	r := New()
	mustPanic(t, "non-increasing bounds", func() {
		r.Histogram("hotc_bad_ms", "", []float64{1, 1, 2})
	})
	mustPanic(t, "decreasing bounds", func() {
		r.Histogram("hotc_worse_ms", "", []float64{5, 2})
	})
}

// TestVecIdentity pins the labeled-family lookup contract: the same
// label values resolve to the same underlying series, different values
// to different series, and a wrong label-value count panics.
func TestVecIdentity(t *testing.T) {
	r := New()
	v := r.CounterVec("hotc_pool_hits_total", "", "key")
	v.With("py3").Inc()
	v.With("py3").Inc()
	v.With("node16").Inc()
	if got := v.With("py3").Value(); got != 2 {
		t.Errorf("py3 = %v, want 2", got)
	}
	if got := v.With("node16").Value(); got != 1 {
		t.Errorf("node16 = %v, want 1", got)
	}
	mustPanic(t, "label arity", func() { v.With("a", "b").Inc() })
	mustPanic(t, "no labels", func() { v.With().Inc() })
}

// TestGetOrCreate pins registration semantics: same shape returns the
// same family (state shared), conflicting shape panics.
func TestGetOrCreate(t *testing.T) {
	r := New()
	a := r.Counter("hotc_requests_total", "")
	b := r.Counter("hotc_requests_total", "")
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("re-registered counter sees %v, want 1 (shared state)", got)
	}
	mustPanic(t, "kind conflict", func() { r.Gauge("hotc_requests_total", "") })
	mustPanic(t, "label conflict", func() { r.CounterVec("hotc_requests_total", "", "key") })

	r.HistogramVec("hotc_lat_ms", "", []float64{1, 2}, "fn")
	mustPanic(t, "bounds conflict", func() { r.HistogramVec("hotc_lat_ms", "", []float64{1, 3}, "fn") })
}

// TestConcurrentAddSnapshot hammers one registry from many goroutines
// while snapshots are being taken; run under -race this is the
// registry's thread-safety proof.
func TestConcurrentAddSnapshot(t *testing.T) {
	r := New()
	cv := r.CounterVec("hotc_ops_total", "", "worker")
	hv := r.HistogramVec("hotc_op_ms", "", []float64{1, 10, 100}, "worker")
	g := r.Gauge("hotc_level", "")

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := string(rune('a' + id))
			for i := 0; i < iters; i++ {
				cv.With(name).Inc()
				hv.With(name).Observe(float64(i % 150))
				g.Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)

	for w := 0; w < workers; w++ {
		name := string(rune('a' + w))
		if got := cv.With(name).Value(); got != iters {
			t.Errorf("worker %s counter = %v, want %d", name, got, iters)
		}
		if got := hv.With(name).Count(); got != iters {
			t.Errorf("worker %s histogram count = %d, want %d", name, got, iters)
		}
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d families, want 3", len(snap))
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(10, 5, 3)
	if len(lin) != 3 || lin[0] != 10 || lin[1] != 15 || lin[2] != 20 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if len(exp) != 4 || exp[3] != 8 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
	def := DefaultLatencyBucketsMS()
	for i := 1; i < len(def); i++ {
		if def[i] <= def[i-1] {
			t.Fatalf("default buckets not increasing at %d: %v", i, def)
		}
	}
	mustPanic(t, "linear n<=0", func() { LinearBuckets(0, 1, 0) })
	mustPanic(t, "exp factor<=1", func() { ExponentialBuckets(1, 1, 3) })
}
