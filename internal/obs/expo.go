package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, cumulative
// `le` buckets with a +Inf terminator, and _sum/_count per histogram
// series. Histogram buckets that carry an exemplar render it in the
// OpenMetrics syntax (` # {trace_id="..."} value ts`), which
// Prometheus accepts when exemplar storage is on and every
// OpenMetrics-aware parser understands.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// WritePrometheus renders a snapshot in the text exposition format.
func WritePrometheus(w io.Writer, fams []FamilySnapshot) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			switch f.Kind {
			case "histogram":
				cum := uint64(0)
				for i, b := range f.Bounds {
					cum += bucketCount(s.BucketCounts, i)
					fmt.Fprintf(bw, "%s_bucket%s %d%s\n",
						f.Name, labelString(f.Labels, s.LabelValues, "le", formatFloat(b)), cum,
						exemplarString(s.Exemplars, i))
				}
				cum += bucketCount(s.BucketCounts, len(f.Bounds))
				fmt.Fprintf(bw, "%s_bucket%s %d%s\n",
					f.Name, labelString(f.Labels, s.LabelValues, "le", "+Inf"), cum,
					exemplarString(s.Exemplars, len(f.Bounds)))
				fmt.Fprintf(bw, "%s_sum%s %s\n",
					f.Name, labelString(f.Labels, s.LabelValues, "", ""), formatFloat(s.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n",
					f.Name, labelString(f.Labels, s.LabelValues, "", ""), s.Count)
			default:
				fmt.Fprintf(bw, "%s%s %s\n",
					f.Name, labelString(f.Labels, s.LabelValues, "", ""), formatFloat(s.Value))
			}
		}
	}
	return bw.Flush()
}

// exemplarString renders bucket i's exemplar as an OpenMetrics
// suffix, or "" when the bucket has none.
func exemplarString(exemplars []BucketExemplar, i int) string {
	for _, ex := range exemplars {
		if ex.Bucket == i {
			return fmt.Sprintf(" # {trace_id=%q} %s %s",
				ex.TraceID, formatFloat(ex.Value),
				strconv.FormatFloat(float64(ex.TSUnixMs)/1000, 'f', 3, 64))
		}
	}
	return ""
}

func bucketCount(counts []uint64, i int) uint64 {
	if i < len(counts) {
		return counts[i]
	}
	return 0
}

// labelString renders {k="v",...}, optionally appending one extra
// pair (the `le` bound), or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(v))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format. %q in
// labelString already escapes quotes and backslashes; newlines must
// become the two-character sequence \n, which %q also produces, so
// only raw values are passed through here.
func escapeLabel(v string) string { return v }

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", "\\\\")
	return strings.ReplaceAll(h, "\n", "\\n")
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// metricLine is the JSONL wire shape of one metric series.
type metricLine struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	Bounds []float64         `json:"bounds,omitempty"`
	// BucketCounts are per-bucket (non-cumulative), last entry +Inf.
	BucketCounts []uint64 `json:"bucketCounts,omitempty"`
	// Exemplars are per-bucket representative traced observations.
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// WriteJSONL dumps the registry one JSON object per series line, for
// offline analysis of sim and bench runs.
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, f := range r.Snapshot() {
		for _, s := range f.Series {
			line := metricLine{Name: f.Name, Kind: f.Kind, Value: s.Value,
				Count: s.Count, Sum: s.Sum}
			if len(f.Labels) > 0 {
				line.Labels = make(map[string]string, len(f.Labels))
				for i, n := range f.Labels {
					if i < len(s.LabelValues) {
						line.Labels[n] = s.LabelValues[i]
					}
				}
			}
			if f.Kind == "histogram" {
				line.Bounds = f.Bounds
				line.BucketCounts = s.BucketCounts
				line.Exemplars = s.Exemplars
			}
			if err := enc.Encode(line); err != nil {
				return fmt.Errorf("obs: writing metrics JSONL: %w", err)
			}
		}
	}
	return nil
}
