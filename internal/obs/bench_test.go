package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkObsHotPath measures the per-observation cost the instrument
// layers pay. The cached_* variants hold a pre-resolved series handle —
// the pattern every hot call site should use — and must not allocate;
// the with_lookup variants resolve labels on every observation and show
// the cost the handle cache avoids.
func BenchmarkObsHotPath(b *testing.B) {
	b.Run("counter_cached_handle", func(b *testing.B) {
		c := New().CounterVec("hotc_bench_total", "", "fn").With("f")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("counter_with_lookup", func(b *testing.B) {
		v := New().CounterVec("hotc_bench_total", "", "fn")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v.With("f").Inc()
			}
		})
	})
	b.Run("gauge_cached_handle", func(b *testing.B) {
		g := New().GaugeVec("hotc_bench_gauge", "", "fn").With("f")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var i int64
			for pb.Next() {
				i++
				g.Set(float64(i))
			}
		})
	})
	b.Run("histogram_cached_handle", func(b *testing.B) {
		h := New().HistogramVec("hotc_bench_ms", "", DefaultLatencyBucketsMS(), "fn").With("f")
		b.ReportAllocs()
		var n atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.ObserveDuration(time.Duration(n.Add(1)) * time.Microsecond)
			}
		})
	})
	b.Run("histogram_with_lookup", func(b *testing.B) {
		v := New().HistogramVec("hotc_bench_ms", "", DefaultLatencyBucketsMS(), "fn")
		b.ReportAllocs()
		var n atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v.With("f").ObserveDuration(time.Duration(n.Add(1)) * time.Microsecond)
			}
		})
	})
}
