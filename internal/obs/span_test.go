package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func sampleSpan(id int) Span {
	return Span{
		ID:          id,
		Function:    "resize",
		Key:         "py3|256mb",
		Reused:      id%2 == 0,
		ClientIn:    ms(100),
		GatewayIn:   ms(102),
		WatchdogIn:  ms(110),
		FuncStart:   ms(140),
		FuncDone:    ms(190),
		WatchdogOut: ms(191),
		ClientOut:   ms(195),
		Events: []SpanEvent{
			{At: ms(104), Kind: "acquire-retry", Detail: "attempt 1"},
		},
	}
}

func TestSpanPhases(t *testing.T) {
	s := sampleSpan(1)
	cases := map[string]time.Duration{
		"queue":   ms(2),
		"acquire": ms(8),
		"init":    ms(30),
		"exec":    ms(50),
		"respond": ms(5),
		"total":   ms(95),
	}
	for name, want := range cases {
		if got := s.Phase(name); got != want {
			t.Errorf("phase %s = %v, want %v", name, got, want)
		}
	}
	if s.Phase("bogus") != 0 {
		t.Error("unknown phase should be 0")
	}
	if !s.OK() {
		t.Error("span without Err should be OK")
	}
}

// TestSpanPhasesMissingStamps pins the zero-guard: a request that
// failed before reaching later moments reports 0 for those phases
// rather than a negative or bogus duration.
func TestSpanPhasesMissingStamps(t *testing.T) {
	s := Span{ClientIn: ms(100), GatewayIn: ms(105), Err: "acquire: boom"}
	if s.OK() {
		t.Error("span with Err should not be OK")
	}
	if got := s.Queue(); got != ms(5) {
		t.Errorf("queue = %v, want 5ms", got)
	}
	for _, name := range []string{"acquire", "init", "exec", "respond", "total"} {
		if got := s.Phase(name); got != 0 {
			t.Errorf("phase %s = %v, want 0 (missing stamps)", name, got)
		}
	}
}

// Regression: the first simulated request arrives at virtual time 0 —
// a zero ClientIn is a real stamp, not a missing one, and must not
// zero out the total.
func TestSpanPhasesAtTimeZero(t *testing.T) {
	s := Span{
		ClientIn: 0, GatewayIn: 0, WatchdogIn: ms(150),
		FuncStart: ms(500), FuncDone: ms(560),
		WatchdogOut: ms(562), ClientOut: ms(565),
	}
	if got := s.Total(); got != ms(565) {
		t.Errorf("total = %v, want 565ms", got)
	}
	if got := s.Acquire(); got != ms(150) {
		t.Errorf("acquire = %v, want 150ms", got)
	}
	if got := s.Queue(); got != 0 {
		t.Errorf("queue = %v, want 0", got)
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer()
	if tr.Len() != 0 {
		t.Fatal("fresh tracer should be empty")
	}
	id1, id2 := tr.NextID(), tr.NextID()
	if id1 == id2 {
		t.Fatalf("NextID returned duplicate %d", id1)
	}
	tr.Record(sampleSpan(id1))
	tr.Record(sampleSpan(id2))
	got := tr.Spans()
	if len(got) != 2 || got[0].ID != id1 || got[1].ID != id2 {
		t.Fatalf("spans = %+v", got)
	}
	// The returned slice is a copy.
	got[0].Function = "mutated"
	if tr.Spans()[0].Function != "resize" {
		t.Error("Spans() must return a copy")
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	in := []Span{sampleSpan(1), sampleSpan(2)}
	in[1].Err = "exec: crash"
	var buf bytes.Buffer
	if err := WriteSpans(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("expected 2 lines, got %d", got)
	}
	out, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d spans, want 2", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		a.Events, b.Events = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("span %d mismatch:\n in=%+v\nout=%+v", i, a, b)
		}
		if len(in[i].Events) != len(out[i].Events) {
			t.Errorf("span %d events: %d vs %d", i, len(in[i].Events), len(out[i].Events))
			continue
		}
		for j := range in[i].Events {
			if in[i].Events[j] != out[i].Events[j] {
				t.Errorf("span %d event %d mismatch", i, j)
			}
		}
	}
}

func TestReadSpansBadInput(t *testing.T) {
	if _, err := ReadSpans(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("expected parse error")
	}
	spans, err := ReadSpans(strings.NewReader(""))
	if err != nil || len(spans) != 0 {
		t.Fatalf("empty input: spans=%v err=%v", spans, err)
	}
}

func TestSummarizeAndRender(t *testing.T) {
	spans := []Span{sampleSpan(1), sampleSpan(2), {
		ID: 3, Function: "resize", ClientIn: ms(200), GatewayIn: ms(201),
		Err:    "acquire: breaker open",
		Events: []SpanEvent{{At: ms(201), Kind: "breaker-open"}},
	}}
	b := Summarize(spans)
	if b.Spans != 3 || b.OK != 2 || b.Failed != 1 || b.Reused != 1 {
		t.Fatalf("breakdown counts = %+v", b)
	}
	if b.EventsByKind["acquire-retry"] != 2 || b.EventsByKind["breaker-open"] != 1 {
		t.Fatalf("events = %v", b.EventsByKind)
	}
	var exec PhaseSummary
	for _, p := range b.Phases {
		if p.Phase == "exec" {
			exec = p
		}
	}
	if exec.Count != 2 || exec.Mean != 50 {
		t.Fatalf("exec summary = %+v", exec)
	}

	out := b.Render()
	for _, w := range []string{"3 total", "2 ok", "1 failed", "exec", "acquire-retry", "breaker-open"} {
		if !strings.Contains(out, w) {
			t.Errorf("render missing %q:\n%s", w, out)
		}
	}
}

func TestObserveInto(t *testing.T) {
	reg := New()
	ObserveInto(reg, []Span{sampleSpan(1), {Err: "x"}})
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Name != "hotc_span_phase_ms" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// 6 phases × 1 successful span.
	var total uint64
	for _, s := range snap[0].Series {
		total += s.Count
	}
	if total != 6 {
		t.Fatalf("observed %d phase samples, want 6", total)
	}
}
