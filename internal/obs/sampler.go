package obs

import (
	"net/http"
	"time"
)

// The tail sampler's keep reasons, in decision priority order. A span
// matching an earlier rule is tagged with that rule's reason even if a
// later one would also keep it (a cold slow request is "cold").
const (
	// KeepError: the request failed (transport error, 5xx other than
	// overload refusals, or any recorded error message).
	KeepError = "error"
	// KeepShed: the request was refused by overload control — 429
	// queue-full, 503 breaker/stopped, 504 deadline — the exact
	// requests an operator debugging saturation needs to see.
	KeepShed = "shed"
	// KeepCold: the request paid a cold start.
	KeepCold = "cold"
	// KeepSlow: end-to-end latency at or above the slow threshold.
	KeepSlow = "slow"
	// KeepSampled: an unremarkable success kept by the probabilistic
	// baseline so the ring also shows what normal looks like.
	KeepSampled = "sampled"
)

// KeepReasons lists every reason Decide can return, for metric
// pre-resolution.
func KeepReasons() []string {
	return []string{KeepError, KeepShed, KeepCold, KeepSlow, KeepSampled}
}

// SamplerConfig tunes tail-based sampling.
type SamplerConfig struct {
	// SlowThreshold always keeps spans whose end-to-end latency is at
	// or above it (0 disables the slow rule).
	SlowThreshold time.Duration
	// SampleRate is the keep probability for spans no always-keep rule
	// matched, in [0,1].
	SampleRate float64
	// Seed fixes the probabilistic stream for tests; 0 draws random.
	Seed uint64
}

// TailSampler decides, after a request completes, whether its span is
// worth a ring slot. Tail-based (decide-at-end) sampling is what lets
// the gateway keep every error, shed, cold start and slow-tail request
// while downsampling bulk success traffic: a head-based sampler must
// commit before it knows which of those the request will be. Decide is
// lock-free and allocation-free — one atomic add for the probabilistic
// draw is its only shared-state touch.
type TailSampler struct {
	slow      time.Duration
	threshold uint64 // SampleRate scaled to the uint64 range
	rng       *IDGen
}

// NewTailSampler builds a sampler from the config, clamping the rate
// into [0,1].
func NewTailSampler(cfg SamplerConfig) *TailSampler {
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	var threshold uint64
	if rate >= 1 {
		threshold = ^uint64(0)
	} else {
		threshold = uint64(rate * float64(1<<63) * 2)
	}
	return &TailSampler{
		slow:      cfg.SlowThreshold,
		threshold: threshold,
		rng:       NewIDGen(cfg.Seed),
	}
}

// Decide returns whether to keep the span and the first matching keep
// reason ("" when dropped).
func (t *TailSampler) Decide(sp *Span) (string, bool) {
	switch {
	case sp.Status == http.StatusTooManyRequests,
		sp.Status == http.StatusServiceUnavailable,
		sp.Status == http.StatusGatewayTimeout:
		return KeepShed, true
	case sp.Err != "" || sp.Status >= 400:
		return KeepError, true
	case !sp.Reused:
		return KeepCold, true
	case t.slow > 0 && sp.Total() >= t.slow:
		return KeepSlow, true
	case t.rng.next() < t.threshold:
		return KeepSampled, true
	default:
		return "", false
	}
}
