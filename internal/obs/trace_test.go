package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	g := NewIDGen(42)
	tc := TraceContext{TraceID: g.NewTraceID(), SpanID: g.NewSpanID(), Flags: 1}
	hdr := tc.Traceparent()
	if len(hdr) != traceparentLen || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("Traceparent() = %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != tc {
		t.Fatalf("round trip = %+v, %v; want %+v", got, ok, tc)
	}
	if got.TraceIDString() != hdr[3:35] || got.SpanIDString() != hdr[36:52] {
		t.Fatalf("ID strings %q/%q disagree with header %q",
			got.TraceIDString(), got.SpanIDString(), hdr)
	}
}

func TestParseTraceparentStrictness(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	accept := []string{
		valid,
		// Future versions must parse as long as the 00 layout holds,
		// including ones extended with new dash-separated fields.
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		valid + "-extrafield",
	}
	for _, s := range accept {
		if _, ok := ParseTraceparent(s); !ok {
			t.Errorf("ParseTraceparent(%q) rejected, want accepted", s)
		}
	}
	reject := []string{
		"",
		valid[:54],             // truncated
		valid + "x",            // extension without separator
		strings.ToUpper(valid), // uppercase hex is invalid per spec
		"ff" + valid[2:],       // version ff reserved
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",  // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags
	}
	for _, s := range reject {
		if tc, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) = %+v, want rejected", s, tc)
		}
	}
}

func TestIDGenDeterministicAndDistinct(t *testing.T) {
	a, b := NewIDGen(7), NewIDGen(7)
	other := NewIDGen(8)
	for i := 0; i < 100; i++ {
		ida, idb := a.NewTraceID(), b.NewTraceID()
		if ida != idb {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if ida == ([16]byte{}) {
			t.Fatalf("all-zero trace ID at draw %d", i)
		}
		if ida == other.NewTraceID() {
			t.Fatalf("different seeds collided at draw %d", i)
		}
	}
	if NewIDGen(3).NewSpanID() == ([8]byte{}) {
		t.Fatal("all-zero span ID")
	}
}

func TestTailSamplerKeepRules(t *testing.T) {
	// Sampler with the slow rule armed and the probabilistic baseline
	// off: only the always-keep classes survive.
	s := NewTailSampler(SamplerConfig{SlowThreshold: 500 * time.Millisecond, Seed: 1})
	slowSpan := Span{Status: 200, Reused: true, ClientOut: 600 * time.Millisecond}
	cases := []struct {
		name string
		span Span
		want string
	}{
		{"queue-full 429", Span{Status: 429, Reused: true}, KeepShed},
		{"breaker 503", Span{Status: 503, Reused: true}, KeepShed},
		{"deadline 504", Span{Status: 504, Reused: true}, KeepShed},
		{"server error", Span{Status: 500, Reused: true}, KeepError},
		{"client error", Span{Status: 413, Reused: true}, KeepError},
		{"recorded error", Span{Status: 200, Err: "x", Reused: true}, KeepError},
		{"cold start", Span{Status: 200, Reused: false}, KeepCold},
		{"slow tail", slowSpan, KeepSlow},
		// Priority: an earlier rule wins even when later ones also match.
		{"shed beats error", Span{Status: 503, Err: "boom"}, KeepShed},
		{"error beats cold", Span{Status: 500, Reused: false}, KeepError},
		{"cold beats slow", Span{Status: 200, Reused: false, ClientOut: 600 * time.Millisecond}, KeepCold},
	}
	for _, tc := range cases {
		reason, keep := s.Decide(&tc.span)
		if !keep || reason != tc.want {
			t.Errorf("%s: Decide = %q, %v; want %q, true", tc.name, reason, keep, tc.want)
		}
	}
	// An unremarkable warm success is dropped at rate 0...
	fast := Span{Status: 200, Reused: true, ClientOut: time.Millisecond}
	if reason, keep := s.Decide(&fast); keep {
		t.Fatalf("rate-0 sampler kept unremarkable span as %q", reason)
	}
	// ...and kept at rate 1.
	always := NewTailSampler(SamplerConfig{SampleRate: 1, Seed: 1})
	if reason, keep := always.Decide(&fast); !keep || reason != KeepSampled {
		t.Fatalf("rate-1 sampler: Decide = %q, %v", reason, keep)
	}
}

func TestTailSamplerRateIsProbabilistic(t *testing.T) {
	s := NewTailSampler(SamplerConfig{SampleRate: 0.5, Seed: 99})
	span := Span{Status: 200, Reused: true, ClientOut: time.Millisecond}
	kept := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if _, keep := s.Decide(&span); keep {
			kept++
		}
	}
	if kept < 4500 || kept > 5500 {
		t.Fatalf("rate-0.5 sampler kept %d/%d", kept, n)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		sp := Span{ID: i}
		if !r.Put(&sp, []SpanEvent{{Kind: "e", At: time.Duration(i)}}) {
			t.Fatalf("uncontended Put %d dropped", i)
		}
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want capacity 4", len(got))
	}
	for i, want := range []int{10, 9, 8, 7} {
		if got[i].ID != want {
			t.Fatalf("Snapshot[%d].ID = %d, want %d (newest first)", i, got[i].ID, want)
		}
		if len(got[i].Events) != 1 || got[i].Events[0].At != time.Duration(want) {
			t.Fatalf("Snapshot[%d] events = %+v, want the span's own", i, got[i].Events)
		}
	}
	if r.Written() != 10 || r.Contended() != 0 {
		t.Fatalf("Written/Contended = %d/%d, want 10/0", r.Written(), r.Contended())
	}
}

func TestTraceRingCopiesEvents(t *testing.T) {
	r := NewTraceRing(1)
	scratch := [2]SpanEvent{{Kind: "retry", Detail: "original"}}
	sp := Span{ID: 1}
	r.Put(&sp, scratch[:1])
	// The caller reuses its scratch array; the ring must have copied.
	scratch[0].Detail = "clobbered"
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Events) != 1 || snap[0].Events[0].Detail != "original" {
		t.Fatalf("slot aliases caller scratch: %+v", snap)
	}
	// And the snapshot is immune to the slot being overwritten after.
	next := Span{ID: 2}
	r.Put(&next, []SpanEvent{{Kind: "other"}})
	if snap[0].ID != 1 || snap[0].Events[0].Kind != "retry" {
		t.Fatalf("snapshot mutated by later Put: %+v", snap[0])
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8)
	const writers, per = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // reader churns snapshots against the writers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, sp := range r.Snapshot() {
					if sp.ID == 0 {
						t.Error("snapshot surfaced an unfilled span")
						return
					}
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := [1]SpanEvent{{Kind: "k"}}
			for i := 0; i < per; i++ {
				sp := Span{ID: w*per + i + 1}
				r.Put(&sp, ev[:])
			}
		}(w)
	}
	// Stop the reader once every writer has drained its puts.
	for r.seq.Load() < writers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := r.Written() + r.Contended(); got != writers*per {
		t.Fatalf("Written+Contended = %d, want %d", got, writers*per)
	}
	if len(r.Snapshot()) > 8 {
		t.Fatalf("snapshot exceeds capacity: %d", len(r.Snapshot()))
	}
}

// sloAt builds a monitor on a settable fake clock.
func sloAt(cfg SLOConfig) (*SLOMonitor, *time.Time) {
	now := time.Unix(1_000_000, 0)
	cfg.Now = func() time.Time { return now }
	return NewSLOMonitor(cfg), &now
}

func sloObjective(t *testing.T, rep SLOReport, name string) SLOObjective {
	t.Helper()
	for _, obj := range rep.Objectives {
		if obj.Name == name {
			return obj
		}
	}
	t.Fatalf("report has no %q objective: %+v", name, rep.Objectives)
	return SLOObjective{}
}

func TestSLOLatencyBurnAndRecovery(t *testing.T) {
	m, now := sloAt(SLOConfig{
		LatencyThreshold: 100 * time.Millisecond,
		Windows:          []time.Duration{10 * time.Second, time.Minute},
	})
	// 50 fast successes: no burn.
	for i := 0; i < 50; i++ {
		m.Record(200, true, false, 10*time.Millisecond)
	}
	obj := sloObjective(t, m.Report(), SLOLatency)
	if math.Abs(obj.Budget-0.01) > 1e-9 {
		t.Fatalf("latency budget = %v, want 0.01 (default 0.99 objective)", obj.Budget)
	}
	if obj.Breach || obj.Windows[0].Bad != 0 || obj.Windows[0].Total != 50 {
		t.Fatalf("healthy report = %+v", obj)
	}

	// 50 slow successes two seconds later: half the window is bad, the
	// burn rate explodes past 1 in both windows -> breach.
	*now = now.Add(2 * time.Second)
	for i := 0; i < 50; i++ {
		m.Record(200, true, false, 200*time.Millisecond)
	}
	obj = sloObjective(t, m.Report(), SLOLatency)
	short, long := obj.Windows[0], obj.Windows[1]
	if short.Total != 100 || short.Bad != 50 || short.BadFraction != 0.5 {
		t.Fatalf("short window = %+v", short)
	}
	if math.Abs(short.BurnRate-50) > 1e-6 || math.Abs(long.BurnRate-50) > 1e-6 || !obj.Breach {
		t.Fatalf("burn = %v/%v breach=%v, want 50/50 true", short.BurnRate, long.BurnRate, obj.Breach)
	}

	// 15s later the short window is clean but the long one still burns:
	// the multiwindow rule reports no breach (blip filter), and once the
	// long window expires too the report is fully clean.
	*now = now.Add(15 * time.Second)
	obj = sloObjective(t, m.Report(), SLOLatency)
	if obj.Windows[0].Total != 0 || obj.Windows[1].Bad != 50 || obj.Breach {
		t.Fatalf("post-blip report = %+v", obj)
	}
	*now = now.Add(2 * time.Minute)
	obj = sloObjective(t, m.Report(), SLOLatency)
	if obj.Windows[1].Total != 0 || obj.Breach {
		t.Fatalf("expired report = %+v", obj)
	}
}

func TestSLOColdStartAndGoodputObjectives(t *testing.T) {
	m, _ := sloAt(SLOConfig{
		ColdStartBudget: 0.2,
		ErrorBudget:     0.1,
		Windows:         []time.Duration{10 * time.Second, time.Minute},
	})
	// 8 warm + 2 cold served requests: cold fraction 0.2 burns exactly
	// at budget -> burn 1.0, breach (>= 1).
	for i := 0; i < 8; i++ {
		m.Record(200, true, false, time.Millisecond)
	}
	m.Record(200, true, true, time.Millisecond)
	m.Record(200, true, true, time.Millisecond)
	// 5 refusals (shed, never served) and 1 backend 5xx.
	for i := 0; i < 5; i++ {
		m.Record(429, false, false, time.Microsecond)
	}
	m.Record(502, true, false, time.Millisecond)

	rep := m.Report()
	cold := sloObjective(t, rep, SLOColdStart)
	// Refusals never reached a watchdog: they are not in the cold-start
	// denominator.
	if w := cold.Windows[0]; w.Total != 11 || w.Bad != 2 {
		t.Fatalf("coldstart window = %+v, want 2/11 served-cold", w)
	}
	good := sloObjective(t, rep, SLOGoodput)
	if w := good.Windows[0]; w.Total != 16 || w.Bad != 1 {
		t.Fatalf("goodput window = %+v, want 1/16 5xx", w)
	}
	// 429s are overload refusals, not goodput failures.
	if good.Windows[0].BurnRate >= 1 || good.Breach {
		t.Fatalf("goodput burning on 429s: %+v", good)
	}
}

func TestSLOSyncExportsGauges(t *testing.T) {
	m, _ := sloAt(SLOConfig{
		LatencyThreshold: 10 * time.Millisecond,
		Windows:          []time.Duration{time.Minute, 5 * time.Minute},
	})
	reg := New()
	m.Instrument(reg)
	for i := 0; i < 4; i++ {
		m.Record(200, true, false, 50*time.Millisecond) // all slow
	}
	m.Sync()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`hotc_slo_burn_rate{objective="latency",window="1m0s"} 9`,
		`hotc_slo_burn_rate{objective="latency",window="5m0s"} 9`,
		`hotc_slo_bad_fraction{objective="latency",window="1m0s"} 1`,
		`hotc_slo_breach{objective="latency"} 1`,
		`hotc_slo_budget{objective="latency"} 0.01`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
	// The strict parser accepts what Sync exported.
	if _, err := ParseExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("ParseExposition rejects the SLO exposition: %v", err)
	}
}

func TestSLORecordConcurrent(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{LatencyThreshold: time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Record(200, true, i%10 == 0, 2*time.Millisecond)
				m.Report()
			}
		}()
	}
	wg.Wait()
	obj := sloObjective(t, m.Report(), SLOLatency)
	// All 8000 records land inside the shortest window.
	if got := obj.Windows[0].Total; got != 8000 {
		t.Fatalf("window total = %d, want 8000", got)
	}
}

func TestTraceHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed under -race")
	}
	// Sampler drop decision.
	s := NewTailSampler(SamplerConfig{SampleRate: 0, Seed: 1})
	span := Span{Status: 200, Reused: true, ClientOut: time.Millisecond}
	if allocs := testing.AllocsPerRun(200, func() { s.Decide(&span) }); allocs > 0 {
		t.Errorf("TailSampler.Decide allocates %.1f/op", allocs)
	}
	// Ring write, steady state (slot event arrays already grown).
	r := NewTraceRing(4)
	ev := [2]SpanEvent{{Kind: "a"}, {Kind: "b"}}
	for i := 0; i < 8; i++ {
		sp := Span{ID: i + 1}
		r.Put(&sp, ev[:])
	}
	if allocs := testing.AllocsPerRun(200, func() {
		sp := Span{ID: 9}
		r.Put(&sp, ev[:])
	}); allocs > 0 {
		t.Errorf("TraceRing.Put allocates %.1f/op steady-state", allocs)
	}
	// SLO record.
	m := NewSLOMonitor(SLOConfig{LatencyThreshold: time.Millisecond})
	m.Record(200, true, false, time.Millisecond)
	if allocs := testing.AllocsPerRun(200, func() {
		m.Record(200, true, false, 2*time.Millisecond)
	}); allocs > 0 {
		t.Errorf("SLOMonitor.Record allocates %.1f/op", allocs)
	}
	// ID generation and traceparent parsing.
	g := NewIDGen(1)
	if allocs := testing.AllocsPerRun(200, func() { g.NewTraceID() }); allocs > 0 {
		t.Errorf("NewTraceID allocates %.1f/op", allocs)
	}
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if allocs := testing.AllocsPerRun(200, func() { ParseTraceparent(hdr) }); allocs > 0 {
		t.Errorf("ParseTraceparent allocates %.1f/op", allocs)
	}
}
