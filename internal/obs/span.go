package obs

import (
	"sync"
	"time"
)

// SpanEvent annotates one resilience or recovery action observed while
// the request was in flight (acquire retry, breaker transition,
// quarantine, degraded cold start, ...).
type SpanEvent struct {
	// At is the virtual (sim) or monotonic (live) time of the event, in
	// nanoseconds from the start of the run.
	At time.Duration `json:"atNs"`
	// Kind classifies the event, matching trace.FaultEvent kinds.
	Kind string `json:"kind"`
	// Detail carries event-specific context.
	Detail string `json:"detail,omitempty"`
}

// Span is the structured record of one request through the pipeline:
// the six §III.A workflow timestamps plus identity, outcome and the
// resilience events attached along the way. All timestamps are offsets
// from the start of the run; a timestamp the request never reached
// (e.g. on a failed acquire) is zero.
type Span struct {
	// ID orders spans within a run.
	ID int `json:"id"`
	// Function is the gateway-visible function name.
	Function string `json:"function"`
	// Key is the canonical runtime key the request resolved to.
	Key string `json:"key,omitempty"`
	// Round is the trace round of the originating request.
	Round int `json:"round"`
	// Reused reports whether a live container runtime was reused.
	Reused bool `json:"reused"`
	// Err is the failure message, empty on success.
	Err string `json:"err,omitempty"`

	// TraceID is the W3C trace ID (32 lowercase hex) shared by every
	// span of a distributed request; set on the live path, where it is
	// accepted from or propagated as a traceparent header.
	TraceID string `json:"traceId,omitempty"`
	// SpanID is this span's own 16-hex-char W3C span ID.
	SpanID string `json:"spanId,omitempty"`
	// Tenant is the admission-control tenant the request billed to.
	Tenant string `json:"tenant,omitempty"`
	// Status is the HTTP status the client received (live path only).
	Status int `json:"status,omitempty"`
	// KeepReason records why the tail sampler retained this span
	// (error|shed|cold|slow|sampled); empty for sim-path spans, which
	// are always recorded.
	KeepReason string `json:"keepReason,omitempty"`

	// ClientIn is moment (1): the request arrives at the gateway.
	ClientIn time.Duration `json:"clientInNs"`
	// GatewayIn is when the gateway admitted the request past any
	// per-function concurrency queue and began processing it.
	GatewayIn time.Duration `json:"gatewayInNs"`
	// WatchdogIn is moment (2): the request reaches the watchdog.
	WatchdogIn time.Duration `json:"watchdogInNs"`
	// FuncStart is moment (3): the function process starts executing.
	FuncStart time.Duration `json:"funcStartNs"`
	// FuncDone is moment (4): the function process stops.
	FuncDone time.Duration `json:"funcDoneNs"`
	// WatchdogOut is moment (5): the response leaves the watchdog.
	WatchdogOut time.Duration `json:"watchdogOutNs"`
	// ClientOut is moment (6): the client receives the response.
	ClientOut time.Duration `json:"clientOutNs"`

	// Events are the resilience events attached to the request.
	Events []SpanEvent `json:"events,omitempty"`
}

// OK reports whether the request succeeded.
func (s Span) OK() bool { return s.Err == "" }

// gap returns to-from, or 0 when the later stamp is missing (a failed
// request never reaches the later moments) or out of order. A zero
// `from` is legitimate: the first simulated request arrives at virtual
// time 0.
func gap(from, to time.Duration) time.Duration {
	if to == 0 || to < from {
		return 0
	}
	return to - from
}

// Queue is the time spent waiting in the gateway's per-function
// concurrency queue before processing began.
func (s Span) Queue() time.Duration { return gap(s.ClientIn, s.GatewayIn) }

// Acquire is the gateway→watchdog phase: request forwarding plus
// container runtime acquisition (including retries and backoff). This
// is the (1)→(2) gap net of queueing.
func (s Span) Acquire() time.Duration { return gap(s.GatewayIn, s.WatchdogIn) }

// Init is the (2)→(3) function-initiation gap — where cold start
// lives.
func (s Span) Init() time.Duration { return gap(s.WatchdogIn, s.FuncStart) }

// Exec is the (3)→(4) function execution gap.
func (s Span) Exec() time.Duration { return gap(s.FuncStart, s.FuncDone) }

// Respond is the (4)→(6) response path: watchdog copy-out plus
// gateway forwarding back to the client.
func (s Span) Respond() time.Duration { return gap(s.FuncDone, s.ClientOut) }

// Total is the end-to-end (1)→(6) latency the client observes.
func (s Span) Total() time.Duration { return gap(s.ClientIn, s.ClientOut) }

// Phases lists the span phase names in pipeline order; Phase answers
// each by name.
func Phases() []string { return []string{"queue", "acquire", "init", "exec", "respond", "total"} }

// Phase returns the named phase duration (see Phases).
func (s Span) Phase(name string) time.Duration {
	switch name {
	case "queue":
		return s.Queue()
	case "acquire":
		return s.Acquire()
	case "init":
		return s.Init()
	case "exec":
		return s.Exec()
	case "respond":
		return s.Respond()
	case "total":
		return s.Total()
	default:
		return 0
	}
}

// Tracer collects spans. It is safe for concurrent use: the simulated
// gateway records from the scheduler goroutine, the live gateway from
// arbitrary request handlers.
type Tracer struct {
	mu     sync.Mutex
	spans  []Span
	nextID int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// NextID allocates the next span ID.
func (t *Tracer) NextID() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// Record appends a completed span.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}
