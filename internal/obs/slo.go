package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// This file is the SLO monitor: multi-window error-budget burn rates
// computed online from per-second counter buckets. The shape follows
// the SRE-workbook multiwindow burn-rate alert — an objective allows a
// bad-event budget (e.g. 1% of requests may be slower than the latency
// target); the burn rate over a window is how many times faster than
// allowed the budget is being consumed; a breach is a burn rate >= 1
// sustained across both a short and a long window, which filters
// blips without missing slow leaks.

// The built-in objective names.
const (
	// SLOLatency: at least LatencyObjective of successful requests
	// complete under LatencyThreshold.
	SLOLatency = "latency"
	// SLOColdStart: at most ColdStartBudget of served requests pay a
	// cold start.
	SLOColdStart = "coldstart"
	// SLOGoodput: at most ErrorBudget of all requests end in 5xx.
	SLOGoodput = "goodput"
)

// SLOConfig declares the objectives the monitor tracks. A zero budget
// (or threshold) disables that objective.
type SLOConfig struct {
	// LatencyThreshold is the latency target: a 2xx request slower
	// than this is a bad event for the latency objective.
	LatencyThreshold time.Duration
	// LatencyObjective is the fraction of successful requests that
	// must meet the threshold (default 0.99 when a threshold is set) —
	// i.e. the threshold is the implied p99 target.
	LatencyObjective float64
	// ColdStartBudget is the allowed fraction of served requests that
	// may pay a cold start (0 disables the objective).
	ColdStartBudget float64
	// ErrorBudget is the allowed fraction of requests that may end in
	// 5xx (default 0.001 = 99.9% goodput; negative disables).
	ErrorBudget float64
	// Windows are the burn-rate evaluation windows, ascending
	// (default 1m, 5m, 30m). The longest window bounds the monitor's
	// memory: one 56-byte bucket per second of it.
	Windows []time.Duration
	// Now is the clock; tests inject a fake. Default time.Now.
	Now func() time.Time
}

// sloEpochResetting marks a bucket mid-recycle: writers that lose the
// recycle race spin until the winner publishes the new epoch.
const sloEpochResetting = math.MinInt64

// sloBucket accumulates one second of request outcomes. All fields
// are atomics: recording is lock-free from any number of handlers.
type sloBucket struct {
	epoch atomic.Int64 // unix second held, or sloEpochResetting
	// Denominators: total requests, 2xx requests, requests that
	// reached a watchdog. Numerators: slow 2xx, cold served, 5xx.
	total  atomic.Uint64
	ok     atomic.Uint64
	served atomic.Uint64
	slow   atomic.Uint64
	cold   atomic.Uint64
	errs   atomic.Uint64
}

// SLOMonitor ingests per-request outcomes and answers burn-rate
// queries over its windows. Record is the hot-path entry: resolve the
// current second's bucket (one atomic load in the common case) and
// bump up to four atomic counters — no locks, no allocation.
type SLOMonitor struct {
	cfg     SLOConfig
	buckets []sloBucket

	// Pre-resolved gauge handles, nil until Instrument.
	burn    *GaugeVec // hotc_slo_burn_rate{objective, window}
	badFrac *GaugeVec // hotc_slo_bad_fraction{objective, window}
	breach  *GaugeVec // hotc_slo_breach{objective}
	budget  *GaugeVec // hotc_slo_budget{objective}
}

// NewSLOMonitor builds a monitor, applying defaults: objective 0.99
// for latency, error budget 0.001, windows 1m/5m/30m.
func NewSLOMonitor(cfg SLOConfig) *SLOMonitor {
	if cfg.LatencyThreshold > 0 && cfg.LatencyObjective <= 0 {
		cfg.LatencyObjective = 0.99
	}
	if cfg.ErrorBudget == 0 {
		cfg.ErrorBudget = 0.001
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	horizon := cfg.Windows[len(cfg.Windows)-1] / time.Second
	m := &SLOMonitor{cfg: cfg, buckets: make([]sloBucket, horizon+2)}
	for i := range m.buckets {
		m.buckets[i].epoch.Store(-1)
	}
	return m
}

// bucket resolves (recycling if stale) the bucket for unix second
// sec. Returns nil when the bucket already moved past sec — a writer
// descheduled for longer than the whole horizon — whose observation
// is then dropped rather than misfiled.
func (m *SLOMonitor) bucket(sec int64) *sloBucket {
	b := &m.buckets[sec%int64(len(m.buckets))]
	for {
		e := b.epoch.Load()
		switch {
		case e == sec:
			return b
		case e == sloEpochResetting:
			continue // recycle in progress; it publishes in a few stores
		case e > sec:
			return nil
		default:
			if b.epoch.CompareAndSwap(e, sloEpochResetting) {
				b.total.Store(0)
				b.ok.Store(0)
				b.served.Store(0)
				b.slow.Store(0)
				b.cold.Store(0)
				b.errs.Store(0)
				b.epoch.Store(sec)
				return b
			}
		}
	}
}

// Record ingests one completed request: its HTTP status, whether it
// reached a watchdog, whether it paid a cold start, and its
// end-to-end latency.
func (m *SLOMonitor) Record(status int, served, cold bool, latency time.Duration) {
	b := m.bucket(m.cfg.Now().Unix())
	if b == nil {
		return
	}
	b.total.Add(1)
	if status >= 200 && status < 300 {
		b.ok.Add(1)
		if m.cfg.LatencyThreshold > 0 && latency > m.cfg.LatencyThreshold {
			b.slow.Add(1)
		}
	}
	if status >= 500 {
		b.errs.Add(1)
	}
	if served {
		b.served.Add(1)
		if cold {
			b.cold.Add(1)
		}
	}
}

// SLOWindow is one objective's burn state over one window.
type SLOWindow struct {
	// Seconds is the window length.
	Seconds int `json:"seconds"`
	// Total and Bad are the objective's denominator and bad-event
	// counts inside the window.
	Total uint64 `json:"total"`
	Bad   uint64 `json:"bad"`
	// BadFraction is Bad/Total (0 when the window is empty).
	BadFraction float64 `json:"badFraction"`
	// BurnRate is BadFraction over the allowed budget: 1.0 burns the
	// budget exactly as fast as the objective allows, higher is a
	// leak.
	BurnRate float64 `json:"burnRate"`
}

// SLOObjective is one objective's full burn report.
type SLOObjective struct {
	Name string `json:"name"`
	// Budget is the allowed bad fraction.
	Budget  float64     `json:"budget"`
	Windows []SLOWindow `json:"windows"`
	// Breach is true when the burn rate is >= 1 in both the shortest
	// and the longest window (the multiwindow rule: sustained, not a
	// blip).
	Breach bool `json:"breach"`
}

// SLOReport is the /system/slo payload.
type SLOReport struct {
	Objectives []SLOObjective `json:"objectives"`
}

// windowCounts sums bucket counters over the trailing window ending
// at nowSec.
type sloCounts struct {
	total, ok, served, slow, cold, errs uint64
}

func (m *SLOMonitor) windowCounts(nowSec int64, window time.Duration) sloCounts {
	var c sloCounts
	secs := int64(window / time.Second)
	for s := nowSec - secs + 1; s <= nowSec; s++ {
		b := &m.buckets[s%int64(len(m.buckets))]
		if b.epoch.Load() != s {
			continue // never written or already recycled
		}
		c.total += b.total.Load()
		c.ok += b.ok.Load()
		c.served += b.served.Load()
		c.slow += b.slow.Load()
		c.cold += b.cold.Load()
		c.errs += b.errs.Load()
	}
	return c
}

// Report computes every enabled objective's burn rates now.
func (m *SLOMonitor) Report() SLOReport {
	nowSec := m.cfg.Now().Unix()
	counts := make([]sloCounts, len(m.cfg.Windows))
	for i, w := range m.cfg.Windows {
		counts[i] = m.windowCounts(nowSec, w)
	}

	var rep SLOReport
	objective := func(name string, budget float64, pick func(sloCounts) (total, bad uint64)) {
		obj := SLOObjective{Name: name, Budget: budget}
		for i, w := range m.cfg.Windows {
			total, bad := pick(counts[i])
			win := SLOWindow{Seconds: int(w / time.Second), Total: total, Bad: bad}
			if total > 0 {
				win.BadFraction = float64(bad) / float64(total)
				win.BurnRate = win.BadFraction / budget
			}
			obj.Windows = append(obj.Windows, win)
		}
		obj.Breach = obj.Windows[0].BurnRate >= 1 &&
			obj.Windows[len(obj.Windows)-1].BurnRate >= 1
		rep.Objectives = append(rep.Objectives, obj)
	}

	if m.cfg.LatencyThreshold > 0 {
		objective(SLOLatency, 1-m.cfg.LatencyObjective,
			func(c sloCounts) (uint64, uint64) { return c.ok, c.slow })
	}
	if m.cfg.ColdStartBudget > 0 {
		objective(SLOColdStart, m.cfg.ColdStartBudget,
			func(c sloCounts) (uint64, uint64) { return c.served, c.cold })
	}
	if m.cfg.ErrorBudget > 0 {
		objective(SLOGoodput, m.cfg.ErrorBudget,
			func(c sloCounts) (uint64, uint64) { return c.total, c.errs })
	}
	return rep
}

// Instrument registers the hotc_slo_* gauge families on the registry.
// Sync refreshes them; the daemon calls it on every /metrics scrape so
// the exported burn rates are as fresh as the scrape.
func (m *SLOMonitor) Instrument(reg *Registry) {
	m.burn = reg.GaugeVec("hotc_slo_burn_rate",
		"Error-budget burn rate per objective and window (1.0 = burning exactly the allowed budget).",
		"objective", "window")
	m.badFrac = reg.GaugeVec("hotc_slo_bad_fraction",
		"Fraction of bad events per objective and window.",
		"objective", "window")
	m.breach = reg.GaugeVec("hotc_slo_breach",
		"Whether the objective is breaching (burn rate >= 1 in both the shortest and longest window).",
		"objective")
	m.budget = reg.GaugeVec("hotc_slo_budget",
		"Allowed bad-event fraction per objective.",
		"objective")
}

// Sync recomputes the report and pushes it into the registered
// gauges. No-op before Instrument. Returns the report so callers
// serving /system/slo refresh the gauges and the JSON from one pass.
func (m *SLOMonitor) Sync() SLOReport {
	rep := m.Report()
	if m.burn == nil {
		return rep
	}
	for _, obj := range rep.Objectives {
		m.budget.With(obj.Name).Set(obj.Budget)
		breach := 0.0
		if obj.Breach {
			breach = 1
		}
		m.breach.With(obj.Name).Set(breach)
		for _, w := range obj.Windows {
			label := (time.Duration(w.Seconds) * time.Second).String()
			m.burn.With(obj.Name, label).Set(w.BurnRate)
			m.badFrac.With(obj.Name, label).Set(w.BadFraction)
		}
	}
	return rep
}
