//go:build race

package obs

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation perturbs AllocsPerRun, so the zero-alloc guards only
// assert in non-race runs.
const raceEnabled = true
