package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the strict reader for the exposition the registry
// writes: a validating parser for the Prometheus text format
// (0.0.4) plus OpenMetrics exemplar suffixes. scripts/verify.sh runs
// it over a live hotcd's /metrics output (via `hotc-trace metrics`) so
// a malformed line — a bad escape, a non-cumulative bucket, an
// exemplar on the wrong sample — fails CI instead of a dashboard.

// ExpoStats summarizes a parsed exposition.
type ExpoStats struct {
	// Families counts TYPE-declared metric families.
	Families int
	// Samples counts sample lines.
	Samples int
	// Exemplars counts exemplar suffixes.
	Exemplars int
	// Names are the family names in declaration order.
	Names []string
}

// expoHistogram accumulates one histogram series' samples for the
// end-of-parse structural checks.
type expoHistogram struct {
	buckets  map[float64]float64 // le → cumulative count
	hasInf   bool
	infCum   float64
	sumSeen  bool
	count    float64
	countSet bool
	line     int
}

// ParseExposition validates a text exposition end to end. It checks
// line syntax (names, label escaping, float values, timestamps,
// exemplars), TYPE discipline (every sample belongs to a declared
// family, exemplars only on histogram buckets), and histogram
// structure (cumulative non-decreasing buckets, mandatory +Inf,
// _count consistent with the +Inf bucket, _sum present). The error
// carries the offending line number.
func ParseExposition(r io.Reader) (ExpoStats, error) {
	var stats ExpoStats
	types := make(map[string]string) // family → type
	helps := make(map[string]bool)
	hists := make(map[string]*expoHistogram) // family \x1f labels(excl le)
	seen := make(map[string]bool)            // duplicate-sample detection

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseExpoComment(line, types, helps, &stats); err != nil {
				return stats, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := parseExpoSample(line, lineNo, types, hists, seen, &stats); err != nil {
			return stats, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	for key, h := range hists {
		name := key[:strings.Index(key, labelSep)]
		if err := h.validate(name); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func parseExpoComment(line string, types map[string]string, helps map[string]bool, stats *ExpoStats) error {
	// "# HELP name text", "# TYPE name kind"; any other comment is
	// legal and ignored.
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return nil
	}
	kind, rest, _ := strings.Cut(rest, " ")
	switch kind {
	case "HELP":
		name, _, _ := strings.Cut(rest, " ")
		if !validExpoName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if helps[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		helps[name] = true
	case "TYPE":
		name, typ, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("TYPE line missing type: %q", line)
		}
		if !validExpoName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		types[name] = typ
		stats.Families++
		stats.Names = append(stats.Names, name)
	}
	return nil
}

func parseExpoSample(line string, lineNo int, types map[string]string, hists map[string]*expoHistogram, seen map[string]bool, stats *ExpoStats) error {
	p := &expoScanner{s: line}
	name := p.name()
	if name == "" {
		return fmt.Errorf("invalid metric name at %q", p.rest())
	}
	labels, err := p.labels()
	if err != nil {
		return err
	}
	p.spaces()
	valTok := p.token()
	value, err := parseExpoValue(valTok)
	if err != nil {
		return fmt.Errorf("bad value %q: %w", valTok, err)
	}

	// Resolve the family this sample belongs to: exact name, or for
	// histogram/summary the _bucket/_sum/_count suffixed forms.
	family, suffix := name, ""
	typ, ok := types[family]
	if !ok {
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if base, found := strings.CutSuffix(name, sfx); found {
				if t, declared := types[base]; declared {
					family, suffix, typ, ok = base, sfx, t, true
					break
				}
			}
		}
	}
	if !ok {
		return fmt.Errorf("sample %q has no preceding TYPE declaration", name)
	}
	switch typ {
	case "histogram", "summary":
		if suffix == "" && typ == "histogram" {
			return fmt.Errorf("histogram %s sample must be _bucket, _sum or _count", family)
		}
	default:
		if suffix != "" {
			return fmt.Errorf("%s %s cannot have %s samples", typ, family, suffix)
		}
	}

	// Optional timestamp (integer milliseconds).
	p.spaces()
	if tok := p.peekToken(); tok != "" && tok != "#" {
		if _, err := strconv.ParseInt(p.token(), 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", tok)
		}
		p.spaces()
	}

	// Optional exemplar: "# {labels} value [timestamp]".
	if !p.done() {
		if typ != "histogram" || suffix != "_bucket" {
			return fmt.Errorf("exemplar on non-bucket sample %s", name)
		}
		if err := p.exemplar(); err != nil {
			return err
		}
		stats.Exemplars++
	}
	if !p.done() {
		return fmt.Errorf("trailing garbage %q", p.rest())
	}

	// Duplicate detection and histogram accounting key: family +
	// sorted labels, with le split out for buckets.
	le, hasLE := labels["le"]
	if suffix == "_bucket" {
		if !hasLE {
			return fmt.Errorf("%s_bucket without le label", family)
		}
		delete(labels, "le")
	}
	key := family + labelSep + suffix + labelSep + sortedLabelKey(labels)
	dupKey := key
	if suffix == "_bucket" {
		dupKey += labelSep + le
	}
	if seen[dupKey] {
		return fmt.Errorf("duplicate sample %s", name)
	}
	seen[dupKey] = true
	stats.Samples++

	if typ == "histogram" {
		hkey := family + labelSep + sortedLabelKey(labels)
		h := hists[hkey]
		if h == nil {
			h = &expoHistogram{buckets: make(map[float64]float64), line: lineNo}
			hists[hkey] = h
		}
		switch suffix {
		case "_bucket":
			if le == "+Inf" {
				h.hasInf, h.infCum = true, value
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("bad le %q", le)
				}
				h.buckets[bound] = value
			}
		case "_sum":
			h.sumSeen = true
		case "_count":
			h.count, h.countSet = value, true
		}
	}
	return nil
}

func (h *expoHistogram) validate(name string) error {
	if !h.hasInf {
		return fmt.Errorf("histogram %s (near line %d): missing +Inf bucket", name, h.line)
	}
	if !h.sumSeen || !h.countSet {
		return fmt.Errorf("histogram %s (near line %d): missing _sum or _count", name, h.line)
	}
	if h.count != h.infCum {
		return fmt.Errorf("histogram %s (near line %d): _count %v != +Inf bucket %v",
			name, h.line, h.count, h.infCum)
	}
	bounds := make([]float64, 0, len(h.buckets))
	for b := range h.buckets {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	prev := 0.0
	for _, b := range bounds {
		if h.buckets[b] < prev {
			return fmt.Errorf("histogram %s (near line %d): bucket le=%v count %v below previous %v",
				name, h.line, b, h.buckets[b], prev)
		}
		prev = h.buckets[b]
	}
	if h.infCum < prev {
		return fmt.Errorf("histogram %s (near line %d): +Inf bucket %v below le=%v",
			name, h.line, h.infCum, prev)
	}
	return nil
}

func parseExpoValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	case "":
		return 0, fmt.Errorf("missing value")
	}
	return strconv.ParseFloat(tok, 64)
}

func validExpoName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validExpoLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validExpoName(s)
}

func sortedLabelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString(labelSep)
		b.WriteString(labels[k])
		b.WriteString(labelSep)
	}
	return b.String()
}

// expoScanner is a cursor over one sample line.
type expoScanner struct {
	s   string
	pos int
}

func (p *expoScanner) done() bool   { return p.pos >= len(p.s) }
func (p *expoScanner) rest() string { return p.s[p.pos:] }
func (p *expoScanner) peek() byte {
	if p.done() {
		return 0
	}
	return p.s[p.pos]
}

func (p *expoScanner) spaces() {
	for !p.done() && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

// token reads up to the next space/tab.
func (p *expoScanner) token() string {
	start := p.pos
	for !p.done() && p.s[p.pos] != ' ' && p.s[p.pos] != '\t' {
		p.pos++
	}
	return p.s[start:p.pos]
}

func (p *expoScanner) peekToken() string {
	save := p.pos
	tok := p.token()
	p.pos = save
	return tok
}

// name reads a metric name (empty if invalid start).
func (p *expoScanner) name() string {
	start := p.pos
	for !p.done() {
		c := p.s[p.pos]
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		digit := c >= '0' && c <= '9'
		if !alpha && !(digit && p.pos > start) {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}

// labels reads an optional {name="value",...} block.
func (p *expoScanner) labels() (map[string]string, error) {
	out := make(map[string]string)
	if p.peek() != '{' {
		return out, nil
	}
	p.pos++
	for {
		if p.peek() == '}' {
			p.pos++
			return out, nil
		}
		lname := p.name()
		if !validExpoLabelName(lname) {
			return nil, fmt.Errorf("invalid label name at %q", p.rest())
		}
		if p.peek() != '=' {
			return nil, fmt.Errorf("expected '=' at %q", p.rest())
		}
		p.pos++
		val, err := p.quoted()
		if err != nil {
			return nil, err
		}
		if _, dup := out[lname]; dup {
			return nil, fmt.Errorf("duplicate label %q", lname)
		}
		out[lname] = val
		switch p.peek() {
		case ',':
			p.pos++ // trailing comma before '}' is legal
		case '}':
		default:
			return nil, fmt.Errorf("expected ',' or '}' at %q", p.rest())
		}
	}
}

// quoted reads a double-quoted label value with \\, \" and \n escapes.
func (p *expoScanner) quoted() (string, error) {
	if p.peek() != '"' {
		return "", fmt.Errorf("expected '\"' at %q", p.rest())
	}
	p.pos++
	var b strings.Builder
	for !p.done() {
		c := p.s[p.pos]
		p.pos++
		switch c {
		case '"':
			return b.String(), nil
		case '\\':
			if p.done() {
				return "", fmt.Errorf("dangling escape")
			}
			e := p.s[p.pos]
			p.pos++
			switch e {
			case '\\', '"':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			default:
				return "", fmt.Errorf("invalid escape \\%c", e)
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", fmt.Errorf("unterminated label value")
}

// exemplar validates an OpenMetrics exemplar suffix: the cursor sits
// on '#'.
func (p *expoScanner) exemplar() error {
	if p.peek() != '#' {
		return fmt.Errorf("expected exemplar at %q", p.rest())
	}
	p.pos++
	p.spaces()
	if p.peek() != '{' {
		return fmt.Errorf("exemplar missing label set at %q", p.rest())
	}
	if _, err := p.labels(); err != nil {
		return fmt.Errorf("exemplar labels: %w", err)
	}
	p.spaces()
	valTok := p.token()
	if _, err := parseExpoValue(valTok); err != nil {
		return fmt.Errorf("exemplar value %q: %w", valTok, err)
	}
	p.spaces()
	if !p.done() {
		if _, err := strconv.ParseFloat(p.token(), 64); err != nil {
			return fmt.Errorf("exemplar timestamp: %w", err)
		}
		p.spaces()
	}
	return nil
}
