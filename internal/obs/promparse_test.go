package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseExpositionAcceptsRegistryOutput(t *testing.T) {
	reg := New()
	reg.Counter("hotc_requests_total", "Requests.").Add(3)
	reg.GaugeVec("hotc_warm", "Warm instances.", "function").With("echo").Set(2)
	// A label value with every escape-worthy character.
	reg.GaugeVec("hotc_odd", "Odd labels.", "k").With("a\"b\\c\nd").Set(1)
	h := reg.Histogram("hotc_latency_ms", "Latency.", []float64{1, 5, 10})
	h.Observe(0.5)
	h.Observe(7)
	h.Observe(100)
	h.SetExemplar(7, "4bf92f3577b34da6a3ce929d0e0e4736", time.UnixMilli(1_700_000_000_123))

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ParseExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseExposition rejects registry output: %v\n%s", err, buf.String())
	}
	if st.Families != 4 {
		t.Fatalf("Families = %d, want 4 (names %v)", st.Families, st.Names)
	}
	// counter + 2 gauges + 4 buckets + sum + count.
	if st.Samples != 9 {
		t.Fatalf("Samples = %d, want 9\n%s", st.Samples, buf.String())
	}
	if st.Exemplars != 1 {
		t.Fatalf("Exemplars = %d, want 1", st.Exemplars)
	}
}

func TestParseExpositionAcceptsHandwritten(t *testing.T) {
	// Legal-but-unusual constructs: comments, trailing-comma labels,
	// sample timestamps, special float values, future-proof ordering.
	const text = `# a freeform comment
# TYPE up gauge
up 1 1700000000000
# HELP temp Temperature.
# TYPE temp gauge
temp{site="lab",} -Inf
# TYPE h histogram
h_bucket{le="0.5"} 1 # {trace_id="abc"} 0.3 1700000000.123
h_bucket{le="+Inf"} 2
h_sum 2.5
h_count 2
`
	st, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if st.Families != 3 || st.Samples != 6 || st.Exemplars != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"sample without TYPE", "foo 1\n", "no preceding TYPE"},
		{"unknown TYPE kind", "# TYPE foo magic\n", "unknown TYPE"},
		{"duplicate TYPE", "# TYPE foo gauge\n# TYPE foo gauge\n", "duplicate TYPE"},
		{"duplicate HELP", "# HELP foo a\n# HELP foo b\n", "duplicate HELP"},
		{"duplicate sample", "# TYPE c counter\nc 1\nc 2\n", "duplicate sample"},
		{"counter with bucket sample", "# TYPE c counter\nc_bucket{le=\"1\"} 1\n", "cannot have _bucket samples"},
		{"bare histogram sample", "# TYPE h histogram\nh 1\n", "must be _bucket, _sum or _count"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\n", "without le"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "_count 3 != +Inf bucket 2"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "below previous"},
		{"+Inf below last bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "+Inf bucket 3 below"},
		{"exemplar on gauge", "# TYPE g gauge\ng 1 # {trace_id=\"x\"} 1\n", "exemplar on non-bucket"},
		{"exemplar on histogram count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1 # {trace_id=\"x\"} 1\n", "exemplar on non-bucket"},
		{"bad value", "# TYPE g gauge\ng pizza\n", "bad value"},
		{"fractional timestamp", "# TYPE g gauge\ng 1 1.5\n", "bad timestamp"},
		{"invalid metric name", "# TYPE g gauge\n1g 1\n", "invalid metric name"},
		{"invalid label name", "# TYPE g gauge\ng{le:x=\"1\"} 1\n", "invalid label"},
		{"duplicate label", "# TYPE g gauge\ng{a=\"1\",a=\"2\"} 1\n", "duplicate label"},
		{"bad escape", "# TYPE g gauge\ng{a=\"x\\q\"} 1\n", "invalid escape"},
		{"unterminated value", "# TYPE g gauge\ng{a=\"x} 1\n", "unterminated"},
		{"trailing garbage", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 junk\nh_sum 1\nh_count 1\n", "bad timestamp"},
	}
	for _, tc := range cases {
		_, err := ParseExposition(strings.NewReader(tc.text))
		if err == nil {
			t.Errorf("%s: accepted\n%s", tc.name, tc.text)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
