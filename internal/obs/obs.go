// Package obs is the unified observability layer: a concurrency-safe
// metrics registry (counters, gauges, histograms with configurable
// bucket layouts, and labeled families of each) plus a per-request
// span tracer over the paper's six §III.A workflow timestamps.
//
// The simulated pipeline (gateway, pool, controller) and the live
// net/http daemon both record into the same registry types, so a sim
// run's JSONL dump and hotcd's Prometheus /metrics endpoint expose the
// same metric families under the same names. Every metric name must
// match `hotc_[a-z_]+` — the registry enforces it at registration and
// `scripts/lint-metrics.sh` enforces it at verify time — so dashboards
// built against one binary work against the others.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// nameRE is the metric naming scheme: a mandatory hotc_ prefix followed
// by lowercase words separated by underscores.
var nameRE = regexp.MustCompile(`^hotc_[a-z_]+$`)

// Kind classifies a metric family.
type Kind int

// The metric kinds.
const (
	// KindCounter is a monotonically non-decreasing total.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram buckets observations by configurable upper bounds.
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("obs.Kind(%d)", int(k))
	}
}

// LinearBuckets returns n upper bounds starting at start, width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("obs: LinearBuckets needs n > 0 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n upper bounds starting at start, growing
// by factor.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExponentialBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBucketsMS is the standard request-latency layout:
// 1ms doubling to ~65s, covering warm hits through pathological cold
// starts on the edge profile.
func DefaultLatencyBucketsMS() []float64 { return ExponentialBuckets(1, 2, 17) }

// Registry is a concurrency-safe collection of metric families.
// Registration is get-or-create: asking twice for the same name with a
// compatible shape returns the same family, so independent subsystems
// can instrument themselves without coordinating; an incompatible
// re-registration (different kind, labels or buckets) panics, as does
// a name violating the hotc_[a-z_]+ scheme.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{fams: make(map[string]*family)} }

// family is one named metric family with a fixed label set.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram upper bounds, strictly increasing

	mu     sync.Mutex
	series map[string]*series
}

// series is one label-value combination's state. value is the
// counter/gauge value; histograms use counts/sum/count.
type series struct {
	labelValues []string

	mu     sync.Mutex
	value  float64
	counts []uint64 // per-bucket (non-cumulative); last entry is +Inf
	sum    float64
	count  uint64
}

const labelSep = "\x1f"

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values (%v), got %d",
			f.name, len(f.labels), f.labels, len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			s.counts = make([]uint64, len(f.bounds)+1)
		}
		f.series[key] = s
	}
	return s
}

// family registers (or fetches) a family, validating the name and that
// any prior registration has an identical shape.
func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q violates the naming scheme hotc_[a-z_]+", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: %s histogram bounds must be strictly increasing (%v)", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: conflicting re-registration of %s", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically non-decreasing total.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative v panics (a counter never goes down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter decremented by %v", v))
	}
	c.s.mu.Lock()
	c.s.value += v
	c.s.mu.Unlock()
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add adjusts the value by v (negative to decrement).
func (g *Gauge) Add(v float64) {
	g.s.mu.Lock()
	g.s.value += v
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// Histogram buckets observations by upper bound. A value lands in the
// first bucket whose bound is >= the value (Prometheus `le`
// semantics); values above every bound land in the implicit +Inf
// bucket.
type Histogram struct {
	f *family
	s *series
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.bounds, v)
	h.s.mu.Lock()
	h.s.counts[i]++
	h.s.sum += v
	h.s.count++
	h.s.mu.Unlock()
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Sum reports the total of all observed values.
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// BucketCount reports the (non-cumulative) count of bucket i; index
// len(bounds) is the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.counts[i]
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, KindCounter, nil, nil)
	return &Counter{s: f.get(nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, KindGauge, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, KindHistogram, nil, bounds)
	return &Histogram{f: f, s: f.get(nil)}
}

// CounterVec is a labeled family of counters.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a counter family with the given
// label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labels, nil)}
}

// With returns the child counter for the label values (created on
// first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// GaugeVec is a labeled family of gauges.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a gauge family with the given label
// names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labels, nil)}
}

// With returns the child gauge for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.get(labelValues)}
}

// HistogramVec is a labeled family of histograms sharing one bucket
// layout.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a histogram family with the
// given bounds and label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, labels, bounds)}
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.get(labelValues)}
}

// FamilySnapshot is a point-in-time copy of one metric family.
type FamilySnapshot struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Kind   string   `json:"kind"`
	Labels []string `json:"labels,omitempty"`
	// Bounds are the histogram bucket upper bounds (+Inf implicit).
	Bounds []float64        `json:"bounds,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one label combination's values.
type SeriesSnapshot struct {
	LabelValues []string `json:"labelValues,omitempty"`
	// Value is the counter total or gauge level.
	Value float64 `json:"value,omitempty"`
	// Count, Sum and BucketCounts describe a histogram; BucketCounts
	// are per-bucket (non-cumulative), last entry +Inf.
	Count        uint64   `json:"count,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	BucketCounts []uint64 `json:"bucketCounts,omitempty"`
}

// Snapshot copies every family, sorted by name with series sorted by
// label values, so output is deterministic.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind.String(),
			Labels: append([]string(nil), f.labels...),
			Bounds: append([]float64(nil), f.bounds...),
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			s.mu.Lock()
			ss := SeriesSnapshot{
				LabelValues: append([]string(nil), s.labelValues...),
				Value:       s.value,
				Count:       s.count,
				Sum:         s.sum,
			}
			if f.kind == KindHistogram {
				ss.BucketCounts = append([]uint64(nil), s.counts...)
			}
			s.mu.Unlock()
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}
