// Package obs is the unified observability layer: a concurrency-safe
// metrics registry (counters, gauges, histograms with configurable
// bucket layouts, and labeled families of each) plus a per-request
// span tracer over the paper's six §III.A workflow timestamps.
//
// The simulated pipeline (gateway, pool, controller) and the live
// net/http daemon both record into the same registry types, so a sim
// run's JSONL dump and hotcd's Prometheus /metrics endpoint expose the
// same metric families under the same names. Every metric name must
// match `hotc_[a-z_]+` — the registry enforces it at registration and
// `scripts/lint-metrics.sh` enforces it at verify time — so dashboards
// built against one binary work against the others.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// nameRE is the metric naming scheme: a mandatory hotc_ prefix followed
// by lowercase words separated by underscores.
var nameRE = regexp.MustCompile(`^hotc_[a-z_]+$`)

// Kind classifies a metric family.
type Kind int

// The metric kinds.
const (
	// KindCounter is a monotonically non-decreasing total.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram buckets observations by configurable upper bounds.
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("obs.Kind(%d)", int(k))
	}
}

// LinearBuckets returns n upper bounds starting at start, width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("obs: LinearBuckets needs n > 0 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n upper bounds starting at start, growing
// by factor.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExponentialBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBucketsMS is the standard request-latency layout:
// 1ms doubling to ~65s, covering warm hits through pathological cold
// starts on the edge profile.
func DefaultLatencyBucketsMS() []float64 { return ExponentialBuckets(1, 2, 17) }

// DefaultBodySizeBuckets is the standard payload-size layout: 64 B
// growing 4x to 16 MiB, covering tiny control messages through the
// multi-megabyte streams the gateway's data path is sized for.
func DefaultBodySizeBuckets() []float64 { return ExponentialBuckets(64, 4, 10) }

// Registry is a concurrency-safe collection of metric families.
// Registration is get-or-create: asking twice for the same name with a
// compatible shape returns the same family, so independent subsystems
// can instrument themselves without coordinating; an incompatible
// re-registration (different kind, labels or buckets) panics, as does
// a name violating the hotc_[a-z_]+ scheme.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{fams: make(map[string]*family)} }

// family is one named metric family with a fixed label set.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram upper bounds, strictly increasing

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label-value combination's state, held entirely in
// atomics so the observation fast path (counter increments, gauge sets,
// histogram observes) is lock-free: bits carries the counter/gauge
// value as float64 bits updated by CAS, histograms bump their bucket,
// sum and count independently. Readers see each field atomically; a
// snapshot taken mid-observation may catch a histogram's count ahead
// of its sum by one observation, which is the standard exposition
// trade-off for a lock-free write path.
type series struct {
	labelValues []string

	bits    atomic.Uint64   // counter/gauge value as math.Float64bits
	counts  []atomic.Uint64 // per-bucket (non-cumulative); last entry is +Inf
	sumBits atomic.Uint64   // histogram sum as float64 bits
	count   atomic.Uint64
	// exemplars holds one recent representative observation per
	// histogram bucket (nil until a bucket gets one): an atomic
	// pointer swap on write, so attaching an exemplar never locks the
	// observation path.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one concrete traced request to the histogram bucket
// its value landed in, the OpenMetrics bridge from aggregate latency
// curves back to individual traces: a dashboard showing a p99 spike
// can surface the trace ID of a real request from the offending
// bucket.
type Exemplar struct {
	// TraceID identifies the request (rendered as the trace_id
	// exemplar label).
	TraceID string `json:"traceId"`
	// Value is the observed value the exemplar represents.
	Value float64 `json:"value"`
	// TSUnixMs is when the exemplar was recorded, milliseconds since
	// the epoch.
	TSUnixMs int64 `json:"tsUnixMs"`
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

const labelSep = "\x1f"

// get resolves (creating on first use) the series for a label-value
// combination. The read path is a shared RLock so concurrent resolution
// of existing series does not serialize; hot call sites should still
// resolve once and keep the returned handle (see the Vec With docs).
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values (%v), got %d",
			f.name, len(f.labels), f.labels, len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), labelValues...)}
	if f.kind == KindHistogram {
		s.counts = make([]atomic.Uint64, len(f.bounds)+1)
		s.exemplars = make([]atomic.Pointer[Exemplar], len(f.bounds)+1)
	}
	f.series[key] = s
	return s
}

// family registers (or fetches) a family, validating the name and that
// any prior registration has an identical shape.
func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q violates the naming scheme hotc_[a-z_]+", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: %s histogram bounds must be strictly increasing (%v)", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: conflicting re-registration of %s", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically non-decreasing total. Increments are a
// lock-free CAS on the value's float bits, so a cached Counter handle
// costs no locks and no allocations per observation.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative v panics (a counter never goes down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter decremented by %v", v))
	}
	addFloat(&c.s.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	return math.Float64frombits(c.s.bits.Load())
}

// Gauge is a value that can go up and down. Set is an atomic store;
// Add is a lock-free CAS.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by v (negative to decrement).
func (g *Gauge) Add(v float64) {
	addFloat(&g.s.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.s.bits.Load())
}

// Histogram buckets observations by upper bound. A value lands in the
// first bucket whose bound is >= the value (Prometheus `le`
// semantics); values above every bound land in the implicit +Inf
// bucket. The bucket index is a binary search over the bounds and the
// bucket/sum/count updates are independent atomics, so observation
// through a cached handle is lock-free.
type Histogram struct {
	f *family
	s *series
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.bounds, v)
	h.s.counts[i].Add(1)
	addFloat(&h.s.sumBits, v)
	h.s.count.Add(1)
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	return h.s.count.Load()
}

// Sum reports the total of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.s.sumBits.Load())
}

// BucketCount reports the (non-cumulative) count of bucket i; index
// len(bounds) is the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	return h.s.counts[i].Load()
}

// SetExemplar attaches an exemplar for value v to the bucket v falls
// in, without recording an observation (the observation was already
// counted by Observe; the exemplar only names a representative). One
// atomic pointer swap: callers attach exemplars only for requests the
// tail sampler kept, so the cost — one small allocation — is paid at
// sampling frequency, not request frequency.
func (h *Histogram) SetExemplar(v float64, traceID string, at time.Time) {
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.f.bounds, v)
	h.s.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, TSUnixMs: at.UnixMilli()})
}

// Exemplar returns bucket i's exemplar, or nil if none was attached.
func (h *Histogram) Exemplar(i int) *Exemplar {
	return h.s.exemplars[i].Load()
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, KindCounter, nil, nil)
	return &Counter{s: f.get(nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, KindGauge, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, KindHistogram, nil, bounds)
	return &Histogram{f: f, s: f.get(nil)}
}

// handleCache memoizes the wrapper handle for each label combination
// so repeated With calls on a Vec return the same pre-resolved handle
// without allocating. Hot call sites should still call With once and
// keep the handle: that skips even the cache's join+lookup.
type handleCache[T any] struct {
	mu    sync.RWMutex
	cache map[string]T
}

func (c *handleCache[T]) get(key string) (T, bool) {
	c.mu.RLock()
	v, ok := c.cache[key]
	c.mu.RUnlock()
	return v, ok
}

func (c *handleCache[T]) put(key string, v T) T {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.cache[key]; ok {
		return prior
	}
	if c.cache == nil {
		c.cache = make(map[string]T)
	}
	c.cache[key] = v
	return v
}

// CounterVec is a labeled family of counters.
type CounterVec struct {
	f       *family
	handles handleCache[*Counter]
}

// CounterVec registers (or fetches) a counter family with the given
// label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labels, nil)}
}

// With returns the cached child counter for the label values (created
// and memoized on first use, so repeated With calls do not allocate).
func (v *CounterVec) With(labelValues ...string) *Counter {
	key := strings.Join(labelValues, labelSep)
	if c, ok := v.handles.get(key); ok {
		return c
	}
	return v.handles.put(key, &Counter{s: v.f.get(labelValues)})
}

// GaugeVec is a labeled family of gauges.
type GaugeVec struct {
	f       *family
	handles handleCache[*Gauge]
}

// GaugeVec registers (or fetches) a gauge family with the given label
// names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labels, nil)}
}

// With returns the cached child gauge for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	key := strings.Join(labelValues, labelSep)
	if g, ok := v.handles.get(key); ok {
		return g
	}
	return v.handles.put(key, &Gauge{s: v.f.get(labelValues)})
}

// HistogramVec is a labeled family of histograms sharing one bucket
// layout.
type HistogramVec struct {
	f       *family
	handles handleCache[*Histogram]
}

// HistogramVec registers (or fetches) a histogram family with the
// given bounds and label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, labels, bounds)}
}

// With returns the cached child histogram for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	key := strings.Join(labelValues, labelSep)
	if h, ok := v.handles.get(key); ok {
		return h
	}
	return v.handles.put(key, &Histogram{f: v.f, s: v.f.get(labelValues)})
}

// FamilySnapshot is a point-in-time copy of one metric family.
type FamilySnapshot struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Kind   string   `json:"kind"`
	Labels []string `json:"labels,omitempty"`
	// Bounds are the histogram bucket upper bounds (+Inf implicit).
	Bounds []float64        `json:"bounds,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one label combination's values.
type SeriesSnapshot struct {
	LabelValues []string `json:"labelValues,omitempty"`
	// Value is the counter total or gauge level.
	Value float64 `json:"value,omitempty"`
	// Count, Sum and BucketCounts describe a histogram; BucketCounts
	// are per-bucket (non-cumulative), last entry +Inf.
	Count        uint64   `json:"count,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	BucketCounts []uint64 `json:"bucketCounts,omitempty"`
	// Exemplars are the buckets' representative traced observations,
	// ascending by bucket index; buckets without one are absent.
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// BucketExemplar is one bucket's exemplar in a snapshot.
type BucketExemplar struct {
	// Bucket indexes into BucketCounts (len(bounds) = +Inf).
	Bucket int `json:"bucket"`
	Exemplar
}

// Snapshot copies every family, sorted by name with series sorted by
// label values, so output is deterministic.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind.String(),
			Labels: append([]string(nil), f.labels...),
			Bounds: append([]float64(nil), f.bounds...),
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{
				LabelValues: append([]string(nil), s.labelValues...),
				Value:       math.Float64frombits(s.bits.Load()),
				Count:       s.count.Load(),
				Sum:         math.Float64frombits(s.sumBits.Load()),
			}
			if f.kind == KindHistogram {
				ss.BucketCounts = make([]uint64, len(s.counts))
				for i := range s.counts {
					ss.BucketCounts[i] = s.counts[i].Load()
				}
				for i := range s.exemplars {
					if ex := s.exemplars[i].Load(); ex != nil {
						ss.Exemplars = append(ss.Exemplars, BucketExemplar{Bucket: i, Exemplar: *ex})
					}
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}
