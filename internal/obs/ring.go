package obs

import (
	"sort"
	"sync/atomic"
)

// TraceRing is the bounded buffer of recently kept spans behind the
// live gateway's /system/trace endpoint. It is built for a hot write
// path and a cold read path:
//
//   - Writers never block. A global atomic sequence assigns each kept
//     span a slot; the slot is claimed with a single CAS. If the claim
//     fails (a reader is copying it, or the ring wrapped onto a slot
//     another writer still holds), the span is dropped and counted
//     rather than waited for — a trace buffer must never become the
//     contention point it exists to diagnose.
//   - Slots are pre-allocated, including each slot's event backing
//     array after first use, so recording a span steady-state costs
//     zero heap allocations.
//   - Readers (scrapes of /system/trace) claim slots with the same
//     CAS, copy, and release; they skip — not wait on — slots a writer
//     holds mid-copy.
type TraceRing struct {
	slots []ringSlot
	// seq counts slot reservations; slot for reservation i is i % len.
	seq atomic.Uint64
	// contended counts spans dropped because their slot was busy.
	contended atomic.Uint64
}

type ringSlot struct {
	// busy is the slot's claim flag: a single-owner spin claim taken
	// by CAS and released by Store, which the race detector and the
	// memory model both understand (unlike a seqlock's bare reads).
	busy   atomic.Bool
	seq    uint64 // reservation number of the held span
	filled bool
	span   Span // span.Events aliases a slot-owned backing array
}

// NewTraceRing returns a ring with the given capacity (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{slots: make([]ringSlot, capacity)}
}

// Capacity reports the number of slots.
func (r *TraceRing) Capacity() int { return len(r.slots) }

// Written reports how many spans were successfully recorded.
func (r *TraceRing) Written() uint64 { return r.seq.Load() - r.contended.Load() }

// Contended reports how many spans were dropped because their slot
// was held by a concurrent reader or a lapped writer.
func (r *TraceRing) Contended() uint64 { return r.contended.Load() }

// Put records a span. events are copied into the slot's own backing
// array, so the caller's slice (typically a stack-allocated scratch
// array) is never retained — which is what keeps the caller's request
// state off the heap. Returns false when the slot was busy and the
// span was dropped.
func (r *TraceRing) Put(sp *Span, events []SpanEvent) bool {
	idx := r.seq.Add(1) - 1
	slot := &r.slots[idx%uint64(len(r.slots))]
	if !slot.busy.CompareAndSwap(false, true) {
		r.contended.Add(1)
		return false
	}
	buf := slot.span.Events[:0] // keep the slot's backing array
	slot.span = *sp
	slot.span.Events = append(buf, events...)
	slot.seq = idx
	slot.filled = true
	slot.busy.Store(false)
	return true
}

// Snapshot copies the ring's current spans, newest first. Slots a
// writer holds at the instant of the scan are skipped, not waited on.
// Event slices are deep-copied so the caller's view is immune to the
// slot being overwritten afterwards.
func (r *TraceRing) Snapshot() []Span {
	type entry struct {
		seq  uint64
		span Span
	}
	entries := make([]entry, 0, len(r.slots))
	for i := range r.slots {
		slot := &r.slots[i]
		if !slot.busy.CompareAndSwap(false, true) {
			continue
		}
		if slot.filled {
			sp := slot.span
			sp.Events = append([]SpanEvent(nil), slot.span.Events...)
			entries = append(entries, entry{slot.seq, sp})
		}
		slot.busy.Store(false)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].seq > entries[b].seq })
	out := make([]Span, len(entries))
	for i, e := range entries {
		out[i] = e.span
	}
	return out
}
