package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteSpans streams spans as JSONL, one span object per line.
func WriteSpans(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i, s := range spans {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: writing span %d: %w", i, err)
		}
	}
	return nil
}

// ReadSpans parses a JSONL span stream written by WriteSpans.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var spans []Span
	for line := 1; ; line++ {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: reading span line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
}
