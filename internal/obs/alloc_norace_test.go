//go:build !race

package obs

// raceEnabled gates allocation-count assertions; see the race-tagged
// twin of this file.
const raceEnabled = false
