package obs

import (
	"fmt"
	"strings"
	"time"

	"hotc/internal/metrics"
)

// PhaseSummary is the distribution of one pipeline phase across a span
// log, in milliseconds.
type PhaseSummary struct {
	Phase string
	metrics.Summary
}

// Breakdown is the paper's latency-breakdown table computed from a span
// log: per-phase distributions over the successful requests, plus
// aggregate request/reuse/failure counts and event tallies.
type Breakdown struct {
	Spans        int
	OK           int
	Failed       int
	Reused       int
	Phases       []PhaseSummary
	EventsByKind map[string]int
}

// Summarize reduces a span log to its latency breakdown. Phase
// distributions cover successful spans only (a failed request never
// reaches the later timestamps); counts and events cover every span.
func Summarize(spans []Span) Breakdown {
	b := Breakdown{Spans: len(spans), EventsByKind: map[string]int{}}
	series := make(map[string]*metrics.Series, len(Phases()))
	for _, name := range Phases() {
		series[name] = &metrics.Series{}
	}
	for _, s := range spans {
		for _, ev := range s.Events {
			b.EventsByKind[ev.Kind]++
		}
		if s.Reused {
			b.Reused++
		}
		if !s.OK() {
			b.Failed++
			continue
		}
		b.OK++
		for _, name := range Phases() {
			series[name].AddDuration(s.Phase(name))
		}
	}
	for _, name := range Phases() {
		b.Phases = append(b.Phases, PhaseSummary{Phase: name, Summary: series[name].Summarize()})
	}
	return b
}

// Render formats the breakdown as the aligned text table reports print:
// one row per phase with mean and tail quantiles in milliseconds.
func (b Breakdown) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "spans: %d total, %d ok, %d failed, %d reused warm runtimes\n",
		b.Spans, b.OK, b.Failed, b.Reused)
	fmt.Fprintf(&sb, "%-8s %8s %9s %9s %9s %9s %9s\n",
		"phase", "count", "min ms", "mean ms", "p50 ms", "p99 ms", "max ms")
	for _, p := range b.Phases {
		fmt.Fprintf(&sb, "%-8s %8d %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			p.Phase, p.Count, p.Min, p.Mean, p.P50, p.P99, p.Max)
	}
	if len(b.EventsByKind) > 0 {
		fmt.Fprintf(&sb, "events:\n")
		for _, kind := range sortedKeys(b.EventsByKind) {
			fmt.Fprintf(&sb, "  %-16s %d\n", kind, b.EventsByKind[kind])
		}
	}
	return sb.String()
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ { // insertion sort; event kinds are few
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}

// ObserveInto feeds every successful span's phase durations into
// per-phase histograms of a registry, so a registry snapshot carries
// the same breakdown /metrics exposes live.
func ObserveInto(reg *Registry, spans []Span) {
	h := reg.HistogramVec("hotc_span_phase_ms",
		"Per-phase request latency from recorded spans, in milliseconds.",
		DefaultLatencyBucketsMS(), "phase")
	for _, s := range spans {
		if !s.OK() {
			continue
		}
		for _, name := range Phases() {
			h.With(name).Observe(float64(s.Phase(name)) / float64(time.Millisecond))
		}
	}
}
