package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("hotc_requests_total", "Total requests.").Add(42)
	r.GaugeVec("hotc_pool_live", "Live runtimes.", "key").With(`py3"edge\x`).Set(3)
	h := r.Histogram("hotc_latency_ms", "Request latency.", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	wants := []string{
		"# HELP hotc_requests_total Total requests.",
		"# TYPE hotc_requests_total counter",
		"hotc_requests_total 42",
		"# TYPE hotc_pool_live gauge",
		`hotc_pool_live{key="py3\"edge\\x"} 3`,
		"# TYPE hotc_latency_ms histogram",
		`hotc_latency_ms_bucket{le="1"} 1`,
		`hotc_latency_ms_bucket{le="5"} 3`,
		`hotc_latency_ms_bucket{le="+Inf"} 4`,
		"hotc_latency_ms_sum 105.5",
		"hotc_latency_ms_count 4",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n%s", w, out)
		}
	}

	// Every non-comment line must parse as "name{...} value".
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "hotc_") {
			t.Errorf("metric line without hotc_ prefix: %q", line)
		}
		if strings.Count(line, " ") < 1 {
			t.Errorf("malformed metric line: %q", line)
		}
	}
}

func TestWritePrometheusHelpEscaping(t *testing.T) {
	r := New()
	r.Counter("hotc_x", "line1\nline2 \\ backslash")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# HELP hotc_x line1\nline2 \\ backslash`) {
		t.Errorf("help not escaped:\n%s", buf.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := New()
	r.CounterVec("hotc_hits_total", "", "key").With("py3").Add(5)
	h := r.Histogram("hotc_ms", "", []float64{10})
	h.Observe(3)
	h.Observe(30)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var got []metricLine
	for _, l := range lines {
		var m metricLine
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", l, err)
		}
		got = append(got, m)
	}
	// Snapshot is name-sorted: hotc_hits_total before hotc_ms.
	if got[0].Name != "hotc_hits_total" || got[0].Value != 5 || got[0].Labels["key"] != "py3" {
		t.Errorf("counter line = %+v", got[0])
	}
	if got[1].Name != "hotc_ms" || got[1].Count != 2 || got[1].Sum != 33 {
		t.Errorf("histogram line = %+v", got[1])
	}
	if len(got[1].BucketCounts) != 2 || got[1].BucketCounts[0] != 1 || got[1].BucketCounts[1] != 1 {
		t.Errorf("histogram buckets = %v", got[1].BucketCounts)
	}
}
