package pool

import (
	"hotc/internal/config"
	"hotc/internal/obs"
)

// instruments bundles the pool's metric families. nil (the default)
// means uninstrumented.
type instruments struct {
	hits        *obs.CounterVec // hotc_pool_hits_total{kind}
	misses      *obs.Counter    // hotc_pool_misses_total
	evictions   *obs.Counter    // hotc_pool_evictions_total
	prewarmed   *obs.Counter    // hotc_pool_prewarmed_total
	retired     *obs.Counter    // hotc_pool_retired_total
	quarantined *obs.Counter    // hotc_pool_quarantined_total
	live        *obs.GaugeVec   // hotc_pool_live{key}
	avail       *obs.GaugeVec   // hotc_pool_available{key}
}

// Instrument registers the pool's metric families on the registry and
// keeps per-runtime-key occupancy gauges in sync from here on. Calling
// with nil turns instrumentation off.
func (p *Pool) Instrument(reg *obs.Registry) {
	if reg == nil {
		p.obs = nil
		return
	}
	p.obs = &instruments{
		hits: reg.CounterVec("hotc_pool_hits_total",
			"Acquire calls served by a live runtime, by match kind (exact|relaxed).",
			"kind"),
		misses: reg.Counter("hotc_pool_misses_total",
			"Acquire calls that had to cold-start a new container."),
		evictions: reg.Counter("hotc_pool_evictions_total",
			"Forced terminations under the live cap or memory threshold."),
		prewarmed: reg.Counter("hotc_pool_prewarmed_total",
			"Containers created ahead of demand by the controller."),
		retired: reg.Counter("hotc_pool_retired_total",
			"Containers stopped by scale-down or keep-alive expiry."),
		quarantined: reg.Counter("hotc_pool_quarantined_total",
			"Containers removed after failing a health check or corrupting an execution."),
		live: reg.GaugeVec("hotc_pool_live",
			"Live pool containers (available or busy) per runtime key.",
			"key"),
		avail: reg.GaugeVec("hotc_pool_available",
			"Pool containers available for immediate reuse per runtime key.",
			"key"),
	}
}

// syncKeyGauges refreshes the occupancy gauges for one runtime key.
func (p *Pool) syncKeyGauges(key config.Key) {
	if p.obs == nil {
		return
	}
	k := string(key)
	p.obs.live.With(k).Set(float64(p.NumLive(key)))
	p.obs.avail.With(k).Set(float64(p.NumAvail(key)))
}
