package pool

import (
	"sync"

	"hotc/internal/config"
	"hotc/internal/obs"
)

// keyGauges holds the pre-resolved occupancy gauges for one runtime
// key, so syncKeyGauges avoids label joins and vec lookups on every
// acquire/release.
type keyGauges struct {
	live  *obs.Gauge
	avail *obs.Gauge
}

// instruments bundles the pool's metric families. nil (the default)
// means uninstrumented. The hit counters and per-key gauges are
// resolved once and cached.
type instruments struct {
	hits        *obs.CounterVec // hotc_pool_hits_total{kind}
	misses      *obs.Counter    // hotc_pool_misses_total
	evictions   *obs.Counter    // hotc_pool_evictions_total
	prewarmed   *obs.Counter    // hotc_pool_prewarmed_total
	retired     *obs.Counter    // hotc_pool_retired_total
	quarantined *obs.Counter    // hotc_pool_quarantined_total
	leases      *obs.Counter    // hotc_pool_leases_total
	live        *obs.GaugeVec   // hotc_pool_live{key}
	avail       *obs.GaugeVec   // hotc_pool_available{key}

	hitsExact   *obs.Counter // hotc_pool_hits_total{kind="exact"}
	hitsRelaxed *obs.Counter // hotc_pool_hits_total{kind="relaxed"}

	mu   sync.RWMutex
	keys map[config.Key]*keyGauges
}

// forKey returns the cached gauges for one runtime key, resolving them
// on first sight.
func (ins *instruments) forKey(key config.Key) *keyGauges {
	ins.mu.RLock()
	g := ins.keys[key]
	ins.mu.RUnlock()
	if g != nil {
		return g
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	if g := ins.keys[key]; g != nil {
		return g
	}
	k := string(key)
	g = &keyGauges{live: ins.live.With(k), avail: ins.avail.With(k)}
	ins.keys[key] = g
	return g
}

// Instrument registers the pool's metric families on the registry and
// keeps per-runtime-key occupancy gauges in sync from here on. Calling
// with nil turns instrumentation off.
func (p *Pool) Instrument(reg *obs.Registry) {
	if reg == nil {
		p.obs = nil
		return
	}
	ins := &instruments{
		hits: reg.CounterVec("hotc_pool_hits_total",
			"Acquire calls served by a live runtime, by match kind (exact|relaxed).",
			"kind"),
		misses: reg.Counter("hotc_pool_misses_total",
			"Acquire calls that had to cold-start a new container."),
		evictions: reg.Counter("hotc_pool_evictions_total",
			"Forced terminations under the live cap or memory threshold."),
		prewarmed: reg.Counter("hotc_pool_prewarmed_total",
			"Containers created ahead of demand by the controller."),
		retired: reg.Counter("hotc_pool_retired_total",
			"Containers stopped by scale-down or keep-alive expiry."),
		quarantined: reg.Counter("hotc_pool_quarantined_total",
			"Containers removed after failing a health check or corrupting an execution."),
		leases: reg.Counter("hotc_pool_leases_total",
			"Containers rented from another runtime key and repurposed in place of a cold start."),
		live: reg.GaugeVec("hotc_pool_live",
			"Live pool containers (available or busy) per runtime key.",
			"key"),
		avail: reg.GaugeVec("hotc_pool_available",
			"Pool containers available for immediate reuse per runtime key.",
			"key"),
		keys: make(map[config.Key]*keyGauges),
	}
	ins.hitsExact = ins.hits.With("exact")
	ins.hitsRelaxed = ins.hits.With("relaxed")
	p.obs = ins
}

// syncKeyGauges refreshes the occupancy gauges for one runtime key.
func (p *Pool) syncKeyGauges(key config.Key) {
	if p.obs == nil {
		return
	}
	g := p.obs.forKey(key)
	g.live.Set(float64(p.NumLive(key)))
	g.avail.Set(float64(p.NumAvail(key)))
}
