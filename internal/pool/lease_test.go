package pool

import (
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/workload"
)

// pyEnvSpec builds a python spec whose full key differs by Env but
// whose relaxed key matches every other pyEnvSpec.
func pyEnvSpec(t *testing.T, f *fixture, env string) container.Spec {
	return f.spec(t, config.Runtime{Image: "python:3.8", Env: []string{env}})
}

func nodeSpec(t *testing.T, f *fixture) container.Spec {
	return f.spec(t, config.Runtime{Image: "node:10"})
}

// TestLeasedContainerNeverServesFormerRelaxedKey pins the sharing ×
// relaxed-matching interaction: once a container has been leased to
// another function, a relaxed-key Acquire for its *former* key must not
// be handed the container — even while the lease wipe is still in
// flight. Run under -race in CI.
func TestLeasedContainerNeverServesFormerRelaxedKey(t *testing.T) {
	f := newFixture(t, Options{EnableRelaxed: true, EnableSharing: true})
	specA := pyEnvSpec(t, f, "A=1")

	c, reused := f.acquire(t, specA)
	if reused {
		t.Fatal("first acquire should cold-start")
	}
	f.execAndRelease(t, c, workload.QRApp(workload.Python))

	// Start the lease to a different runtime; do NOT drain the
	// scheduler yet — the wipe is still in flight.
	var leased bool
	f.pool.Lease(c, nodeSpec(t, f), func(err error) {
		if err != nil {
			t.Errorf("lease: %v", err)
		}
		leased = true
	})

	// A relaxed-key request for the container's former key arrives
	// mid-lease. It must miss and boot fresh.
	var got *container.Container
	var gotReused bool
	f.pool.Acquire(pyEnvSpec(t, f, "B=2"), func(c2 *container.Container, r bool, _ config.Delta, err error) {
		if err != nil {
			t.Errorf("acquire: %v", err)
		}
		got, gotReused = c2, r
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !leased {
		t.Fatal("lease never completed")
	}
	if got == c {
		t.Fatal("relaxed acquire was handed a container leased to another function")
	}
	if gotReused {
		t.Fatal("relaxed acquire should not have found a warm candidate")
	}

	// And after the lease completes, the container serves its NEW key.
	if c.Key() != nodeSpec(t, f).Key() {
		t.Fatalf("leased container key = %s, want the renter's", c.Key())
	}
}

func TestAcquireLeasesIdleContainerOfOtherKey(t *testing.T) {
	f := newFixture(t, Options{EnableSharing: true})
	py := pySpec(t, f)

	c1, _ := f.acquire(t, py)
	f.execAndRelease(t, c1, workload.QRApp(workload.Python))

	// Measure how long a lease-based acquire takes...
	start := f.sched.Now()
	c2, reused := f.acquire(t, nodeSpec(t, f))
	leaseCost := f.sched.Now() - start

	if reused {
		t.Fatal("a lease is not a warm reuse: the caller pays the repurpose delay")
	}
	if c2 != c1 {
		t.Fatal("expected the idle python container to be leased")
	}
	if got := f.pool.Stats().Leases; got != 1 {
		t.Fatalf("Leases = %d, want 1", got)
	}
	if eng := f.eng.Stats(); eng.Repurposed != 1 {
		t.Fatalf("engine Repurposed = %d, want 1", eng.Repurposed)
	}
	// The leased container must not remember the lender's warm apps.
	if c2.WarmFor(workload.QRApp(workload.Python)) {
		t.Fatal("repurposed container kept the lender's warm state")
	}

	// ...and compare with a full cold boot of the same spec from the
	// same image-cache state: the lease must be strictly cheaper.
	f2 := newFixture(t, Options{})
	start2 := f2.sched.Now()
	f2.acquire(t, nodeSpec(t, f2))
	bootCost := f2.sched.Now() - start2
	if leaseCost >= bootCost {
		t.Fatalf("lease cost %v not below cold boot cost %v", leaseCost, bootCost)
	}
}

func TestAcquireDoesNotLeaseBusyOrSameKey(t *testing.T) {
	f := newFixture(t, Options{EnableSharing: true})
	py := pySpec(t, f)

	// Busy lender: no candidate, the renter cold-starts.
	c1, _ := f.acquire(t, py) // reserved, never released
	c2, reused := f.acquire(t, nodeSpec(t, f))
	if reused || c2 == c1 {
		t.Fatal("busy container must not be leased")
	}
	if got := f.pool.Stats().Leases; got != 0 {
		t.Fatalf("Leases = %d, want 0", got)
	}
}

func TestSharingDisabledNeverLeases(t *testing.T) {
	f := newFixture(t, Options{})
	py := pySpec(t, f)
	c1, _ := f.acquire(t, py)
	f.execAndRelease(t, c1, workload.QRApp(workload.Python))

	c2, reused := f.acquire(t, nodeSpec(t, f))
	if reused || c2 == c1 {
		t.Fatal("sharing disabled: idle container of another key must not be leased")
	}
	if got := f.pool.Stats().Leases; got != 0 {
		t.Fatalf("Leases = %d, want 0", got)
	}
}

// TestShareIdleGraceProtectsWorkingSet pins the lending gate: a
// container reused moments ago is part of its function's working set
// and must not be rented out, while the same container becomes fair
// game once it has sat idle past the grace.
func TestShareIdleGraceProtectsWorkingSet(t *testing.T) {
	grace := 30 * time.Second
	f := newFixture(t, Options{EnableSharing: true, ShareIdleGrace: grace})
	py := pySpec(t, f)

	c1, _ := f.acquire(t, py)
	f.execAndRelease(t, c1, workload.QRApp(workload.Python))

	// Immediately after release the container is too fresh to lend:
	// the other function pays a full cold start instead.
	c2, reused := f.acquire(t, nodeSpec(t, f))
	if reused || c2 == c1 {
		t.Fatal("container inside the idle grace must not be leased")
	}
	if got := f.pool.Stats().Leases; got != 0 {
		t.Fatalf("Leases = %d, want 0", got)
	}
	// c2 stays reserved so it cannot become a candidate itself.

	// Let the container age past the grace; now it is genuine surplus.
	f.sched.After(grace+time.Second, func() {})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	c3, reused := f.acquire(t, pyEnvSpec(t, f, "X=1"))
	if reused {
		t.Fatal("a lease is not a warm reuse")
	}
	if c3 != c1 {
		t.Fatal("container idle past the grace should have been leased")
	}
	if got := f.pool.Stats().Leases; got != 1 {
		t.Fatalf("Leases = %d, want 1", got)
	}
}

func TestLeaseRepaysAppInit(t *testing.T) {
	// A rented zygote skips engine/network/watchdog setup but must pay
	// app init again: the renter's first exec is a cold start, its
	// second a warm start.
	f := newFixture(t, Options{EnableSharing: true})
	pyApp := workload.QRApp(workload.Python)

	c1, _ := f.acquire(t, pySpec(t, f))
	f.execAndRelease(t, c1, pyApp)

	c2, _ := f.acquire(t, nodeSpec(t, f))
	if c2 != c1 {
		t.Fatal("expected a lease")
	}
	nodeApp := workload.QRApp(workload.Node)
	var first, second time.Duration
	f.eng.Exec(c2, nodeApp, func(d time.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		first = d
		f.pool.Release(c2, nil)
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	c3, reused := f.acquire(t, nodeSpec(t, f))
	if !reused || c3 != c2 {
		t.Fatal("renter should now reuse its rented container warm")
	}
	f.eng.Exec(c3, nodeApp, func(d time.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		second = d
		f.pool.Release(c3, nil)
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Fatalf("second exec (%v) should be warm and cheaper than the first (%v)", second, first)
	}
}
