package pool

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

type fixture struct {
	sched *simclock.Scheduler
	eng   *container.Engine
	reg   *image.Registry
	pool  *Pool
}

func newFixture(t *testing.T, opts Options) *fixture {
	t.Helper()
	sched := simclock.New()
	reg := image.StandardCatalog()
	eng := container.NewEngine(sched, costmodel.New(costmodel.Server()), reg, image.NewCache(), nil)
	return &fixture{sched: sched, eng: eng, reg: reg, pool: New(eng, opts)}
}

func (f *fixture) spec(t *testing.T, rt config.Runtime) container.Spec {
	t.Helper()
	s, err := container.ResolveSpec(rt, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pySpec(t *testing.T, f *fixture) container.Spec {
	return f.spec(t, config.Runtime{Image: "python:3.8"})
}

// acquire runs a full Acquire and drains the scheduler.
func (f *fixture) acquire(t *testing.T, spec container.Spec) (*container.Container, bool) {
	t.Helper()
	var ctr *container.Container
	var reused bool
	f.pool.Acquire(spec, func(c *container.Container, r bool, _ config.Delta, err error) {
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		ctr, reused = c, r
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if ctr == nil {
		t.Fatal("acquire never completed")
	}
	return ctr, reused
}

// execAndRelease runs the app and returns the container to the pool.
func (f *fixture) execAndRelease(t *testing.T, c *container.Container, app workload.App) {
	t.Helper()
	f.eng.Exec(c, app, func(_ time.Duration, err error) {
		if err != nil {
			t.Fatalf("exec: %v", err)
		}
		f.pool.Release(c, nil)
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireColdThenReuse(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)

	c1, reused := f.acquire(t, spec)
	if reused {
		t.Fatal("first acquire should be a cold start")
	}
	f.execAndRelease(t, c1, app)

	c2, reused := f.acquire(t, spec)
	if !reused {
		t.Fatal("second acquire should reuse")
	}
	if c2 != c1 {
		t.Fatal("should reuse the same container")
	}
	st := f.pool.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAcquireHitIsInstant(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	c, _ := f.acquire(t, spec)
	f.execAndRelease(t, c, workload.QRApp(workload.Python))

	before := f.sched.Now()
	_, reused := f.acquire(t, spec)
	if !reused {
		t.Fatal("expected reuse")
	}
	if f.sched.Now() != before {
		t.Fatal("pool hit should take no simulated time")
	}
}

func TestAcquireWhileBusyStartsNew(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)
	c1, _ := f.acquire(t, spec)

	// Keep c1 busy and acquire again during the execution.
	var c2 *container.Container
	f.eng.Exec(c1, app, func(time.Duration, error) {})
	f.pool.Acquire(spec, func(c *container.Container, reused bool, _ config.Delta, err error) {
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if reused {
			t.Fatal("busy container must not be reused")
		}
		c2 = c
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if c2 == nil || c2 == c1 {
		t.Fatal("expected a distinct new container")
	}
	if f.pool.NumLive(spec.Key()) != 2 {
		t.Fatalf("NumLive = %d", f.pool.NumLive(spec.Key()))
	}
}

func TestReservationPreventsDoubleAssign(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	c, _ := f.acquire(t, spec)
	f.execAndRelease(t, c, workload.QRApp(workload.Python))

	// Two acquires in the same instant: only one may get the idle
	// container.
	var got []*container.Container
	for i := 0; i < 2; i++ {
		f.pool.Acquire(spec, func(c *container.Container, _ bool, _ config.Delta, err error) {
			if err != nil {
				t.Fatalf("acquire: %v", err)
			}
			got = append(got, c)
		})
	}
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("double assignment: %v", got)
	}
}

func TestReleaseUnused(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	c, _ := f.acquire(t, spec)
	f.execAndRelease(t, c, workload.QRApp(workload.Python))

	c2, reused := f.acquire(t, spec)
	if !reused {
		t.Fatal("expected hit")
	}
	if f.pool.NumAvail(spec.Key()) != 0 {
		t.Fatal("reserved container still counted available")
	}
	f.pool.ReleaseUnused(c2)
	if f.pool.NumAvail(spec.Key()) != 1 {
		t.Fatal("unreserved container should be available again")
	}
}

func TestNumAvailTracksStates(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)
	key := spec.Key()

	c, _ := f.acquire(t, spec)
	if f.pool.NumAvail(key) != 0 {
		t.Fatal("freshly acquired container should be reserved")
	}
	f.execAndRelease(t, c, app)
	if f.pool.NumAvail(key) != 1 {
		t.Fatalf("NumAvail = %d after release", f.pool.NumAvail(key))
	}
}

func TestMaxLiveEvictsOldest(t *testing.T) {
	f := newFixture(t, Options{MaxLive: 3})
	app := workload.QRApp(workload.Python)
	specs := []container.Spec{
		f.spec(t, config.Runtime{Image: "python:3.8"}),
		f.spec(t, config.Runtime{Image: "node:10"}),
		f.spec(t, config.Runtime{Image: "golang:1.12"}),
		f.spec(t, config.Runtime{Image: "openjdk:8"}),
	}
	var first *container.Container
	for i, s := range specs[:3] {
		c, _ := f.acquire(t, s)
		if i == 0 {
			first = c
		}
		f.execAndRelease(t, c, app)
	}
	if f.pool.Live() != 3 {
		t.Fatalf("Live = %d", f.pool.Live())
	}
	// The fourth distinct runtime must evict the oldest (the first).
	f.acquire(t, specs[3])
	if f.pool.Live() != 3 {
		t.Fatalf("Live after eviction = %d", f.pool.Live())
	}
	if f.pool.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d", f.pool.Stats().Evictions)
	}
	if f.pool.NumLive(specs[0].Key()) != 0 {
		t.Fatal("oldest key should be gone")
	}
	_ = first
}

func TestMemoryPressureEvicts(t *testing.T) {
	pressure := false
	f := newFixture(t, Options{
		MemUsedPct: func() float64 {
			if pressure {
				return 95
			}
			return 10
		},
	})
	app := workload.QRApp(workload.Python)
	c1, _ := f.acquire(t, f.spec(t, config.Runtime{Image: "python:3.8"}))
	f.execAndRelease(t, c1, app)

	pressure = true
	// Under pressure, acquiring a new runtime type evicts the idle one
	// first. The pressure function stays high, so eviction stops when
	// nothing is left to evict rather than looping forever.
	f.acquire(t, f.spec(t, config.Runtime{Image: "node:10"}))
	if f.pool.Stats().Evictions == 0 {
		t.Fatal("memory pressure did not evict")
	}
}

func TestPrewarm(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)
	doneCount := 0
	f.pool.Prewarm(spec, app, 3, func(err error) {
		if err != nil {
			t.Fatalf("prewarm: %v", err)
		}
		doneCount++
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if doneCount != 3 {
		t.Fatalf("prewarm completions = %d", doneCount)
	}
	if f.pool.NumAvail(spec.Key()) != 3 {
		t.Fatalf("NumAvail = %d", f.pool.NumAvail(spec.Key()))
	}
	if f.pool.Stats().Prewarmed != 3 {
		t.Fatalf("Prewarmed = %d", f.pool.Stats().Prewarmed)
	}
	// Prewarmed containers serve without paying init.
	c, reused := f.acquire(t, spec)
	if !reused {
		t.Fatal("prewarmed container not reused")
	}
	if !c.WarmFor(app) {
		t.Fatal("prewarmed container not warm")
	}
}

func TestRetire(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)
	f.pool.Prewarm(spec, app, 4, nil)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	n := f.pool.Retire(spec.Key(), 2)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Retire initiated %d", n)
	}
	if f.pool.NumLive(spec.Key()) != 2 {
		t.Fatalf("NumLive = %d", f.pool.NumLive(spec.Key()))
	}
	if f.pool.Stats().Retired != 2 {
		t.Fatalf("Retired = %d", f.pool.Stats().Retired)
	}
	// Retiring more than available stops at what exists.
	if got := f.pool.Retire(spec.Key(), 10); got != 2 {
		t.Fatalf("second Retire = %d, want 2", got)
	}
}

func TestRelaxedReuse(t *testing.T) {
	f := newFixture(t, Options{EnableRelaxed: true})
	app := workload.QRApp(workload.Python)
	base := f.spec(t, config.Runtime{Image: "python:3.8", Env: []string{"A=1"}})
	c, _ := f.acquire(t, base)
	f.execAndRelease(t, c, app)

	// Same namespace config, different env: relaxed hit with a delta.
	variant := f.spec(t, config.Runtime{Image: "python:3.8", Env: []string{"B=2"}})
	var gotDelta config.Delta
	var gotReused bool
	f.pool.Acquire(variant, func(cc *container.Container, reused bool, d config.Delta, err error) {
		if err != nil {
			t.Fatal(err)
		}
		gotReused, gotDelta = reused, d
		if cc != c {
			t.Fatal("relaxed hit should return the existing container")
		}
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotReused || gotDelta.Empty() {
		t.Fatalf("reused=%v delta=%+v", gotReused, gotDelta)
	}
	if f.pool.Stats().RelaxedHits != 1 {
		t.Fatalf("RelaxedHits = %d", f.pool.Stats().RelaxedHits)
	}
}

func TestRelaxedDisabledMisses(t *testing.T) {
	f := newFixture(t, Options{})
	app := workload.QRApp(workload.Python)
	c, _ := f.acquire(t, f.spec(t, config.Runtime{Image: "python:3.8", Env: []string{"A=1"}}))
	f.execAndRelease(t, c, app)

	_, reused := f.acquire(t, f.spec(t, config.Runtime{Image: "python:3.8", Env: []string{"B=2"}}))
	if reused {
		t.Fatal("relaxed reuse should be off by default")
	}
}

func TestRelaxedNeverCrossesNamespaceConfig(t *testing.T) {
	f := newFixture(t, Options{EnableRelaxed: true})
	app := workload.QRApp(workload.Python)
	c, _ := f.acquire(t, f.spec(t, config.Runtime{Image: "python:3.8", Network: "bridge"}))
	f.execAndRelease(t, c, app)

	_, reused := f.acquire(t, f.spec(t, config.Runtime{Image: "python:3.8", Network: "host"}))
	if reused {
		t.Fatal("different network mode must not be relaxed-matched")
	}
}

func TestReleaseStoppedFails(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	c, _ := f.acquire(t, spec)
	f.execAndRelease(t, c, workload.QRApp(workload.Python))
	f.pool.Retire(spec.Key(), 1)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	var relErr error
	f.pool.Release(c, func(err error) { relErr = err })
	if relErr == nil {
		t.Fatal("releasing a stopped container should fail")
	}
}

func TestAcquirePropagatesCreateError(t *testing.T) {
	f := newFixture(t, Options{})
	boom := errors.New("create broke")
	f.eng.CreateHook = func(container.Spec) error { return boom }
	var gotErr error
	f.pool.Acquire(pySpec(t, f), func(_ *container.Container, _ bool, _ config.Delta, err error) {
		gotErr = err
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, boom) {
		t.Fatalf("err = %v", gotErr)
	}
	if f.pool.Live() != 0 {
		t.Fatal("failed create polluted the pool")
	}
}

func TestOldestAge(t *testing.T) {
	f := newFixture(t, Options{})
	if f.pool.OldestAge(f.sched.Now()) != 0 {
		t.Fatal("empty pool should report zero age")
	}
	c, _ := f.acquire(t, pySpec(t, f))
	f.execAndRelease(t, c, workload.QRApp(workload.Python))
	f.sched.Sleep(time.Minute)
	if age := f.pool.OldestAge(f.sched.Now()); age < time.Minute {
		t.Fatalf("age = %v", age)
	}
}

func TestEvictionPolicyLRU(t *testing.T) {
	// Three runtime types at cap 3. The oldest container is the most
	// recently used: oldest-first evicts it, LRU spares it.
	app := workload.QRApp(workload.Python)
	build := func(ev EvictionPolicy) (*fixture, []*container.Container) {
		f := newFixture(t, Options{MaxLive: 3, Eviction: ev})
		imgs := []string{"python:3.8", "node:10", "golang:1.12"}
		var ctrs []*container.Container
		for _, img := range imgs {
			c, _ := f.acquire(t, f.spec(t, config.Runtime{Image: img}))
			f.execAndRelease(t, c, app)
			f.sched.Sleep(time.Minute)
			ctrs = append(ctrs, c)
		}
		// Touch the first (oldest) container so it is the most
		// recently used.
		c0, reused := f.acquire(t, f.spec(t, config.Runtime{Image: imgs[0]}))
		if !reused || c0 != ctrs[0] {
			t.Fatal("expected to reuse the first container")
		}
		f.execAndRelease(t, c0, app)
		return f, ctrs
	}

	fOld, ctrsOld := build(EvictOldest)
	fOld.acquire(t, fOld.spec(t, config.Runtime{Image: "openjdk:8"}))
	if ctrsOld[0].State() != container.Stopped {
		t.Fatal("oldest-first should evict the first-created container")
	}

	fLRU, ctrsLRU := build(EvictLRU)
	fLRU.acquire(t, fLRU.spec(t, config.Runtime{Image: "openjdk:8"}))
	if ctrsLRU[0].State() == container.Stopped {
		t.Fatal("LRU must spare the recently used container")
	}
	if ctrsLRU[1].State() != container.Stopped {
		t.Fatal("LRU should evict the least recently used container")
	}
}

func TestEvictionPolicyNames(t *testing.T) {
	if EvictOldest.String() != "oldest-first" || EvictLRU.String() != "lru" {
		t.Fatal("eviction policy names wrong")
	}
	if EvictionPolicy(9).String() == "" {
		t.Fatal("unknown policy should render")
	}
}

func TestEvictOldestEmptyPool(t *testing.T) {
	f := newFixture(t, Options{})
	if f.pool.EvictOldest() {
		t.Fatal("evicting from empty pool should report false")
	}
}

// Property: pool invariant — NumAvail(key) always equals the count of
// containers in Available state under that key, and Live() equals the
// sum of per-key NumLive, under arbitrary operation sequences.
func TestPropertyPoolInvariants(t *testing.T) {
	images := []string{"python:3.8", "node:10", "golang:1.12"}
	f := func(ops []uint8) bool {
		fix := newFixture(&testing.T{}, Options{MaxLive: 6})
		app := workload.RandomNumber(workload.Python)
		var held []*container.Container
		for _, op := range ops {
			img := images[int(op/4)%len(images)]
			spec, err := container.ResolveSpec(config.Runtime{Image: img}, fix.reg)
			if err != nil {
				return false
			}
			switch op % 4 {
			case 0: // acquire and hold
				fix.pool.Acquire(spec, func(c *container.Container, _ bool, _ config.Delta, err error) {
					if err == nil {
						held = append(held, c)
					}
				})
			case 1: // exec+release the first held container
				if len(held) > 0 {
					c := held[0]
					held = held[1:]
					fix.eng.Exec(c, app, func(time.Duration, error) {
						fix.pool.Release(c, nil)
					})
				}
			case 2: // prewarm one
				fix.pool.Prewarm(spec, app, 1, nil)
			case 3: // retire one
				fix.pool.Retire(spec.Key(), 1)
			}
			if err := fix.sched.Run(); err != nil {
				return false
			}
			// Check invariants after the system settles.
			total := 0
			for _, key := range fix.pool.Keys() {
				total += fix.pool.NumLive(key)
				avail := 0
				for _, c := range fix.eng.LiveContainers() {
					if c.Key() == key && c.State() == container.Available {
						avail++
					}
				}
				if fix.pool.NumAvail(key) != avail {
					return false
				}
			}
			if total != fix.pool.Live() {
				return false
			}
			// When idle capacity exists, the cap holds; when every
			// container is busy or reserved, the pool must still grow
			// to serve requests, so no upper bound applies then.
			idle := 0
			for _, c := range fix.eng.LiveContainers() {
				if c.State() == container.Available {
					idle++
				}
			}
			if idle > 0 && fix.pool.Live() > 6+idle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
