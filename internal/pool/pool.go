// Package pool implements HotC's live container runtime pool (§IV.B):
// a key-value store from canonical runtime configuration to the list
// of live containers of that type, with the paper's three-state
// lifecycle, Algorithm 1 (reuse an available runtime or start a new
// one), Algorithm 2 (clean used containers and return them to the
// pool), the 500-container / 80%-memory caps with oldest-first forced
// eviction, and the §VII relaxed-key reuse extension.
package pool

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/workload"
)

// DefaultMaxLive is the paper's live-container cap: "we set the
// maximum number of live containers to 500" (§IV.B).
const DefaultMaxLive = 500

// DefaultMemThresholdPct is the paper's host memory threshold: "the
// memory usage threshold as 80% in the host" (§IV.B).
const DefaultMemThresholdPct = 80

// Options configure a Pool.
type Options struct {
	// MaxLive caps the number of live containers (default 500).
	MaxLive int
	// MemUsedPct, when non-nil, reports current host memory usage in
	// percent; above MemThresholdPct the pool evicts before growing.
	// This stands in for the paper's used_mem/used_swap kernel
	// heuristic.
	MemUsedPct func() float64
	// MemThresholdPct is the eviction threshold (default 80).
	MemThresholdPct float64
	// EnableRelaxed turns on the §VII fuzzy-key reuse extension.
	EnableRelaxed bool
	// EnableSharing turns on Pagurus-style inter-function sharing: when
	// both exact and relaxed matching miss, Acquire leases the oldest
	// idle container of a *different* runtime key, re-keys it for the
	// requested spec (volume wipe + image-layer delta, no engine /
	// network / watchdog setup), and hands it out. Strictly cheaper than
	// a cold start whenever the image delta is small.
	EnableSharing bool
	// ShareIdleGrace excludes containers from lending until they have
	// sat idle this long. A container reused every keep-alive round is
	// part of its function's working set — renting it converts the
	// owner's next warm hit into a full cold start plus re-init, which
	// costs more than the lease saves. Zero disables the gate (any
	// available container qualifies).
	ShareIdleGrace time.Duration
	// Eviction selects the forced-eviction victim order (default
	// EvictOldest, the paper's choice).
	Eviction EvictionPolicy
	// HealthCheck, when non-nil, vets every pooled container before it
	// is handed out. A container that fails the check is quarantined —
	// stopped and removed from the indexes, never to re-enter the pool —
	// and Acquire moves on to the next candidate (or a cold start).
	HealthCheck func(*container.Container) error
}

// EvictionPolicy orders forced-eviction victims.
type EvictionPolicy int

const (
	// EvictOldest terminates the longest-lived available container —
	// the paper's §IV.B policy.
	EvictOldest EvictionPolicy = iota
	// EvictLRU terminates the least-recently-used available container,
	// which preserves hot long-lived runtimes under skewed traffic.
	EvictLRU
)

// String returns the policy name.
func (e EvictionPolicy) String() string {
	switch e {
	case EvictOldest:
		return "oldest-first"
	case EvictLRU:
		return "lru"
	default:
		return fmt.Sprintf("pool.EvictionPolicy(%d)", int(e))
	}
}

func (o Options) withDefaults() Options {
	if o.MaxLive <= 0 {
		o.MaxLive = DefaultMaxLive
	}
	if o.MemThresholdPct <= 0 {
		o.MemThresholdPct = DefaultMemThresholdPct
	}
	return o
}

// Stats counts pool activity for reports and tests.
type Stats struct {
	// Hits are Acquire calls served by an existing available runtime.
	Hits int
	// RelaxedHits are hits served through the relaxed key.
	RelaxedHits int
	// Misses are Acquire calls that had to start a new container.
	Misses int
	// Evictions counts forced terminations (cap or memory pressure).
	Evictions int
	// Prewarmed counts containers created ahead of demand.
	Prewarmed int
	// Retired counts containers stopped by the controller scale-down.
	Retired int
	// Quarantined counts containers removed because they failed a
	// health check or were reported corrupted after an execution.
	Quarantined int
	// Leases counts containers rented from another runtime key and
	// repurposed instead of a cold start (inter-function sharing).
	Leases int
}

// Pool is the live container runtime pool. Like the engine it is
// single-threaded: all calls must happen on the simulation goroutine.
type Pool struct {
	eng  *container.Engine
	opts Options

	// byKey tracks live pool containers per canonical key, in creation
	// order (oldest first) so forced eviction can take the oldest.
	byKey map[config.Key][]*container.Container
	// byRelaxed indexes the same containers by relaxed key.
	byRelaxed map[config.RelaxedKey][]*container.Container
	// specs remembers the spec each key was created from, for
	// delta computation on relaxed hits.
	specs map[config.Key]container.Spec
	// quarantining marks containers whose quarantine teardown is still
	// in flight (Engine.Stop takes simulated time), so a repeated
	// Quarantine call cannot double-count or double-stop them.
	quarantining map[*container.Container]bool

	stats Stats

	// obs is the optional metric hookup (see Instrument); nil keeps the
	// seed behaviour.
	obs *instruments
}

// New creates a pool over the engine.
func New(eng *container.Engine, opts Options) *Pool {
	if eng == nil {
		panic("pool: nil engine")
	}
	return &Pool{
		eng:          eng,
		opts:         opts.withDefaults(),
		byKey:        make(map[config.Key][]*container.Container),
		byRelaxed:    make(map[config.RelaxedKey][]*container.Container),
		specs:        make(map[config.Key]container.Spec),
		quarantining: make(map[*container.Container]bool),
	}
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// Engine returns the underlying engine.
func (p *Pool) Engine() *container.Engine { return p.eng }

// Live reports the number of live containers tracked by the pool.
func (p *Pool) Live() int {
	n := 0
	for _, list := range p.byKey {
		n += len(list)
	}
	return n
}

// NumAvail reports how many containers of the given runtime type are
// available for immediate reuse — the paper's num_avail[key].
func (p *Pool) NumAvail(key config.Key) int {
	n := 0
	for _, c := range p.byKey[key] {
		if c.State() == container.Available {
			n++
		}
	}
	return n
}

// NumLive reports how many live containers (available or busy) exist
// for the key.
func (p *Pool) NumLive(key config.Key) int { return len(p.byKey[key]) }

// Keys returns the runtime keys currently present in the pool.
func (p *Pool) Keys() []config.Key {
	keys := make([]config.Key, 0, len(p.byKey))
	for k := range p.byKey {
		if len(p.byKey[k]) > 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// Acquire implements Algorithm 1: find a container with the same
// runtime as a candidate to reuse; if one exists and is available,
// reserve and return it immediately (reused=true, no simulated time
// passes); otherwise start a new container (reused=false, after the
// cold boot delay). The delta result is non-empty only for relaxed
// hits and must be applied by the executor.
func (p *Pool) Acquire(spec container.Spec, done func(c *container.Container, reused bool, delta config.Delta, err error)) {
	if done == nil {
		panic("pool: Acquire requires a completion callback")
	}
	key := spec.Key()

	// Exact-key reuse: the first available candidate that passes the
	// health check (unhealthy ones are quarantined as they are found).
	if c := p.firstHealthy(p.byKey[key]); c != nil {
		if err := p.eng.Reserve(c); err != nil {
			done(nil, false, config.Delta{}, fmt.Errorf("pool: reserving hit: %w", err))
			return
		}
		p.stats.Hits++
		if p.obs != nil {
			p.obs.hitsExact.Inc()
		}
		p.syncKeyGauges(key)
		done(c, true, config.Delta{}, nil)
		return
	}

	// Relaxed-key reuse (§VII): a container whose namespace-level
	// configuration matches can be adjusted at exec time.
	if p.opts.EnableRelaxed {
		if c := p.firstHealthy(p.byRelaxed[spec.Runtime.Relaxed()]); c != nil {
			if err := p.eng.Reserve(c); err == nil {
				p.stats.Hits++
				p.stats.RelaxedHits++
				if p.obs != nil {
					p.obs.hitsRelaxed.Inc()
				}
				p.syncKeyGauges(c.Key())
				delta := spec.Runtime.DeltaFrom(c.Spec.Runtime)
				done(c, true, delta, nil)
				return
			}
		}
	}

	// Cold path: before paying for a new container, try renting an
	// idle one from another runtime key (inter-function sharing).
	p.stats.Misses++
	if p.obs != nil {
		p.obs.misses.Inc()
	}
	if p.opts.EnableSharing {
		if c := p.shareCandidate(spec); c != nil {
			p.Lease(c, spec, func(err error) {
				if err != nil {
					done(nil, false, config.Delta{}, err)
					return
				}
				done(c, false, config.Delta{}, nil)
			})
			return
		}
	}
	p.makeRoom()
	p.eng.Create(spec, func(c *container.Container, err error) {
		if err != nil {
			done(nil, false, config.Delta{}, err)
			return
		}
		p.admit(c)
		if err := p.eng.Reserve(c); err != nil {
			done(nil, false, config.Delta{}, fmt.Errorf("pool: reserving fresh container: %w", err))
			return
		}
		p.syncKeyGauges(key)
		done(c, false, config.Delta{}, nil)
	})
}

// shareCandidate picks the lender for an inter-function lease: the
// least-recently-used available container whose runtime key differs
// from the requested spec's. Staleness mirrors keep-alive's eviction
// order — the container most likely to expire unused is rented first,
// and a busy function's freshly-released containers are left alone.
// The (LastUsedAt, CreatedAt, ID) order is total, so the choice is
// deterministic under Go's randomized map iteration. Containers idle
// for less than ShareIdleGrace are never offered. Candidates are
// health-checked like any other hand-out.
func (p *Pool) shareCandidate(spec container.Spec) *container.Container {
	key := spec.Key()
	now := p.eng.Scheduler().Now()
	var best *container.Container
	better := func(c, b *container.Container) bool {
		if b == nil {
			return true
		}
		if c.LastUsedAt != b.LastUsedAt {
			return c.LastUsedAt < b.LastUsedAt
		}
		if c.CreatedAt != b.CreatedAt {
			return c.CreatedAt < b.CreatedAt
		}
		return c.ID < b.ID
	}
	for k, list := range p.byKey {
		if k == key {
			continue
		}
		for _, c := range list {
			if c.State() != container.Available {
				continue
			}
			if now-c.LastUsedAt < p.opts.ShareIdleGrace {
				continue // still in its owner's working set
			}
			if better(c, best) {
				best = c
			}
		}
	}
	if best != nil && p.opts.HealthCheck != nil {
		if err := p.opts.HealthCheck(best); err != nil {
			p.Quarantine(best)
			return p.shareCandidate(spec)
		}
	}
	return best
}

// Lease re-keys an idle container of another runtime key as a zygote
// for spec and reserves it for the caller. The container leaves the
// pool indexes *before* any simulated time passes, so an Acquire
// arriving mid-lease — exact or relaxed — can never be handed the
// container under its former key. On success the container has been
// re-admitted under its new key and reserved; on failure it is
// returned to the pool untouched.
func (p *Pool) Lease(c *container.Container, spec container.Spec, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	oldKey := c.Key()
	p.remove(c)
	p.eng.Repurpose(c, spec, func(err error) {
		if err != nil {
			p.admit(c) // spec unchanged on failure: back under the old key
			done(fmt.Errorf("pool: leasing %s from %s: %w", c.ID, oldKey, err))
			return
		}
		p.admit(c)
		if rerr := p.eng.Reserve(c); rerr != nil {
			done(fmt.Errorf("pool: reserving leased container: %w", rerr))
			return
		}
		p.stats.Leases++
		if p.obs != nil {
			p.obs.leases.Inc()
		}
		p.syncKeyGauges(oldKey)
		p.syncKeyGauges(spec.Key())
		done(nil)
	})
}

// ReleaseUnused returns a reserved-but-unused container to the pool.
func (p *Pool) ReleaseUnused(c *container.Container) {
	p.eng.Unreserve(c)
	p.syncKeyGauges(c.Key())
}

// Release implements Algorithm 2: after the request finishes, clean
// the used container's volume and make it available again
// (num_avail[key]++ happens implicitly when the container returns to
// the Available state). done may be nil.
func (p *Pool) Release(c *container.Container, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	if c.State() == container.Stopped {
		done(fmt.Errorf("pool: releasing stopped container %s", c.ID))
		return
	}
	p.eng.CleanVolume(c, func(err error) {
		// The pool may have grown past its cap while every container
		// was busy (requests must still be served); shrink back now
		// that a container has become evictable.
		p.shrinkToCap()
		p.syncKeyGauges(c.Key())
		done(err)
	})
}

// shrinkToCap evicts oldest available containers until the pool is
// back within its live cap and memory threshold.
func (p *Pool) shrinkToCap() {
	for p.Live() > p.opts.MaxLive {
		if !p.EvictOldest() {
			return
		}
	}
	for p.memoryPressure() {
		if !p.EvictOldest() {
			return
		}
	}
}

// Prewarm creates and initialises n containers for the spec/app pair
// ahead of demand (Algorithm 3's scale-up action). done is called once
// per container. Prewarming respects the caps.
func (p *Pool) Prewarm(spec container.Spec, app workload.App, n int, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	for i := 0; i < n; i++ {
		if !p.roomToGrow() {
			done(fmt.Errorf("pool: at capacity (%d live)", p.Live()))
			continue
		}
		p.makeRoom()
		p.eng.Create(spec, func(c *container.Container, err error) {
			if err != nil {
				done(err)
				return
			}
			p.admit(c)
			p.stats.Prewarmed++
			if p.obs != nil {
				p.obs.prewarmed.Inc()
			}
			p.eng.Warmup(c, app, func(err error) {
				p.syncKeyGauges(c.Key())
				done(err)
			})
		})
	}
}

// Retire stops up to n available containers of the given key
// (Algorithm 3's scale-down action), oldest first. It returns how many
// stops were initiated.
func (p *Pool) Retire(key config.Key, n int) int {
	stopped := 0
	for _, c := range p.byKey[key] {
		if stopped >= n {
			break
		}
		if c.State() != container.Available {
			continue
		}
		p.remove(c)
		p.stats.Retired++
		if p.obs != nil {
			p.obs.retired.Inc()
		}
		stopped++
		p.eng.Stop(c, nil)
	}
	return stopped
}

// Stop removes a specific available container from the pool and stops
// it (used by keep-alive expiry policies). It reports whether the
// container was stopped; busy or reserved containers are left alone.
func (p *Pool) Stop(c *container.Container) bool {
	if c.State() != container.Available {
		return false
	}
	p.remove(c)
	p.stats.Retired++
	if p.obs != nil {
		p.obs.retired.Inc()
	}
	p.eng.Stop(c, nil)
	return true
}

// Available returns the available containers for a key, oldest first
// (used by warm-up pingers to refresh idle runtimes).
func (p *Pool) Available(key config.Key) []*container.Container {
	var out []*container.Container
	for _, c := range p.byKey[key] {
		if c.State() == container.Available {
			out = append(out, c)
		}
	}
	return out
}

// EvictOldest force-stops one available container chosen by the pool's
// eviction policy — by default the oldest (§IV.B: "the oldest live
// container is forcibly terminated and releases the resources"), or
// the least recently used under EvictLRU. It reports whether a
// container was evicted.
func (p *Pool) EvictOldest() bool {
	var victim *container.Container
	older := func(c, than *container.Container) bool {
		if p.opts.Eviction == EvictLRU {
			return c.LastUsedAt < than.LastUsedAt
		}
		return c.CreatedAt < than.CreatedAt
	}
	for _, list := range p.byKey {
		for _, c := range list {
			if c.State() != container.Available {
				continue
			}
			if victim == nil || older(c, victim) {
				victim = c
			}
		}
	}
	if victim == nil {
		return false
	}
	p.remove(victim)
	p.stats.Evictions++
	if p.obs != nil {
		p.obs.evictions.Inc()
	}
	p.eng.Stop(victim, nil)
	return true
}

// memoryPressure reports whether host memory usage exceeds the
// threshold.
func (p *Pool) memoryPressure() bool {
	if p.opts.MemUsedPct == nil {
		return false
	}
	return p.opts.MemUsedPct() >= p.opts.MemThresholdPct
}

// roomToGrow reports whether a new container may be created after
// evictions.
func (p *Pool) roomToGrow() bool {
	return p.Live() < p.opts.MaxLive || p.anyAvailable()
}

func (p *Pool) anyAvailable() bool {
	for _, list := range p.byKey {
		for _, c := range list {
			if c.State() == container.Available {
				return true
			}
		}
	}
	return false
}

// makeRoom enforces the live-container cap and the memory threshold by
// evicting oldest available containers ("If there exist too many
// containers or fewer resources, the oldest live container is forcibly
// terminated").
func (p *Pool) makeRoom() {
	for p.Live() >= p.opts.MaxLive {
		if !p.EvictOldest() {
			return // everything is busy; nothing to evict
		}
	}
	for p.memoryPressure() {
		if !p.EvictOldest() {
			return
		}
	}
}

func (p *Pool) firstAvailable(list []*container.Container) *container.Container {
	for _, c := range list {
		if c.State() == container.Available {
			return c
		}
	}
	return nil
}

// firstHealthy returns the first available container that passes the
// configured health check. Candidates that fail are quarantined on the
// spot, so a corrupted runtime is examined at most once. Note the loop
// re-reads the (mutated) list: Quarantine removes the candidate from
// the pool indexes.
func (p *Pool) firstHealthy(list []*container.Container) *container.Container {
	if p.opts.HealthCheck == nil {
		return p.firstAvailable(list)
	}
	for {
		c := p.firstAvailable(list)
		if c == nil {
			return nil
		}
		if err := p.opts.HealthCheck(c); err == nil {
			return c
		}
		p.Quarantine(c)
		list = removeFrom(list, c)
	}
}

// Quarantine removes a container from the pool and stops it without
// counting it as a normal retirement: the container is suspected of
// corruption and must never re-enter the keyed store. It is safe to
// call for containers the pool no longer tracks (the stop still
// happens) and is a no-op for already-stopped containers.
func (p *Pool) Quarantine(c *container.Container) {
	if c.State() == container.Stopped || p.quarantining[c] {
		return
	}
	p.quarantining[c] = true
	p.remove(c)
	p.stats.Quarantined++
	if p.obs != nil {
		p.obs.quarantined.Inc()
	}
	p.eng.Unreserve(c) // a reserved holder abandoning a bad container
	p.eng.Stop(c, func() { delete(p.quarantining, c) })
}

// admit registers a container in the pool indexes.
func (p *Pool) admit(c *container.Container) {
	key := c.Key()
	p.byKey[key] = append(p.byKey[key], c)
	rk := c.Spec.Runtime.Relaxed()
	p.byRelaxed[rk] = append(p.byRelaxed[rk], c)
	p.specs[key] = c.Spec
	p.syncKeyGauges(key)
}

// remove drops a container from the pool indexes.
func (p *Pool) remove(c *container.Container) {
	key := c.Key()
	p.byKey[key] = removeFrom(p.byKey[key], c)
	if len(p.byKey[key]) == 0 {
		delete(p.byKey, key)
	}
	rk := c.Spec.Runtime.Relaxed()
	p.byRelaxed[rk] = removeFrom(p.byRelaxed[rk], c)
	if len(p.byRelaxed[rk]) == 0 {
		delete(p.byRelaxed, rk)
	}
	p.syncKeyGauges(key)
}

func removeFrom(list []*container.Container, c *container.Container) []*container.Container {
	for i, x := range list {
		if x == c {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

// IdleMemMB reports the memory consumed by idle pool containers.
func (p *Pool) IdleMemMB() float64 {
	return p.eng.IdleOverheadMemMB()
}

// OldestAge returns the age of the oldest live container at the given
// virtual time, or zero when the pool is empty.
func (p *Pool) OldestAge(now time.Duration) time.Duration {
	var oldest *container.Container
	for _, list := range p.byKey {
		for _, c := range list {
			if oldest == nil || c.CreatedAt < oldest.CreatedAt {
				oldest = c
			}
		}
	}
	if oldest == nil {
		return 0
	}
	return now - oldest.CreatedAt
}
