package pool

import (
	"errors"
	"testing"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/workload"
)

// markingCheck is a health check that fails containers present in bad
// and forgets them afterwards, mirroring how the fault injector's
// consumable poison mark behaves.
type markingCheck struct {
	bad map[*container.Container]bool
}

func (m *markingCheck) check(c *container.Container) error {
	if m.bad[c] {
		delete(m.bad, c)
		return errors.New("unhealthy")
	}
	return nil
}

func TestAcquireQuarantinesUnhealthy(t *testing.T) {
	mc := &markingCheck{bad: map[*container.Container]bool{}}
	f := newFixture(t, Options{HealthCheck: mc.check})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)

	c1, _ := f.acquire(t, spec)
	f.execAndRelease(t, c1, app)
	mc.bad[c1] = true

	c2, reused := f.acquire(t, spec)
	if reused {
		t.Fatal("acquire of an unhealthy pool should be a cold start")
	}
	if c2 == c1 {
		t.Fatal("acquire handed back the unhealthy container")
	}
	if c1.State() != container.Stopped {
		t.Fatalf("quarantined container state = %v, want Stopped", c1.State())
	}
	st := f.pool.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses", st)
	}
}

func TestQuarantinedNeverReappears(t *testing.T) {
	mc := &markingCheck{bad: map[*container.Container]bool{}}
	f := newFixture(t, Options{HealthCheck: mc.check})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)

	c1, _ := f.acquire(t, spec)
	f.execAndRelease(t, c1, app)
	mc.bad[c1] = true

	// The replacement is healthy; every subsequent acquire must reuse
	// it, never the quarantined original.
	c2, _ := f.acquire(t, spec)
	f.execAndRelease(t, c2, app)
	for i := 0; i < 5; i++ {
		c, reused := f.acquire(t, spec)
		if !reused || c != c2 {
			t.Fatalf("acquire %d: got %v (reused=%v), want the healthy replacement", i, c, reused)
		}
		f.execAndRelease(t, c, app)
	}
	if got := f.pool.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
}

func TestQuarantineSkipsToNextHealthy(t *testing.T) {
	mc := &markingCheck{bad: map[*container.Container]bool{}}
	f := newFixture(t, Options{HealthCheck: mc.check})
	spec := pySpec(t, f)
	app := workload.QRApp(workload.Python)

	// Two warm containers: hold the first while acquiring the second.
	c1, _ := f.acquire(t, spec)
	c2, _ := f.acquire(t, spec)
	f.execAndRelease(t, c1, app)
	f.execAndRelease(t, c2, app)

	mc.bad[c1] = true
	got, reused := f.acquire(t, spec)
	if !reused {
		t.Fatal("a healthy candidate remained; acquire should still reuse")
	}
	if got != c2 {
		t.Fatal("acquire should skip the unhealthy head and take the next candidate")
	}
	if f.pool.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", f.pool.Stats().Quarantined)
	}
}

func TestQuarantineRelaxedPath(t *testing.T) {
	mc := &markingCheck{bad: map[*container.Container]bool{}}
	f := newFixture(t, Options{EnableRelaxed: true, HealthCheck: mc.check})
	app := workload.QRApp(workload.Python)

	base := f.spec(t, config.Runtime{Image: "python:3.8", Env: []string{"MODE=a"}})
	c1, _ := f.acquire(t, base)
	f.execAndRelease(t, c1, app)
	mc.bad[c1] = true

	// Different exec-time config, same relaxed key: without the
	// quarantine this would be a relaxed hit on the corrupted runtime.
	other := f.spec(t, config.Runtime{Image: "python:3.8", Env: []string{"MODE=b"}})
	c2, reused := f.acquire(t, other)
	if reused || c2 == c1 {
		t.Fatal("relaxed acquire reused a container that failed its health check")
	}
	st := f.pool.Stats()
	if st.Quarantined != 1 || st.RelaxedHits != 0 {
		t.Fatalf("stats = %+v, want 1 quarantined and no relaxed hits", st)
	}
}

func TestQuarantineStoppedIsNoOp(t *testing.T) {
	f := newFixture(t, Options{})
	spec := pySpec(t, f)
	c, _ := f.acquire(t, spec)
	f.execAndRelease(t, c, workload.QRApp(workload.Python))

	f.pool.Quarantine(c)
	if got := f.pool.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	// Already stopped: a second call must not double count.
	f.pool.Quarantine(c)
	if got := f.pool.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined after no-op = %d, want 1", got)
	}
}
