package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func seriesOf(vs ...float64) *Series {
	var s Series
	for _, v := range vs {
		s.Add(v)
	}
	return &s
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Fatal("empty series should report zeros")
	}
	if s.Percentile(99) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if s.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := seriesOf(3, 1, 2)
	if s.Min() != 1 || s.Max() != 3 || !almost(s.Mean(), 2) {
		t.Fatalf("min/mean/max = %v/%v/%v", s.Min(), s.Mean(), s.Max())
	}
	if !almost(s.Sum(), 6) {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.At(0) != 3 || s.At(2) != 2 {
		t.Fatal("arrival order not preserved")
	}
}

func TestSeriesAddAfterQuery(t *testing.T) {
	s := seriesOf(1, 2, 3)
	_ = s.Max() // force sorted cache
	s.Add(10)
	if s.Max() != 10 {
		t.Fatal("sorted cache not invalidated by Add")
	}
}

func TestAddDuration(t *testing.T) {
	var s Series
	s.AddDuration(1500 * time.Millisecond)
	if !almost(s.At(0), 1500) {
		t.Fatalf("AddDuration = %v ms, want 1500", s.At(0))
	}
}

func TestPercentile(t *testing.T) {
	s := seriesOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if got := s.Percentile(0); !almost(got, 1) {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); !almost(got, 10) {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Median(); !almost(got, 5.5) {
		t.Fatalf("median = %v", got)
	}
	if got := s.Percentile(90); !almost(got, 9.1) {
		t.Fatalf("p90 = %v, want 9.1", got)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	s := seriesOf(42)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Fatalf("p%v = %v, want 42", p, got)
		}
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(101) did not panic")
		}
	}()
	seriesOf(1).Percentile(101)
}

func TestStddev(t *testing.T) {
	s := seriesOf(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Stddev(); !almost(got, 2) {
		t.Fatalf("stddev = %v, want 2", got)
	}
	if seriesOf(5).Stddev() != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestCDF(t *testing.T) {
	s := seriesOf(1, 1, 2, 3)
	pts := s.CDF()
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v, want %v", pts, want)
	}
	for i := range want {
		if !almost(pts[i].Value, want[i].Value) || !almost(pts[i].Fraction, want[i].Fraction) {
			t.Fatalf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestSummarize(t *testing.T) {
	s := seriesOf(1, 2, 3, 4, 5)
	sum := s.Summarize()
	if sum.Count != 5 || !almost(sum.Min, 1) || !almost(sum.Max, 5) || !almost(sum.Mean, 3) {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("summary String empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.Bucket(0) != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 2
		t.Fatalf("bucket1 = %d", h.Bucket(1))
	}
	if h.Bucket(4) != 1 { // 9.9
		t.Fatalf("bucket4 = %d", h.Bucket(4))
	}
	lo, hi := h.BucketBounds(1)
	if !almost(lo, 2) || !almost(hi, 4) {
		t.Fatalf("bounds = [%v, %v)", lo, hi)
	}
}

func TestHistogramInvalid(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid histogram did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(time.Second, 5)
	ts.Add(time.Second, 3) // equal timestamps allowed
	if ts.Len() != 3 {
		t.Fatalf("len = %d", ts.Len())
	}
	if ts.MaxValue() != 5 {
		t.Fatalf("max = %v", ts.MaxValue())
	}
	if !almost(ts.MeanValue(), 3) {
		t.Fatalf("mean = %v", ts.MeanValue())
	}
	if got := ts.Values(); len(got) != 3 || got[1] != 5 {
		t.Fatalf("values = %v", got)
	}
	if p := ts.At(1); p.T != time.Second || p.V != 5 {
		t.Fatalf("At(1) = %+v", p)
	}
}

func TestTimeSeriesBackwardsPanics(t *testing.T) {
	var ts TimeSeries
	ts.Add(time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards timestamp did not panic")
		}
	}()
	ts.Add(0, 2)
}

func TestTimeSeriesEmpty(t *testing.T) {
	var ts TimeSeries
	if ts.MaxValue() != 0 || ts.MeanValue() != 0 {
		t.Fatal("empty time series should report zeros")
	}
}

func TestWelfordMatchesSeries(t *testing.T) {
	s := seriesOf(2, 4, 4, 4, 5, 5, 7, 9)
	var w Welford
	for _, v := range s.Values() {
		w.Add(v)
	}
	if !almost(w.Mean(), s.Mean()) {
		t.Fatalf("welford mean %v != series mean %v", w.Mean(), s.Mean())
	}
	if !almost(w.Stddev(), s.Stddev()) {
		t.Fatalf("welford stddev %v != series stddev %v", w.Stddev(), s.Stddev())
	}
	if w.Count() != s.Len() {
		t.Fatal("count mismatch")
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	if w.Variance() != 0 {
		t.Fatal("empty variance != 0")
	}
	w.Add(5)
	if w.Variance() != 0 || w.Mean() != 5 {
		t.Fatal("single-sample welford wrong")
	}
}

func TestMeanAbsError(t *testing.T) {
	if got := MeanAbsError([]float64{1, 2, 3}, []float64{2, 2, 1}); !almost(got, 1) {
		t.Fatalf("MAE = %v, want 1", got)
	}
	if MeanAbsError(nil, nil) != 0 {
		t.Fatal("empty MAE != 0")
	}
}

func TestMeanRelError(t *testing.T) {
	if got := MeanRelError([]float64{110}, []float64{100}); !almost(got, 0.1) {
		t.Fatalf("MRE = %v, want 0.1", got)
	}
	// Zero truth values must not divide by zero.
	got := MeanRelError([]float64{1}, []float64{0})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("MRE with zero truth = %v", got)
	}
}

func TestMeanErrorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MeanAbsError([]float64{1}, []float64{1, 2})
}

func TestAutoCorrelation(t *testing.T) {
	// A strictly alternating series has lag-1 autocorrelation near -1
	// and lag-2 near +1.
	var alt []float64
	for i := 0; i < 100; i++ {
		alt = append(alt, float64(i%2))
	}
	if ac := AutoCorrelation(alt, 1); ac > -0.9 {
		t.Fatalf("alternating lag-1 AC = %v, want ~-1", ac)
	}
	if ac := AutoCorrelation(alt, 2); ac < 0.9 {
		t.Fatalf("alternating lag-2 AC = %v, want ~+1", ac)
	}
	// A constant series has zero variance: defined as 0.
	if ac := AutoCorrelation([]float64{5, 5, 5, 5, 5}, 1); ac != 0 {
		t.Fatalf("constant AC = %v", ac)
	}
	// Degenerate inputs.
	if AutoCorrelation(nil, 1) != 0 || AutoCorrelation([]float64{1, 2}, 5) != 0 ||
		AutoCorrelation([]float64{1, 2, 3}, 0) != 0 {
		t.Fatal("degenerate autocorrelation should be 0")
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Diff = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
	if Diff([]float64{1}) != nil || Diff(nil) != nil {
		t.Fatal("short Diff should be nil")
	}
}

// Property: percentiles are monotone in p and bounded by [min, max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			if v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF fractions are strictly increasing, end at 1, and values
// are strictly increasing.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		pts := s.CDF()
		if s.Len() == 0 {
			return pts == nil
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value || pts[i].Fraction <= pts[i-1].Fraction {
				return false
			}
		}
		return almost(pts[len(pts)-1].Fraction, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples: buckets + under + over = count.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 13)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		total := h.Underflow() + h.Overflow()
		for i := 0; i < h.NumBuckets(); i++ {
			total += h.Bucket(i)
		}
		return total == n && h.Count() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sorted cache always agrees with a fresh sort.
func TestPropertySortedCache(t *testing.T) {
	f := func(raw []float64, queries []uint8) bool {
		var s Series
		ref := []float64{}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
			ref = append(ref, v)
			if i%3 == 0 && s.Len() > 0 {
				_ = s.Median() // interleave queries to exercise cache invalidation
			}
		}
		if len(ref) == 0 {
			return true
		}
		sort.Float64s(ref)
		return almost(s.Min(), ref[0]) && almost(s.Max(), ref[len(ref)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(NaN) did not panic")
		}
	}()
	seriesOf(1, 2, 3).Percentile(math.NaN())
}

// Regression: Values hands out the live sample slice and callers sort
// it in place; the sorted cache must not survive that.
func TestValuesInvalidatesSortedCache(t *testing.T) {
	s := seriesOf(5, 1, 9, 3)
	if got := s.Median(); !almost(got, 4) { // populate the cache
		t.Fatalf("median = %v, want 4", got)
	}
	vs := s.Values()
	for i := range vs {
		vs[i] *= 10 // mutate through the alias
	}
	if got := s.Max(); !almost(got, 90) {
		t.Fatalf("Max after external mutation = %v, want 90", got)
	}
	if got := s.Median(); !almost(got, 40) {
		t.Fatalf("Median after external mutation = %v, want 40", got)
	}
}

func TestPercentileDuplicatesAtBoundary(t *testing.T) {
	// All mass at one value: every quantile must return it.
	s := seriesOf(7, 7, 7, 7)
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Fatalf("p%v = %v, want 7", p, got)
		}
	}
	// A run of duplicates straddling the median rank.
	s = seriesOf(1, 2, 2, 2, 3)
	if got := s.Median(); !almost(got, 2) {
		t.Fatalf("median = %v, want 2", got)
	}
	if got := s.Percentile(100); !almost(got, 3) {
		t.Fatalf("p100 = %v, want 3", got)
	}
}

func TestCDFSingleAndDuplicates(t *testing.T) {
	if pts := seriesOf(4).CDF(); len(pts) != 1 || pts[0].Value != 4 || !almost(pts[0].Fraction, 1) {
		t.Fatalf("single-sample CDF = %v", pts)
	}
	// Equal values collapse to one point carrying the full fraction.
	pts := seriesOf(2, 2, 2).CDF()
	if len(pts) != 1 || pts[0].Value != 2 || !almost(pts[0].Fraction, 1) {
		t.Fatalf("all-duplicates CDF = %v", pts)
	}
}
