package metrics

import "sort"

// Counters is an ordered set of named monotonic counters, used for
// fault-injection and resilience accounting (retries, breaker trips,
// quarantines, fallbacks). The zero value is ready to use. Counters is
// not safe for concurrent use; like the rest of the simulator it lives
// on the scheduler goroutine.
type Counters struct {
	vals map[string]int
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add increments the named counter by n.
func (c *Counters) Add(name string, n int) {
	if c.vals == nil {
		c.vals = make(map[string]int)
	}
	c.vals[name] += n
}

// Get returns the named counter's value (0 when never incremented).
func (c *Counters) Get(name string) int { return c.vals[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.vals))
	for n := range c.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int {
	out := make(map[string]int, len(c.vals))
	for n, v := range c.vals {
		out[n] = v
	}
	return out
}
