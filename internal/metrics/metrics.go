// Package metrics provides the measurement plumbing shared by every
// experiment in the repository: latency sample series with percentile
// and CDF extraction, bucketed histograms, timestamped time series, and
// streaming mean/variance accumulators.
//
// All of the paper's figures are ultimately rendered from these types:
// latency-versus-request plots are Series, the Fig. 1(b) long-tail plot
// is a CDF, Fig. 10 prediction traces are TimeSeries, and Fig. 15
// resource monitoring is a pair of TimeSeries.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series collects float64 samples (usually latencies in milliseconds)
// in arrival order and answers distribution queries. The zero value is
// ready to use.
type Series struct {
	samples []float64
	sorted  []float64 // lazily maintained sorted copy
	dirty   bool
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.dirty = true
}

// AddDuration appends a duration sample converted to milliseconds.
func (s *Series) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Values returns the samples in arrival order. The slice aliases the
// series' internal storage; because callers historically sort or scale
// it in place, handing it out invalidates the lazily-sorted cache so
// the next distribution query re-sorts against the current contents.
func (s *Series) Values() []float64 {
	s.dirty = true
	return s.samples
}

// At returns the i-th sample in arrival order.
func (s *Series) At(i int) float64 { return s.samples[i] }

func (s *Series) ensureSorted() {
	if !s.dirty && s.sorted != nil {
		return
	}
	s.sorted = append(s.sorted[:0], s.samples...)
	sort.Float64s(s.sorted)
	s.dirty = false
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.sorted[0]
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.sorted[len(s.sorted)-1]
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// Stddev returns the population standard deviation, or 0 when there are
// fewer than two samples.
func (s *Series) Stddev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.samples {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty
// series and panics on out-of-range p.
func (s *Series) Percentile(p float64) float64 {
	// NaN compares false against every bound, so it needs its own check
	// or it would slip through and index with an undefined rank.
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range [0,100]", p))
	}
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	if len(s.sorted) == 1 {
		return s.sorted[0]
	}
	rank := p / 100 * float64(len(s.sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if hi > len(s.sorted)-1 { // guard float rounding at p near 100
		hi = len(s.sorted) - 1
	}
	if lo >= hi {
		return s.sorted[hi]
	}
	frac := rank - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// Median is Percentile(50).
func (s *Series) Median() float64 { return s.Percentile(50) }

// P99 is Percentile(99) — the tail quantile every resilience and
// latency table reports.
func (s *Series) P99() float64 { return s.Percentile(99) }

// Quantiles returns the given percentiles (each in [0, 100]) in one
// call, so report code does not reimplement percentile extraction.
func (s *Series) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = s.Percentile(p)
	}
	return out
}

// Sum returns the total of all samples.
func (s *Series) Sum() float64 {
	sum := 0.0
	for _, v := range s.samples {
		sum += v
	}
	return sum
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value, in (0, 1]
}

// CDF returns the empirical CDF of the series as (value, fraction)
// pairs with non-decreasing value and fraction.
func (s *Series) CDF() []CDFPoint {
	if len(s.samples) == 0 {
		return nil
	}
	s.ensureSorted()
	n := len(s.sorted)
	pts := make([]CDFPoint, 0, n)
	for i, v := range s.sorted {
		frac := float64(i+1) / float64(n)
		// Collapse runs of equal values into their final fraction.
		if len(pts) > 0 && pts[len(pts)-1].Value == v {
			pts[len(pts)-1].Fraction = frac
			continue
		}
		pts = append(pts, CDFPoint{Value: v, Fraction: frac})
	}
	return pts
}

// Summary is a compact distribution description used in reports.
type Summary struct {
	Count               int
	Min, Mean, Max      float64
	P50, P90, P99, P999 float64
	Stddev              float64
}

// Summarize computes a Summary of the series.
func (s *Series) Summarize() Summary {
	return Summary{
		Count:  s.Len(),
		Min:    s.Min(),
		Mean:   s.Mean(),
		Max:    s.Max(),
		P50:    s.Percentile(50),
		P90:    s.Percentile(90),
		P99:    s.Percentile(99),
		P999:   s.Percentile(99.9),
		Stddev: s.Stddev(),
	}
}

// String renders the summary for reports: count, mean and tail.
func (m Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		m.Count, m.Min, m.Mean, m.P50, m.P90, m.P99, m.Max)
}

// Histogram buckets samples into fixed-width bins over [lo, hi); values
// outside the range land in saturating under/overflow bins.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int
	under   int
	over    int
	count   int
}

// NewHistogram creates a histogram with n equal-width buckets covering
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("metrics: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic(fmt.Sprintf("metrics: invalid histogram range [%v, %v)", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.count++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int((v - h.lo) / h.width)
		if i >= len(h.buckets) { // guard float rounding at the top edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count reports the total number of samples recorded.
func (h *Histogram) Count() int { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets reports the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Underflow and Overflow report the saturating bin counts.
func (h *Histogram) Underflow() int { return h.under }

// Overflow reports the number of samples >= the histogram upper bound.
func (h *Histogram) Overflow() int { return h.over }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return lo, lo + h.width
}

// TimePoint is a (virtual time, value) pair.
type TimePoint struct {
	T time.Duration
	V float64
}

// TimeSeries records values against virtual timestamps, e.g. the number
// of live containers per control interval or CPU usage per sample tick.
type TimeSeries struct {
	points []TimePoint
}

// Add appends a point; timestamps must be non-decreasing.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if n := len(ts.points); n > 0 && t < ts.points[n-1].T {
		panic(fmt.Sprintf("metrics: time series timestamps must be non-decreasing (%v after %v)", t, ts.points[n-1].T))
	}
	ts.points = append(ts.points, TimePoint{T: t, V: v})
}

// Len reports the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the underlying points; callers must not modify them.
func (ts *TimeSeries) Points() []TimePoint { return ts.points }

// At returns point i.
func (ts *TimeSeries) At(i int) TimePoint { return ts.points[i] }

// Values returns just the values, in time order.
func (ts *TimeSeries) Values() []float64 {
	vs := make([]float64, len(ts.points))
	for i, p := range ts.points {
		vs[i] = p.V
	}
	return vs
}

// MaxValue returns the largest value, or 0 for an empty series.
func (ts *TimeSeries) MaxValue() float64 {
	max := 0.0
	for i, p := range ts.points {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// MeanValue returns the arithmetic mean of the values.
func (ts *TimeSeries) MeanValue() float64 {
	if len(ts.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ts.points {
		sum += p.V
	}
	return sum / float64(len(ts.points))
}

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm), used where storing every sample would be wasteful.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one value.
func (w *Welford) Add(v float64) {
	w.n++
	delta := v - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (v - w.mean)
}

// Count reports the number of values recorded.
func (w *Welford) Count() int { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the running population variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev reports the running population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// AutoCorrelation estimates the lag-k autocorrelation of a series: the
// correlation between x[t] and x[t+k] over the available pairs. It
// returns 0 for degenerate inputs (fewer than k+2 points or zero
// variance). The predictor diagnostics use it to characterise which
// error structures the Markov correction can exploit.
func AutoCorrelation(xs []float64, k int) float64 {
	if k < 1 || len(xs) < k+2 {
		return 0
	}
	n := len(xs)
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	num, den := 0.0, 0.0
	for t := 0; t < n; t++ {
		d := xs[t] - mean
		den += d * d
		if t+k < n {
			num += d * (xs[t+k] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Diff returns the first differences x[t+1]-x[t] of a series (length
// n-1), used for trend diagnostics.
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// MeanAbsError returns the mean absolute error between two equal-length
// slices; it is used to score predictors in Fig. 10.
func MeanAbsError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: MeanAbsError length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

// MeanRelError returns the mean relative error |a-b|/max(|b|, eps)
// between predictions a and truth b.
func MeanRelError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: MeanRelError length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	const eps = 1e-9
	sum := 0.0
	for i := range a {
		den := math.Abs(b[i])
		if den < eps {
			den = eps
		}
		sum += math.Abs(a[i]-b[i]) / den
	}
	return sum / float64(len(a))
}
