package metrics

import (
	"reflect"
	"testing"
)

func TestCountersZeroValueUsable(t *testing.T) {
	var c Counters
	if c.Get("anything") != 0 {
		t.Fatal("unknown counter should read 0")
	}
	if names := c.Names(); len(names) != 0 {
		t.Fatalf("fresh counters have names: %v", names)
	}
	c.Inc("a")
	if c.Get("a") != 1 {
		t.Fatalf("a = %d, want 1", c.Get("a"))
	}
}

func TestCountersAddAndNames(t *testing.T) {
	var c Counters
	c.Inc("b")
	c.Add("a", 3)
	c.Inc("b")
	c.Add("c", 0) // registering with 0 still creates the name
	if c.Get("a") != 3 || c.Get("b") != 2 || c.Get("c") != 0 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Names = %v, want sorted [a b c]", got)
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	var c Counters
	c.Add("x", 7)
	snap := c.Snapshot()
	snap["x"] = 99
	snap["y"] = 1
	if c.Get("x") != 7 || c.Get("y") != 0 {
		t.Fatal("mutating a snapshot leaked into the counters")
	}
}

func TestP99MatchesPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	if s.P99() != s.Percentile(99) {
		t.Fatalf("P99 = %v, Percentile(99) = %v", s.P99(), s.Percentile(99))
	}
	// With 1..1000 the 99th percentile interpolates near 990.
	if s.P99() < 989 || s.P99() > 991 {
		t.Fatalf("P99 = %v, want ~990", s.P99())
	}
}

func TestQuantilesMatchPercentiles(t *testing.T) {
	var s Series
	for _, v := range []float64{5, 1, 4, 2, 3} {
		s.Add(v)
	}
	got := s.Quantiles(0, 50, 99, 100)
	want := []float64{s.Percentile(0), s.Percentile(50), s.Percentile(99), s.Percentile(100)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Quantiles = %v, want %v", got, want)
	}
	if len(s.Quantiles()) != 0 {
		t.Fatal("Quantiles() with no args should be empty")
	}
}
