package workload

import (
	"testing"
	"time"
)

func TestParseProfiles(t *testing.T) {
	data := []byte(`[
	  {"name":"api","image":"python:3.8","language":"python",
	   "appInitMs":300,"execMs":45,"cpuPct":6,"memMB":80},
	  {"name":"worker","image":"golang:1.12","language":"go",
	   "appInitMs":100,"execMs":500,"cpuPct":20,"memMB":200}
	]`)
	apps, err := ParseProfiles(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 {
		t.Fatalf("len = %d", len(apps))
	}
	api := apps[0]
	if api.Name != "api" || api.Lang != Python {
		t.Fatalf("api = %+v", api)
	}
	if api.AppInit != 300*time.Millisecond || api.Exec != 45*time.Millisecond {
		t.Fatalf("api durations = %v/%v", api.AppInit, api.Exec)
	}
	if api.InitCost() != Python.RuntimeInit()+300*time.Millisecond {
		t.Fatal("InitCost composition wrong")
	}
}

func TestParseProfilesErrors(t *testing.T) {
	cases := []string{
		``,
		`[]`,
		`not json`,
		`[{"name":"x","image":"a","language":"cobol","execMs":1}]`,
		`[{"name":"x","image":"","language":"go","execMs":1}]`,
		`[{"name":"x","image":"a","language":"go","execMs":0}]`,
		`[{"name":"x","image":"a","language":"go","execMs":1,"cpuPct":-1}]`,
		`[{"name":"x","image":"a","language":"go","execMs":1,"bogus":2}]`,
		`[{"name":"x","image":"a","language":"go","execMs":1},
		  {"name":"x","image":"b","language":"go","execMs":1}]`,
	}
	for i, in := range cases {
		if _, err := ParseProfiles([]byte(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	orig := []App{V3App(), TFAPIApp(), QRApp(Node)}
	data, err := MarshalProfiles(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProfiles(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("app %d changed: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestParseLanguage(t *testing.T) {
	l, err := ParseLanguage(" Java ")
	if err != nil || l != Java {
		t.Fatalf("ParseLanguage = %v/%v", l, err)
	}
	if _, err := ParseLanguage("fortran"); err == nil {
		t.Fatal("unknown language accepted")
	}
}
