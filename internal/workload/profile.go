package workload

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Profile is the JSON-serialisable form of an App, so users can define
// their own application cost profiles and replay them with hotc-sim:
//
//	[{"name":"my-api","image":"python:3.8","language":"python",
//	  "appInitMs":300,"execMs":45,"cpuPct":6,"memMB":80}]
type Profile struct {
	// Name identifies the app.
	Name string `json:"name"`
	// Image is the catalog image reference it runs in.
	Image string `json:"image"`
	// Language selects the runtime-init cost: go|python|node|java.
	Language string `json:"language"`
	// AppInitMs is business-logic initialisation in milliseconds.
	AppInitMs float64 `json:"appInitMs"`
	// ExecMs is warm execution time per request in milliseconds.
	ExecMs float64 `json:"execMs"`
	// CPUPct and MemMB are steady-state resource usage during
	// execution.
	CPUPct float64 `json:"cpuPct"`
	MemMB  float64 `json:"memMB"`
}

// ParseLanguage maps a language name to its Language value.
func ParseLanguage(s string) (Language, error) {
	for _, l := range Languages() {
		if l.String() == strings.ToLower(strings.TrimSpace(s)) {
			return l, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown language %q (want go/python/node/java)", s)
}

// App converts the profile to an App.
func (p Profile) App() (App, error) {
	lang, err := ParseLanguage(p.Language)
	if err != nil {
		return App{}, err
	}
	app := App{
		Name:    strings.TrimSpace(p.Name),
		Image:   strings.TrimSpace(p.Image),
		Lang:    lang,
		AppInit: time.Duration(p.AppInitMs * float64(time.Millisecond)),
		Exec:    time.Duration(p.ExecMs * float64(time.Millisecond)),
		CPUPct:  p.CPUPct,
		MemMB:   p.MemMB,
	}
	if app.Image == "" {
		return App{}, fmt.Errorf("workload: profile %q needs an image", p.Name)
	}
	if p.CPUPct < 0 || p.MemMB < 0 {
		return App{}, fmt.Errorf("workload: profile %q has negative resources", p.Name)
	}
	if err := app.Validate(); err != nil {
		return App{}, err
	}
	return app, nil
}

// ParseProfiles parses a JSON array of profiles into apps, rejecting
// duplicates.
func ParseProfiles(data []byte) ([]App, error) {
	var profiles []Profile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&profiles); err != nil {
		return nil, fmt.Errorf("workload: parsing profiles: %w", err)
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("workload: no profiles in file")
	}
	seen := map[string]bool{}
	apps := make([]App, 0, len(profiles))
	for i, p := range profiles {
		app, err := p.App()
		if err != nil {
			return nil, fmt.Errorf("workload: profile %d: %w", i, err)
		}
		if seen[app.Name] {
			return nil, fmt.Errorf("workload: duplicate profile name %q", app.Name)
		}
		seen[app.Name] = true
		apps = append(apps, app)
	}
	return apps, nil
}

// MarshalProfiles renders apps as a profiles JSON document.
func MarshalProfiles(apps []App) ([]byte, error) {
	profiles := make([]Profile, len(apps))
	for i, a := range apps {
		profiles[i] = Profile{
			Name:      a.Name,
			Image:     a.Image,
			Language:  a.Lang.String(),
			AppInitMs: float64(a.AppInit) / float64(time.Millisecond),
			ExecMs:    float64(a.Exec) / float64(time.Millisecond),
			CPUPct:    a.CPUPct,
			MemMB:     a.MemMB,
		}
	}
	return json.MarshalIndent(profiles, "", "  ")
}
