package workload

import (
	"testing"
	"time"

	"hotc/internal/costmodel"
	"hotc/internal/network"
)

func TestLanguageNames(t *testing.T) {
	want := map[Language]string{Go: "go", Python: "python", Node: "node", Java: "java"}
	for l, name := range want {
		if l.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(l), l.String(), name)
		}
	}
	if Language(42).String() == "" {
		t.Fatal("unknown language should still render")
	}
}

func TestRuntimeInitOrdering(t *testing.T) {
	// Fig. 4(b): compiled Go starts fastest; Java (compile+interpret)
	// slowest.
	if !(Go.RuntimeInit() < Node.RuntimeInit() &&
		Node.RuntimeInit() < Python.RuntimeInit() &&
		Python.RuntimeInit() < Java.RuntimeInit()) {
		t.Fatal("runtime init ordering should be go < node < python < java")
	}
}

func TestRuntimeInitInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid language did not panic")
		}
	}()
	Language(42).RuntimeInit()
}

func TestValidate(t *testing.T) {
	if err := V3App().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []App{
		{},
		{Name: "x"},
		{Name: "x", Exec: time.Second, AppInit: -1},
	}
	for i, a := range bad {
		if a.Validate() == nil {
			t.Errorf("case %d: invalid app accepted", i)
		}
	}
}

func TestAllAppsValid(t *testing.T) {
	apps := []App{V3App(), TFAPIApp(), Cassandra()}
	for _, l := range Languages() {
		apps = append(apps, RandomNumber(l), S3Download(l), QRApp(l))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if a.Image == "" {
			t.Errorf("%s: no image", a.Name)
		}
	}
}

// coldTotal reproduces the latency composition a fresh container pays:
// engine boot under the app's default (bridge) network, runtime init,
// app init, then the first (cache-cold) execution.
func coldTotal(cm *costmodel.Model, a App) time.Duration {
	boot := network.Bridge.BootCost(cm)
	return boot + cm.InitCost(a.InitCost()) + cm.ColdExecCost(a.Exec)
}

// Fig. 4(b): Go cold/hot ratio ~3.06; Java cold roughly doubles its
// hot execution.
func TestFig4bColdHotRatios(t *testing.T) {
	cm := costmodel.New(costmodel.Server())

	goApp := S3Download(Go)
	ratio := float64(coldTotal(cm, goApp)) / float64(cm.ExecCost(goApp.Exec))
	if ratio < 2.8 || ratio > 3.3 {
		t.Fatalf("Go cold/hot = %.2f, want ~3.06", ratio)
	}

	javaApp := S3Download(Java)
	jr := float64(coldTotal(cm, javaApp)) / float64(cm.ExecCost(javaApp.Exec))
	if jr < 1.8 || jr > 2.3 {
		t.Fatalf("Java cold/hot = %.2f, want ~2", jr)
	}

	// Java's absolute cold latency exceeds Go's hot latency by a lot
	// (the "already long execution in Java").
	if coldTotal(cm, javaApp) < coldTotal(cm, goApp) {
		t.Fatal("Java cold start should be the longest")
	}
}

// Fig. 8(a) calibration: reuse removes boot+init; the reduction should
// be ~33.2% for v3-app and ~23.9% for TF-API-app on the server.
func TestFig8ServerReductions(t *testing.T) {
	cm := costmodel.New(costmodel.Server())
	check := func(a App, want float64) {
		cold := coldTotal(cm, a)
		warm := cm.ExecCost(a.Exec)
		red := 1 - float64(warm)/float64(cold)
		if red < want-0.03 || red > want+0.03 {
			t.Errorf("%s reduction = %.3f, want ~%.3f", a.Name, red, want)
		}
	}
	check(V3App(), 0.332)
	check(TFAPIApp(), 0.239)
}

// Fig. 9: the QR conversion is ~60ms; the cold path dwarfs it.
func TestFig9QRComposition(t *testing.T) {
	cm := costmodel.New(costmodel.Server())
	for _, l := range Languages() {
		a := QRApp(l)
		warm := cm.ExecCost(a.Exec)
		if warm != 60*time.Millisecond {
			t.Fatalf("%s warm exec = %v, want 60ms", a.Name, warm)
		}
		cold := coldTotal(cm, a)
		if float64(cold) < 3*float64(warm) {
			t.Fatalf("%s cold %v should dwarf warm %v", a.Name, cold, warm)
		}
	}
}

func TestInitCostComposition(t *testing.T) {
	a := V3App()
	if a.InitCost() != a.Lang.RuntimeInit()+a.AppInit {
		t.Fatal("InitCost must be runtime init + app init")
	}
}

func TestCassandraIsHeavy(t *testing.T) {
	c := Cassandra()
	if c.MemMB < 1000 || c.CPUPct < 20 {
		t.Fatalf("Cassandra should be a heavy workload: %+v", c)
	}
	if c.Lang != Java {
		t.Fatal("Cassandra runs on the JVM")
	}
}
