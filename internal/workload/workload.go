// Package workload defines the application models the paper evaluates
// with: the per-language cold/hot execution study of Fig. 4(b), the
// image-recognition applications of Fig. 8 (inception-v3 in Python and
// a Go TensorFlow-API app), the URL-to-QR web function of Fig. 9, the
// random-number function used in the Fig. 5 pipeline breakdown, and
// the Cassandra database used in the Fig. 15(b) lifecycle study.
//
// Each App decomposes into the stages a serverless cold start pays
// (§I: "container startup, code download, runtime initialization,
// business logic initialization") plus its warm execution time and
// steady-state resource usage. Stage durations are server-profile
// values; host profiles scale them via the cost model.
package workload

import (
	"fmt"
	"time"
)

// Language identifies a function's implementation language, which
// determines runtime initialisation cost (Fig. 4(b): interpreted and
// JIT-compiled languages pay more on cold start).
type Language int

const (
	// Go is a compiled static binary: near-zero runtime init.
	Go Language = iota
	// Python pays interpreter start and import time.
	Python
	// Node pays V8 start and module load time.
	Node
	// Java pays JVM start, class loading and JIT warmup — the paper
	// singles it out: "If the function languages, e.g., Java, need to
	// compile and interpret, the cold start time could be even longer."
	Java
)

// Languages lists all languages in display order.
func Languages() []Language { return []Language{Go, Python, Node, Java} }

// String returns the language name.
func (l Language) String() string {
	switch l {
	case Go:
		return "go"
	case Python:
		return "python"
	case Node:
		return "node"
	case Java:
		return "java"
	default:
		return fmt.Sprintf("workload.Language(%d)", int(l))
	}
}

// RuntimeInit is the language-runtime start cost on the server profile.
func (l Language) RuntimeInit() time.Duration {
	switch l {
	case Go:
		return 30 * time.Millisecond
	case Python:
		return 250 * time.Millisecond
	case Node:
		return 180 * time.Millisecond
	case Java:
		return 800 * time.Millisecond
	default:
		panic(fmt.Sprintf("workload: RuntimeInit of invalid language %d", int(l)))
	}
}

// App models one serverless application.
type App struct {
	// Name identifies the app in reports.
	Name string
	// Image is the catalog reference of the container image it runs in.
	Image string
	// Lang determines runtime init cost.
	Lang Language
	// AppInit is the business-logic initialisation on the server
	// profile: code/data download, model load, connection setup. Paid
	// once per fresh container (or at pre-warm).
	AppInit time.Duration
	// Exec is the warm execution time per request on the server
	// profile.
	Exec time.Duration
	// CPUPct and MemMB are the steady-state resource usage while a
	// request executes (Fig. 15(b) uses these for the Cassandra
	// lifecycle study).
	CPUPct float64
	MemMB  float64
}

// InitCost is the total initialisation a fresh runtime pays before the
// first execution: language runtime start plus business-logic init.
func (a App) InitCost() time.Duration {
	return a.Lang.RuntimeInit() + a.AppInit
}

// Validate reports whether the app definition is usable.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: app needs a name")
	}
	if a.Exec <= 0 {
		return fmt.Errorf("workload: app %q needs positive exec time", a.Name)
	}
	if a.AppInit < 0 {
		return fmt.Errorf("workload: app %q has negative init", a.Name)
	}
	return nil
}

// The paper's evaluation applications. All stage durations are
// server-profile anchors chosen so that the benches reproduce the
// paper's reported improvements; see EXPERIMENTS.md for the
// calibration table.

// RandomNumber is the trivial backend from Fig. 1 and the Fig. 5
// breakdown: "one function which generates a random number".
func RandomNumber(lang Language) App {
	return App{
		Name:    "random-number-" + lang.String(),
		Image:   imageForLang(lang),
		Lang:    lang,
		AppInit: 60 * time.Millisecond,
		Exec:    2 * time.Millisecond,
		CPUPct:  1,
		MemMB:   12,
	}
}

// S3Download is the Fig. 4(b) benchmark: "downloads a 3.3MB pdf file
// from Amazon S3 and executes it". AppInit captures code-package
// download and per-language setup; Exec includes the S3 fetch.
func S3Download(lang Language) App {
	app := App{
		Name:   "s3-download-" + lang.String(),
		Image:  imageForLang(lang),
		Lang:   lang,
		CPUPct: 8,
		MemMB:  60,
	}
	switch lang {
	case Go:
		// Fig. 4(b): Go cold = 3.06x Go hot.
		app.AppInit = 1830 * time.Millisecond
		app.Exec = 1000 * time.Millisecond
	case Java:
		// Fig. 4(b): cold "doubles the already long execution in Java".
		app.AppInit = 1200 * time.Millisecond
		app.Exec = 2200 * time.Millisecond
	case Python:
		app.AppInit = 900 * time.Millisecond
		app.Exec = 1400 * time.Millisecond
	case Node:
		app.AppInit = 800 * time.Millisecond
		app.Exec = 1200 * time.Millisecond
	}
	return app
}

// V3App is the Fig. 8 Python inception-v3 image-recognition app
// ("implemented in Python and built on Google inception-v3 model").
// Calibration: with HotC the server execution time drops 33.2%.
func V3App() App {
	return App{
		Name:    "v3-app",
		Image:   "tensorflow:1.13",
		Lang:    Python,
		AppInit: 510 * time.Millisecond, // model load
		Exec:    2100 * time.Millisecond,
		CPUPct:  45,
		MemMB:   850,
	}
}

// TFAPIApp is the Fig. 8 Go TensorFlow-API image-recognition app.
// Calibration: with HotC the server execution time drops 23.9%.
func TFAPIApp() App {
	return App{
		Name:    "tf-api-app",
		Image:   "tensorflow:1.13",
		Lang:    Go,
		AppInit: 460 * time.Millisecond, // model load
		Exec:    2600 * time.Millisecond,
		CPUPct:  40,
		MemMB:   780,
	}
}

// QRApp is the Fig. 9 web application: "transferred the user input URL
// into QR code... the URL transition only took around 60ms while the
// majority of time was spent on the resource allocation and container
// runtime setup".
func QRApp(lang Language) App {
	return App{
		Name:    "qr-" + lang.String(),
		Image:   imageForLang(lang),
		Lang:    lang,
		AppInit: 100 * time.Millisecond,
		Exec:    60 * time.Millisecond,
		CPUPct:  5,
		MemMB:   40,
	}
}

// Cassandra is the Fig. 15(b) heavy workload: "a heavy workload that
// executes the database on the Java virtual machine".
func Cassandra() App {
	return App{
		Name:    "cassandra",
		Image:   "cassandra:3.11",
		Lang:    Java,
		AppInit: 2500 * time.Millisecond,
		Exec:    7 * time.Second, // the Fig. 15(b) run: started at 6s, stopped at 13s
		CPUPct:  35,
		MemMB:   1200,
	}
}

func imageForLang(l Language) string {
	switch l {
	case Go:
		return "golang:1.12"
	case Python:
		return "python:3.8"
	case Node:
		return "node:10"
	case Java:
		return "openjdk:8"
	default:
		return "alpine:3.9"
	}
}
