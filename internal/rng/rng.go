// Package rng centralises every source of randomness in the repository.
// All generators are seeded and splittable by name, so a whole
// experiment — workload arrivals, corpus generation, jitter in the cost
// model — is reproducible from a single root seed, and adding a new
// consumer of randomness does not perturb the streams used by existing
// ones.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with a
// few distributions the simulator needs. Source is not safe for
// concurrent use; split one stream per goroutine instead.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream identified by name. Two
// Sources with the same seed and the same split-name sequence produce
// identical values; streams with different names are statistically
// independent.
func (s *Source) Split(name string) *Source {
	h := fnv.New64a()
	// Hash the name together with a draw from the parent so that
	// repeated splits with the same name yield distinct streams.
	h.Write([]byte(name))
	var buf [8]byte
	v := s.r.Uint64()
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return New(int64(h.Sum64()))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomises the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// NormClamped is Norm truncated to [lo, hi]. It is used for latency
// jitter, where a negative sample would be physically meaningless.
func (s *Source) NormClamped(mean, stddev, lo, hi float64) float64 {
	v := s.Norm(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Exp returns an exponentially distributed value with the given mean
// (i.e. rate 1/mean). Used for Poisson inter-arrival times.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Zipf returns a generator over [0, n) with exponent skew > 1 being
// more concentrated. It is used for the Dockerfile-corpus image
// popularity distribution (paper Fig. 2a: a few base images dominate).
func (s *Source) Zipf(skew float64, n uint64) *Zipf {
	if skew <= 1 {
		skew = 1.0001
	}
	return &Zipf{z: rand.NewZipf(s.r, skew, 1, n-1)}
}

// Zipf draws Zipf-distributed ranks.
type Zipf struct {
	z *rand.Zipf
}

// Next returns the next rank (0 is the most popular).
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Poisson returns a Poisson-distributed count with the given mean,
// using Knuth's method for small means and a normal approximation for
// large ones (mean > 64) where Knuth's product underflows.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := s.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
