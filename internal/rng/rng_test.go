package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := true
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split("arrivals")
	b := New(7).Split("arrivals")
	for i := 0; i < 50; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same split name diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("arrivals")
	b := root.Split("corpus")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1<<20) == b.Intn(1<<20) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d/64 equal draws", same)
	}
}

func TestRepeatedSplitSameNameDiffers(t *testing.T) {
	root := New(7)
	a := root.Split("x")
	b := root.Split("x")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1<<20) == b.Intn(1<<20) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("repeated splits with one name are not distinct: %d/64 equal", same)
	}
}

func TestNormClamped(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.NormClamped(10, 100, 0, 20)
		if v < 0 || v > 20 {
			t.Fatalf("NormClamped escaped bounds: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~3", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(17)
	for _, mean := range []float64{0.5, 4, 32, 100, 500} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 || s.Poisson(-5) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestZipfConcentration(t *testing.T) {
	s := New(29)
	z := s.Zipf(1.5, 100)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if frac := float64(top10) / n; frac < 0.5 {
		t.Fatalf("Zipf(1.5) top-10 share = %v, want > 0.5", frac)
	}
}

func TestZipfLowSkewClamped(t *testing.T) {
	s := New(31)
	z := s.Zipf(0.5, 10) // skew <= 1 must be clamped, not panic
	for i := 0; i < 100; i++ {
		if v := z.Next(); v >= 10 {
			t.Fatalf("Zipf rank out of range: %d", v)
		}
	}
}

// Property: Exp and NormClamped never produce values outside their
// documented ranges.
func TestPropertyRanges(t *testing.T) {
	f := func(seed int64, mean uint8) bool {
		s := New(seed)
		m := float64(mean%50) + 0.1
		for i := 0; i < 100; i++ {
			if s.Exp(m) < 0 {
				return false
			}
			if v := s.NormClamped(m, m, 0, 2*m); v < 0 || v > 2*m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
