package cluster

import (
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	opts.PrePull = true
	c := New(opts)
	t.Cleanup(c.Close)
	if err := c.Deploy("qr", config.Runtime{Image: "python:3.8"}, workload.QRApp(workload.Python)); err != nil {
		t.Fatal(err)
	}
	return c
}

func serialSchedule(n int, gap time.Duration) []trace.Request {
	return trace.Serial{Interval: gap, Count: n}.Generate()
}

func TestRoundRobinSpreads(t *testing.T) {
	c := newCluster(t, Options{Nodes: 3, Routing: RoundRobin})
	results, err := c.Run(serialSchedule(9, time.Minute), func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.Served() != 3 {
			t.Fatalf("%s served %d, want 3", n.Name, n.Served())
		}
	}
	// Round-robin destroys reuse for serial traffic: each revisit may
	// land on a different node, but with 9 requests and 3 nodes each
	// node sees 3 — after its first, it reuses.
	if ReuseRate(results) < 0.5 {
		t.Fatalf("reuse rate = %v", ReuseRate(results))
	}
}

func TestReuseAffinityBeatsRoundRobinOnReuse(t *testing.T) {
	// Single-threaded serial traffic: affinity should route every
	// request after the first to the same warm node.
	aff := newCluster(t, Options{Nodes: 4, Routing: ReuseAffinity})
	affRes, err := aff.Run(serialSchedule(12, time.Minute), func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	rr := newCluster(t, Options{Nodes: 4, Routing: RoundRobin})
	rrRes, err := rr.Run(serialSchedule(12, time.Minute), func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if ReuseRate(affRes) <= ReuseRate(rrRes) {
		t.Fatalf("affinity reuse %v should beat round-robin %v",
			ReuseRate(affRes), ReuseRate(rrRes))
	}
	if ReuseRate(affRes) < 11.0/12 {
		t.Fatalf("affinity reuse = %v, want all but the first", ReuseRate(affRes))
	}
}

func TestLeastLoadedBalancesParallel(t *testing.T) {
	c := newCluster(t, Options{Nodes: 3, Routing: LeastLoaded})
	// 30 simultaneous requests: load counts force an even spread.
	var schedule []trace.Request
	for i := 0; i < 30; i++ {
		schedule = append(schedule, trace.Request{At: 0, Round: 0})
	}
	if _, err := c.Run(schedule, func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	if imb := c.LoadImbalance(); imb > 0.2 {
		t.Fatalf("least-loaded imbalance = %v", imb)
	}
}

func TestAffinityStillBalancesUnderLoad(t *testing.T) {
	c := newCluster(t, Options{Nodes: 3, Routing: ReuseAffinity})
	// Heavy parallel rounds: affinity must not funnel everything to
	// one node once it is saturated (warm count <= inFlight check).
	sched := trace.Parallel{Threads: 12, Interval: 30 * time.Second, Rounds: 6}.Generate()
	if _, err := c.Run(sched, func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	if imb := c.LoadImbalance(); imb > 1.0 {
		t.Fatalf("affinity imbalance = %v, nodes=%v", imb, servedCounts(c))
	}
}

func servedCounts(c *Cluster) []int {
	var out []int
	for _, n := range c.Nodes() {
		out = append(out, n.Served())
	}
	return out
}

func TestNodeFailureRoutesAround(t *testing.T) {
	c := newCluster(t, Options{Nodes: 3, Routing: ReuseAffinity})
	if !c.FailNode(0) {
		t.Fatal("FailNode rejected valid index")
	}
	results, err := c.Run(serialSchedule(6, time.Minute), func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("request failed: %v", r.Err)
		}
		if r.Node == "node-0" {
			t.Fatal("request routed to failed node")
		}
	}
	if c.Nodes()[0].Served() != 0 {
		t.Fatal("failed node served requests")
	}
	// Recovery brings it back into rotation.
	if !c.RecoverNode(0) {
		t.Fatal("RecoverNode rejected valid index")
	}
	c2 := newCluster(t, Options{Nodes: 1, Routing: RoundRobin})
	if c2.FailNode(5) || c2.RecoverNode(-1) {
		t.Fatal("out-of-range node indices accepted")
	}
}

// Regression: FailNode deletes the node's directory entries, but the
// completion callback of a request already in flight used to republish
// them unconditionally — a failed node kept attracting reuse-affinity
// traffic. The publish is now gated on the node's failed flag.
func TestFailNodeWithRequestInFlightKeepsDirectoryClean(t *testing.T) {
	c := newCluster(t, Options{Nodes: 2, Routing: ReuseAffinity})
	key := c.specs["qr"].Key()
	var res Result
	completed := false
	c.sched.At(0, func() {
		c.Handle("qr", trace.Request{}, func(r Result) {
			res = r
			completed = true
		})
	})
	// 1ns later the cold start is still running: the node fails with
	// the request in flight.
	c.sched.At(1, func() {
		if !c.FailNode(0) {
			t.Error("FailNode rejected valid index")
		}
	})
	for !completed && c.sched.Step() {
	}
	if !completed {
		t.Fatal("request never completed")
	}
	if res.Node != "node-0" {
		t.Fatalf("request served by %s, want node-0", res.Node)
	}
	if got := c.warmOn(c.nodes[0], key); got != 0 {
		t.Fatalf("failed node still advertises %d warm runtimes", got)
	}
}

// Regression: served used to count every completion, errors included,
// so LoadImbalance and Served mistook failure churn for useful work.
func TestServedCountsSuccessesOnly(t *testing.T) {
	c := newCluster(t, Options{Nodes: 2, Routing: RoundRobin})
	if _, err := c.Run(serialSchedule(4, time.Minute), func(int) string { return "qr" }); err != nil {
		t.Fatal(err)
	}
	if imb := c.LoadImbalance(); imb != 0 {
		t.Fatalf("balanced success imbalance = %v, want 0", imb)
	}
	// Requests for an undeployed function fail on whichever node they
	// land on; neither served counts nor imbalance may move.
	results, err := c.Run(serialSchedule(3, time.Minute), func(int) string { return "ghost" })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatal("ghost request succeeded")
		}
	}
	if imb := c.LoadImbalance(); imb != 0 {
		t.Fatalf("failures skewed imbalance to %v, served=%v", imb, servedCounts(c))
	}
	served, failed := 0, 0
	for _, n := range c.Nodes() {
		served += n.Served()
		failed += n.FailedRequests()
	}
	if served != 4 || failed != 3 {
		t.Fatalf("served/failed = %d/%d, want 4/3", served, failed)
	}
}

// Regression: RecoverNode used to flip the failed flag without
// republishing warm-runtime entries, so a recovered node got no
// reuse-affinity traffic until least-loaded luck sent it a request.
func TestRecoveryRestoresAffinityWithinOneRequest(t *testing.T) {
	c := newCluster(t, Options{Nodes: 3, Routing: ReuseAffinity})
	first, err := c.Run(serialSchedule(4, time.Minute), func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	warmNode := first[len(first)-1].Node // affinity pinned the stream here
	idx := -1
	for i, n := range c.Nodes() {
		if n.Name == warmNode {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("unknown serving node %q", warmNode)
	}
	if !c.FailNode(idx) || !c.RecoverNode(idx) {
		t.Fatal("fail/recover rejected valid index")
	}
	// 30s of headroom lets the warm runtime finish post-request cleanup
	// (an At of 0 would arrive while it is still scrubbing).
	after, err := c.Run([]trace.Request{{At: 30 * time.Second}}, func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Node != warmNode {
		t.Fatalf("post-recovery request routed to %s, want recovered %s", after[0].Node, warmNode)
	}
	if !after[0].Reused {
		t.Fatal("post-recovery request did not reuse the node's warm runtime")
	}
}

func TestAllNodesFailed(t *testing.T) {
	c := newCluster(t, Options{Nodes: 2, Routing: LeastLoaded})
	c.FailNode(0)
	c.FailNode(1)
	results, err := c.Run(serialSchedule(1, time.Second), func(int) string { return "qr" })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("request succeeded with all nodes down")
	}
}

func TestDeployUnknownImageFails(t *testing.T) {
	c := New(Options{Nodes: 2})
	defer c.Close()
	if err := c.Deploy("x", config.Runtime{Image: "ghost:1"}, workload.QRApp(workload.Go)); err == nil {
		t.Fatal("unknown image deployed")
	}
}

func TestRoutingNames(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range []Routing{RoundRobin, LeastLoaded, ReuseAffinity} {
		if s := r.String(); s == "" || seen[s] {
			t.Fatalf("bad routing name %q", s)
		} else {
			seen[s] = true
		}
	}
	if Routing(42).String() == "" {
		t.Fatal("unknown routing should render")
	}
}

func TestReuseRateEmpty(t *testing.T) {
	if ReuseRate(nil) != 0 {
		t.Fatal("empty reuse rate != 0")
	}
}

func TestMultipleFunctionsIndependentAffinity(t *testing.T) {
	c := newCluster(t, Options{Nodes: 3, Routing: ReuseAffinity})
	if err := c.Deploy("qr2", config.Runtime{Image: "node:10"}, workload.QRApp(workload.Node)); err != nil {
		t.Fatal(err)
	}
	var schedule []trace.Request
	for i := 0; i < 12; i++ {
		schedule = append(schedule, trace.Request{At: time.Duration(i) * time.Minute, Class: i % 2, Round: i})
	}
	results, err := c.Run(schedule, func(cl int) string {
		if cl == 0 {
			return "qr"
		}
		return "qr2"
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each function should reuse after its own first request.
	if ReuseRate(results) < 10.0/12 {
		t.Fatalf("reuse rate = %v", ReuseRate(results))
	}
}
