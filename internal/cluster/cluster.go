// Package cluster extends HotC to a multi-host backend — the paper's
// §VII future work: "in a distributed system, a few containers are
// extremely popular... Some host machines might become overloaded and
// we need to consider load balancing when reusing the hot runtime."
//
// A Cluster is a set of nodes, each a full single-host HotC stack
// (engine, pool, adaptive controller, gateway) sharing one virtual
// clock. A router places each request on a node; the reuse-affinity
// policy consults a replicated key-value directory (kvstore) that
// tracks which nodes hold warm runtimes for which keys, falling back
// to least-loaded placement — reuse when possible, balance otherwise.
package cluster

import (
	"fmt"
	"strconv"

	"hotc/internal/cluster/kvstore"
	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/core"
	"hotc/internal/costmodel"
	"hotc/internal/faas"
	"hotc/internal/host"
	"hotc/internal/image"
	"hotc/internal/rng"
	"hotc/internal/simclock"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// Routing selects the placement policy.
type Routing int

const (
	// RoundRobin cycles through nodes.
	RoundRobin Routing = iota
	// LeastLoaded picks the node with the fewest in-flight requests.
	LeastLoaded
	// ReuseAffinity prefers a node holding a warm runtime for the
	// request's key (per the directory), tie-breaking by load.
	ReuseAffinity
)

// String returns the routing policy name.
func (r Routing) String() string {
	switch r {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case ReuseAffinity:
		return "reuse-affinity"
	default:
		return fmt.Sprintf("cluster.Routing(%d)", int(r))
	}
}

// Node is one backend host: a complete single-host HotC deployment.
type Node struct {
	// Name identifies the node.
	Name string
	// Engine, Host, HotC and Gateway form the per-node stack.
	Engine  *container.Engine
	Host    *host.Host
	HotC    *core.HotC
	Gateway *faas.Gateway

	inFlight  int
	served    int
	failedReq int
	failed    bool
}

// Served reports how many requests the node has completed
// successfully. Failures are tracked separately (FailedRequests) so
// load accounting never mistakes error churn for useful work.
func (n *Node) Served() int { return n.served }

// FailedRequests reports how many requests the node completed with an
// error.
func (n *Node) FailedRequests() int { return n.failedReq }

// Options configure a Cluster.
type Options struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Profile is the per-node hardware profile (default server).
	Profile costmodel.Profile
	// Routing is the placement policy (default ReuseAffinity).
	Routing Routing
	// Seed drives per-node latency jitter (0 = noiseless).
	Seed int64
	// Core configures each node's HotC controller.
	Core core.Options
	// PrePull warms each node's layer cache.
	PrePull bool
	// DirectoryReplicas/DirectoryR/DirectoryW configure the replicated
	// pool directory (defaults 3/2/2).
	DirectoryReplicas, DirectoryR, DirectoryW int
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Profile.Name == "" {
		o.Profile = costmodel.Server()
	}
	if o.DirectoryReplicas <= 0 {
		o.DirectoryReplicas, o.DirectoryR, o.DirectoryW = 3, 2, 2
	}
	return o
}

// Cluster is the multi-host deployment.
type Cluster struct {
	sched *simclock.Scheduler
	opts  Options
	nodes []*Node
	dir   *kvstore.Store
	reg   *image.Registry

	apps   map[string]workload.App
	specs  map[string]container.Spec
	rrNext int
}

// New builds a cluster.
func New(opts Options) *Cluster {
	o := opts.withDefaults()
	sched := simclock.New()
	reg := image.StandardCatalog()
	c := &Cluster{
		sched: sched,
		opts:  o,
		dir:   kvstore.New(o.DirectoryReplicas, o.DirectoryR, o.DirectoryW),
		reg:   reg,
		apps:  make(map[string]workload.App),
		specs: make(map[string]container.Spec),
	}
	for i := 0; i < o.Nodes; i++ {
		cache := image.NewCache()
		if o.PrePull {
			for _, ref := range reg.Refs() {
				if im, err := reg.Lookup(ref); err == nil {
					cache.Admit(im)
				}
			}
		}
		var jit *rng.Source
		if o.Seed != 0 {
			jit = rng.New(o.Seed + int64(i))
		}
		eng := container.NewEngine(sched, costmodel.New(o.Profile), reg, cache, jit)
		h := core.New(eng, o.Core)
		h.Start()
		node := &Node{
			Name:    fmt.Sprintf("node-%d", i),
			Engine:  eng,
			Host:    host.New(eng),
			HotC:    h,
			Gateway: faas.NewGateway(eng, h),
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

// Scheduler exposes the shared virtual clock.
func (c *Cluster) Scheduler() *simclock.Scheduler { return c.sched }

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Close stops every node's controller.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.HotC.Stop()
	}
}

// FailNode marks a node as failed: the router skips it and its
// directory entries are removed. Returns false for an invalid index.
func (c *Cluster) FailNode(i int) bool {
	if i < 0 || i >= len(c.nodes) {
		return false
	}
	c.nodes[i].failed = true
	for _, spec := range c.specs {
		// Best-effort: a failed node cannot serve, so advertise zero.
		_ = c.dir.Delete(dirKey(spec.Key(), c.nodes[i].Name))
	}
	return true
}

// RecoverNode brings a failed node back and republishes its warm
// runtimes: the node's pool survived the (simulated) outage, so
// re-advertising every registered key restores reuse-affinity traffic
// immediately instead of waiting for the node to win a least-loaded
// tie-break on each key.
func (c *Cluster) RecoverNode(i int) bool {
	if i < 0 || i >= len(c.nodes) {
		return false
	}
	node := c.nodes[i]
	node.failed = false
	for _, spec := range c.specs {
		c.publish(node, spec.Key())
	}
	return true
}

// Deploy registers the function on every node.
func (c *Cluster) Deploy(name string, rt config.Runtime, app workload.App) error {
	resolver := faas.ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, c.reg)
	})
	for _, n := range c.nodes {
		if err := n.Gateway.Deploy(faas.Function{Name: name, Runtime: rt, App: app}, resolver); err != nil {
			return fmt.Errorf("cluster: deploying on %s: %w", n.Name, err)
		}
		spec, _ := n.Gateway.Spec(name)
		if err := n.HotC.Register(spec, app); err != nil {
			return err
		}
		c.specs[name] = spec
	}
	c.apps[name] = app
	return nil
}

func dirKey(key config.Key, node string) string {
	return string(key) + "|" + node
}

// publish advertises a node's live runtime count for a key in the
// directory. Live (rather than currently-available) is the right
// affinity signal: a runtime that is busy or in post-request cleanup
// will be reusable momentarily, and the router's in-flight check
// prevents queueing onto saturated nodes.
func (c *Cluster) publish(node *Node, key config.Key) {
	live := node.HotC.Pool().NumLive(key)
	// Quorum loss just degrades routing to load-only; ignore errors.
	_ = c.dir.Put(dirKey(key, node.Name), strconv.Itoa(live))
}

// warmOn reads the directory for a node's advertised availability.
func (c *Cluster) warmOn(node *Node, key config.Key) int {
	v, ok, err := c.dir.Get(dirKey(key, node.Name))
	if err != nil || !ok {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return n
}

// route picks the node for a request targeting the named function.
func (c *Cluster) route(name string) (*Node, error) {
	alive := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !n.failed {
			alive = append(alive, n)
		}
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("cluster: no nodes available")
	}
	switch c.opts.Routing {
	case RoundRobin:
		n := alive[c.rrNext%len(alive)]
		c.rrNext++
		return n, nil
	case LeastLoaded:
		return c.leastLoaded(alive), nil
	case ReuseAffinity:
		spec, ok := c.specs[name]
		if !ok {
			return c.leastLoaded(alive), nil
		}
		// Among nodes advertising spare warm runtimes, take the least
		// loaded; otherwise balance by load.
		var warm []*Node
		for _, n := range alive {
			if c.warmOn(n, spec.Key()) > n.inFlight {
				warm = append(warm, n)
			}
		}
		if len(warm) > 0 {
			return c.leastLoaded(warm), nil
		}
		return c.leastLoaded(alive), nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing %v", c.opts.Routing)
	}
}

// leastLoaded picks the node with the fewest in-flight requests,
// rotating the scan start so ties spread round-robin instead of
// pinning the first node.
func (c *Cluster) leastLoaded(nodes []*Node) *Node {
	start := c.rrNext % len(nodes)
	c.rrNext++
	best := nodes[start]
	for i := 1; i < len(nodes); i++ {
		n := nodes[(start+i)%len(nodes)]
		if n.inFlight < best.inFlight {
			best = n
		}
	}
	return best
}

// Result is a per-request outcome, annotated with the serving node.
type Result struct {
	faas.Result
	// Node that served the request ("" when routing failed).
	Node string
}

// Handle routes and serves one request. Must run on the scheduler
// goroutine at arrival time.
func (c *Cluster) Handle(name string, req trace.Request, done func(Result)) {
	node, err := c.route(name)
	if err != nil {
		done(Result{Result: faas.Result{Request: req, Function: name, Err: err}})
		return
	}
	node.inFlight++
	node.Gateway.Handle(name, req, func(r faas.Result) {
		node.inFlight--
		if r.Err == nil {
			node.served++
		} else {
			node.failedReq++
		}
		// A node that failed while this request was in flight must not
		// republish: FailNode just deleted its directory entries, and
		// resurrecting them would keep pulling reuse-affinity traffic
		// onto a dead node.
		if spec, ok := c.specs[name]; ok && !node.failed {
			c.publish(node, spec.Key())
		}
		done(Result{Result: r, Node: node.Name})
	})
	// Advertise the post-routing state so concurrent arrivals in the
	// same instant see the claimed runtime as taken.
	if spec, ok := c.specs[name]; ok {
		c.publish(node, spec.Key())
	}
}

// Run replays a schedule against the cluster, stepping the shared
// clock until all responses arrive. Results are in arrival order.
func (c *Cluster) Run(schedule []trace.Request, classFn func(int) string) ([]Result, error) {
	results := make([]Result, len(schedule))
	remaining := len(schedule)
	base := c.sched.Now()
	for i, req := range schedule {
		i, req := i, req
		c.sched.At(base+req.At, func() {
			c.Handle(classFn(req.Class), req, func(r Result) {
				results[i] = r
				remaining--
			})
		})
	}
	for remaining > 0 {
		if !c.sched.Step() {
			return nil, fmt.Errorf("cluster: scheduler drained with %d outstanding", remaining)
		}
	}
	return results, nil
}

// ReuseRate reports the fraction of successful requests that reused a
// warm runtime.
func ReuseRate(results []Result) float64 {
	reused, n := 0, 0
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		n++
		if r.Reused {
			reused++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(reused) / float64(n)
}

// LoadImbalance reports (max-min)/mean of per-node served counts — 0
// is perfectly balanced.
func (c *Cluster) LoadImbalance() float64 {
	if len(c.nodes) == 0 {
		return 0
	}
	min, max, sum := c.nodes[0].served, c.nodes[0].served, 0
	for _, n := range c.nodes {
		if n.served < min {
			min = n.served
		}
		if n.served > max {
			max = n.served
		}
		sum += n.served
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(c.nodes))
	return float64(max-min) / mean
}
