package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestBasicPutGet(t *testing.T) {
	s := New(3, 2, 2)
	if err := s.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || v != "1" {
		t.Fatalf("Get = %q/%v/%v", v, ok, err)
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Fatal("phantom key")
	}
}

func TestOverwriteTakesLatest(t *testing.T) {
	s := New(3, 2, 2)
	s.Put("a", "1")
	s.Put("a", "2")
	v, ok, err := s.Get("a")
	if err != nil || !ok || v != "2" {
		t.Fatalf("Get = %q/%v/%v", v, ok, err)
	}
}

func TestDelete(t *testing.T) {
	s := New(3, 2, 2)
	s.Put("a", "1")
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Fatal("deleted key still visible")
	}
	// Re-create after delete.
	s.Put("a", "3")
	if v, ok, _ := s.Get("a"); !ok || v != "3" {
		t.Fatal("re-created key lost")
	}
}

func TestInvalidQuorumsPanic(t *testing.T) {
	cases := [][3]int{
		{0, 1, 1}, {3, 0, 2}, {3, 2, 0}, {3, 4, 2}, {3, 2, 4},
		{3, 1, 1}, // r+w <= n
		{5, 2, 3}, // r+w == n
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", c)
				}
			}()
			New(c[0], c[1], c[2])
		}()
	}
}

func TestSurvivesMinorityFailure(t *testing.T) {
	s := New(3, 2, 2)
	s.Put("a", "1")
	s.SetUp(0, false) // one replica down: quorums still reachable
	if err := s.Put("a", "2"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || v != "2" {
		t.Fatalf("Get with one replica down = %q/%v/%v", v, ok, err)
	}
	if s.UpCount() != 2 {
		t.Fatalf("UpCount = %d", s.UpCount())
	}
}

func TestQuorumLoss(t *testing.T) {
	s := New(3, 2, 2)
	s.Put("a", "1")
	s.SetUp(0, false)
	s.SetUp(1, false)
	var qe ErrQuorum
	if err := s.Put("a", "2"); !errors.As(err, &qe) {
		t.Fatalf("write with majority down = %v, want quorum error", err)
	}
	if _, _, err := s.Get("a"); !errors.As(err, &qe) {
		t.Fatalf("read with majority down = %v, want quorum error", err)
	}
	if _, err := s.Keys(); !errors.As(err, &qe) {
		t.Fatalf("keys with majority down = %v, want quorum error", err)
	}
	if qe.Error() == "" {
		t.Fatal("empty error text")
	}
}

// Regression: write used to apply the value to every reachable
// replica before checking the quorum, so a Put that returned ErrQuorum
// was still visible to later Gets — a dirty read of a failed write.
// Failed writes now roll back and must be invisible.
func TestFailedWriteIsInvisible(t *testing.T) {
	s := New(3, 2, 2)
	s.Put("a", "committed")
	s.SetUp(1, false)
	s.SetUp(2, false) // one replica up: W=2 unreachable
	var qe ErrQuorum
	if err := s.Put("a", "dirty"); !errors.As(err, &qe) {
		t.Fatalf("Put with W unreachable = %v, want quorum error", err)
	}
	if err := s.Delete("a"); !errors.As(err, &qe) {
		t.Fatalf("Delete with W unreachable = %v, want quorum error", err)
	}
	s.SetUp(1, true)
	s.SetUp(2, true)
	// The failed write and delete must have left no trace on the
	// replica that was reachable when they were attempted.
	v, ok, err := s.Get("a")
	if err != nil || !ok || v != "committed" {
		t.Fatalf("Get after failed write = %q/%v/%v, want the committed value", v, ok, err)
	}
	// A failed write of a brand-new key must not create it.
	s.SetUp(1, false)
	s.SetUp(2, false)
	if err := s.Put("fresh", "x"); !errors.As(err, &qe) {
		t.Fatalf("Put = %v, want quorum error", err)
	}
	s.SetUp(1, true)
	s.SetUp(2, true)
	if _, ok, _ := s.Get("fresh"); ok {
		t.Fatal("failed write created a phantom key")
	}
}

// The critical scenario: a write lands while a replica is down; after
// the replica returns (without repair), a quorum read must still see
// the latest value because R+W > N guarantees overlap with the write
// set.
func TestStaleReplicaDoesNotWinReads(t *testing.T) {
	s := New(3, 2, 2)
	s.Put("a", "old")
	s.SetUp(2, false)
	if err := s.Put("a", "new"); err != nil {
		t.Fatal(err)
	}
	s.SetUp(2, true) // back up, but holding only "old"
	for i := 0; i < 10; i++ {
		v, ok, err := s.Get("a")
		if err != nil || !ok || v != "new" {
			t.Fatalf("stale read: %q/%v/%v", v, ok, err)
		}
	}
}

func TestRepairHealsStaleReplica(t *testing.T) {
	s := New(3, 2, 2)
	s.SetUp(2, false)
	s.Put("a", "1")
	s.SetUp(2, true)
	s.Repair()
	// Now even if the two originally-written replicas die, the healed
	// one serves the value (with R=1 this would matter; here verify
	// directly).
	v, has, alive := s.replicas[2].get("a")
	if !alive || !has || v.Value != "1" {
		t.Fatalf("replica 2 after repair: %+v has=%v alive=%v", v, has, alive)
	}
}

func TestKeys(t *testing.T) {
	s := New(3, 2, 2)
	s.Put("b", "2")
	s.Put("a", "1")
	s.Put("c", "3")
	s.Delete("b")
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

// Property: with R+W > N and at most N-W replicas failing between
// operations, a read always returns the most recent write.
func TestPropertyQuorumConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		const n, rq, wq = 5, 3, 3
		s := New(n, rq, wq)
		latest := map[string]string{}
		down := map[int]bool{}
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%4)
			switch op % 5 {
			case 0, 1: // write
				val := fmt.Sprintf("v%d", i)
				if err := s.Put(key, val); err == nil {
					latest[key] = val
				}
			case 2: // read and verify
				v, ok, err := s.Get(key)
				if err != nil {
					continue // quorum legitimately lost
				}
				want, exists := latest[key]
				if exists != ok {
					return false
				}
				if ok && v != want {
					return false
				}
			case 3: // fail one replica, but never exceed the budget
				idx := int(op) % n
				downCount := len(down)
				if !down[idx] && downCount < n-wq {
					down[idx] = true
					s.SetUp(idx, false)
				}
			case 4: // recover one replica
				for idx := range down {
					delete(down, idx)
					s.SetUp(idx, true)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
