// Package kvstore is a replicated key-value store with quorum reads
// and writes — the "more reliable architecture, e.g., adopting a
// distributed key-value store" the paper's §VII proposes for the pool
// index. Values are versioned with a logical clock; a write replicates
// to W replicas, a read consults R replicas and returns the freshest
// version, so with R+W > N every read observes the latest committed
// write even with up to N-max(R,W) replicas down.
package kvstore

import (
	"fmt"
	"sort"
	"sync"
)

// Versioned is a value with its logical version.
type Versioned struct {
	// Value is the stored payload.
	Value string
	// Version is the logical timestamp; higher wins.
	Version uint64
	// Tombstone marks a deletion.
	Tombstone bool
}

// replica is one storage node.
type replica struct {
	name string
	mu   sync.Mutex
	data map[string]Versioned
	up   bool
}

func (r *replica) put(key string, v Versioned) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.up {
		return false
	}
	cur, ok := r.data[key]
	if !ok || v.Version > cur.Version {
		r.data[key] = v
	}
	return true
}

// stage applies v like put but returns the displaced state so the
// coordinator can roll the write back on a quorum miss.
func (r *replica) stage(key string, v Versioned) (old Versioned, had, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.up {
		return Versioned{}, false, false
	}
	old, had = r.data[key]
	if !had || v.Version > old.Version {
		r.data[key] = v
	}
	return old, had, true
}

// unstage undoes a staged write: if the replica still holds exactly
// version v, the displaced state is restored (or the key removed when
// there was none). A replica that moved on — crashed and lost the
// value, or accepted a newer version — is left alone.
func (r *replica) unstage(key string, v Versioned, old Versioned, had bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.data[key]
	if !ok || cur.Version != v.Version {
		return
	}
	if had {
		r.data[key] = old
	} else {
		delete(r.data, key)
	}
}

func (r *replica) get(key string) (Versioned, bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.up {
		return Versioned{}, false, false
	}
	v, ok := r.data[key]
	return v, ok, true
}

// Store is the replicated store client view.
type Store struct {
	mu       sync.Mutex
	replicas []*replica
	readQ    int
	writeQ   int
	clock    uint64
}

// New creates a store with n replicas and the given read/write quorum
// sizes. It panics unless 1 <= r, w <= n and r+w > n (the quorum
// intersection requirement).
func New(n, r, w int) *Store {
	if n < 1 || r < 1 || w < 1 || r > n || w > n {
		panic(fmt.Sprintf("kvstore: invalid quorum config n=%d r=%d w=%d", n, r, w))
	}
	if r+w <= n {
		panic(fmt.Sprintf("kvstore: r+w must exceed n for consistency (n=%d r=%d w=%d)", n, r, w))
	}
	s := &Store{readQ: r, writeQ: w}
	for i := 0; i < n; i++ {
		s.replicas = append(s.replicas, &replica{
			name: fmt.Sprintf("replica-%d", i),
			data: make(map[string]Versioned),
			up:   true,
		})
	}
	return s
}

// Replicas reports the replica count.
func (s *Store) Replicas() int { return len(s.replicas) }

// SetUp marks replica i as up or down (failure injection).
func (s *Store) SetUp(i int, up bool) {
	r := s.replicas[i]
	r.mu.Lock()
	r.up = up
	r.mu.Unlock()
}

// UpCount reports how many replicas are currently up.
func (s *Store) UpCount() int {
	n := 0
	for _, r := range s.replicas {
		r.mu.Lock()
		if r.up {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// ErrQuorum is returned when too few replicas acknowledge an
// operation.
type ErrQuorum struct {
	Op   string
	Got  int
	Need int
}

// Error implements error.
func (e ErrQuorum) Error() string {
	return fmt.Sprintf("kvstore: %s quorum not reached (%d/%d)", e.Op, e.Got, e.Need)
}

// Put writes key=value to a write quorum. The write targets every
// replica but succeeds once W acknowledge.
func (s *Store) Put(key, value string) error {
	return s.write(key, value, false)
}

// Delete removes a key via a tombstone write.
func (s *Store) Delete(key string) error {
	return s.write(key, "", true)
}

// write replicates a versioned value, succeeding once W replicas
// acknowledge. A write that misses its quorum must be invisible to
// later reads — the failure contract is "this did not happen", not
// "this happened on whichever replicas were reachable" — so each
// replica stages the value and the coordinator rolls every staged copy
// back when the quorum falls short. s.mu is held across the whole
// operation: writes serialize (they already shared the logical clock),
// and no competing write can interleave with a rollback.
func (s *Store) write(key, value string, tombstone bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	v := Versioned{Value: value, Version: s.clock, Tombstone: tombstone}

	type stagedWrite struct {
		r   *replica
		old Versioned
		had bool
	}
	var staged []stagedWrite
	for _, r := range s.replicas {
		if old, had, ok := r.stage(key, v); ok {
			staged = append(staged, stagedWrite{r, old, had})
		}
	}
	if len(staged) < s.writeQ {
		for _, st := range staged {
			st.r.unstage(key, v, st.old, st.had)
		}
		return ErrQuorum{Op: "write", Got: len(staged), Need: s.writeQ}
	}
	return nil
}

// Get reads key from a read quorum and returns the freshest version.
// ok is false when the key is absent (or deleted).
func (s *Store) Get(key string) (value string, ok bool, err error) {
	responses := 0
	var best Versioned
	found := false
	for _, r := range s.replicas {
		v, has, alive := r.get(key)
		if !alive {
			continue
		}
		responses++
		if has && (!found || v.Version > best.Version) {
			best = v
			found = true
		}
	}
	if responses < s.readQ {
		return "", false, ErrQuorum{Op: "read", Got: responses, Need: s.readQ}
	}
	if !found || best.Tombstone {
		return "", false, nil
	}
	return best.Value, true, nil
}

// Keys returns all live keys visible to a read quorum, sorted.
func (s *Store) Keys() ([]string, error) {
	responses := 0
	merged := map[string]Versioned{}
	for _, r := range s.replicas {
		r.mu.Lock()
		if !r.up {
			r.mu.Unlock()
			continue
		}
		responses++
		for k, v := range r.data {
			if cur, ok := merged[k]; !ok || v.Version > cur.Version {
				merged[k] = v
			}
		}
		r.mu.Unlock()
	}
	if responses < s.readQ {
		return nil, ErrQuorum{Op: "read", Got: responses, Need: s.readQ}
	}
	var keys []string
	for k, v := range merged {
		if !v.Tombstone {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Repair copies the freshest version of every key to all live
// replicas (anti-entropy), healing replicas that were down during
// writes.
func (s *Store) Repair() {
	merged := map[string]Versioned{}
	for _, r := range s.replicas {
		r.mu.Lock()
		if r.up {
			for k, v := range r.data {
				if cur, ok := merged[k]; !ok || v.Version > cur.Version {
					merged[k] = v
				}
			}
		}
		r.mu.Unlock()
	}
	for k, v := range merged {
		for _, r := range s.replicas {
			r.put(k, v)
		}
	}
}
