package trace

import (
	"testing"
	"testing/quick"
	"time"
)

func assertSortedByTime(t *testing.T, reqs []Request) {
	t.Helper()
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At < reqs[i-1].At {
			t.Fatalf("requests out of order at %d: %v after %v", i, reqs[i].At, reqs[i-1].At)
		}
	}
}

func TestSerial(t *testing.T) {
	p := Serial{Interval: 30 * time.Second, Count: 5, Class: 3}
	reqs := p.Generate()
	if len(reqs) != 5 {
		t.Fatalf("len = %d", len(reqs))
	}
	for i, r := range reqs {
		if r.At != time.Duration(i)*30*time.Second {
			t.Fatalf("req %d at %v", i, r.At)
		}
		if r.Class != 3 || r.Round != i {
			t.Fatalf("req %d class/round = %d/%d", i, r.Class, r.Round)
		}
	}
	assertSortedByTime(t, reqs)
}

func TestParallelPerThreadClasses(t *testing.T) {
	p := Parallel{Threads: 10, Interval: time.Second, Rounds: 3}
	reqs := p.Generate()
	if len(reqs) != 30 {
		t.Fatalf("len = %d", len(reqs))
	}
	classes := map[int]int{}
	for _, r := range reqs {
		classes[r.Class]++
	}
	if len(classes) != 10 {
		t.Fatalf("distinct classes = %d, want 10", len(classes))
	}
	for c, n := range classes {
		if n != 3 {
			t.Fatalf("class %d has %d requests, want 3", c, n)
		}
	}
	assertSortedByTime(t, reqs)
}

func TestLinearIncreasing(t *testing.T) {
	p := Linear{Start: 2, Step: 2, Rounds: 4, Interval: 30 * time.Second}
	counts := CountPerRound(p.Generate())
	want := []float64{2, 4, 6, 8}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("round %d = %v, want %v", i, counts[i], want[i])
		}
	}
}

func TestLinearDecreasingStopsAtZero(t *testing.T) {
	p := Linear{Start: 6, Step: -2, Rounds: 6, Interval: time.Second}
	reqs := p.Generate()
	counts := CountPerRound(reqs)
	want := []float64{6, 4, 2} // rounds 3+ have zero requests and vanish
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("round %d = %v, want %v", i, counts[i], want[i])
		}
	}
	for _, r := range reqs {
		if r.Round > 2 {
			t.Fatalf("round %d should have no requests", r.Round)
		}
	}
}

func TestExponentialIncreasing(t *testing.T) {
	p := Exponential{Rounds: 5, Interval: time.Second}
	counts := CountPerRound(p.Generate())
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("round %d = %v, want %v", i, counts[i], want[i])
		}
	}
}

func TestExponentialDecreasing(t *testing.T) {
	p := Exponential{Rounds: 4, Interval: time.Second, Decreasing: true}
	counts := CountPerRound(p.Generate())
	want := []float64{8, 4, 2, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("round %d = %v, want %v", i, counts[i], want[i])
		}
	}
}

// Fig. 14(b): eight requests per round, 10x at rounds 4, 8, 12, 16.
func TestBurstPattern(t *testing.T) {
	p := Burst{Base: 8, Factor: 10, BurstRounds: []int{4, 8, 12, 16}, Rounds: 18, Interval: time.Second}
	counts := CountPerRound(p.Generate())
	for r, c := range counts {
		want := 8.0
		if r == 4 || r == 8 || r == 12 || r == 16 {
			want = 80
		}
		if c != want {
			t.Fatalf("round %d = %v, want %v", r, c, want)
		}
	}
}

// Fig. 11: the envelope must show the three phenomena the paper calls
// out.
func TestCampusEnvelopeShape(t *testing.T) {
	// Burst at T710: from ~20 at T700 to ~300 at T710.
	if v := CampusEnvelope(700); v < 15 || v > 30 {
		t.Fatalf("envelope(700) = %v, want ~20", v)
	}
	if v := CampusEnvelope(710); v < 280 {
		t.Fatalf("envelope(710) = %v, want ~300", v)
	}
	// Afternoon decline T800 -> T1200.
	if !(CampusEnvelope(800) > CampusEnvelope(1000) && CampusEnvelope(1000) > CampusEnvelope(1199)) {
		t.Fatal("envelope should decline from T800 to T1200")
	}
	// Evening rise T1200 -> T1400.
	if !(CampusEnvelope(1200) < CampusEnvelope(1300) && CampusEnvelope(1300) < CampusEnvelope(1400)) {
		t.Fatal("envelope should rise from T1200 to T1400")
	}
	// Periodic wrap.
	if CampusEnvelope(0) != CampusEnvelope(1440) {
		t.Fatal("envelope should wrap at midnight")
	}
}

func TestCampusGenerate(t *testing.T) {
	c := Campus{Seed: 1, Scale: 10, Minutes: 120, Classes: 3}
	reqs := c.Generate()
	if len(reqs) == 0 {
		t.Fatal("empty campus trace")
	}
	assertSortedByTime(t, reqs)
	for _, r := range reqs {
		if r.At >= 120*time.Minute {
			t.Fatalf("request beyond trace length: %v", r.At)
		}
		if r.Class < 0 || r.Class >= 3 {
			t.Fatalf("class out of range: %d", r.Class)
		}
	}
	// Deterministic for a seed.
	again := Campus{Seed: 1, Scale: 10, Minutes: 120, Classes: 3}.Generate()
	if len(again) != len(reqs) {
		t.Fatal("campus trace not deterministic")
	}
	for i := range reqs {
		if reqs[i] != again[i] {
			t.Fatalf("campus trace differs at %d", i)
		}
	}
}

func TestCampusBurstVisibleInCounts(t *testing.T) {
	c := Campus{Seed: 7, Scale: 1, Minutes: 720}
	counts := CountPerRound(c.Generate())
	if len(counts) < 711 {
		t.Fatalf("trace too short: %d minutes", len(counts))
	}
	// The burst minute should carry roughly 10x the pre-burst rate.
	pre := counts[695]
	burst := counts[710]
	if burst < 4*pre {
		t.Fatalf("burst not visible: pre=%v burst=%v", pre, burst)
	}
}

func TestPoisson(t *testing.T) {
	p := Poisson{Seed: 3, RatePerSec: 5, Length: 100 * time.Second, Classes: 2}
	reqs := p.Generate()
	assertSortedByTime(t, reqs)
	// ~500 expected; allow generous slack.
	if len(reqs) < 350 || len(reqs) > 650 {
		t.Fatalf("poisson count = %d, want ~500", len(reqs))
	}
	for _, r := range reqs {
		if r.At >= 100*time.Second {
			t.Fatalf("arrival beyond length: %v", r.At)
		}
	}
}

func TestPoissonDegenerate(t *testing.T) {
	if reqs := (Poisson{RatePerSec: 0, Length: time.Minute}).Generate(); reqs != nil {
		t.Fatal("zero-rate poisson should be empty")
	}
	if reqs := (Poisson{RatePerSec: 5, Length: 0}).Generate(); reqs != nil {
		t.Fatal("zero-length poisson should be empty")
	}
}

func TestScheduleStats(t *testing.T) {
	reqs := Parallel{Threads: 3, Interval: 10 * time.Second, Rounds: 4}.Generate()
	st := Stats(reqs)
	if st.Requests != 12 || st.Classes != 3 || st.PeakPerRound != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Span != 30*time.Second {
		t.Fatalf("span = %v", st.Span)
	}
	if st.MeanRatePerSec != 12.0/30 {
		t.Fatalf("rate = %v", st.MeanRatePerSec)
	}
	if st.MeanIAT != 30*time.Second/11 {
		t.Fatalf("mean IAT = %v", st.MeanIAT)
	}
}

func TestScheduleStatsDegenerate(t *testing.T) {
	if st := Stats(nil); st.Requests != 0 || st.MeanRatePerSec != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	one := Stats([]Request{{At: time.Second}})
	if one.Requests != 1 || one.Span != 0 || one.MeanIAT != 0 {
		t.Fatalf("single stats = %+v", one)
	}
	// Simultaneous arrivals: zero span, rate left at 0.
	same := Stats([]Request{{At: 0}, {At: 0}})
	if same.MeanRatePerSec != 0 {
		t.Fatalf("zero-span rate = %v", same.MeanRatePerSec)
	}
}

func TestCountPerRoundEmpty(t *testing.T) {
	if got := CountPerRound(nil); len(got) != 0 {
		t.Fatalf("CountPerRound(nil) = %v", got)
	}
}

func TestNames(t *testing.T) {
	pats := []Pattern{
		Serial{Interval: time.Second},
		Parallel{Threads: 2},
		Linear{Step: 2},
		Linear{Step: -2},
		Exponential{},
		Exponential{Decreasing: true},
		Burst{Factor: 10},
		Campus{},
		Poisson{RatePerSec: 1},
	}
	seen := map[string]bool{}
	for _, p := range pats {
		n := p.Name()
		if n == "" {
			t.Fatal("empty pattern name")
		}
		if seen[n] {
			t.Fatalf("duplicate pattern name %q", n)
		}
		seen[n] = true
	}
}

// Property: every generated schedule is time-sorted with non-negative
// arrival times and rounds.
func TestPropertySchedulesSane(t *testing.T) {
	f := func(kind uint8, a, b uint8) bool {
		var p Pattern
		switch kind % 6 {
		case 0:
			p = Serial{Interval: time.Duration(a%30+1) * time.Second, Count: int(b % 50)}
		case 1:
			p = Parallel{Threads: int(a%10) + 1, Interval: time.Second, Rounds: int(b % 20)}
		case 2:
			p = Linear{Start: int(a % 10), Step: int(b%7) - 3, Rounds: 10, Interval: time.Second}
		case 3:
			p = Exponential{Rounds: int(a%8) + 1, Interval: time.Second, Decreasing: b%2 == 0}
		case 4:
			p = Burst{Base: int(a%10) + 1, Factor: int(b%10) + 1, BurstRounds: []int{2}, Rounds: 6, Interval: time.Second}
		default:
			p = Poisson{Seed: int64(a), RatePerSec: float64(b%20) + 0.5, Length: 10 * time.Second}
		}
		reqs := p.Generate()
		for i, r := range reqs {
			if r.At < 0 || r.Round < 0 || r.Class < 0 {
				return false
			}
			if i > 0 && r.At < reqs[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
