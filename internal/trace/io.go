package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the schedule file column layout.
var csvHeader = []string{"at_ms", "class", "round"}

// WriteCSV writes a request schedule as CSV with an "at_ms,class,round"
// header, so real traces can be exported, edited and replayed.
func WriteCSV(w io.Writer, reqs []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i, r := range reqs {
		rec := []string{
			strconv.FormatFloat(float64(r.At)/float64(time.Millisecond), 'f', 3, 64),
			strconv.Itoa(r.Class),
			strconv.Itoa(r.Round),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a schedule written by WriteCSV (or hand-authored with
// the same header). Rows must carry non-negative times, classes and
// rounds; the result is sorted by arrival time, preserving file order
// for equal timestamps.
func ReadCSV(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: bad header %v, want %v", header, csvHeader)
		}
	}
	var reqs []Request
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		atMS, err := strconv.ParseFloat(rec[0], 64)
		if err != nil || atMS < 0 {
			return nil, fmt.Errorf("trace: line %d: bad at_ms %q", line, rec[0])
		}
		class, err := strconv.Atoi(rec[1])
		if err != nil || class < 0 {
			return nil, fmt.Errorf("trace: line %d: bad class %q", line, rec[1])
		}
		round, err := strconv.Atoi(rec[2])
		if err != nil || round < 0 {
			return nil, fmt.Errorf("trace: line %d: bad round %q", line, rec[2])
		}
		reqs = append(reqs, Request{
			At:    time.Duration(atMS * float64(time.Millisecond)),
			Class: class,
			Round: round,
		})
	}
	sortByTime(reqs)
	return reqs, nil
}

// faultEventLine is the JSONL wire shape of a FaultEvent. Times travel
// as integer nanoseconds so round trips are exact.
type faultEventLine struct {
	AtNs   int64  `json:"atNs"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// WriteFaultEvents writes fault events as JSONL, one event per line,
// so chaos runs can stream their resilience annotations to disk for
// offline analysis.
func WriteFaultEvents(w io.Writer, events []FaultEvent) error {
	enc := json.NewEncoder(w)
	for i, ev := range events {
		if err := enc.Encode(faultEventLine{
			AtNs:   int64(ev.At),
			Kind:   ev.Kind,
			Detail: ev.Detail,
		}); err != nil {
			return fmt.Errorf("trace: writing fault event %d: %w", i, err)
		}
	}
	return nil
}

// ReadFaultEvents parses a JSONL fault-event stream written by
// WriteFaultEvents. Every line must carry a non-empty kind and a
// non-negative timestamp.
func ReadFaultEvents(r io.Reader) ([]FaultEvent, error) {
	dec := json.NewDecoder(r)
	var events []FaultEvent
	for line := 1; ; line++ {
		var fl faultEventLine
		if err := dec.Decode(&fl); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: fault event line %d: %w", line, err)
		}
		if fl.Kind == "" {
			return nil, fmt.Errorf("trace: fault event line %d: empty kind", line)
		}
		if fl.AtNs < 0 {
			return nil, fmt.Errorf("trace: fault event line %d: negative timestamp %d", line, fl.AtNs)
		}
		events = append(events, FaultEvent{
			At:     time.Duration(fl.AtNs),
			Kind:   fl.Kind,
			Detail: fl.Detail,
		})
	}
	return events, nil
}
