package trace

import "time"

// FaultEvent annotates one resilience event observed while a request
// was being served: an acquire retry, a circuit-breaker transition, a
// quarantined container, or a fallback cold start. The gateway attaches
// these to each request's Result so chaos experiments can attribute
// tail latency to the specific recovery actions that produced it.
type FaultEvent struct {
	// At is the virtual time the event occurred.
	At time.Duration
	// Kind classifies the event: "acquire-retry", "exec-fallback",
	// "quarantine", "breaker-open", "breaker-close", "degraded-cold".
	Kind string
	// Detail carries event-specific context (error text, container ID).
	Detail string
}
