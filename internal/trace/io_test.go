package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Burst{Base: 3, Factor: 5, BurstRounds: []int{1}, Rounds: 3, Interval: 30 * time.Second}.Generate()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("len = %d, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("row %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestCSVEmptySchedule(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("len = %d", len(back))
	}
}

func TestReadCSVSortsByTime(t *testing.T) {
	in := "at_ms,class,round\n2000.000,0,1\n1000.000,1,0\n"
	reqs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].At != time.Second || reqs[1].At != 2*time.Second {
		t.Fatalf("not sorted: %+v", reqs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                 // no header
		"x,y,z\n",                          // wrong header
		"at_ms,class,round\nnope,0,0\n",    // bad time
		"at_ms,class,round\n-5,0,0\n",      // negative time
		"at_ms,class,round\n1,zero,0\n",    // bad class
		"at_ms,class,round\n1,-1,0\n",      // negative class
		"at_ms,class,round\n1,0,bad\n",     // bad round
		"at_ms,class,round\n1,0,-2\n",      // negative round
		"at_ms,class,round\n1,0\n",         // wrong field count
		"at_ms,class,round\n1,0,0,extra\n", // wrong field count
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

// Property: any generated schedule survives a CSV round trip exactly
// (times have sub-millisecond precision in the patterns used here).
func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(n uint8, interval uint8, classes uint8) bool {
		p := Parallel{
			Threads:  int(classes%5) + 1,
			Interval: time.Duration(interval%60+1) * time.Second,
			Rounds:   int(n % 20),
		}
		orig := p.Generate()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, orig); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(orig) {
			return false
		}
		for i := range orig {
			if back[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultEventsRoundTrip(t *testing.T) {
	orig := []FaultEvent{
		{At: 0, Kind: "acquire-retry", Detail: "create failed: injected"},
		{At: 1500 * time.Millisecond, Kind: "breaker-open"},
		{At: 2 * time.Minute, Kind: "quarantine", Detail: "container c-42"},
		{At: 3 * time.Minute, Kind: "degraded-cold", Detail: `quote " and newline
inside`},
	}
	var buf bytes.Buffer
	if err := WriteFaultEvents(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(orig) {
		t.Fatalf("wrote %d lines, want %d", got, len(orig))
	}
	back, err := ReadFaultEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("read %d events, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, back[i], orig[i])
		}
	}
}

func TestFaultEventsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFaultEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty stream wrote %q", buf.String())
	}
	back, err := ReadFaultEvents(&buf)
	if err != nil || back != nil {
		t.Fatalf("ReadFaultEvents(empty) = %v, %v", back, err)
	}
}

func TestFaultEventsValidation(t *testing.T) {
	cases := map[string]string{
		"empty kind":   `{"atNs":10,"kind":""}`,
		"missing kind": `{"atNs":10}`,
		"negative at":  `{"atNs":-1,"kind":"quarantine"}`,
		"not json":     `at=10 kind=quarantine`,
	}
	for name, line := range cases {
		if _, err := ReadFaultEvents(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: ReadFaultEvents accepted %q", name, line)
		}
	}
}
