// Package trace generates the request patterns the paper evaluates
// HotC under (§V.D): serial and parallel flows, linear and exponential
// increase/decrease, request bursts, and a synthetic reconstruction of
// the UMass campus YouTube trace of Fig. 11 with its three
// representative phenomena — the morning burst at T710 (20 -> 300
// requests), the afternoon decline from T800 to T1200, and the evening
// rise from T1200 to T1400.
package trace

import (
	"fmt"
	"time"

	"hotc/internal/rng"
)

// Request is one client request arrival.
type Request struct {
	// At is the arrival time relative to the start of the experiment.
	At time.Duration
	// Class selects which runtime configuration / function the request
	// targets; patterns with a single configuration use class 0.
	Class int
	// Round is the generation round the request belongs to (used by
	// the figure renderers to group latencies per round).
	Round int
}

// Pattern produces a deterministic request schedule.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Generate returns the schedule ordered by arrival time.
	Generate() []Request
}

// Serial emits one request per interval from a single client thread —
// the Fig. 12(a) workload ("a single thread application sending the
// same request to the backends every 30 seconds").
type Serial struct {
	// Interval between consecutive requests.
	Interval time.Duration
	// Count is the number of requests.
	Count int
	// Class is the runtime class of every request.
	Class int
}

// Name implements Pattern.
func (s Serial) Name() string { return fmt.Sprintf("serial(every %v)", s.Interval) }

// Generate implements Pattern.
func (s Serial) Generate() []Request {
	reqs := make([]Request, 0, s.Count)
	for i := 0; i < s.Count; i++ {
		reqs = append(reqs, Request{At: time.Duration(i) * s.Interval, Class: s.Class, Round: i})
	}
	return reqs
}

// Parallel emits requests from several client threads, each with its
// own runtime configuration — the Fig. 12(b) workload ("Ten threads at
// the client keep sending requests to the backend and each thread has
// its own runtime configuration").
type Parallel struct {
	// Threads is the number of concurrent client threads; thread i
	// sends class-i requests.
	Threads int
	// Interval between a thread's consecutive requests.
	Interval time.Duration
	// Rounds is the number of requests each thread sends.
	Rounds int
}

// Name implements Pattern.
func (p Parallel) Name() string { return fmt.Sprintf("parallel(%d threads)", p.Threads) }

// Generate implements Pattern.
func (p Parallel) Generate() []Request {
	reqs := make([]Request, 0, p.Threads*p.Rounds)
	for r := 0; r < p.Rounds; r++ {
		at := time.Duration(r) * p.Interval
		for th := 0; th < p.Threads; th++ {
			reqs = append(reqs, Request{At: at, Class: th, Round: r})
		}
	}
	return reqs
}

// Linear emits rounds of simultaneous requests whose count changes by
// Step each round — the Fig. 13 workloads ("the clients sent two
// requests to the backend at the beginning, and every 30 seconds, the
// requests increased by two"; the decreasing case mirrors it).
type Linear struct {
	// Start is the request count of round 0.
	Start int
	// Step is added each round (negative for the decreasing case).
	Step int
	// Rounds is the number of rounds.
	Rounds int
	// Interval between rounds.
	Interval time.Duration
}

// Name implements Pattern.
func (l Linear) Name() string {
	if l.Step >= 0 {
		return fmt.Sprintf("linear-increasing(+%d/round)", l.Step)
	}
	return fmt.Sprintf("linear-decreasing(%d/round)", l.Step)
}

// Generate implements Pattern.
func (l Linear) Generate() []Request {
	var reqs []Request
	for r := 0; r < l.Rounds; r++ {
		n := l.Start + r*l.Step
		if n <= 0 {
			continue
		}
		at := time.Duration(r) * l.Interval
		for i := 0; i < n; i++ {
			reqs = append(reqs, Request{At: at, Class: 0, Round: r})
		}
	}
	return reqs
}

// Exponential emits 2^i (or 2^(Rounds-1-i) when decreasing) requests
// at round i — the Fig. 14(a) workload ("we changed the number of
// requests to 2^i at round i").
type Exponential struct {
	// Rounds is the number of rounds; the largest round has
	// 2^(Rounds-1) requests.
	Rounds int
	// Interval between rounds.
	Interval time.Duration
	// Decreasing reverses the round sizes.
	Decreasing bool
}

// Name implements Pattern.
func (e Exponential) Name() string {
	if e.Decreasing {
		return "exponential-decreasing"
	}
	return "exponential-increasing"
}

// Generate implements Pattern.
func (e Exponential) Generate() []Request {
	var reqs []Request
	for r := 0; r < e.Rounds; r++ {
		exp := r
		if e.Decreasing {
			exp = e.Rounds - 1 - r
		}
		n := 1 << uint(exp)
		at := time.Duration(r) * e.Interval
		for i := 0; i < n; i++ {
			reqs = append(reqs, Request{At: at, Class: 0, Round: r})
		}
	}
	return reqs
}

// Burst emits a steady Base requests per round, multiplied by Factor
// during the designated burst rounds — the Fig. 14(b) workload ("The
// client keeps sending eight requests each time and increases the
// throughput by 10x at the 4th, 8th, 12th, 16th round").
type Burst struct {
	// Base requests per normal round.
	Base int
	// Factor multiplies Base during burst rounds.
	Factor int
	// BurstRounds lists the 0-indexed rounds that burst.
	BurstRounds []int
	// Rounds is the total number of rounds.
	Rounds int
	// Interval between rounds.
	Interval time.Duration
}

// Name implements Pattern.
func (b Burst) Name() string { return fmt.Sprintf("burst(x%d)", b.Factor) }

// Generate implements Pattern.
func (b Burst) Generate() []Request {
	bursts := make(map[int]bool, len(b.BurstRounds))
	for _, r := range b.BurstRounds {
		bursts[r] = true
	}
	var reqs []Request
	for r := 0; r < b.Rounds; r++ {
		n := b.Base
		if bursts[r] {
			n *= b.Factor
		}
		at := time.Duration(r) * b.Interval
		for i := 0; i < n; i++ {
			reqs = append(reqs, Request{At: at, Class: 0, Round: r})
		}
	}
	return reqs
}

// CampusEnvelope returns the expected request rate (requests per
// minute) of the synthetic campus YouTube trace at the given minute of
// the day [0, 1440). The shape encodes the paper's three Fig. 11
// observations: the T710 burst from 20 to 300, the T800–T1200 decline,
// and the T1200–T1400 evening rise.
func CampusEnvelope(minute int) float64 {
	m := float64(minute % 1440)
	switch {
	case m < 400: // after midnight: tail traffic decaying
		return lerp(60, 15, m/400)
	case m < 700: // early morning: quiet
		return lerp(15, 20, (m-400)/300)
	case m < 710: // the burst front: 20 -> 300 in ten minutes
		return lerp(20, 300, (m-700)/10)
	case m < 800: // burst plateau settling
		return lerp(300, 280, (m-710)/90)
	case m < 1200: // afternoon decline
		return lerp(280, 80, (m-800)/400)
	case m < 1400: // evening rise
		return lerp(80, 240, (m-1200)/200)
	default: // towards midnight
		return lerp(240, 180, (m-1400)/40)
	}
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Campus synthesises a day of Fig. 11 traffic: per-minute request
// counts drawn from a Poisson distribution around the envelope,
// optionally scaled down for tractable simulation.
type Campus struct {
	// Seed drives the Poisson noise.
	Seed int64
	// Scale divides the envelope (Scale 10 means one simulated request
	// per ten trace requests). Zero means no scaling.
	Scale float64
	// Minutes is the trace length; zero means a full day (1440).
	Minutes int
	// Classes spreads requests round-robin over this many runtime
	// classes; zero means a single class.
	Classes int
}

// Name implements Pattern.
func (c Campus) Name() string { return "campus-youtube-diurnal" }

// Generate implements Pattern.
func (c Campus) Generate() []Request {
	src := rng.New(c.Seed)
	minutes := c.Minutes
	if minutes <= 0 {
		minutes = 1440
	}
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	classes := c.Classes
	if classes <= 0 {
		classes = 1
	}
	var reqs []Request
	seq := 0
	for m := 0; m < minutes; m++ {
		mean := CampusEnvelope(m) / scale
		n := src.Poisson(mean)
		for i := 0; i < n; i++ {
			// Spread the minute's arrivals uniformly across it.
			off := time.Duration(src.Float64() * float64(time.Minute))
			reqs = append(reqs, Request{
				At:    time.Duration(m)*time.Minute + off,
				Class: seq % classes,
				Round: m,
			})
			seq++
		}
	}
	sortByTime(reqs)
	return reqs
}

// Poisson emits requests with exponential inter-arrival times at the
// given rate — the open-loop baseline workload.
type Poisson struct {
	// Seed drives arrivals.
	Seed int64
	// RatePerSec is the mean arrival rate.
	RatePerSec float64
	// Length is the schedule duration.
	Length time.Duration
	// Classes spreads requests over this many classes by round-robin;
	// zero means one class.
	Classes int
}

// Name implements Pattern.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%.1f/s)", p.RatePerSec) }

// Generate implements Pattern.
func (p Poisson) Generate() []Request {
	if p.RatePerSec <= 0 || p.Length <= 0 {
		return nil
	}
	src := rng.New(p.Seed)
	classes := p.Classes
	if classes <= 0 {
		classes = 1
	}
	var reqs []Request
	t := time.Duration(0)
	i := 0
	for {
		gap := time.Duration(src.Exp(1/p.RatePerSec) * float64(time.Second))
		t += gap
		if t >= p.Length {
			break
		}
		reqs = append(reqs, Request{At: t, Class: i % classes, Round: int(t / time.Second)})
		i++
	}
	return reqs
}

// sortByTime sorts requests by arrival, stable on generation order.
func sortByTime(reqs []Request) {
	// Insertion-friendly: requests are nearly sorted (per-minute
	// generation), so a simple stable sort suffices.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].At < reqs[j-1].At; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
}

// ScheduleStats summarises a request schedule.
type ScheduleStats struct {
	// Requests is the schedule length.
	Requests int
	// Span is the time from first to last arrival.
	Span time.Duration
	// MeanRatePerSec is Requests over Span (0 for degenerate spans).
	MeanRatePerSec float64
	// Classes counts distinct request classes.
	Classes int
	// PeakPerRound is the largest per-round request count.
	PeakPerRound int
	// MeanIAT is the mean inter-arrival time.
	MeanIAT time.Duration
}

// Stats computes summary statistics of a schedule (assumed
// time-sorted, as all generators produce).
func Stats(reqs []Request) ScheduleStats {
	st := ScheduleStats{Requests: len(reqs)}
	if len(reqs) == 0 {
		return st
	}
	classes := map[int]bool{}
	for _, r := range reqs {
		classes[r.Class] = true
	}
	st.Classes = len(classes)
	st.Span = reqs[len(reqs)-1].At - reqs[0].At
	if st.Span > 0 {
		st.MeanRatePerSec = float64(len(reqs)) / st.Span.Seconds()
	}
	if len(reqs) > 1 {
		st.MeanIAT = st.Span / time.Duration(len(reqs)-1)
	}
	for _, c := range CountPerRound(reqs) {
		if int(c) > st.PeakPerRound {
			st.PeakPerRound = int(c)
		}
	}
	return st
}

// CountPerRound aggregates a schedule into per-round request counts,
// the demand series the predictor experiments consume.
func CountPerRound(reqs []Request) []float64 {
	maxRound := -1
	for _, r := range reqs {
		if r.Round > maxRound {
			maxRound = r.Round
		}
	}
	counts := make([]float64, maxRound+1)
	for _, r := range reqs {
		counts[r.Round]++
	}
	return counts
}
