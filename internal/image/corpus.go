package image

import (
	"fmt"
	"sort"
	"strings"

	"hotc/internal/rng"
)

// CorpusEntry is one synthetic GitHub project in the Fig. 2 survey: a
// Dockerfile plus a popularity weight (stars).
type CorpusEntry struct {
	// Project is a synthetic project slug.
	Project string
	// Stars is the popularity weight used to select the "top 100".
	Stars int
	// File is the parsed Dockerfile.
	File *Dockerfile
}

// Corpus is a collection of synthetic projects with Dockerfiles.
type Corpus struct {
	Entries []CorpusEntry
}

// baseImagePool is the pool the generator draws from, ordered by
// real-world popularity: surveys of GitHub Dockerfiles consistently
// find ubuntu/alpine/node/python/golang/openjdk/nginx dominating, the
// concentration the paper's Fig. 2(a) reports.
var baseImagePool = []struct {
	ref      string
	category Category
}{
	{"ubuntu:16.04", OS},
	{"alpine:3.9", OS},
	{"node:10", Language},
	{"python:3.8", Language},
	{"golang:1.12", Language},
	{"openjdk:8", Language},
	{"nginx:1.15", Application},
	{"debian:stretch", OS},
	{"python:3.8-alpine", Language},
	{"redis:5", Application},
	{"busybox:1.30", OS},
	{"mysql:5.7", Application},
	{"httpd:2.4", Application},
	{"ruby:2.6", Language},
	{"postgres:11", Application},
	{"centos:7", OS},
	{"mongo:4", Application},
	{"cassandra:3.11", Application},
	{"tensorflow:1.13", Application},
	{"couchbase:6", Application},
	{"rabbitmq:3", Application},
	{"memcached:1.5", Application},
	{"php:7.2", Language},
	{"elixir:1.8", Language},
	{"erlang:21", Language},
	{"haskell:8.6", Language},
	{"rust:1.33", Language},
	{"perl:5.28", Language},
	{"fedora:29", OS},
	{"opensuse:15", OS},
}

// GenerateCorpus synthesises n projects whose base-image choices follow
// a Zipf distribution over the popularity-ordered pool, reproducing
// the concentration in Fig. 2(a). The generator is deterministic for a
// given rng source.
func GenerateCorpus(src *rng.Source, n int) (*Corpus, error) {
	if n <= 0 {
		return nil, fmt.Errorf("image: corpus size must be positive, got %d", n)
	}
	z := src.Zipf(1.6, uint64(len(baseImagePool)))
	c := &Corpus{Entries: make([]CorpusEntry, 0, n)}
	for i := 0; i < n; i++ {
		pick := baseImagePool[z.Next()]
		text := synthesizeDockerfile(src, pick.ref, pick.category)
		df, err := ParseDockerfile(text)
		if err != nil {
			return nil, fmt.Errorf("image: synthesised dockerfile invalid: %w", err)
		}
		c.Entries = append(c.Entries, CorpusEntry{
			Project: fmt.Sprintf("project-%05d", i),
			// Popularity follows a heavy tail too: a few projects have
			// most of the stars.
			Stars: int(src.Exp(120)) + src.Intn(30),
			File:  df,
		})
	}
	return c, nil
}

func synthesizeDockerfile(src *rng.Source, base string, cat Category) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# synthetic project dockerfile\nFROM %s\n", base)
	switch cat {
	case OS:
		b.WriteString("RUN apt-get update && \\\n    apt-get install -y curl\n")
	case Language:
		b.WriteString("WORKDIR /app\nCOPY . /app\nRUN make deps\n")
	case Application:
		b.WriteString("COPY conf/ /etc/app/\n")
	}
	if src.Bernoulli(0.6) {
		fmt.Fprintf(&b, "ENV APP_ENV=prod\n")
	}
	if src.Bernoulli(0.4) {
		fmt.Fprintf(&b, "EXPOSE %d\n", 8000+src.Intn(1000))
	}
	if src.Bernoulli(0.25) {
		b.WriteString("VOLUME /data\n")
	}
	if src.Bernoulli(0.3) {
		b.WriteString("LABEL maintainer=synthetic\n")
	}
	b.WriteString("CMD [\"./run\"]\n")
	return b.String()
}

// ImageShare is one row of the Fig. 2(a) popularity table.
type ImageShare struct {
	// Base is the base-image repository name.
	Base string
	// Count is the number of projects using it.
	Count int
	// Share is Count over the corpus size.
	Share float64
}

// PopularityStats is the Fig. 2(a) analysis output.
type PopularityStats struct {
	// Total is the number of projects analysed.
	Total int
	// Shares lists base images by descending usage.
	Shares []ImageShare
	// TopShare(k) convenience values for the figure.
	Top5Share, Top10Share float64
}

// Popularity computes base-image usage shares over the given entries.
func (c *Corpus) Popularity(entries []CorpusEntry) PopularityStats {
	counts := map[string]int{}
	for _, e := range entries {
		counts[e.File.BaseName()]++
	}
	st := PopularityStats{Total: len(entries)}
	for base, n := range counts {
		st.Shares = append(st.Shares, ImageShare{Base: base, Count: n, Share: float64(n) / float64(len(entries))})
	}
	sort.Slice(st.Shares, func(i, j int) bool {
		if st.Shares[i].Count != st.Shares[j].Count {
			return st.Shares[i].Count > st.Shares[j].Count
		}
		return st.Shares[i].Base < st.Shares[j].Base
	})
	for i, s := range st.Shares {
		if i < 5 {
			st.Top5Share += s.Share
		}
		if i < 10 {
			st.Top10Share += s.Share
		}
	}
	return st
}

// All returns every corpus entry.
func (c *Corpus) All() []CorpusEntry { return c.Entries }

// TopByStars returns the k most-starred projects (the paper's "top 100
// popular" slice of Fig. 2(a)).
func (c *Corpus) TopByStars(k int) []CorpusEntry {
	sorted := append([]CorpusEntry(nil), c.Entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Stars != sorted[j].Stars {
			return sorted[i].Stars > sorted[j].Stars
		}
		return sorted[i].Project < sorted[j].Project
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// CategoryShares is the Fig. 2(b) analysis: the fraction of projects
// whose base image is an OS, language or application image.
type CategoryShares struct {
	OS, Language, Application float64
}

// Categories computes the Fig. 2(b) category breakdown. Base images
// not present in the catalog are counted by best-effort name matching.
func (c *Corpus) Categories(entries []CorpusEntry) CategoryShares {
	if len(entries) == 0 {
		return CategoryShares{}
	}
	lookup := map[string]Category{}
	for _, p := range baseImagePool {
		name, _ := ParseRef(p.ref)
		lookup[name] = p.category
	}
	var counts [3]int
	for _, e := range entries {
		cat, ok := lookup[e.File.BaseName()]
		if !ok {
			cat = Application
		}
		counts[cat]++
	}
	n := float64(len(entries))
	return CategoryShares{
		OS:          float64(counts[OS]) / n,
		Language:    float64(counts[Language]) / n,
		Application: float64(counts[Application]) / n,
	}
}
