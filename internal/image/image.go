// Package image models container images as stacks of content-addressed
// layers, a registry to pull from, and a per-host layer cache. The
// pull/unpack cost of the uncached layers is the image-download part of
// cold start that §III.B attributes most of the container start time
// to (Harter et al., Alibaba's findings).
//
// The package also contains a Dockerfile parser and a synthetic corpus
// generator used to reproduce the paper's Fig. 2 study of base-image
// popularity across GitHub projects.
package image

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Layer is one content-addressed image layer.
type Layer struct {
	// ID is the layer digest (any unique string in the simulation).
	ID string
	// SizeMB is the compressed layer size in megabytes.
	SizeMB float64
}

// Category classifies what a base image primarily provides, mirroring
// the Fig. 2(b) breakdown of OS, language and application images.
type Category int

const (
	// OS images provide only an operating system userland.
	OS Category = iota
	// Language images provide a language runtime on top of an OS.
	Language
	// Application images bundle a ready-to-run service.
	Application
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case OS:
		return "os"
	case Language:
		return "language"
	case Application:
		return "application"
	default:
		return fmt.Sprintf("image.Category(%d)", int(c))
	}
}

// Image is a named stack of layers.
type Image struct {
	// Name is the repository name, e.g. "python".
	Name string
	// Tag is the version tag, e.g. "3.8-alpine".
	Tag string
	// Layers is the ordered layer stack, base first.
	Layers []Layer
	// Category classifies the image for the Fig. 2(b) analysis.
	Category Category
}

// Ref returns the canonical "name:tag" reference.
func (im Image) Ref() string {
	tag := im.Tag
	if tag == "" {
		tag = "latest"
	}
	return im.Name + ":" + tag
}

// SizeMB is the total compressed size of all layers.
func (im Image) SizeMB() float64 {
	total := 0.0
	for _, l := range im.Layers {
		total += l.SizeMB
	}
	return total
}

// ParseRef splits an image reference into name and tag, defaulting the
// tag to "latest".
func ParseRef(ref string) (name, tag string) {
	name, tag, ok := strings.Cut(ref, ":")
	if !ok || tag == "" {
		tag = "latest"
	}
	return name, tag
}

// Registry is a catalog of images keyed by reference. It is safe for
// concurrent use.
type Registry struct {
	mu     sync.RWMutex
	images map[string]Image
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{images: make(map[string]Image)}
}

// Add registers an image, replacing any previous image with the same
// reference.
func (r *Registry) Add(im Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[im.Ref()] = im
}

// Lookup finds an image by reference ("name" or "name:tag").
func (r *Registry) Lookup(ref string) (Image, error) {
	name, tag := ParseRef(ref)
	r.mu.RLock()
	defer r.mu.RUnlock()
	im, ok := r.images[name+":"+tag]
	if !ok {
		return Image{}, fmt.Errorf("image: %q not found in registry", ref)
	}
	return im, nil
}

// Len reports the number of registered images.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.images)
}

// Refs returns all registered references, sorted.
func (r *Registry) Refs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	refs := make([]string, 0, len(r.images))
	for ref := range r.images {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	return refs
}

// Cache is a host-local layer store. Layers are shared between images
// (e.g. every python:* image shares the debian base layers), so
// pulling one image warms part of the next pull — the same effect the
// paper exploits by observing that serverless images are highly
// similar (Fig. 2).
//
// An optional capacity bounds the cache (the paper's edge device has
// only 32 GB of storage): admitting past the cap evicts the least
// recently used layers not belonging to the image being admitted.
type Cache struct {
	mu     sync.Mutex
	layers map[string]*cachedLayer
	maxMB  float64 // 0 = unbounded
	tick   uint64  // logical LRU clock
}

type cachedLayer struct {
	sizeMB   float64
	lastUsed uint64
}

// NewCache returns an empty, unbounded layer cache.
func NewCache() *Cache {
	return &Cache{layers: make(map[string]*cachedLayer)}
}

// NewCacheWithCap returns a layer cache bounded to maxMB megabytes
// with LRU layer eviction. It panics if maxMB <= 0.
func NewCacheWithCap(maxMB float64) *Cache {
	if maxMB <= 0 {
		panic("image: cache capacity must be positive")
	}
	c := NewCache()
	c.maxMB = maxMB
	return c
}

// MissingMB returns the total size of the image's layers that are not
// cached locally: the amount that a pull must download. Present layers
// count as used (a lookup is a touch).
func (c *Cache) MissingMB(im Image) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	total := 0.0
	for _, l := range im.Layers {
		if cl, ok := c.layers[l.ID]; ok {
			cl.lastUsed = c.tick
		} else {
			total += l.SizeMB
		}
	}
	return total
}

// Admit records the image's layers as cached, returning the number of
// megabytes that were newly admitted. With a capacity set, LRU layers
// outside the admitted image are evicted to make room; the admitted
// image's own layers are always kept (even if the image alone exceeds
// the cap — the engine cannot run a partially present image).
func (c *Cache) Admit(im Image) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	admitting := make(map[string]bool, len(im.Layers))
	added := 0.0
	for _, l := range im.Layers {
		admitting[l.ID] = true
		if cl, ok := c.layers[l.ID]; ok {
			cl.lastUsed = c.tick
			continue
		}
		c.layers[l.ID] = &cachedLayer{sizeMB: l.SizeMB, lastUsed: c.tick}
		added += l.SizeMB
	}
	if c.maxMB > 0 {
		c.evictLRU(admitting)
	}
	return added
}

// evictLRU drops least-recently-used layers (excluding protected ones)
// until the cache fits its capacity. Caller holds the lock.
func (c *Cache) evictLRU(protected map[string]bool) {
	total := 0.0
	for _, cl := range c.layers {
		total += cl.sizeMB
	}
	for total > c.maxMB {
		victimID := ""
		var victim *cachedLayer
		for id, cl := range c.layers {
			if protected[id] {
				continue
			}
			if victim == nil || cl.lastUsed < victim.lastUsed ||
				(cl.lastUsed == victim.lastUsed && id < victimID) {
				victimID, victim = id, cl
			}
		}
		if victim == nil {
			return // everything left is protected
		}
		total -= victim.sizeMB
		delete(c.layers, victimID)
	}
}

// Contains reports whether every layer of the image is cached.
func (c *Cache) Contains(im Image) bool {
	return c.MissingMB(im) == 0
}

// SizeMB reports the total cached bytes.
func (c *Cache) SizeMB() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, cl := range c.layers {
		total += cl.sizeMB
	}
	return total
}

// Evict removes the layers of an image from the cache, returning the
// megabytes freed. Layers shared with other cached images are removed
// too — the cache does not reference-count; callers that need sharing
// semantics should simply not evict.
func (c *Cache) Evict(im Image) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := 0.0
	for _, l := range im.Layers {
		if cl, ok := c.layers[l.ID]; ok {
			freed += cl.sizeMB
			delete(c.layers, l.ID)
		}
	}
	return freed
}

// StandardCatalog returns a registry pre-populated with the base
// images that dominate the paper's Fig. 2 survey, with realistic layer
// sharing (language and application images stack on OS bases).
func StandardCatalog() *Registry {
	r := NewRegistry()
	// OS bases.
	alpineBase := Layer{ID: "sha-alpine-3.9", SizeMB: 5.5}
	debianBase := Layer{ID: "sha-debian-stretch", SizeMB: 101}
	ubuntuBase := Layer{ID: "sha-ubuntu-16.04", SizeMB: 119}
	busyboxBase := Layer{ID: "sha-busybox-1.30", SizeMB: 1.2}
	centosBase := Layer{ID: "sha-centos-7", SizeMB: 202}

	r.Add(Image{Name: "alpine", Tag: "3.9", Category: OS, Layers: []Layer{alpineBase}})
	r.Add(Image{Name: "debian", Tag: "stretch", Category: OS, Layers: []Layer{debianBase}})
	r.Add(Image{Name: "ubuntu", Tag: "16.04", Category: OS, Layers: []Layer{ubuntuBase}})
	r.Add(Image{Name: "busybox", Tag: "1.30", Category: OS, Layers: []Layer{busyboxBase}})
	r.Add(Image{Name: "centos", Tag: "7", Category: OS, Layers: []Layer{centosBase}})

	// Language runtimes on shared bases.
	r.Add(Image{Name: "python", Tag: "3.8", Category: Language, Layers: []Layer{
		debianBase, {ID: "sha-python-3.8-rt", SizeMB: 48}, {ID: "sha-python-3.8-pip", SizeMB: 9},
	}})
	r.Add(Image{Name: "python", Tag: "3.8-alpine", Category: Language, Layers: []Layer{
		alpineBase, {ID: "sha-python-3.8a-rt", SizeMB: 28},
	}})
	r.Add(Image{Name: "node", Tag: "10", Category: Language, Layers: []Layer{
		debianBase, {ID: "sha-node-10-rt", SizeMB: 67},
	}})
	r.Add(Image{Name: "golang", Tag: "1.12", Category: Language, Layers: []Layer{
		debianBase, {ID: "sha-go-1.12-rt", SizeMB: 260},
	}})
	r.Add(Image{Name: "openjdk", Tag: "8", Category: Language, Layers: []Layer{
		debianBase, {ID: "sha-jdk-8-rt", SizeMB: 205},
	}})
	r.Add(Image{Name: "ruby", Tag: "2.6", Category: Language, Layers: []Layer{
		debianBase, {ID: "sha-ruby-2.6-rt", SizeMB: 61},
	}})

	// Application images.
	r.Add(Image{Name: "nginx", Tag: "1.15", Category: Application, Layers: []Layer{
		debianBase, {ID: "sha-nginx-1.15", SizeMB: 16},
	}})
	r.Add(Image{Name: "redis", Tag: "5", Category: Application, Layers: []Layer{
		debianBase, {ID: "sha-redis-5", SizeMB: 13},
	}})
	r.Add(Image{Name: "mysql", Tag: "5.7", Category: Application, Layers: []Layer{
		debianBase, {ID: "sha-mysql-5.7", SizeMB: 137},
	}})
	r.Add(Image{Name: "postgres", Tag: "11", Category: Application, Layers: []Layer{
		debianBase, {ID: "sha-postgres-11", SizeMB: 105},
	}})
	r.Add(Image{Name: "cassandra", Tag: "3.11", Category: Application, Layers: []Layer{
		debianBase, {ID: "sha-jdk-8-rt", SizeMB: 205}, {ID: "sha-cassandra-3.11", SizeMB: 82},
	}})
	r.Add(Image{Name: "tensorflow", Tag: "1.13", Category: Application, Layers: []Layer{
		ubuntuBase, {ID: "sha-python-3.8-rt", SizeMB: 48}, {ID: "sha-tf-1.13", SizeMB: 412},
	}})
	r.Add(Image{Name: "mongo", Tag: "4", Category: Application, Layers: []Layer{
		ubuntuBase, {ID: "sha-mongo-4", SizeMB: 120},
	}})
	r.Add(Image{Name: "httpd", Tag: "2.4", Category: Application, Layers: []Layer{
		debianBase, {ID: "sha-httpd-2.4", SizeMB: 24},
	}})
	return r
}
