package image

import (
	"strings"
	"testing"
)

// FuzzParseDockerfile checks the parser never panics and that any
// successfully parsed Dockerfile has a base image and consistent
// fields.
func FuzzParseDockerfile(f *testing.F) {
	f.Add(sampleDockerfile)
	f.Add("FROM alpine\nRUN echo hi\n")
	f.Add("from ubuntu:16.04\nENV A=1\nENV B 2\nLABEL x=\"y\"\n")
	f.Add("FROM golang:1.12 AS build\nFROM alpine\nCOPY --from=build /a /a\n")
	f.Add("FROM a\nRUN x && \\\n  y\n")
	f.Add("# only a comment")
	f.Add("")
	f.Add("FROM\n")
	f.Add("EXPOSE 8080 9090\nFROM x\nVOLUME [\"/data\"]\n")

	f.Fuzz(func(t *testing.T, text string) {
		df, err := ParseDockerfile(text)
		if err != nil {
			return
		}
		if df.BaseImage == "" {
			t.Fatalf("parsed dockerfile without base image: %q", text)
		}
		if df.Stages < 1 {
			t.Fatalf("parsed dockerfile with %d stages", df.Stages)
		}
		if df.FinalImage == "" {
			t.Fatal("parsed dockerfile without final image")
		}
		// BaseName never contains a tag separator.
		if strings.Contains(df.BaseName(), ":") {
			t.Fatalf("BaseName %q contains a tag", df.BaseName())
		}
		for _, in := range df.Instructions {
			if in.Cmd != strings.ToUpper(in.Cmd) {
				t.Fatalf("instruction %q not upper-cased", in.Cmd)
			}
		}
	})
}
