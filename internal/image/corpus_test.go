package image

import (
	"testing"

	"hotc/internal/rng"
)

func TestGenerateCorpusDeterministic(t *testing.T) {
	a, err := GenerateCorpus(rng.New(1), 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(rng.New(1), 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Entries {
		if a.Entries[i].File.BaseImage != b.Entries[i].File.BaseImage ||
			a.Entries[i].Stars != b.Entries[i].Stars {
			t.Fatalf("corpus not deterministic at entry %d", i)
		}
	}
}

func TestGenerateCorpusSize(t *testing.T) {
	c, err := GenerateCorpus(rng.New(2), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Entries) != 100 {
		t.Fatalf("len = %d", len(c.Entries))
	}
	if _, err := GenerateCorpus(rng.New(2), 0); err == nil {
		t.Fatal("zero-size corpus accepted")
	}
}

// Fig. 2(a): "both the top 100 popular and all surveyed projects are
// dominated by a few commonly used images".
func TestFig2aPopularityConcentration(t *testing.T) {
	c, err := GenerateCorpus(rng.New(42), 2000)
	if err != nil {
		t.Fatal(err)
	}
	all := c.Popularity(c.All())
	if all.Total != 2000 {
		t.Fatalf("total = %d", all.Total)
	}
	if all.Top10Share < 0.6 {
		t.Fatalf("top-10 share over all projects = %.2f, want dominance (>0.6)", all.Top10Share)
	}
	top := c.Popularity(c.TopByStars(100))
	if top.Total != 100 {
		t.Fatalf("top-100 total = %d", top.Total)
	}
	if top.Top10Share < 0.5 {
		t.Fatalf("top-10 share in top-100 projects = %.2f, want dominance", top.Top10Share)
	}
	// Shares must sum to ~1 and be sorted descending.
	sum := 0.0
	for i, s := range all.Shares {
		sum += s.Share
		if i > 0 && s.Count > all.Shares[i-1].Count {
			t.Fatal("shares not sorted descending")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

// Fig. 2(b): OS, language and application images dominate the base
// image settings.
func TestFig2bCategoryShares(t *testing.T) {
	c, err := GenerateCorpus(rng.New(42), 2000)
	if err != nil {
		t.Fatal(err)
	}
	cat := c.Categories(c.All())
	total := cat.OS + cat.Language + cat.Application
	if total < 0.999 || total > 1.001 {
		t.Fatalf("category shares sum to %v", total)
	}
	if cat.OS == 0 || cat.Language == 0 || cat.Application == 0 {
		t.Fatalf("some category empty: %+v", cat)
	}
	// OS + language bases dominate (they top the popularity pool).
	if cat.OS+cat.Language < 0.5 {
		t.Fatalf("OS+language share = %v, want > 0.5", cat.OS+cat.Language)
	}
}

func TestCategoriesEmpty(t *testing.T) {
	c := &Corpus{}
	if got := c.Categories(nil); got != (CategoryShares{}) {
		t.Fatalf("empty categories = %+v", got)
	}
}

func TestTopByStarsBounds(t *testing.T) {
	c, err := GenerateCorpus(rng.New(3), 10)
	if err != nil {
		t.Fatal(err)
	}
	top := c.TopByStars(100)
	if len(top) != 10 {
		t.Fatalf("TopByStars(100) of 10 = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Stars > top[i-1].Stars {
			t.Fatal("TopByStars not sorted")
		}
	}
}

func TestCorpusDockerfilesParseable(t *testing.T) {
	c, err := GenerateCorpus(rng.New(9), 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Entries {
		if e.File.BaseImage == "" {
			t.Fatalf("entry %s has no base image", e.Project)
		}
	}
}
