package image

import (
	"bufio"
	"fmt"
	"strings"
)

// Instruction is one parsed Dockerfile instruction.
type Instruction struct {
	// Cmd is the upper-cased instruction keyword (FROM, RUN, ...).
	Cmd string
	// Args is the raw argument string with line continuations joined.
	Args string
}

// Dockerfile is the parsed form of a Dockerfile, retaining the fields
// the Fig. 2 corpus analysis needs.
type Dockerfile struct {
	// BaseImage is the first FROM reference (stage 1 for multi-stage
	// builds, matching how popularity surveys count base images).
	BaseImage string
	// FinalImage is the last FROM reference (what the built image
	// actually runs on).
	FinalImage string
	// Stages counts FROM instructions.
	Stages int
	// Instructions is the full ordered instruction list.
	Instructions []Instruction
	// Env collects ENV key=value pairs across stages.
	Env map[string]string
	// Labels collects LABEL key=value pairs.
	Labels map[string]string
	// ExposedPorts collects EXPOSE arguments.
	ExposedPorts []string
	// Volumes collects VOLUME mount points.
	Volumes []string
}

var knownInstructions = map[string]bool{
	"FROM": true, "RUN": true, "CMD": true, "ENTRYPOINT": true,
	"ENV": true, "ARG": true, "COPY": true, "ADD": true,
	"EXPOSE": true, "VOLUME": true, "WORKDIR": true, "USER": true,
	"LABEL": true, "ONBUILD": true, "STOPSIGNAL": true,
	"HEALTHCHECK": true, "SHELL": true, "MAINTAINER": true,
}

// ParseDockerfile parses Dockerfile text. It understands comments,
// blank lines, line continuations with trailing backslashes, and the
// instruction set of Docker 1.17 (the version the paper uses). Unknown
// instructions are an error; a missing FROM is an error.
func ParseDockerfile(text string) (*Dockerfile, error) {
	df := &Dockerfile{
		Env:    map[string]string{},
		Labels: map[string]string{},
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var pending string
	lineNo := 0
	flush := func() error {
		line := strings.TrimSpace(pending)
		pending = ""
		if line == "" {
			return nil
		}
		cmd, args, _ := strings.Cut(line, " ")
		cmd = strings.ToUpper(cmd)
		args = strings.TrimSpace(args)
		if !knownInstructions[cmd] {
			return fmt.Errorf("image: line %d: unknown instruction %q", lineNo, cmd)
		}
		df.Instructions = append(df.Instructions, Instruction{Cmd: cmd, Args: args})
		switch cmd {
		case "FROM":
			ref := strings.Fields(args)
			if len(ref) == 0 {
				return fmt.Errorf("image: line %d: FROM without image", lineNo)
			}
			// Strip "AS stagename".
			img := ref[0]
			df.Stages++
			if df.Stages == 1 {
				df.BaseImage = img
			}
			df.FinalImage = img
		case "ENV":
			k, v := parseKV(args)
			if k != "" {
				df.Env[k] = v
			}
		case "LABEL":
			k, v := parseKV(args)
			if k != "" {
				df.Labels[k] = v
			}
		case "EXPOSE":
			df.ExposedPorts = append(df.ExposedPorts, strings.Fields(args)...)
		case "VOLUME":
			df.Volumes = append(df.Volumes, strings.Fields(strings.Trim(args, "[]\""))...)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		trimmed := strings.TrimSpace(raw)
		if pending == "" && (trimmed == "" || strings.HasPrefix(trimmed, "#")) {
			continue
		}
		if strings.HasSuffix(trimmed, "\\") {
			pending += strings.TrimSuffix(trimmed, "\\") + " "
			continue
		}
		pending += trimmed
		if err := flush(); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("image: reading dockerfile: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if df.Stages == 0 {
		return nil, fmt.Errorf("image: dockerfile has no FROM instruction")
	}
	return df, nil
}

// parseKV handles both "KEY=value" and "KEY value" forms used by ENV
// and LABEL.
func parseKV(args string) (string, string) {
	if k, v, ok := strings.Cut(args, "="); ok && !strings.ContainsAny(k, " \t") {
		return strings.TrimSpace(k), strings.Trim(v, "\"")
	}
	if k, v, ok := strings.Cut(args, " "); ok {
		return strings.TrimSpace(k), strings.Trim(strings.TrimSpace(v), "\"")
	}
	return strings.TrimSpace(args), ""
}

// BaseName returns the repository part of the Dockerfile's base image
// ("python:3.8-alpine" -> "python").
func (df *Dockerfile) BaseName() string {
	name, _ := ParseRef(df.BaseImage)
	return name
}
