package image

import (
	"strings"
	"testing"
)

const sampleDockerfile = `
# build the service
FROM python:3.8-alpine
ENV APP_ENV=prod
ENV PORT 8080
LABEL maintainer="ops@example.com"
WORKDIR /app
COPY . /app
RUN pip install -r requirements.txt && \
    pip cache purge
EXPOSE 8080 9090
VOLUME /data
USER nobody
CMD ["python", "app.py"]
`

func TestParseDockerfile(t *testing.T) {
	df, err := ParseDockerfile(sampleDockerfile)
	if err != nil {
		t.Fatal(err)
	}
	if df.BaseImage != "python:3.8-alpine" {
		t.Fatalf("base = %q", df.BaseImage)
	}
	if df.BaseName() != "python" {
		t.Fatalf("base name = %q", df.BaseName())
	}
	if df.Stages != 1 {
		t.Fatalf("stages = %d", df.Stages)
	}
	if df.Env["APP_ENV"] != "prod" {
		t.Fatalf("env = %v", df.Env)
	}
	if df.Env["PORT"] != "8080" {
		t.Fatalf("ENV key value form not parsed: %v", df.Env)
	}
	if df.Labels["maintainer"] != "ops@example.com" {
		t.Fatalf("labels = %v", df.Labels)
	}
	if len(df.ExposedPorts) != 2 {
		t.Fatalf("ports = %v", df.ExposedPorts)
	}
	if len(df.Volumes) != 1 || df.Volumes[0] != "/data" {
		t.Fatalf("volumes = %v", df.Volumes)
	}
}

func TestParseDockerfileContinuation(t *testing.T) {
	df, err := ParseDockerfile("FROM alpine\nRUN a && \\\n  b && \\\n  c\n")
	if err != nil {
		t.Fatal(err)
	}
	var run *Instruction
	for i := range df.Instructions {
		if df.Instructions[i].Cmd == "RUN" {
			run = &df.Instructions[i]
		}
	}
	if run == nil {
		t.Fatal("RUN instruction lost")
	}
	if !strings.Contains(run.Args, "a &&") || !strings.Contains(run.Args, "c") {
		t.Fatalf("continuation not joined: %q", run.Args)
	}
}

func TestParseDockerfileMultiStage(t *testing.T) {
	df, err := ParseDockerfile("FROM golang:1.12 AS build\nRUN go build\nFROM alpine:3.9\nCOPY --from=build /bin/app /app\nCMD [\"/app\"]\n")
	if err != nil {
		t.Fatal(err)
	}
	if df.Stages != 2 {
		t.Fatalf("stages = %d", df.Stages)
	}
	if df.BaseImage != "golang:1.12" {
		t.Fatalf("base = %q", df.BaseImage)
	}
	if df.FinalImage != "alpine:3.9" {
		t.Fatalf("final = %q", df.FinalImage)
	}
}

func TestParseDockerfileErrors(t *testing.T) {
	cases := []string{
		"",                        // no FROM
		"RUN echo hi\n",           // no FROM
		"FROM\n",                  // FROM without image
		"FROM alpine\nTELEPORT x", // unknown instruction
	}
	for i, text := range cases {
		if _, err := ParseDockerfile(text); err == nil {
			t.Errorf("case %d: expected error for %q", i, text)
		}
	}
}

func TestParseDockerfileCaseInsensitiveKeywords(t *testing.T) {
	df, err := ParseDockerfile("from alpine\nrun echo hi\n")
	if err != nil {
		t.Fatal(err)
	}
	if df.BaseImage != "alpine" {
		t.Fatalf("base = %q", df.BaseImage)
	}
}

func TestParseDockerfileNoTrailingNewline(t *testing.T) {
	df, err := ParseDockerfile("FROM alpine")
	if err != nil {
		t.Fatal(err)
	}
	if df.BaseImage != "alpine" {
		t.Fatalf("base = %q", df.BaseImage)
	}
}
