package image

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRefDefaultsLatest(t *testing.T) {
	im := Image{Name: "alpine"}
	if im.Ref() != "alpine:latest" {
		t.Fatalf("Ref = %q", im.Ref())
	}
	im.Tag = "3.9"
	if im.Ref() != "alpine:3.9" {
		t.Fatalf("Ref = %q", im.Ref())
	}
}

func TestParseRef(t *testing.T) {
	for _, tc := range []struct{ in, name, tag string }{
		{"python:3.8", "python", "3.8"},
		{"python", "python", "latest"},
		{"python:", "python", "latest"},
	} {
		n, tag := ParseRef(tc.in)
		if n != tc.name || tag != tc.tag {
			t.Errorf("ParseRef(%q) = %q/%q", tc.in, n, tag)
		}
	}
}

func TestSizeMB(t *testing.T) {
	im := Image{Layers: []Layer{{ID: "a", SizeMB: 10}, {ID: "b", SizeMB: 5}}}
	if im.SizeMB() != 15 {
		t.Fatalf("SizeMB = %v", im.SizeMB())
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	r.Add(Image{Name: "alpine", Tag: "3.9"})
	if _, err := r.Lookup("alpine:3.9"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("alpine:9.9"); err == nil {
		t.Fatal("missing tag found")
	}
	if _, err := r.Lookup("nothere"); err == nil {
		t.Fatal("missing image found")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRegistryRefsSorted(t *testing.T) {
	r := NewRegistry()
	r.Add(Image{Name: "zeta"})
	r.Add(Image{Name: "alpha"})
	refs := r.Refs()
	if len(refs) != 2 || refs[0] != "alpha:latest" {
		t.Fatalf("Refs = %v", refs)
	}
}

func TestCachePullAccounting(t *testing.T) {
	c := NewCache()
	im := Image{Name: "x", Layers: []Layer{{ID: "a", SizeMB: 10}, {ID: "b", SizeMB: 20}}}
	if got := c.MissingMB(im); got != 30 {
		t.Fatalf("MissingMB cold = %v", got)
	}
	if added := c.Admit(im); added != 30 {
		t.Fatalf("Admit = %v", added)
	}
	if !c.Contains(im) {
		t.Fatal("image not contained after admit")
	}
	if got := c.MissingMB(im); got != 0 {
		t.Fatalf("MissingMB warm = %v", got)
	}
	if again := c.Admit(im); again != 0 {
		t.Fatalf("re-Admit added %v", again)
	}
	if c.SizeMB() != 30 {
		t.Fatalf("SizeMB = %v", c.SizeMB())
	}
}

func TestCacheLayerSharing(t *testing.T) {
	c := NewCache()
	base := Layer{ID: "shared-base", SizeMB: 100}
	a := Image{Name: "a", Layers: []Layer{base, {ID: "a-top", SizeMB: 10}}}
	b := Image{Name: "b", Layers: []Layer{base, {ID: "b-top", SizeMB: 20}}}
	c.Admit(a)
	// Pulling b after a only needs b's unique layer.
	if got := c.MissingMB(b); got != 20 {
		t.Fatalf("MissingMB with shared base = %v, want 20", got)
	}
}

func TestCacheEvict(t *testing.T) {
	c := NewCache()
	im := Image{Name: "x", Layers: []Layer{{ID: "a", SizeMB: 10}}}
	c.Admit(im)
	if freed := c.Evict(im); freed != 10 {
		t.Fatalf("Evict freed %v", freed)
	}
	if c.Contains(im) {
		t.Fatal("still contained after evict")
	}
	if freed := c.Evict(im); freed != 0 {
		t.Fatalf("double Evict freed %v", freed)
	}
}

func TestCacheCapacityLRUEviction(t *testing.T) {
	c := NewCacheWithCap(100)
	a := Image{Name: "a", Layers: []Layer{{ID: "a1", SizeMB: 40}}}
	b := Image{Name: "b", Layers: []Layer{{ID: "b1", SizeMB: 40}}}
	d := Image{Name: "d", Layers: []Layer{{ID: "d1", SizeMB: 40}}}
	c.Admit(a)
	c.Admit(b)
	// Touch a so b is the LRU.
	if c.MissingMB(a) != 0 {
		t.Fatal("a should be cached")
	}
	c.Admit(d) // 120 MB > 100: evict the LRU layer (b1)
	if c.SizeMB() > 100 {
		t.Fatalf("cache over capacity: %v MB", c.SizeMB())
	}
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("recently used layers evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU layer survived")
	}
}

func TestCacheCapacityProtectsAdmittedImage(t *testing.T) {
	c := NewCacheWithCap(50)
	big := Image{Name: "big", Layers: []Layer{{ID: "x", SizeMB: 80}}}
	c.Admit(big)
	// The image exceeds the cap alone but must stay resident: the
	// engine cannot run a partially present image.
	if !c.Contains(big) {
		t.Fatal("admitted image evicted")
	}
	// A later admit evicts it once it is no longer protected.
	small := Image{Name: "s", Layers: []Layer{{ID: "y", SizeMB: 10}}}
	c.Admit(small)
	if c.Contains(big) {
		t.Fatal("oversized stale image should be the first eviction victim")
	}
	if !c.Contains(small) {
		t.Fatal("small image lost")
	}
}

func TestCacheCapacityInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewCacheWithCap(0)
}

// A bounded cache on the edge profile: repeated alternation between
// two images that together exceed the cap forces re-pulls — the
// limited-storage effect.
func TestCacheCapacityThrashing(t *testing.T) {
	c := NewCacheWithCap(100)
	a := Image{Name: "a", Layers: []Layer{{ID: "a1", SizeMB: 70}}}
	b := Image{Name: "b", Layers: []Layer{{ID: "b1", SizeMB: 70}}}
	pulls := 0.0
	for i := 0; i < 6; i++ {
		im := a
		if i%2 == 1 {
			im = b
		}
		pulls += c.MissingMB(im)
		c.Admit(im)
	}
	// Every alternation evicts the other image: six full pulls.
	if pulls != 6*70 {
		t.Fatalf("pulled %v MB, want %v (thrashing)", pulls, 6*70.0)
	}
}

func TestStandardCatalog(t *testing.T) {
	r := StandardCatalog()
	if r.Len() < 15 {
		t.Fatalf("catalog too small: %d", r.Len())
	}
	tf, err := r.Lookup("tensorflow:1.13")
	if err != nil {
		t.Fatal(err)
	}
	if tf.Category != Application {
		t.Fatalf("tensorflow category = %v", tf.Category)
	}
	if tf.SizeMB() < 400 {
		t.Fatalf("tensorflow image suspiciously small: %v MB", tf.SizeMB())
	}
	// Layer sharing across catalog images: pulling python warms part
	// of tensorflow (both carry the python runtime layer).
	py, err := r.Lookup("python:3.8")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.Admit(py)
	if c.MissingMB(tf) >= tf.SizeMB() {
		t.Fatal("catalog images do not share layers")
	}
}

func TestCategoryString(t *testing.T) {
	if OS.String() != "os" || Language.String() != "language" || Application.String() != "application" {
		t.Fatal("category names wrong")
	}
	if Category(9).String() == "" {
		t.Fatal("unknown category should still render")
	}
}

// Property: cache conservation — MissingMB + cached part == image size,
// and Admit returns exactly the previous MissingMB.
func TestPropertyCacheConservation(t *testing.T) {
	f := func(sizes []uint8, split uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		var layers []Layer
		for i, s := range sizes {
			layers = append(layers, Layer{ID: string(rune('a' + i%26)), SizeMB: float64(s%100) + 1})
		}
		// Dedup layer IDs by keeping the first occurrence.
		seen := map[string]bool{}
		var uniq []Layer
		for _, l := range layers {
			if !seen[l.ID] {
				seen[l.ID] = true
				uniq = append(uniq, l)
			}
		}
		im := Image{Name: "p", Layers: uniq}
		pre := Image{Name: "q", Layers: uniq[:int(split)%(len(uniq)+1)]}
		c := NewCache()
		c.Admit(pre)
		missing := c.MissingMB(im)
		added := c.Admit(im)
		return math.Abs(missing-added) < 1e-9 && c.Contains(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A single layer larger than the whole cap must still be admitted and
// stay resident while protected (the engine cannot run a partially
// present image), then be evicted by the next admission like any other
// unprotected LRU content — the NewCacheWithCap boundary.
func TestCacheCapacityLayerLargerThanCap(t *testing.T) {
	c := NewCacheWithCap(50)
	huge := Image{Name: "huge", Layers: []Layer{{ID: "h1", SizeMB: 300}}}
	if added := c.Admit(huge); added != 300 {
		t.Fatalf("Admit added %v MB, want 300", added)
	}
	if !c.Contains(huge) {
		t.Fatal("oversized layer not resident after its own admit")
	}
	if got := c.SizeMB(); got != 300 {
		t.Fatalf("cache size %v MB, want 300 (protected overflow)", got)
	}
	// A tiny follow-up admission unprotects it: the oversized layer is
	// the LRU victim and the cache returns under cap.
	tiny := Image{Name: "tiny", Layers: []Layer{{ID: "t1", SizeMB: 5}}}
	c.Admit(tiny)
	if c.Contains(huge) {
		t.Fatal("oversized layer survived the next admission")
	}
	if got := c.SizeMB(); got > 50 {
		t.Fatalf("cache still over cap after eviction: %v MB", got)
	}
}

// The LRU sweep must never evict layers of the image being admitted,
// even when several shared layers tie on last-use: the protected set is
// pinned as a whole.
func TestCacheCapacityPinsWholeProtectedSet(t *testing.T) {
	c := NewCacheWithCap(100)
	stale := Image{Name: "stale", Layers: []Layer{{ID: "s1", SizeMB: 30}, {ID: "s2", SizeMB: 30}}}
	c.Admit(stale)
	multi := Image{Name: "multi", Layers: []Layer{
		{ID: "m1", SizeMB: 40}, {ID: "m2", SizeMB: 40}, {ID: "m3", SizeMB: 40},
	}}
	c.Admit(multi) // 180 MB total: both stale layers must go, no multi layer may
	if !c.Contains(multi) {
		t.Fatal("admitted image lost one of its own layers to the sweep")
	}
	if c.Contains(stale) {
		t.Fatal("stale layers survived while the cache is over cap")
	}
	if got := c.SizeMB(); got != 120 {
		t.Fatalf("cache size %v MB, want 120 (protected set alone)", got)
	}
}

// Concurrent Admit/MissingMB/SizeMB from many goroutines over
// overlapping images: the live gateway admits on every cold boot, so
// the cache is on a concurrent path. Run under -race; the invariant is
// that the total added MB across all admitters equals each layer paid
// exactly once.
func TestCacheConcurrentAdmit(t *testing.T) {
	c := NewCache()
	base := Layer{ID: "base", SizeMB: 100}
	images := make([]Image, 8)
	for i := range images {
		images[i] = Image{Name: fmt.Sprintf("im%d", i), Layers: []Layer{
			base, {ID: fmt.Sprintf("own%d", i), SizeMB: 10},
		}}
	}
	var wg sync.WaitGroup
	var totalAdded int64 // MB, integral by construction
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				im := images[(w+j)%len(images)]
				c.MissingMB(im)
				atomic.AddInt64(&totalAdded, int64(c.Admit(im)))
				c.SizeMB()
			}
		}(w)
	}
	wg.Wait()
	// Every layer was admitted by exactly one call: the shared base
	// once, each per-image layer once.
	want := int64(100 + 10*len(images))
	if totalAdded != want {
		t.Fatalf("concurrent admits paid %d MB total, want %d (layers double-paid or lost)", totalAdded, want)
	}
	for _, im := range images {
		if !c.Contains(im) {
			t.Fatalf("image %s incomplete after concurrent admits", im.Name)
		}
	}
}
