package predictor

import (
	"math"
	"testing"
	"testing/quick"

	"hotc/internal/metrics"
	"hotc/internal/rng"
)

func TestESRecursion(t *testing.T) {
	e := NewES(0.8)
	e.InitWindow = 1
	e.Observe(10) // initial value = 10
	e.Observe(20) // 0.8*20 + 0.2*10 = 18
	if got := e.Predict(); math.Abs(got-18) > 1e-9 {
		t.Fatalf("Predict = %v, want 18", got)
	}
	e.Observe(10) // 0.8*10 + 0.2*18 = 11.6
	if got := e.Predict(); math.Abs(got-11.6) > 1e-9 {
		t.Fatalf("Predict = %v, want 11.6", got)
	}
}

func TestESInitialValueIsLeadingMean(t *testing.T) {
	// §IV.C.2: initial value = mean of the first five samples.
	e := NewES(0.8)
	lead := []float64{2, 4, 6, 8, 10} // mean 6
	for _, v := range lead {
		e.Observe(v)
	}
	if got := e.Predict(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("initial estimate = %v, want mean 6", got)
	}
	// The sixth observation applies the recursion to the seeded value.
	e.Observe(16) // 0.8*16 + 0.2*6 = 14
	if got := e.Predict(); math.Abs(got-14) > 1e-9 {
		t.Fatalf("after seed = %v, want 14", got)
	}
}

func TestESEmpty(t *testing.T) {
	if NewES(0.5).Predict() != 0 {
		t.Fatal("empty ES should predict 0")
	}
}

func TestESInvalidAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", a)
				}
			}()
			NewES(a)
		}()
	}
}

// §IV.C.2: larger α makes the forecast track recent data faster.
func TestESAlphaSensitivity(t *testing.T) {
	series := make([]float64, 30)
	for i := range series {
		series[i] = 10
	}
	series[29] = 100 // a sudden jump at the end

	small := NewES(0.1)
	large := NewES(0.8)
	for _, v := range series {
		small.Observe(v)
		large.Observe(v)
	}
	if large.Predict() <= small.Predict() {
		t.Fatalf("large α (%v) should chase the jump harder than small α (%v)",
			large.Predict(), small.Predict())
	}
}

// ES stays within the convex hull of history (weights sum to 1).
func TestPropertyESConvexHull(t *testing.T) {
	f := func(raw []uint16, alphaPct uint8) bool {
		alpha := 0.05 + float64(alphaPct%90)/100
		e := NewES(alpha)
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			e.Observe(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			p := e.Predict()
			if p < min-1e-6 || p > max+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkovConstantSeries(t *testing.T) {
	m := NewMarkov(4)
	for i := 0; i < 10; i++ {
		m.Observe(7)
	}
	if got := m.Predict(); got != 7 {
		t.Fatalf("constant series predicted %v, want 7", got)
	}
}

func TestMarkovEmptyAndSingle(t *testing.T) {
	m := NewMarkov(4)
	if m.Predict() != 0 {
		t.Fatal("empty markov should predict 0")
	}
	m.Observe(5)
	if m.Predict() != 5 {
		t.Fatal("single observation should predict itself")
	}
}

func TestMarkovInvalidStatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMarkov(1) did not panic")
		}
	}()
	NewMarkov(1)
}

func TestMarkovAlternatingSeries(t *testing.T) {
	// A strictly alternating low/high series: from the low state the
	// most likely successor is the high state and vice versa.
	m := NewMarkov(2)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			m.Observe(0)
		} else {
			m.Observe(100)
		}
	}
	// Last observation was high (i=19 odd -> 100): predict low half.
	if got := m.Predict(); got > 50 {
		t.Fatalf("after high, alternation should predict low, got %v", got)
	}
	m.Observe(0)
	if got := m.Predict(); got < 50 {
		t.Fatalf("after low, alternation should predict high, got %v", got)
	}
}

// Regression: a constant series followed by a step lands the chain in
// a region state it has never left before — a no-data (uniform) row.
// Arg-max ties must break toward the *current* state, so the forecast
// stays at the new level; the old code broke ties toward state index 0
// and forecast the minimum region midpoint, systematically
// under-provisioning right after every demand jump.
func TestMarkovTieBreaksTowardCurrentState(t *testing.T) {
	m := NewMarkov(8)
	for i := 0; i < 5; i++ {
		m.Observe(10)
	}
	m.Observe(100) // step into a state with no observed successors

	// The current state's region is the top interval [~88.75, 100]; the
	// forecast must stay in it, not collapse to the bottom region.
	if got := m.Predict(); got < 80 {
		t.Fatalf("after step to 100, Predict = %v, want the current (high) region midpoint", got)
	}

	// Same discipline k steps ahead.
	if got := m.PredictK(2); got < 80 {
		t.Fatalf("after step to 100, PredictK(2) = %v, want the current (high) region midpoint", got)
	}
}

func TestMarkovTransitionMatrixRowStochastic(t *testing.T) {
	src := rng.New(5)
	m := NewMarkov(6)
	for i := 0; i < 500; i++ {
		m.Observe(src.Float64() * 100)
	}
	for _, k := range []int{1, 2, 5} {
		p := m.TransitionMatrix(k)
		for i, row := range p {
			sum := 0.0
			for _, v := range row {
				if v < 0 || v > 1 {
					t.Fatalf("P(%d)[%d] has out-of-range prob %v", k, i, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("P(%d) row %d sums to %v", k, i, sum)
			}
		}
	}
}

func TestMarkovTransitionMatrixBadStep(t *testing.T) {
	m := NewMarkov(3)
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	m.TransitionMatrix(0)
}

func TestMarkovPredictK(t *testing.T) {
	// Strictly alternating series: one step ahead lands in the other
	// state, two steps ahead lands back in the current state.
	m := NewMarkov(2)
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			m.Observe(0)
		} else {
			m.Observe(100)
		}
	}
	// Last observation: i=39 odd -> 100 (high).
	if got := m.PredictK(1); got > 50 {
		t.Fatalf("PredictK(1) = %v, want low", got)
	}
	if got := m.PredictK(2); got < 50 {
		t.Fatalf("PredictK(2) = %v, want high", got)
	}
	if m.PredictK(1) != m.Predict() {
		t.Fatal("PredictK(1) must equal Predict")
	}
}

func TestMarkovPredictKDegenerate(t *testing.T) {
	m := NewMarkov(3)
	if m.PredictK(2) != 0 {
		t.Fatal("empty PredictK != 0")
	}
	m.Observe(7)
	m.Observe(7)
	// k beyond history length: fall back to last value.
	if m.PredictK(10) != 7 {
		t.Fatal("short-history PredictK should return last value")
	}
}

func TestNaive(t *testing.T) {
	n := NewNaive()
	if n.Predict() != 0 {
		t.Fatal("empty naive should predict 0")
	}
	n.Observe(3)
	n.Observe(9)
	if n.Predict() != 9 {
		t.Fatalf("naive = %v, want 9", n.Predict())
	}
}

func TestCombinedNonNegative(t *testing.T) {
	c := Default()
	// A crashing series can push the corrected forecast negative; it
	// must clamp (container counts cannot be negative).
	for _, v := range []float64{100, 80, 50, 20, 5, 1, 0, 0, 0, 0, 0, 0} {
		c.Observe(v)
		if c.Predict() < 0 {
			t.Fatalf("negative forecast %v", c.Predict())
		}
	}
}

func TestCombinedWarmupEqualsES(t *testing.T) {
	c := NewCombined(0.8, 4)
	e := NewES(0.8)
	for _, v := range []float64{3, 5, 4} {
		c.Observe(v)
		e.Observe(v)
	}
	if math.Abs(c.Predict()-e.Predict()) > 1e-9 {
		t.Fatalf("during warmup combined (%v) should equal ES (%v)", c.Predict(), e.Predict())
	}
}

// Fig. 10(a): on workloads where ES systematically lags (ramps with
// resets — the shape of the paper's linear and diurnal request
// patterns), ES+Markov tracks the real values more closely than ES
// alone because the error chain learns the lag and corrects it.
func TestFig10CombinedBeatsESOnTrendingSeries(t *testing.T) {
	src := rng.New(77)
	var series []float64
	for i := 0; i < 200; i++ {
		v := float64(2 * (i%20 + 1)) // ramp 2..40, then reset
		series = append(series, math.Max(0, v+src.Norm(0, 1)))
	}
	esPred := Backtest(NewES(DefaultAlpha), series)
	combPred := Backtest(Default(), series)

	// Score only after warmup.
	esErr := metrics.MeanAbsError(esPred[10:], series[10:])
	combErr := metrics.MeanAbsError(combPred[10:], series[10:])
	if combErr >= esErr {
		t.Fatalf("combined MAE %.3f should beat ES MAE %.3f", combErr, esErr)
	}
}

// On a noise-dominated stationary series the correction must at least
// not blow up: combined stays within a few percent of plain ES.
func TestCombinedNoWorseOnNoisySeries(t *testing.T) {
	src := rng.New(42)
	var series []float64
	level := 8.0
	for i := 0; i < 300; i++ {
		if i%25 == 0 && i > 0 {
			if level < 15 {
				level = 19
			} else {
				level = 8
			}
		}
		series = append(series, math.Max(0, level+src.Norm(0, 2)))
	}
	esPred := Backtest(NewES(DefaultAlpha), series)
	combPred := Backtest(Default(), series)
	esErr := metrics.MeanAbsError(esPred[10:], series[10:])
	combErr := metrics.MeanAbsError(combPred[10:], series[10:])
	if combErr > esErr*1.25 {
		t.Fatalf("combined MAE %.3f is much worse than ES MAE %.3f", combErr, esErr)
	}
}

// ES alone lags a step change (§V.C: "forecast is relatively lagging");
// the combined predictor recovers faster.
func TestStepResponseLag(t *testing.T) {
	series := make([]float64, 40)
	for i := range series {
		if i < 20 {
			series[i] = 8
		} else {
			series[i] = 19
		}
	}
	esPred := Backtest(NewES(DefaultAlpha), series)
	// Immediately after the jump the ES forecast must still be near the
	// old level: the lag the paper describes.
	if esPred[20] > 10 {
		t.Fatalf("ES should lag the jump: predicted %v for t=20", esPred[20])
	}
	// And it must converge towards the new level within a few steps.
	if esPred[25] < 17 {
		t.Fatalf("ES should converge after the jump: predicted %v for t=25", esPred[25])
	}
}

func TestSeasonalExactPeriodicity(t *testing.T) {
	s := NewSeasonal(4)
	cycle := []float64{10, 20, 30, 40}
	// Feed three full cycles; after the first, every prediction is
	// exact.
	errs := 0
	for i := 0; i < 12; i++ {
		want := cycle[i%4]
		if i >= 4 && s.Predict() != want {
			errs++
		}
		s.Observe(want)
	}
	if errs != 0 {
		t.Fatalf("%d wrong predictions on an exactly periodic series", errs)
	}
}

func TestSeasonalFallbackBeforeFullPeriod(t *testing.T) {
	s := NewSeasonal(10)
	if s.Predict() != 0 {
		t.Fatal("empty seasonal should predict 0")
	}
	s.Observe(7)
	if s.Predict() != 7 {
		t.Fatal("short-history seasonal should fall back to last value")
	}
}

func TestSeasonalTrimKeepsAlignment(t *testing.T) {
	s := NewSeasonal(4)
	cycle := []float64{10, 20, 30, 40}
	for i := 0; i < 100; i++ { // far beyond the trim threshold
		s.Observe(cycle[i%4])
	}
	// Next index is 100, 100%4 == 0 -> expect 10.
	if got := s.Predict(); got != 10 {
		t.Fatalf("post-trim prediction = %v, want 10", got)
	}
}

func TestSeasonalInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeasonal(0) did not panic")
		}
	}()
	NewSeasonal(0)
}

func TestBacktestLength(t *testing.T) {
	out := Backtest(NewNaive(), []float64{1, 2, 3})
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	// First forecast is made blind.
	if out[0] != 0 {
		t.Fatalf("first forecast = %v, want 0", out[0])
	}
	if out[1] != 1 || out[2] != 2 {
		t.Fatalf("naive backtest = %v", out)
	}
}

// Property: combined forecasts are never negative and never NaN/Inf on
// arbitrary non-negative series.
func TestPropertyCombinedSane(t *testing.T) {
	f := func(raw []uint16) bool {
		c := Default()
		for _, r := range raw {
			c.Observe(float64(r % 1000))
			p := c.Predict()
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Markov forecasts stay within [min, max] of history.
func TestPropertyMarkovBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		m := NewMarkov(5)
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			m.Observe(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		p := m.Predict()
		return p >= min-1e-9 && p <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Diagnostic: on a sustained ramp, ES one-step errors are positively
// autocorrelated (the systematic lag the Markov chain corrects); on
// stationary noise they are negatively autocorrelated (overshoot
// chasing). This characterises the regimes of §IV.C.3.
func TestESErrorAutocorrelationRegimes(t *testing.T) {
	errsOf := func(series []float64) []float64 {
		pred := Backtest(NewES(DefaultAlpha), series)
		var errs []float64
		for i := 10; i < len(series); i++ {
			errs = append(errs, series[i]-pred[i])
		}
		return errs
	}

	var ramp []float64
	for i := 0; i < 200; i++ {
		ramp = append(ramp, float64(2*(i%20+1)))
	}
	if ac := metrics.AutoCorrelation(errsOf(ramp), 1); ac < 0.1 {
		t.Fatalf("ramp error lag-1 AC = %v, want positive (systematic lag)", ac)
	}

	src := rng.New(9)
	var flat []float64
	for i := 0; i < 400; i++ {
		flat = append(flat, 20+src.Norm(0, 3))
	}
	if ac := metrics.AutoCorrelation(errsOf(flat), 1); ac > -0.1 {
		t.Fatalf("stationary error lag-1 AC = %v, want negative (noise chasing)", ac)
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{NewES(0.8), NewMarkov(4), Default(), NewNaive()} {
		if p.Name() == "" {
			t.Fatal("empty predictor name")
		}
	}
}
